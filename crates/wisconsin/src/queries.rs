//! The benchmark join queries as spec builders.
//!
//! `joinABprime` is the paper's reporting query: a 100,000-tuple relation
//! joined with a 10,000-tuple relation producing 10,000 result tuples
//! (the smaller relation is always the inner/building relation). The
//! `joinAselB` and `joinCselAselB` variants add selections; the paper ran
//! them too and saw the same trends.

use gamma_core::algorithms::common::RangePred;
use gamma_core::{Algorithm, JoinSpec, RelationId};

use crate::gen::WisconsinGen;

/// `joinABprime`: Bprime (inner) ⋈ A (outer) on the given attributes.
/// `memory_bytes` is the aggregate join memory (ratio × |Bprime| in the
/// paper's sweeps).
pub fn join_abprime(
    algorithm: Algorithm,
    bprime: RelationId,
    a: RelationId,
    inner_attr: &str,
    outer_attr: &str,
    memory_bytes: u64,
) -> JoinSpec {
    JoinSpec::new(
        algorithm,
        bprime,
        a,
        WisconsinGen::attr(inner_attr),
        WisconsinGen::attr(outer_attr),
        memory_bytes,
    )
}

/// `joinAselB`: select 10 % of B (`unique1 < sel_limit`) as the inner
/// relation, join with A on `unique1`.
pub fn join_asel_b(
    algorithm: Algorithm,
    b: RelationId,
    a: RelationId,
    sel_limit: u32,
    memory_bytes: u64,
) -> JoinSpec {
    let attr = WisconsinGen::attr("unique1");
    let mut spec = JoinSpec::new(algorithm, b, a, attr, attr, memory_bytes);
    spec.inner_pred = Some(RangePred {
        attr,
        lo: 0,
        hi: sel_limit.saturating_sub(1),
    });
    spec
}

/// `joinCselAselB`: selections on both relations before joining.
pub fn join_csel_asel_b(
    algorithm: Algorithm,
    b: RelationId,
    a: RelationId,
    b_limit: u32,
    a_limit: u32,
    memory_bytes: u64,
) -> JoinSpec {
    let attr = WisconsinGen::attr("unique1");
    let mut spec = JoinSpec::new(algorithm, b, a, attr, attr, memory_bytes);
    spec.inner_pred = Some(RangePred {
        attr,
        lo: 0,
        hi: b_limit.saturating_sub(1),
    });
    spec.outer_pred = Some(RangePred {
        attr,
        lo: 0,
        hi: a_limit.saturating_sub(1),
    });
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abprime_spec_shape() {
        let s = join_abprime(Algorithm::HybridHash, 3, 4, "unique1", "unique1", 1024);
        assert_eq!(s.inner, 3);
        assert_eq!(s.outer, 4);
        assert_eq!(s.memory_bytes, 1024);
        assert!(s.inner_pred.is_none());
    }

    #[test]
    fn selections_are_set() {
        let s = join_asel_b(Algorithm::GraceHash, 1, 2, 1000, 64);
        let p = s.inner_pred.unwrap();
        assert_eq!((p.lo, p.hi), (0, 999));
        let s = join_csel_asel_b(Algorithm::SortMerge, 1, 2, 1000, 5000, 64);
        assert_eq!(s.inner_pred.unwrap().hi, 999);
        assert_eq!(s.outer_pred.unwrap().hi, 4999);
    }
}
