//! The full Wisconsin benchmark suite \[BITT83\], scaled the way the Gamma
//! project ran it.
//!
//! The paper only reports the join queries, but they were measured inside
//! the complete benchmark; this module provides the rest so the
//! reproduction doubles as a usable benchmark kit: selections at 1 % and
//! 10 % selectivity (sequential and B+-tree-indexed), whole-relation and
//! 1 % projections, scalar and 100-partition aggregates, and the update
//! family (append, delete, modify).

use gamma_core::algorithms::common::RangePred;
use gamma_core::operators::{self, AggFn};
use gamma_core::{run_join, Algorithm, Machine, RelationId};

use crate::gen::WisconsinGen;
use crate::load::load_hashed;
use crate::queries::join_abprime;

/// One benchmark query's outcome.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Query name, following the benchmark's naming.
    pub name: String,
    /// Response time (virtual seconds).
    pub seconds: f64,
    /// Output cardinality.
    pub tuples: u64,
}

/// Runner over two loaded relations (`A` with `n` tuples, `Bprime` with
/// `n/10`).
pub struct WisconsinBenchmark {
    machine: Machine,
    a: RelationId,
    bprime: RelationId,
    n: u32,
}

impl WisconsinBenchmark {
    /// Generate and load the benchmark database at `n` tuples (the paper
    /// used 100,000; the classic benchmark used 10,000).
    pub fn new(machine: Machine, n: u32, seed: u64) -> Self {
        let mut machine = machine;
        let gen = WisconsinGen::new(seed);
        let a_rows = gen.relation(n as usize, 0);
        let b_rows = gen.sample(&a_rows, n as usize / 10, 1);
        let a = load_hashed(&mut machine, "A", &a_rows, "unique1");
        let bprime = load_hashed(&mut machine, "Bprime", &b_rows, "unique1");
        WisconsinBenchmark {
            machine,
            a,
            bprime,
            n,
        }
    }

    /// Borrow the machine (inspection between queries).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    fn attr(&self, name: &str) -> gamma_core::Attr {
        WisconsinGen::schema().int_attr(name)
    }

    fn pred(&self, name: &str, lo: u32, hi: u32) -> RangePred {
        RangePred {
            attr: self.attr(name),
            lo,
            hi,
        }
    }

    /// Sequential selection at `pct` percent selectivity on `unique1`.
    pub fn selection(&mut self, pct: u32) -> QueryResult {
        let hi = self.n / 100 * pct;
        let pred = self.pred("unique1", 0, hi.saturating_sub(1));
        let (out, rep) = operators::select(&mut self.machine, self.a, pred, "sel");
        let r = QueryResult {
            name: format!("select {pct}% (sequential)"),
            seconds: rep.response.as_secs(),
            tuples: rep.tuples_out,
        };
        self.machine.drop_relation(out);
        r
    }

    /// Indexed selection at `pct` percent selectivity (builds the index
    /// first; only the selection is timed, as in the benchmark).
    pub fn selection_indexed(&mut self, pct: u32) -> QueryResult {
        let attr = self.attr("unique1");
        let (index, _build) = operators::build_index(&mut self.machine, self.a, attr);
        let hi = self.n / 100 * pct;
        let pred = self.pred("unique1", 0, hi.saturating_sub(1));
        self.machine.clear_pools();
        let (out, rep) = operators::select_indexed(&mut self.machine, &index, pred, "isel");
        let r = QueryResult {
            name: format!("select {pct}% (indexed)"),
            seconds: rep.response.as_secs(),
            tuples: rep.tuples_out,
        };
        self.machine.drop_relation(out);
        r
    }

    /// 1 % projection (project to the 1 %-cardinality attribute and keep
    /// duplicates; the classic benchmark measured duplicate-preserving
    /// projection cost).
    pub fn projection(&mut self) -> QueryResult {
        let (out, rep) = operators::project(&mut self.machine, self.a, &["onePercent"], "proj");
        let r = QueryResult {
            name: "project onePercent".into(),
            seconds: rep.response.as_secs(),
            tuples: rep.tuples_out,
        };
        self.machine.drop_relation(out);
        r
    }

    /// Scalar MIN over `unique1`.
    pub fn min_scalar(&mut self) -> QueryResult {
        let attr = self.attr("unique1");
        let (v, rep) =
            operators::aggregate_scalar(&mut self.machine, self.a, attr, AggFn::Min, None);
        assert_eq!(v, 0, "unique1 is a permutation of 0..n");
        QueryResult {
            name: "MIN(unique1) scalar".into(),
            seconds: rep.response.as_secs(),
            tuples: 1,
        }
    }

    /// MIN with 100 partitions (group by `onePercent`).
    pub fn min_grouped(&mut self) -> QueryResult {
        let group = self.attr("onePercent");
        let attr = self.attr("unique1");
        let agg_nodes = if self.machine.diskless_nodes().is_empty() {
            self.machine.disk_nodes()
        } else {
            self.machine.diskless_nodes()
        };
        let (out, rep) = operators::aggregate_group(
            &mut self.machine,
            self.a,
            group,
            attr,
            AggFn::Min,
            agg_nodes,
            "mins",
        );
        let r = QueryResult {
            name: "MIN(unique1) 100 partitions".into(),
            seconds: rep.response.as_secs(),
            tuples: rep.tuples_out,
        };
        self.machine.drop_relation(out);
        r
    }

    /// `joinABprime` with the given algorithm at a memory ratio.
    pub fn join_abprime(&mut self, algorithm: Algorithm, ratio: f64) -> QueryResult {
        let inner_bytes = self.machine.relation(self.bprime).data_bytes;
        let memory = ((inner_bytes as f64) * ratio).ceil() as u64;
        let spec = join_abprime(algorithm, self.bprime, self.a, "unique1", "unique1", memory);
        let report = run_join(&mut self.machine, &spec);
        QueryResult {
            name: format!("joinABprime ({}, ratio {ratio})", algorithm.name()),
            seconds: report.seconds(),
            tuples: report.result_tuples,
        }
    }

    /// Delete 1 % of A by key range.
    pub fn delete_one_percent(&mut self) -> QueryResult {
        let pred = self.pred("unique1", 0, self.n / 100 - 1);
        let (deleted, rep) = operators::delete_where(&mut self.machine, self.a, pred);
        QueryResult {
            name: "delete 1%".into(),
            seconds: rep.response.as_secs(),
            tuples: deleted,
        }
    }

    /// Modify the `normal` attribute of 1 % of A.
    pub fn modify_one_percent(&mut self) -> QueryResult {
        let pred = self.pred("unique1", self.n / 2, self.n / 2 + self.n / 100 - 1);
        let attr = self.attr("normal");
        let (touched, rep) = operators::update_where(&mut self.machine, self.a, pred, attr, 1);
        QueryResult {
            name: "modify 1%".into(),
            seconds: rep.response.as_secs(),
            tuples: touched,
        }
    }

    /// Run the whole suite in the classic order.
    pub fn run_all(&mut self) -> Vec<QueryResult> {
        vec![
            self.selection(1),
            self.selection(10),
            self.selection_indexed(1),
            self.selection_indexed(10),
            self.projection(),
            self.min_scalar(),
            self.min_grouped(),
            self.join_abprime(Algorithm::HybridHash, 1.0),
            self.join_abprime(Algorithm::HybridHash, 0.25),
            self.join_abprime(Algorithm::SortMerge, 1.0),
            self.delete_one_percent(),
            self.modify_one_percent(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamma_core::MachineConfig;

    fn bench() -> WisconsinBenchmark {
        WisconsinBenchmark::new(Machine::new(MachineConfig::local_8()), 2_000, 1989)
    }

    #[test]
    fn selections_have_exact_selectivity() {
        let mut b = bench();
        assert_eq!(b.selection(1).tuples, 20);
        assert_eq!(b.selection(10).tuples, 200);
        assert_eq!(b.selection_indexed(1).tuples, 20);
    }

    #[test]
    fn indexed_selection_is_faster_at_low_selectivity() {
        let mut b = WisconsinBenchmark::new(Machine::new(MachineConfig::local_8()), 10_000, 7);
        // 1% on a clustered-ish key: index touches far fewer pages... the
        // relation is hash-declustered so matching tuples cluster in key
        // order within pages only partially; still the index must not be
        // slower by more than the scan.
        let seq = b.selection(1);
        let idx = b.selection_indexed(1);
        assert!(
            idx.seconds < seq.seconds,
            "indexed {} !< sequential {}",
            idx.seconds,
            seq.seconds
        );
    }

    #[test]
    fn aggregates_and_projection() {
        let mut b = bench();
        assert_eq!(b.projection().tuples, 2_000);
        assert_eq!(b.min_scalar().tuples, 1);
        assert_eq!(b.min_grouped().tuples, 100, "onePercent has 100 groups");
    }

    #[test]
    fn joins_validate() {
        let mut b = bench();
        assert_eq!(b.join_abprime(Algorithm::HybridHash, 1.0).tuples, 200);
        assert_eq!(b.join_abprime(Algorithm::SortMerge, 0.5).tuples, 200);
    }

    #[test]
    fn update_family() {
        let mut b = bench();
        assert_eq!(b.delete_one_percent().tuples, 20);
        assert_eq!(b.machine().relation(b.a).tuples, 1_980);
        assert_eq!(b.modify_one_percent().tuples, 20);
    }

    #[test]
    fn full_suite_runs() {
        let mut b = bench();
        let results = b.run_all();
        assert_eq!(results.len(), 12);
        for r in &results {
            assert!(r.seconds >= 0.0, "{}", r.name);
        }
    }
}
