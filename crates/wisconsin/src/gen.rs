//! Wisconsin relation generation.
//!
//! Each tuple is 208 bytes: thirteen 4-byte integers followed by three
//! 52-byte strings. `unique1` and `unique2` are independent random
//! permutations of `0..n` (so joins on either are one-to-one); `normal` is
//! the §4.4 skewed attribute, drawn from N(50,000, 750) clamped to the
//! benchmark domain `0..=99,999` (the paper reports 12,500 tuples falling
//! within 50,000..50,243 and a maximum of 77 duplicates of one value —
//! both reproduced by construction here, see the tests).

use gamma_core::tuple::Field;
use gamma_core::{Attr, Schema, TupleBatch};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// Integer attribute names, in layout order.
pub const INT_ATTRS: [&str; 13] = [
    "unique1",
    "unique2",
    "two",
    "four",
    "ten",
    "twenty",
    "onePercent",
    "tenPercent",
    "twentyPercent",
    "fiftyPercent",
    "normal",
    "evenOnePercent",
    "oddOnePercent",
];

/// A generated row (pre-serialization).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WisconsinRow {
    /// The thirteen integer attributes, ordered per [`INT_ATTRS`].
    pub ints: [u32; 13],
}

impl WisconsinRow {
    /// Serialize to the 208-byte layout.
    pub fn to_bytes(&self, schema: &Schema) -> Vec<u8> {
        let mut t = Vec::new();
        self.write_bytes(schema, &mut t);
        t
    }

    /// Serialize into a reusable buffer (cleared first), so bulk loading
    /// pays one allocation per relation rather than one per row.
    pub fn write_bytes(&self, schema: &Schema, out: &mut Vec<u8>) {
        let attrs = resolve_int_attrs(schema);
        self.write_bytes_with(&attrs, schema.tuple_bytes(), out);
    }

    /// [`WisconsinRow::write_bytes`] with the attribute offsets already
    /// resolved — bulk serialization resolves the 13 names once per
    /// relation instead of once per row.
    pub fn write_bytes_with(&self, attrs: &[Attr; 13], tuple_bytes: usize, out: &mut Vec<u8>) {
        out.clear();
        out.resize(tuple_bytes, 0);
        for (attr, v) in attrs.iter().zip(self.ints) {
            attr.put(out, v);
        }
        // The three 52-byte strings are deterministic functions of unique1,
        // per the benchmark ("$xxxx..." cyclic pattern simplified).
        let u1 = self.ints[0];
        for s in 0..3usize {
            let off = 13 * 4 + s * 52;
            let mut c = ((u1 as usize) + s * 7) % 26;
            for b in out[off..off + 52].iter_mut() {
                *b = b'A' + c as u8;
                c += 1;
                if c == 26 {
                    c = 0;
                }
            }
        }
    }

    /// Value of an integer attribute by name.
    pub fn get(&self, name: &str) -> u32 {
        let i = INT_ATTRS
            .iter()
            .position(|n| *n == name)
            .unwrap_or_else(|| panic!("no attribute {name}"));
        self.ints[i]
    }
}

/// Deterministic Wisconsin relation generator.
pub struct WisconsinGen {
    seed: u64,
}

impl WisconsinGen {
    /// Generator with a fixed seed (all experiments use the same data).
    pub fn new(seed: u64) -> Self {
        WisconsinGen { seed }
    }

    /// The 16-attribute, 208-byte schema.
    pub fn schema() -> Schema {
        let mut fields: Vec<Field> = INT_ATTRS
            .iter()
            .map(|n| Field::Int((*n).to_string()))
            .collect();
        fields.push(Field::Str("stringu1".into(), 52));
        fields.push(Field::Str("stringu2".into(), 52));
        fields.push(Field::Str("string4".into(), 52));
        Schema::new(fields)
    }

    /// Resolve an integer attribute on the Wisconsin schema.
    pub fn attr(name: &str) -> Attr {
        Self::schema().int_attr(name)
    }

    /// Generate an `n`-tuple relation. `domain` is the value domain of the
    /// unique attributes (the benchmark uses `0..100,000` regardless of
    /// `n`, so a 10,000-tuple relation still spans the full domain unless
    /// it is derived via [`WisconsinGen::sample`]).
    pub fn relation(&self, n: usize, tag: u64) -> Vec<WisconsinRow> {
        // The paper's skewed attribute: N(50,000, 750) over the 100,000
        // domain. For scaled-down relations the distribution scales with n
        // so skew experiments stay meaningful at test sizes; at n=100,000
        // this is exactly the paper's distribution.
        let sd = (750.0 * n as f64 / 100_000.0).max(1.0);
        self.relation_nu(n, tag, sd)
    }

    /// Generate an `n`-tuple relation with an explicit standard deviation
    /// for the `normal` attribute (Table 3-style nonuniform data at a
    /// chosen sharpness). `relation` delegates here with the benchmark's
    /// scaled default, so both draw the identical rng stream: equal `sd`
    /// produces byte-identical rows.
    pub fn relation_nu(&self, n: usize, tag: u64, sd: f64) -> Vec<WisconsinRow> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ tag.wrapping_mul(0x9E3779B97F4A7C15));
        let mut u1: Vec<u32> = (0..n as u32).collect();
        u1.shuffle(&mut rng);
        let mut u2: Vec<u32> = (0..n as u32).collect();
        u2.shuffle(&mut rng);
        let mean = n as f64 / 2.0;
        let normal = Normal::new(mean, sd.max(f64::MIN_POSITIVE)).expect("valid normal");
        (0..n)
            .map(|i| {
                let a = u1[i];
                let nval = normal.sample(&mut rng).round().clamp(0.0, n as f64 - 1.0) as u32;
                WisconsinRow {
                    ints: [
                        a,
                        u2[i],
                        a % 2,
                        a % 4,
                        a % 10,
                        a % 20,
                        a % 100,
                        a % 10,
                        a % 5,
                        a % 2,
                        nval,
                        (a % 100) * 2,
                        (a % 100) * 2 + 1,
                    ],
                }
            })
            .collect()
    }

    /// Randomly select `k` rows (without replacement) — how the paper built
    /// the 10,000-tuple `Bprime` from the 100,000-tuple relation, so its
    /// `unique1` values are uniform over the full domain and its `normal`
    /// attribute keeps the same skewed distribution.
    pub fn sample(&self, rows: &[WisconsinRow], k: usize, tag: u64) -> Vec<WisconsinRow> {
        assert!(k <= rows.len(), "cannot sample {k} of {}", rows.len());
        let mut rng = StdRng::seed_from_u64(self.seed ^ tag.wrapping_mul(0xA0761D6478BD642F));
        let mut idx: Vec<usize> = (0..rows.len()).collect();
        // Partial Fisher-Yates: first k positions are the sample.
        for i in 0..k {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        idx[..k].iter().map(|&i| rows[i].clone()).collect()
    }
}

/// Resolve the 13 integer attributes of `schema` in layout order.
fn resolve_int_attrs(schema: &Schema) -> [Attr; 13] {
    INT_ATTRS.map(|n| schema.int_attr(n))
}

/// Serialize rows with the standard schema.
pub fn to_tuples(rows: &[WisconsinRow]) -> Vec<Vec<u8>> {
    let schema = WisconsinGen::schema();
    let attrs = resolve_int_attrs(&schema);
    let per = schema.tuple_bytes();
    rows.iter()
        .map(|r| {
            let mut t = Vec::new();
            r.write_bytes_with(&attrs, per, &mut t);
            t
        })
        .collect()
}

/// Serialize rows into one arena-backed batch: a single data buffer for
/// the whole relation instead of one `Vec<u8>` per row.
pub fn to_tuple_batch(rows: &[WisconsinRow]) -> TupleBatch {
    let schema = WisconsinGen::schema();
    let attrs = resolve_int_attrs(&schema);
    let per = schema.tuple_bytes();
    let mut batch = TupleBatch::with_capacity(rows.len(), per);
    let mut buf = Vec::with_capacity(per);
    for r in rows {
        r.write_bytes_with(&attrs, per, &mut buf);
        batch.push(&buf);
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn tuple_is_208_bytes() {
        let s = WisconsinGen::schema();
        assert_eq!(s.tuple_bytes(), 208, "13*4 + 3*52");
    }

    #[test]
    fn unique_attrs_are_permutations() {
        let g = WisconsinGen::new(42);
        let rows = g.relation(5_000, 0);
        let mut u1: Vec<u32> = rows.iter().map(|r| r.get("unique1")).collect();
        u1.sort_unstable();
        assert_eq!(u1, (0..5_000).collect::<Vec<_>>());
        let mut u2: Vec<u32> = rows.iter().map(|r| r.get("unique2")).collect();
        u2.sort_unstable();
        assert_eq!(u2, (0..5_000).collect::<Vec<_>>());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = WisconsinGen::new(7).relation(100, 3);
        let b = WisconsinGen::new(7).relation(100, 3);
        assert_eq!(a, b);
        let c = WisconsinGen::new(8).relation(100, 3);
        assert_ne!(a, c);
    }

    #[test]
    fn normal_attribute_matches_paper_statistics() {
        // "12,500 tuples had join attribute values in the range of 50,000
        //  to 50,243. However, no single attribute value occurred in more
        //  than 77 tuples." (for the 100,000 tuple relation)
        let g = WisconsinGen::new(1989);
        let rows = g.relation(100_000, 0);
        let dense = rows
            .iter()
            .filter(|r| (50_000..=50_243).contains(&r.get("normal")))
            .count();
        assert!(
            (11_000..14_000).contains(&dense),
            "dense range holds {dense}, paper saw 12,500"
        );
        let mut freq: HashMap<u32, u32> = HashMap::new();
        for r in &rows {
            *freq.entry(r.get("normal")).or_default() += 1;
        }
        let max_dup = freq.values().copied().max().unwrap();
        assert!(
            (40..120).contains(&max_dup),
            "max duplicate count {max_dup}, paper saw 77"
        );
    }

    #[test]
    fn relation_nu_with_default_sd_matches_relation() {
        let g = WisconsinGen::new(1989);
        let n = 4_000;
        let sd = (750.0 * n as f64 / 100_000.0).max(1.0);
        assert_eq!(g.relation(n, 2), g.relation_nu(n, 2, sd));
    }

    #[test]
    fn sharper_nu_concentrates_more_duplicates() {
        // Table 3-style knob: a smaller standard deviation packs the
        // `normal` attribute into fewer distinct values, raising the
        // worst-case duplicate count the skew experiments lean on.
        let g = WisconsinGen::new(1989);
        let n = 4_000;
        let max_dup = |rows: &[WisconsinRow]| {
            let mut freq: HashMap<u32, u32> = HashMap::new();
            for r in rows {
                *freq.entry(r.get("normal")).or_default() += 1;
            }
            freq.values().copied().max().unwrap()
        };
        let default_sd = (750.0 * n as f64 / 100_000.0).max(1.0);
        let broad = max_dup(&g.relation_nu(n, 0, default_sd));
        let sharp = max_dup(&g.relation_nu(n, 0, n as f64 / 500.0));
        // n/500 = 8 << default 30: the sharp distribution must be visibly
        // more concentrated.
        assert!(
            sharp > broad,
            "sharp sd should concentrate duplicates ({sharp} vs {broad})"
        );
    }

    #[test]
    fn sample_preserves_rows_and_size() {
        let g = WisconsinGen::new(5);
        let rows = g.relation(1_000, 0);
        let s = g.sample(&rows, 100, 1);
        assert_eq!(s.len(), 100);
        for r in &s {
            assert!(rows.contains(r));
        }
        // Distinct unique1 values (no replacement).
        let mut u: Vec<u32> = s.iter().map(|r| r.get("unique1")).collect();
        u.sort_unstable();
        u.dedup();
        assert_eq!(u.len(), 100);
    }

    #[test]
    fn derived_attributes_consistent() {
        let g = WisconsinGen::new(5);
        for r in g.relation(500, 0) {
            let a = r.get("unique1");
            assert_eq!(r.get("two"), a % 2);
            assert_eq!(r.get("twenty"), a % 20);
        }
    }

    #[test]
    fn serialization_roundtrips_ints() {
        let g = WisconsinGen::new(5);
        let schema = WisconsinGen::schema();
        let rows = g.relation(50, 0);
        for r in &rows {
            let bytes = r.to_bytes(&schema);
            assert_eq!(bytes.len(), 208);
            for name in INT_ATTRS {
                assert_eq!(schema.int_attr(name).get(&bytes), r.get(name));
            }
        }
    }
}
