//! Reference join oracle.
//!
//! A plain single-threaded hash join over the generated rows, producing the
//! result cardinality and the same order-independent multiset checksum the
//! engine's [`gamma_core::machine::ResultSink`] computes. Every integration
//! test and every harness run validates the parallel algorithms against
//! this.

use std::collections::HashMap;

use gamma_core::machine::multiset_checksum;
use gamma_core::tuple::compose;

use crate::gen::{WisconsinGen, WisconsinRow};

/// Expected join result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleExpect {
    /// Result cardinality.
    pub tuples: u64,
    /// Multiset checksum of the composed `inner ‖ outer` result tuples.
    pub checksum: u64,
}

/// Join `inner` and `outer` on the named attributes, applying optional
/// range selections `[lo, hi]` first (mirroring the engine's predicates).
pub fn oracle_join(
    inner: &[WisconsinRow],
    outer: &[WisconsinRow],
    inner_attr: &str,
    outer_attr: &str,
    inner_sel: Option<(u32, u32)>,
    outer_sel: Option<(u32, u32)>,
) -> OracleExpect {
    let schema = WisconsinGen::schema();
    let keep = |r: &WisconsinRow, attr: &str, sel: Option<(u32, u32)>| {
        sel.is_none_or(|(lo, hi)| {
            let v = r.get(attr);
            lo <= v && v <= hi
        })
    };
    let mut table: HashMap<u32, Vec<Vec<u8>>> = HashMap::new();
    for r in inner {
        if keep(r, inner_attr, inner_sel) {
            table
                .entry(r.get(inner_attr))
                .or_default()
                .push(r.to_bytes(&schema));
        }
    }
    let mut tuples = 0u64;
    let mut checksum = 0u64;
    for s in outer {
        if !keep(s, outer_attr, outer_sel) {
            continue;
        }
        if let Some(matches) = table.get(&s.get(outer_attr)) {
            let s_bytes = s.to_bytes(&schema);
            for m in matches {
                tuples += 1;
                checksum = multiset_checksum(checksum, &compose(m, &s_bytes));
            }
        }
    }
    OracleExpect { tuples, checksum }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_to_one_join_on_unique_attrs() {
        let g = WisconsinGen::new(11);
        let a = g.relation(1_000, 0);
        let bprime = g.sample(&a, 100, 1);
        let e = oracle_join(&bprime, &a, "unique1", "unique1", None, None);
        assert_eq!(
            e.tuples, 100,
            "each Bprime tuple matches exactly one A tuple"
        );
    }

    #[test]
    fn selection_limits_matches() {
        let g = WisconsinGen::new(11);
        let a = g.relation(1_000, 0);
        let e = oracle_join(&a, &a, "unique1", "unique1", Some((0, 99)), None);
        assert_eq!(e.tuples, 100);
    }

    #[test]
    fn nn_join_explodes() {
        // Both sides on the skewed attribute: result much larger than
        // either input (the paper's NN case produced 368,474 tuples from
        // 10K x 100K).
        let g = WisconsinGen::new(11);
        let a = g.relation(10_000, 0);
        let b = g.sample(&a, 1_000, 1);
        let e = oracle_join(&b, &a, "normal", "normal", None, None);
        assert!(
            e.tuples > 3_000,
            "skew-skew join should fan out, got {}",
            e.tuples
        );
    }

    #[test]
    fn checksum_detects_differences() {
        let g = WisconsinGen::new(11);
        let a = g.relation(200, 0);
        let b1 = g.sample(&a, 50, 1);
        let b2 = g.sample(&a, 50, 2);
        let e1 = oracle_join(&b1, &a, "unique1", "unique1", None, None);
        let e2 = oracle_join(&b2, &a, "unique1", "unique1", None, None);
        assert_eq!(e1.tuples, e2.tuples, "both 1:1");
        assert_ne!(
            e1.checksum, e2.checksum,
            "different samples give different result contents"
        );
    }
}
