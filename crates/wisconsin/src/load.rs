//! Loading Wisconsin relations into a machine.

use gamma_core::machine::Declustering;
use gamma_core::{Machine, RelationId};

use crate::gen::{to_tuple_batch, WisconsinGen, WisconsinRow};

/// Load hashed on an attribute (the paper's default is `unique1`).
pub fn load_hashed(
    machine: &mut Machine,
    name: &str,
    rows: &[WisconsinRow],
    attr_name: &str,
) -> RelationId {
    let schema = WisconsinGen::schema();
    let attr = schema.int_attr(attr_name);
    machine.load_relation(
        name,
        schema,
        Declustering::Hashed { attr },
        &to_tuple_batch(rows),
    )
}

/// Load round-robin.
pub fn load_round_robin(machine: &mut Machine, name: &str, rows: &[WisconsinRow]) -> RelationId {
    let schema = WisconsinGen::schema();
    machine.load_relation(
        name,
        schema,
        Declustering::RoundRobin,
        &to_tuple_batch(rows),
    )
}

/// Equal-depth range cuts for `attr` over `rows`: `D-1` ascending cut
/// points placing the same number of tuples on every disk (the §4.4
/// loading strategy: "we distributed each of the relations on their join
/// attribute by using the range partitioning strategy... resulted in an
/// equal number of tuples on each of the eight disks").
pub fn range_cuts(rows: &[WisconsinRow], attr_name: &str, disks: usize) -> Vec<u32> {
    assert!(disks >= 1 && !rows.is_empty());
    let mut vals: Vec<u32> = rows.iter().map(|r| r.get(attr_name)).collect();
    vals.sort_unstable();
    (1..disks).map(|i| vals[i * vals.len() / disks]).collect()
}

/// Load range-partitioned on an attribute with equal-depth cuts.
pub fn load_range(
    machine: &mut Machine,
    name: &str,
    rows: &[WisconsinRow],
    attr_name: &str,
) -> RelationId {
    let schema = WisconsinGen::schema();
    let attr = schema.int_attr(attr_name);
    let cuts = range_cuts(rows, attr_name, machine.cfg.disk_nodes);
    machine.load_relation(
        name,
        schema,
        Declustering::Range { attr, cuts },
        &to_tuple_batch(rows),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamma_core::MachineConfig;

    #[test]
    fn range_load_balances_skewed_attribute() {
        let g = WisconsinGen::new(3);
        let rows = g.relation(8_000, 0);
        let mut m = Machine::new(MachineConfig::local_8());
        let id = load_range(&mut m, "a", &rows, "normal");
        let rel = m.relation(id);
        for n in 0..8 {
            let cnt = m.nodes[n].vol().file_records(rel.fragments[n]);
            assert!(
                (900..=1100).contains(&cnt),
                "node {n} holds {cnt} of 8000 — range cuts failed to balance"
            );
        }
    }

    #[test]
    fn hashed_load_roughly_balances() {
        let g = WisconsinGen::new(3);
        let rows = g.relation(8_000, 0);
        let mut m = Machine::new(MachineConfig::local_8());
        let id = load_hashed(&mut m, "a", &rows, "unique1");
        let rel = m.relation(id);
        for n in 0..8 {
            let cnt = m.nodes[n].vol().file_records(rel.fragments[n]);
            assert!((800..=1200).contains(&cnt), "node {n}: {cnt}");
        }
        assert_eq!(rel.data_bytes, 8_000 * 208);
    }

    #[test]
    fn cuts_are_ascending() {
        let g = WisconsinGen::new(3);
        let rows = g.relation(1_000, 0);
        let cuts = range_cuts(&rows, "unique1", 8);
        assert_eq!(cuts.len(), 7);
        for w in cuts.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
