//! # gamma-wisconsin — the benchmark workload
//!
//! Generates the Wisconsin benchmark relations the paper evaluates with
//! (\[BITT83\] as scaled up by the Gamma project): 208-byte tuples of
//! thirteen 4-byte integers and three 52-byte strings, including the
//! normally distributed attribute (mean 50,000, σ 750) used by the §4.4
//! skew experiments. Also provides:
//!
//! * loaders for the three declustering strategies (hashed on `unique1` is
//!   the paper's default; range partitioning on the join attribute is used
//!   for the skew experiments to keep scans balanced),
//! * the benchmark join queries (`joinABprime`, `joinAselB`,
//!   `joinCselAselB`) as [`gamma_core::JoinSpec`] builders,
//! * a reference **oracle join** that computes the expected result
//!   cardinality and multiset checksum, against which every engine run is
//!   validated,
//! * the **full benchmark suite** \[BITT83\] (selections, projections,
//!   aggregates, joins, updates) as a runnable kit.

pub mod benchmark;
pub mod gen;
pub mod load;
pub mod oracle;
pub mod queries;

pub use benchmark::{QueryResult, WisconsinBenchmark};
pub use gen::{WisconsinGen, WisconsinRow};
pub use load::{load_hashed, load_range, load_round_robin, range_cuts};
pub use oracle::{oracle_join, OracleExpect};
pub use queries::{join_abprime, join_asel_b, join_csel_asel_b};
