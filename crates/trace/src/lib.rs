//! # gamma-trace — deterministic structured event tracing
//!
//! A zero-cost-when-disabled event recorder for the Gamma simulator.
//! Operators, the interconnect fabric, the buffer pool, and the DES
//! kernel emit typed [`EventKind`]s into a thread-local [`TraceSink`].
//! Because the simulator itself is single-threaded and deterministic,
//! the recorded stream — and every exported artifact — is byte-identical
//! across runs, making traces usable as golden regression files.
//!
//! ## Recording model
//!
//! The simulator executes *work first, time later*: operators run over
//! real tuples while charging per-node [`Usage`] ledgers, and absolute
//! times only exist once `replay_phases` schedules the sealed phases on
//! the virtual clock. The sink mirrors that two-step structure:
//!
//! 1. During operator execution, emitters call [`emit`] with the node id
//!    and the node's *demand offset* (its `Usage::total_demand()` in µs
//!    at the moment of the event). Events accumulate as pending.
//! 2. When a driver seals a phase (`PhaseRecord::new`), it calls
//!    [`seal_phase`] with the phase name and per-node resource splits;
//!    pending events are attached to that phase.
//! 3. When `replay_phases` assigns the phase an absolute start and
//!    duration, it calls [`phase_replayed`]. Export then maps each
//!    event's demand offset into absolute µs by scaling with the node's
//!    busy/demand ratio (resources overlap, so busy ≤ demand).
//!
//! All arithmetic is integer (u64/u128); no floats touch timestamps.
//!
//! [`Usage`]: https://example.invalid/gamma-des — see `crates/des/src/ledger.rs`

use std::cell::RefCell;
use std::collections::VecDeque;

pub mod perfetto;
pub mod summary;

/// Default ring capacity: enough for every event of a paper-scale join
/// while bounding memory for adversarial workloads.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 20;

/// A typed trace event. Numeric payloads are kept small and fixed-width
/// so the ring buffer stays compact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A page read charged to the buffer pool (file id, page no).
    DiskRead { file: u32, page: u32 },
    /// A page write charged to the buffer pool (file id, page no).
    DiskWrite { file: u32, page: u32 },
    /// A network packet placed on the ring toward `dst`.
    PacketSend { dst: u16, bytes: u32 },
    /// A network packet delivered from `src`.
    PacketRecv { src: u16, bytes: u32 },
    /// A message short-circuited because src == dst (never hits the ring).
    ShortCircuit { bytes: u32 },
    /// A control message hop (scheduler/operator coordination).
    Control { dst: u16, bytes: u32 },
    /// A tuple inserted into an in-memory hash table.
    HashInsert,
    /// A probe against an in-memory hash table.
    HashProbe { matched: bool },
    /// A hash-bucket (partition) became the active in-memory bucket.
    BucketOpen { bucket: u16 },
    /// The active bucket was sealed (built + probed or flushed).
    BucketClose { bucket: u16 },
    /// A bucket overflowed memory and spilled to disk.
    BucketSpill { bucket: u16 },
    /// An operator-level span opened (name is a static label).
    SpanBegin { name: &'static str },
    /// The most recent operator span on this node closed.
    SpanEnd { name: &'static str },
    /// A DES kernel event fired during replay (absolute time, not offset).
    SimStep,
}

impl EventKind {
    /// Short stable label used by exporters.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::DiskRead { .. } => "disk_read",
            EventKind::DiskWrite { .. } => "disk_write",
            EventKind::PacketSend { .. } => "packet_send",
            EventKind::PacketRecv { .. } => "packet_recv",
            EventKind::ShortCircuit { .. } => "short_circuit",
            EventKind::Control { .. } => "control",
            EventKind::HashInsert => "hash_insert",
            EventKind::HashProbe { .. } => "hash_probe",
            EventKind::BucketOpen { .. } => "bucket_open",
            EventKind::BucketClose { .. } => "bucket_close",
            EventKind::BucketSpill { .. } => "bucket_spill",
            EventKind::SpanBegin { .. } => "span_begin",
            EventKind::SpanEnd { .. } => "span_end",
            EventKind::SimStep => "sim_step",
        }
    }
}

/// One recorded event: where it happened and how far into the node's
/// demand it fell. `phase` is assigned at seal time (`u32::MAX` while
/// pending; [`SCHEDULER_PHASE`] for DES kernel events, whose
/// `offset_us` is already absolute).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    pub node: u16,
    pub phase: u32,
    /// Query the event belongs to (0 for single-query runs — the sink's
    /// default — so solo traces are byte-identical to pre-scheduler ones).
    pub query: u32,
    pub offset_us: u64,
    pub kind: EventKind,
}

/// Phase index marking DES kernel events (absolute timestamps).
pub const SCHEDULER_PHASE: u32 = u32::MAX - 1;
const PENDING_PHASE: u32 = u32::MAX;

/// Per-node resource split for one sealed phase, in simulated µs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeUsage {
    /// Query this usage belongs to (0 = single-query run; nonzero ids let
    /// the Perfetto export put interleaved queries on their own tracks).
    pub query_id: u32,
    pub cpu_us: u64,
    pub disk_us: u64,
    pub net_us: u64,
    /// Time disk requests spent queued at this node's arm (zero when the
    /// engine ran under the legacy flat-`max` model).
    pub disk_wait_us: u64,
    /// Time NI requests spent queued at this node's interface.
    pub net_wait_us: u64,
    /// When the disk finished its last request, phase-relative (zero when
    /// unknown; never below `disk_us` once set).
    pub disk_done_us: u64,
    /// When the NI finished its last request, phase-relative.
    pub net_done_us: u64,
}

impl NodeUsage {
    /// Busy time: the max of the three resources, with each device's
    /// *queued* completion (when known) substituted for its bare service
    /// total.
    pub fn busy_us(&self) -> u64 {
        self.cpu_us
            .max(self.disk_us.max(self.disk_done_us))
            .max(self.net_us.max(self.net_done_us))
    }

    /// Total demand: the sum of the three resources.
    pub fn demand_us(&self) -> u64 {
        self.cpu_us + self.disk_us + self.net_us
    }

    /// The resource that dominates this node's busy time.
    pub fn dominant(&self) -> &'static str {
        if self.cpu_us >= self.disk_us && self.cpu_us >= self.net_us {
            "cpu"
        } else if self.disk_us >= self.net_us {
            "disk"
        } else {
            "net"
        }
    }
}

/// A sealed phase: name, per-node usage, and (after replay) its
/// absolute placement on the virtual clock.
#[derive(Debug, Clone)]
pub struct Phase {
    pub name: String,
    pub per_node: Vec<NodeUsage>,
    /// Absolute start in µs; `None` until `phase_replayed`.
    pub start_us: Option<u64>,
    /// Wall duration in µs (max node busy, ring-bandwidth bounded).
    pub dur_us: Option<u64>,
}

impl Phase {
    /// The node whose busy time sets this phase's duration.
    pub fn critical_node(&self) -> Option<usize> {
        self.per_node
            .iter()
            .enumerate()
            .max_by_key(|(i, u)| (u.busy_us(), usize::MAX - i))
            .map(|(i, _)| i)
    }
}

/// Monotonic totals for every event class, counted even when the ring
/// evicts — these reconcile against the `Counts` ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventTotals {
    pub disk_reads: u64,
    pub disk_writes: u64,
    pub packets_sent: u64,
    pub packets_recv: u64,
    pub short_circuits: u64,
    pub control_msgs: u64,
    pub hash_inserts: u64,
    pub hash_probes: u64,
    pub bucket_opens: u64,
    pub bucket_closes: u64,
    pub bucket_spills: u64,
    pub spans: u64,
    pub sim_steps: u64,
}

impl EventTotals {
    fn record(&mut self, kind: &EventKind) {
        match kind {
            EventKind::DiskRead { .. } => self.disk_reads += 1,
            EventKind::DiskWrite { .. } => self.disk_writes += 1,
            EventKind::PacketSend { .. } => self.packets_sent += 1,
            EventKind::PacketRecv { .. } => self.packets_recv += 1,
            EventKind::ShortCircuit { .. } => self.short_circuits += 1,
            EventKind::Control { .. } => self.control_msgs += 1,
            EventKind::HashInsert => self.hash_inserts += 1,
            EventKind::HashProbe { .. } => self.hash_probes += 1,
            EventKind::BucketOpen { .. } => self.bucket_opens += 1,
            EventKind::BucketClose { .. } => self.bucket_closes += 1,
            EventKind::BucketSpill { .. } => self.bucket_spills += 1,
            EventKind::SpanBegin { .. } => self.spans += 1,
            EventKind::SpanEnd { .. } => {}
            EventKind::SimStep => self.sim_steps += 1,
        }
    }
}

/// Ring-buffered deterministic event recorder.
#[derive(Debug)]
pub struct TraceSink {
    ring: VecDeque<Event>,
    capacity: usize,
    /// Events evicted from the ring (totals still count them).
    pub dropped: u64,
    pub totals: EventTotals,
    pub phases: Vec<Phase>,
    /// Next phase index awaiting `phase_replayed_next`.
    replay_cursor: usize,
    /// Query id stamped onto every emitted event (0 = single-query run;
    /// the scheduler sets it around each query's execution).
    current_query: u32,
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new(DEFAULT_RING_CAPACITY)
    }
}

impl TraceSink {
    /// A sink whose ring holds at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        TraceSink {
            ring: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
            totals: EventTotals::default(),
            phases: Vec::new(),
            replay_cursor: 0,
            current_query: 0,
        }
    }

    /// Stamp subsequent events with `query` (0 restores the single-query
    /// default). The scheduler brackets each query's execution with this.
    pub fn set_query(&mut self, query: u32) {
        self.current_query = query;
    }

    /// Query id currently stamped onto emitted events.
    pub fn current_query(&self) -> u32 {
        self.current_query
    }

    /// A sink that never evicts. Used by per-node worker threads, whose
    /// events are re-emitted into the main sink in deterministic node
    /// order at the end of each parallel step — eviction inside a worker
    /// would silently change what the merge sees.
    pub fn unbounded() -> Self {
        Self::new(usize::MAX)
    }

    /// Record one event at the node's current demand offset.
    pub fn emit(&mut self, node: u16, offset_us: u64, kind: EventKind) {
        self.totals.record(&kind);
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(Event {
            node,
            phase: PENDING_PHASE,
            query: self.current_query,
            offset_us,
            kind,
        });
    }

    /// Record a DES kernel step at an absolute simulated time.
    pub fn emit_sim_step(&mut self, at_us: u64) {
        self.totals.record(&EventKind::SimStep);
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(Event {
            node: 0,
            phase: SCHEDULER_PHASE,
            query: self.current_query,
            offset_us: at_us,
            kind: EventKind::SimStep,
        });
    }

    /// Seal all pending events into a new named phase and return its index.
    pub fn seal_phase(&mut self, name: &str, per_node: Vec<NodeUsage>) -> u32 {
        let idx = self.phases.len() as u32;
        for ev in self.ring.iter_mut() {
            if ev.phase == PENDING_PHASE {
                ev.phase = idx;
            }
        }
        self.phases.push(Phase {
            name: name.to_string(),
            per_node,
            start_us: None,
            dur_us: None,
        });
        idx
    }

    /// Record the absolute placement `replay_phases` computed for a phase.
    /// Phases are replayed in seal order, so `idx` counts up from 0.
    pub fn phase_replayed(&mut self, idx: usize, start_us: u64, dur_us: u64) {
        if let Some(ph) = self.phases.get_mut(idx) {
            ph.start_us = Some(start_us);
            ph.dur_us = Some(dur_us);
        }
        self.replay_cursor = self.replay_cursor.max(idx + 1);
    }

    /// Record placement for the next not-yet-replayed phase. The replay
    /// walks phases in seal order, so a cursor keeps the attribution
    /// correct even when several joins share one sink.
    pub fn phase_replayed_next(&mut self, start_us: u64, dur_us: u64) {
        let idx = self.replay_cursor;
        self.phase_replayed(idx, start_us, dur_us);
    }

    /// Events still in the ring, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.ring.iter()
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Absolute timestamp for an event, once its phase has been replayed.
    ///
    /// The event's demand offset (µs of `total_demand` accumulated on its
    /// node when it fired) is clamped to the phase window by scaling with
    /// the node's busy/demand ratio: resources overlap, so a node that
    /// demanded 3s of work across cpu+disk+net may only occupy 1.2s of
    /// wall time. Pure integer math keeps the mapping deterministic.
    pub fn absolute_ts(&self, ev: &Event) -> Option<u64> {
        if ev.phase == SCHEDULER_PHASE {
            return Some(ev.offset_us);
        }
        let ph = self.phases.get(ev.phase as usize)?;
        let start = ph.start_us?;
        let usage = ph.per_node.get(ev.node as usize)?;
        let demand = usage.demand_us();
        if demand == 0 {
            return Some(start);
        }
        let busy = usage.busy_us();
        let scaled = (ev.offset_us.min(demand) as u128 * busy as u128 / demand as u128) as u64;
        Some(start + scaled)
    }

    /// End of the last replayed phase — the simulated response time.
    pub fn response_us(&self) -> u64 {
        self.phases
            .iter()
            .filter_map(|p| Some(p.start_us? + p.dur_us?))
            .max()
            .unwrap_or(0)
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<TraceSink>> = const { RefCell::new(None) };
}

/// Install a sink for the current thread, replacing (and returning) any
/// previous one. The simulator is single-threaded, so thread-local
/// scoping is exactly machine-local scoping.
pub fn install(sink: TraceSink) -> Option<TraceSink> {
    ACTIVE.with(|a| a.borrow_mut().replace(sink))
}

/// Remove and return the current thread's sink.
pub fn take() -> Option<TraceSink> {
    ACTIVE.with(|a| a.borrow_mut().take())
}

/// True when a sink is installed on this thread.
pub fn is_active() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// Run `f` against the installed sink; a no-op when tracing is off.
/// This is the single indirection every instrumentation hook uses, so
/// the disabled-at-runtime cost is one thread-local load and branch.
pub fn with<F: FnOnce(&mut TraceSink)>(f: F) {
    ACTIVE.with(|a| {
        if let Some(sink) = a.borrow_mut().as_mut() {
            f(sink);
        }
    });
}

/// Emit one event against the installed sink; no-op when tracing is off.
pub fn emit(node: u16, offset_us: u64, kind: EventKind) {
    with(|s| s.emit(node, offset_us, kind));
}

/// Stamp subsequent events on the installed sink with `query`; no-op when
/// tracing is off.
pub fn set_query(query: u32) {
    with(|s| s.set_query(query));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage(cpu: u64, disk: u64, net: u64) -> NodeUsage {
        NodeUsage {
            cpu_us: cpu,
            disk_us: disk,
            net_us: net,
            ..Default::default()
        }
    }

    #[test]
    fn ring_evicts_but_totals_count() {
        let mut sink = TraceSink::new(2);
        for _ in 0..5 {
            sink.emit(0, 0, EventKind::HashInsert);
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped, 3);
        assert_eq!(sink.totals.hash_inserts, 5);
    }

    #[test]
    fn seal_assigns_phase_indices() {
        let mut sink = TraceSink::new(16);
        sink.emit(0, 10, EventKind::HashInsert);
        let p0 = sink.seal_phase("build", vec![usage(100, 0, 0)]);
        sink.emit(0, 20, EventKind::HashProbe { matched: true });
        let p1 = sink.seal_phase("probe", vec![usage(50, 0, 0)]);
        let phases: Vec<u32> = sink.events().map(|e| e.phase).collect();
        assert_eq!(phases, vec![p0, p1]);
        assert_eq!(sink.phases.len(), 2);
    }

    #[test]
    fn absolute_ts_scales_offset_by_overlap() {
        let mut sink = TraceSink::new(16);
        // demand = 300 (cpu 100 + disk 200), busy = 200.
        sink.emit(0, 150, EventKind::DiskRead { file: 1, page: 2 });
        sink.seal_phase("scan", vec![usage(100, 200, 0)]);
        sink.phase_replayed(0, 1_000, 200);
        let ev = *sink.events().next().unwrap();
        // 150/300 of demand -> 100/200 of busy -> start + 100.
        assert_eq!(sink.absolute_ts(&ev), Some(1_100));
    }

    #[test]
    fn scheduler_events_are_absolute() {
        let mut sink = TraceSink::new(16);
        sink.emit_sim_step(777);
        let ev = *sink.events().next().unwrap();
        assert_eq!(sink.absolute_ts(&ev), Some(777));
        assert_eq!(sink.totals.sim_steps, 1);
    }

    #[test]
    fn thread_local_install_take() {
        assert!(!is_active());
        install(TraceSink::new(8));
        assert!(is_active());
        emit(3, 42, EventKind::HashInsert);
        let sink = take().unwrap();
        assert_eq!(sink.totals.hash_inserts, 1);
        assert!(!is_active());
    }

    #[test]
    fn events_carry_the_current_query_id() {
        let mut sink = TraceSink::new(16);
        sink.emit(0, 1, EventKind::HashInsert);
        sink.set_query(7);
        sink.emit(0, 2, EventKind::HashInsert);
        sink.emit_sim_step(3);
        sink.set_query(0);
        sink.emit(0, 4, EventKind::HashInsert);
        let queries: Vec<u32> = sink.events().map(|e| e.query).collect();
        assert_eq!(queries, vec![0, 7, 7, 0]);
    }

    #[test]
    fn response_is_last_phase_end() {
        let mut sink = TraceSink::new(4);
        sink.seal_phase("a", vec![usage(10, 0, 0)]);
        sink.seal_phase("b", vec![usage(10, 0, 0)]);
        sink.phase_replayed(0, 0, 400);
        sink.phase_replayed(1, 400, 250);
        assert_eq!(sink.response_us(), 650);
    }
}
