//! Chrome trace-event / Perfetto JSON exporter.
//!
//! Emits the classic `{"traceEvents":[...]}` JSON array format, which
//! both `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev)
//! load directly. Layout:
//!
//! - one *process* (`pid`) per simulated node, named `node N`;
//! - a synthetic `scheduler` process for DES kernel steps;
//! - each sealed phase is a `"X"` complete event on every node it ran
//!   on, with per-node `dur` equal to that node's busy time (so skew is
//!   visible as ragged right edges) and resource splits in `args`;
//! - operator spans are `"B"`/`"E"` events nesting inside the phase;
//! - discrete events (page I/O, packets, hash ops, bucket lifecycle)
//!   are `"i"` instant events;
//! - per-node `"C"` counter tracks plot device utilisation and queued
//!   wait depth across phases (stepped: set at phase start, zeroed at
//!   phase end).
//!
//! Output is built with deterministic string formatting only — no
//! floats, no hashing — so identical runs serialize byte-identically.

use crate::{EventKind, TraceSink, SCHEDULER_PHASE};
use std::fmt::Write as _;

/// Synthetic pid for the DES scheduler track. Public so external counter
/// series (e.g. gamma-prof flight-recorder tracks) can pin machine-wide
/// gauges to the scheduler process instead of a node.
pub const SCHEDULER_PID: u32 = 1_000_000;

/// An externally produced counter track to merge into the export.
///
/// Points are `(ts_us, value)` pairs; they are emitted in the order
/// given, so callers should pre-sort by timestamp. Values render as a
/// single `"value"` arg, which Perfetto plots as a stepped counter.
pub struct CounterSeries {
    /// Track name as shown in the UI (e.g. `node0.disk_queue`).
    pub name: String,
    /// Process the track attaches to: a node id, or [`SCHEDULER_PID`]
    /// for machine-wide series.
    pub pid: u32,
    /// `(timestamp_us, value)` samples.
    pub points: Vec<(u64, i64)>,
}

/// Escape a string for inclusion in a JSON string literal.
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_meta(out: &mut String, pid: u32, name: &str) {
    out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":");
    let _ = write!(out, "{pid}");
    out.push_str(",\"tid\":0,\"args\":{\"name\":\"");
    escape(name, out);
    out.push_str("\"}}");
}

fn push_thread_meta(out: &mut String, pid: u32, tid: u32, name: &str) {
    out.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":");
    let _ = write!(out, "{pid},\"tid\":{tid}");
    out.push_str(",\"args\":{\"name\":\"");
    escape(name, out);
    out.push_str("\"}}");
}

/// Append the `args` object for a discrete event.
fn push_args(out: &mut String, kind: &EventKind) {
    match kind {
        EventKind::DiskRead { file, page } | EventKind::DiskWrite { file, page } => {
            let _ = write!(out, "{{\"file\":{file},\"page\":{page}}}");
        }
        EventKind::PacketSend { dst, bytes } | EventKind::Control { dst, bytes } => {
            let _ = write!(out, "{{\"dst\":{dst},\"bytes\":{bytes}}}");
        }
        EventKind::PacketRecv { src, bytes } => {
            let _ = write!(out, "{{\"src\":{src},\"bytes\":{bytes}}}");
        }
        EventKind::ShortCircuit { bytes } => {
            let _ = write!(out, "{{\"bytes\":{bytes}}}");
        }
        EventKind::HashProbe { matched } => {
            let _ = write!(out, "{{\"matched\":{matched}}}");
        }
        EventKind::BucketOpen { bucket }
        | EventKind::BucketClose { bucket }
        | EventKind::BucketSpill { bucket } => {
            let _ = write!(out, "{{\"bucket\":{bucket}}}");
        }
        _ => out.push_str("{}"),
    }
}

/// Render the sink as a Chrome trace-event JSON document.
///
/// Phases must have been replayed (`phase_replayed`) for spans to carry
/// absolute times; un-replayed phases are skipped, and their events with
/// them.
pub fn to_json(sink: &TraceSink) -> String {
    to_json_with_counters(sink, &[])
}

/// Like [`to_json`], but merges externally produced counter tracks (e.g.
/// gamma-prof flight-recorder time series) into the same document. With
/// an empty `extra` slice the output is byte-identical to [`to_json`].
pub fn to_json_with_counters(sink: &TraceSink, extra: &[CounterSeries]) -> String {
    let mut out = String::with_capacity(256 + sink.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
    };

    // Process metadata: one track per node that appears in any phase.
    let nodes = sink
        .phases
        .iter()
        .map(|p| p.per_node.len())
        .max()
        .unwrap_or(0);
    for n in 0..nodes {
        sep(&mut out);
        push_meta(&mut out, n as u32, &format!("node {n}"));
    }
    if sink.totals.sim_steps > 0 || extra.iter().any(|c| c.pid == SCHEDULER_PID) {
        sep(&mut out);
        push_meta(&mut out, SCHEDULER_PID, "scheduler");
    }

    // Interleaved-query runs get one named thread track per (node, query)
    // so concurrent queries are visually distinguishable. Single-query
    // runs (query id 0 everywhere) emit nothing here and keep every span
    // on tid 0 — the export stays byte-identical to pre-scheduler output.
    let mut query_tracks: std::collections::BTreeSet<(u32, u32)> = Default::default();
    for ph in sink.phases.iter() {
        for (n, usage) in ph.per_node.iter().enumerate() {
            if usage.demand_us() > 0 && usage.query_id != 0 {
                query_tracks.insert((n as u32, usage.query_id));
            }
        }
    }
    for ev in sink.events() {
        if ev.query != 0 {
            let pid = if ev.phase == SCHEDULER_PHASE {
                SCHEDULER_PID
            } else {
                ev.node as u32
            };
            query_tracks.insert((pid, ev.query));
        }
    }
    for &(pid, q) in query_tracks.iter() {
        sep(&mut out);
        push_thread_meta(&mut out, pid, q, &format!("query {q}"));
    }

    // Phase spans: one "X" per (phase, node) with dur = node busy time.
    for (idx, ph) in sink.phases.iter().enumerate() {
        let (Some(start), Some(dur)) = (ph.start_us, ph.dur_us) else {
            continue;
        };
        let critical = ph.critical_node();
        for (n, usage) in ph.per_node.iter().enumerate() {
            if usage.demand_us() == 0 {
                continue;
            }
            sep(&mut out);
            out.push_str("{\"name\":\"");
            escape(&ph.name, &mut out);
            let _ = write!(
                out,
                "\",\"ph\":\"X\",\"pid\":{n},\"tid\":{},\"ts\":{start},\"dur\":{}",
                usage.query_id,
                usage.busy_us().min(dur)
            );
            let _ = write!(
                out,
                ",\"args\":{{\"phase_index\":{idx},\"cpu_us\":{},\"disk_us\":{},\"net_us\":{},\"disk_wait_us\":{},\"net_wait_us\":{},\"dominant\":\"{}\",\"critical\":{}}}}}",
                usage.cpu_us,
                usage.disk_us,
                usage.net_us,
                usage.disk_wait_us,
                usage.net_wait_us,
                usage.dominant(),
                critical == Some(n),
            );
        }
    }

    // Counter tracks: per-node device utilisation (% of the phase the
    // device was busy) and queued-wait depth (Little's-law mean queue
    // length in milli-requests, Σ wait / duration) sampled at each phase
    // start, dropped to zero at phase end so idle gaps read as idle.
    // Integer math only — determinism over precision.
    for ph in sink.phases.iter() {
        let (Some(start), Some(dur)) = (ph.start_us, ph.dur_us) else {
            continue;
        };
        if dur == 0 {
            continue;
        }
        for (n, usage) in ph.per_node.iter().enumerate() {
            if usage.demand_us() == 0 {
                continue;
            }
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"utilisation %\",\"ph\":\"C\",\"pid\":{n},\"tid\":0,\"ts\":{start},\"args\":{{\"cpu\":{},\"disk\":{},\"net\":{}}}}}",
                usage.cpu_us * 100 / dur,
                usage.disk_us * 100 / dur,
                usage.net_us * 100 / dur,
            );
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"queue depth (milli)\",\"ph\":\"C\",\"pid\":{n},\"tid\":0,\"ts\":{start},\"args\":{{\"disk\":{},\"net\":{}}}}}",
                usage.disk_wait_us * 1000 / dur,
                usage.net_wait_us * 1000 / dur,
            );
            let end = start + dur;
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"utilisation %\",\"ph\":\"C\",\"pid\":{n},\"tid\":0,\"ts\":{end},\"args\":{{\"cpu\":0,\"disk\":0,\"net\":0}}}}"
            );
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"queue depth (milli)\",\"ph\":\"C\",\"pid\":{n},\"tid\":0,\"ts\":{end},\"args\":{{\"disk\":0,\"net\":0}}}}"
            );
        }
    }

    // Merged external counter tracks, in caller order. Deterministic:
    // integer timestamps and values only, no reordering.
    for series in extra {
        for &(ts, value) in series.points.iter() {
            sep(&mut out);
            out.push_str("{\"name\":\"");
            escape(&series.name, &mut out);
            let _ = write!(
                out,
                "\",\"ph\":\"C\",\"pid\":{},\"tid\":0,\"ts\":{ts},\"args\":{{\"value\":{value}}}}}",
                series.pid
            );
        }
    }

    // Discrete events and operator spans, in recording order.
    for ev in sink.events() {
        let Some(ts) = sink.absolute_ts(ev) else {
            continue;
        };
        let (pid, tid) = if ev.phase == SCHEDULER_PHASE {
            (SCHEDULER_PID, ev.query)
        } else {
            (ev.node as u32, ev.query)
        };
        sep(&mut out);
        match ev.kind {
            EventKind::SpanBegin { name } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{name}\",\"ph\":\"B\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts}}}"
                );
            }
            EventKind::SpanEnd { name } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{name}\",\"ph\":\"E\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts}}}"
                );
            }
            kind => {
                out.push_str("{\"name\":\"");
                out.push_str(kind.label());
                let _ = write!(
                    out,
                    "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"args\":"
                );
                push_args(&mut out, &kind);
                out.push('}');
            }
        }
    }

    out.push_str("\n]}\n");
    out
}

/// Drop-in check that a document at least parses as the expected shape.
/// Used by tests; intentionally shallow (no full JSON parser offline).
pub fn looks_like_trace_json(doc: &str) -> bool {
    let trimmed = doc.trim();
    trimmed.starts_with("{\"displayTimeUnit\"")
        && trimmed.contains("\"traceEvents\":[")
        && trimmed.ends_with("]}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeUsage;

    fn sample_sink() -> TraceSink {
        let mut sink = TraceSink::new(64);
        sink.emit(0, 5, EventKind::DiskRead { file: 1, page: 9 });
        sink.emit(
            1,
            3,
            EventKind::PacketSend {
                dst: 0,
                bytes: 2048,
            },
        );
        sink.seal_phase(
            "build",
            vec![
                NodeUsage {
                    cpu_us: 10,
                    disk_us: 20,
                    net_us: 0,
                    ..Default::default()
                },
                NodeUsage {
                    cpu_us: 8,
                    disk_us: 0,
                    net_us: 4,
                    ..Default::default()
                },
            ],
        );
        sink.phase_replayed(0, 0, 20);
        sink
    }

    #[test]
    fn export_shape() {
        let doc = to_json(&sample_sink());
        assert!(looks_like_trace_json(&doc));
        assert!(doc.contains("\"name\":\"node 0\""));
        assert!(doc.contains("\"name\":\"build\""));
        assert!(doc.contains("\"name\":\"disk_read\""));
        assert!(doc.contains("\"ph\":\"X\""));
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(to_json(&sample_sink()), to_json(&sample_sink()));
    }

    #[test]
    fn counter_tracks_step_and_zero() {
        let doc = to_json(&sample_sink());
        // Node 0: disk 20/20 us busy = 100%, cpu 10/20 = 50%.
        assert!(doc.contains(
            "{\"name\":\"utilisation %\",\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":0,\"args\":{\"cpu\":50,\"disk\":100,\"net\":0}}"
        ));
        assert!(doc.contains("{\"name\":\"queue depth (milli)\",\"ph\":\"C\",\"pid\":0"));
        // Both tracks drop to zero at the phase end (ts = 20).
        assert!(doc.contains(
            "{\"name\":\"utilisation %\",\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":20,\"args\":{\"cpu\":0,\"disk\":0,\"net\":0}}"
        ));
        assert!(doc.contains(
            "{\"name\":\"queue depth (milli)\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":20,\"args\":{\"disk\":0,\"net\":0}}"
        ));
    }

    #[test]
    fn interleaved_queries_get_named_tracks() {
        let mut sink = TraceSink::new(64);
        sink.set_query(1);
        sink.emit(0, 5, EventKind::DiskRead { file: 1, page: 9 });
        sink.seal_phase(
            "q1.build",
            vec![NodeUsage {
                query_id: 1,
                cpu_us: 10,
                ..Default::default()
            }],
        );
        sink.set_query(2);
        sink.emit(0, 3, EventKind::HashInsert);
        sink.seal_phase(
            "q2.build",
            vec![NodeUsage {
                query_id: 2,
                cpu_us: 8,
                ..Default::default()
            }],
        );
        sink.phase_replayed(0, 0, 10);
        sink.phase_replayed(1, 10, 8);
        let doc = to_json(&sink);
        assert!(doc.contains("\"name\":\"query 1\""));
        assert!(doc.contains("\"name\":\"query 2\""));
        assert!(doc.contains("\"ph\":\"X\",\"pid\":0,\"tid\":1"));
        assert!(doc.contains("\"ph\":\"X\",\"pid\":0,\"tid\":2"));
    }

    #[test]
    fn single_query_export_has_no_thread_tracks() {
        let doc = to_json(&sample_sink());
        assert!(!doc.contains("thread_name"));
        assert!(!doc.contains("\"tid\":1"));
    }

    #[test]
    fn merged_counters_render_and_empty_merge_is_identity() {
        let sink = sample_sink();
        assert_eq!(to_json(&sink), to_json_with_counters(&sink, &[]));
        let extra = vec![
            CounterSeries {
                name: "node0.disk_queue".into(),
                pid: 0,
                points: vec![(0, 3), (10, 1), (20, 0)],
            },
            CounterSeries {
                name: "inflight_queries".into(),
                pid: SCHEDULER_PID,
                points: vec![(0, 2), (20, 0)],
            },
        ];
        let doc = to_json_with_counters(&sink, &extra);
        assert!(looks_like_trace_json(&doc));
        assert!(doc.contains(
            "{\"name\":\"node0.disk_queue\",\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":10,\"args\":{\"value\":1}}"
        ));
        assert!(doc.contains(&format!(
            "{{\"name\":\"inflight_queries\",\"ph\":\"C\",\"pid\":{SCHEDULER_PID},\"tid\":0,\"ts\":0,\"args\":{{\"value\":2}}}}"
        )));
        // Machine-wide counters force the scheduler process meta track.
        assert!(doc.contains("\"args\":{\"name\":\"scheduler\"}"));
        assert_eq!(doc, to_json_with_counters(&sample_sink(), &extra));
    }

    #[test]
    fn escape_handles_specials() {
        let mut s = String::new();
        escape("a\"b\\c\nd", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd");
    }
}
