//! Text critical-path summary.
//!
//! Phases in this simulator execute strictly in sequence (`replay_phases`
//! lays them end-to-end on the virtual clock), so the critical path of a
//! join is the chain of per-phase critical nodes: for each phase, the
//! node whose busy time set the phase duration, and within that node the
//! resource (cpu / disk / net) that dominates. The summary names that
//! chain, ranks phases by their share of response time, and reports the
//! event totals so a reader can reconcile the trace against the ledger.

use crate::TraceSink;
use std::fmt::Write as _;

fn pct(part: u64, whole: u64) -> u64 {
    (part * 100).checked_div(whole).unwrap_or(0)
}

/// Render a plain-text critical-path summary of a finished trace.
pub fn critical_path(sink: &TraceSink) -> String {
    let mut out = String::new();
    let response = sink.response_us();
    let _ = writeln!(out, "critical-path summary");
    let _ = writeln!(out, "=====================");
    let _ = writeln!(
        out,
        "response time: {}.{:06} s  ({} phases, {} events recorded, {} evicted)",
        response / 1_000_000,
        response % 1_000_000,
        sink.phases.len(),
        sink.len(),
        sink.dropped,
    );
    out.push('\n');

    // Phase chain in execution order.
    let _ = writeln!(
        out,
        "{:<28} {:>12} {:>12} {:>6} {:>9} {:>5}",
        "phase", "start_us", "dur_us", "node", "dominant", "share"
    );
    for ph in &sink.phases {
        let (Some(start), Some(dur)) = (ph.start_us, ph.dur_us) else {
            let _ = writeln!(out, "{:<28} (not replayed)", ph.name);
            continue;
        };
        let crit = ph.critical_node().unwrap_or(0);
        let dominant = ph.per_node.get(crit).map(|u| u.dominant()).unwrap_or("cpu");
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>12} {:>6} {:>9} {:>4}%",
            ph.name,
            start,
            dur,
            crit,
            dominant,
            pct(dur, response),
        );
    }
    out.push('\n');

    // Where each phase's node-time went: aggregate the per-node resource
    // splits and queued waits, and express each as a share of the phase's
    // total accounted time (service + wait). High wait shares mean the
    // devices, not the CPUs, pace the phase.
    let _ = writeln!(
        out,
        "{:<28} {:>6} {:>6} {:>6} {:>10} {:>9}",
        "phase", "cpu", "disk", "net", "disk-wait", "net-wait"
    );
    for ph in &sink.phases {
        if ph.dur_us.is_none() {
            continue;
        }
        let mut cpu = 0u64;
        let mut disk = 0u64;
        let mut net = 0u64;
        let mut dwait = 0u64;
        let mut nwait = 0u64;
        for u in &ph.per_node {
            cpu += u.cpu_us;
            disk += u.disk_us;
            net += u.net_us;
            dwait += u.disk_wait_us;
            nwait += u.net_wait_us;
        }
        let total = cpu + disk + net + dwait + nwait;
        let _ = writeln!(
            out,
            "{:<28} {:>5}% {:>5}% {:>5}% {:>9}% {:>8}%",
            ph.name,
            pct(cpu, total),
            pct(disk, total),
            pct(net, total),
            pct(dwait, total),
            pct(nwait, total),
        );
    }
    out.push('\n');

    // The slowest link in the chain.
    if let Some(slowest) = sink
        .phases
        .iter()
        .filter(|p| p.dur_us.is_some())
        .max_by_key(|p| p.dur_us.unwrap_or(0))
    {
        let crit = slowest.critical_node().unwrap_or(0);
        let usage = slowest.per_node.get(crit).copied().unwrap_or_default();
        let _ = writeln!(
            out,
            "slowest link: phase '{}' on node {} ({} µs, {}% of response)",
            slowest.name,
            crit,
            slowest.dur_us.unwrap_or(0),
            pct(slowest.dur_us.unwrap_or(0), response),
        );
        let _ = writeln!(
            out,
            "  dominant component: {}  (cpu {} µs, disk {} µs, net {} µs)",
            usage.dominant(),
            usage.cpu_us,
            usage.disk_us,
            usage.net_us,
        );
        if usage.disk_wait_us > 0 || usage.net_wait_us > 0 {
            let _ = writeln!(
                out,
                "  queueing delay: disk {} µs, net {} µs",
                usage.disk_wait_us, usage.net_wait_us,
            );
        }
        out.push('\n');
    }

    // Event totals for ledger reconciliation.
    let t = &sink.totals;
    let _ = writeln!(out, "event totals");
    let _ = writeln!(
        out,
        "  disk: {} reads, {} writes",
        t.disk_reads, t.disk_writes
    );
    let _ = writeln!(
        out,
        "  net: {} packets sent, {} received, {} short-circuited, {} control",
        t.packets_sent, t.packets_recv, t.short_circuits, t.control_msgs
    );
    let _ = writeln!(
        out,
        "  hash: {} inserts, {} probes",
        t.hash_inserts, t.hash_probes
    );
    let _ = writeln!(
        out,
        "  buckets: {} opened, {} closed, {} spilled",
        t.bucket_opens, t.bucket_closes, t.bucket_spills
    );
    let _ = writeln!(
        out,
        "  kernel: {} sim steps, {} operator spans",
        t.sim_steps, t.spans
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, NodeUsage, TraceSink};

    #[test]
    fn summary_names_slowest_phase() {
        let mut sink = TraceSink::new(16);
        sink.emit(0, 1, EventKind::HashInsert);
        sink.seal_phase(
            "build",
            vec![NodeUsage {
                cpu_us: 100,
                disk_us: 40,
                net_us: 0,
                ..Default::default()
            }],
        );
        sink.seal_phase(
            "probe",
            vec![NodeUsage {
                cpu_us: 10,
                disk_us: 300,
                net_us: 0,
                ..Default::default()
            }],
        );
        sink.phase_replayed(0, 0, 100);
        sink.phase_replayed(1, 100, 300);
        let text = critical_path(&sink);
        assert!(text.contains("slowest link: phase 'probe' on node 0"));
        assert!(text.contains("dominant component: disk"));
        assert!(text.contains("1 inserts"));
    }

    #[test]
    fn summary_breaks_down_waits() {
        let mut sink = TraceSink::new(16);
        sink.seal_phase(
            "probe",
            vec![NodeUsage {
                cpu_us: 50,
                disk_us: 25,
                net_us: 0,
                disk_wait_us: 25,
                ..Default::default()
            }],
        );
        sink.phase_replayed(0, 0, 100);
        let text = critical_path(&sink);
        assert!(text.contains("disk-wait"), "breakdown header present");
        // 50/100 cpu, 25/100 disk, 25/100 disk-wait.
        assert!(
            text.contains("probe                           50%    25%     0%        25%        0%"),
            "breakdown row mis-formatted:\n{text}"
        );
    }

    #[test]
    fn summary_is_deterministic() {
        let build = |_| {
            let mut sink = TraceSink::new(8);
            sink.seal_phase(
                "scan",
                vec![NodeUsage {
                    cpu_us: 7,
                    disk_us: 3,
                    net_us: 1,
                    ..Default::default()
                }],
            );
            sink.phase_replayed(0, 0, 7);
            critical_path(&sink)
        };
        assert_eq!(build(0), build(1));
    }
}
