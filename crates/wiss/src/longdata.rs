//! Long data items (paper §2.2).
//!
//! WiSS stored attribute values too large for a slotted page — "long data
//! items" — out of line: the owning record keeps a small descriptor and the
//! bytes live in their own chunked storage. [`LongStore`] provides that
//! service per volume: store a blob, get back a compact [`LongItemId`]
//! descriptor, fetch it (whole or a slice) later.

use std::collections::HashMap;

use gamma_des::Usage;

use crate::disk::Volume;
use crate::pool::BufferPool;
use crate::stream::ByteStream;

/// Descriptor of one long data item (what the owning record stores).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LongItemId(u64);

impl LongItemId {
    /// Raw id (for embedding in 8-byte record fields).
    pub fn raw(&self) -> u64 {
        self.0
    }

    /// Rebuild from a raw id.
    pub fn from_raw(v: u64) -> Self {
        LongItemId(v)
    }
}

/// The long-data service for one volume.
#[derive(Debug, Default)]
pub struct LongStore {
    items: HashMap<LongItemId, ByteStream>,
    next: u64,
}

impl LongStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of items stored.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no items are stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Store a blob; returns its descriptor.
    pub fn store(
        &mut self,
        vol: &mut Volume,
        pool: &mut BufferPool,
        usage: &mut Usage,
        data: &[u8],
    ) -> LongItemId {
        let mut stream = ByteStream::create(vol, pool.config().page_bytes);
        stream.append(vol, pool, usage, data);
        let id = LongItemId(self.next);
        self.next += 1;
        self.items.insert(id, stream);
        id
    }

    /// Size of an item in bytes.
    ///
    /// # Panics
    /// Panics on an unknown id.
    pub fn size(&self, id: LongItemId) -> u64 {
        self.items
            .get(&id)
            .unwrap_or_else(|| panic!("unknown long item {id:?}"))
            .len()
    }

    /// Fetch a byte range of an item.
    pub fn fetch_range(
        &self,
        vol: &Volume,
        pool: &mut BufferPool,
        usage: &mut Usage,
        id: LongItemId,
        offset: u64,
        len: usize,
    ) -> Vec<u8> {
        self.items
            .get(&id)
            .unwrap_or_else(|| panic!("unknown long item {id:?}"))
            .read_at(vol, pool, usage, offset, len)
    }

    /// Fetch a whole item.
    pub fn fetch(
        &self,
        vol: &Volume,
        pool: &mut BufferPool,
        usage: &mut Usage,
        id: LongItemId,
    ) -> Vec<u8> {
        let n = self.size(id);
        self.fetch_range(vol, pool, usage, id, 0, n as usize)
    }

    /// Append bytes to an existing item.
    pub fn append(
        &mut self,
        vol: &mut Volume,
        pool: &mut BufferPool,
        usage: &mut Usage,
        id: LongItemId,
        data: &[u8],
    ) {
        self.items
            .get_mut(&id)
            .unwrap_or_else(|| panic!("unknown long item {id:?}"))
            .append(vol, pool, usage, data);
    }

    /// Delete an item and free its storage.
    pub fn delete(&mut self, vol: &mut Volume, pool: &mut BufferPool, id: LongItemId) {
        let stream = self
            .items
            .remove(&id)
            .unwrap_or_else(|| panic!("unknown long item {id:?}"));
        stream.delete(vol, pool);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskConfig;

    fn setup() -> (Volume, BufferPool, Usage, LongStore) {
        (
            Volume::new(),
            BufferPool::new(DiskConfig::fujitsu_8inch(), 8),
            Usage::ZERO,
            LongStore::new(),
        )
    }

    #[test]
    fn store_fetch_roundtrip() {
        let (mut vol, mut pool, mut u, mut ls) = setup();
        let blob: Vec<u8> = (0..100_000u32).map(|i| (i % 253) as u8).collect();
        let id = ls.store(&mut vol, &mut pool, &mut u, &blob);
        assert_eq!(ls.size(id), 100_000);
        assert_eq!(ls.fetch(&vol, &mut pool, &mut u, id), blob);
        let mid = ls.fetch_range(&vol, &mut pool, &mut u, id, 50_000, 16);
        assert_eq!(mid, &blob[50_000..50_016]);
    }

    #[test]
    fn multiple_items_are_independent() {
        let (mut vol, mut pool, mut u, mut ls) = setup();
        let a = ls.store(&mut vol, &mut pool, &mut u, b"aaaa");
        let b = ls.store(&mut vol, &mut pool, &mut u, b"bbbbbbbb");
        assert_ne!(a, b);
        assert_eq!(ls.len(), 2);
        assert_eq!(ls.fetch(&vol, &mut pool, &mut u, a), b"aaaa");
        assert_eq!(ls.fetch(&vol, &mut pool, &mut u, b), b"bbbbbbbb");
        ls.append(&mut vol, &mut pool, &mut u, a, b"!");
        assert_eq!(ls.fetch(&vol, &mut pool, &mut u, a), b"aaaa!");
    }

    #[test]
    fn delete_frees_storage() {
        let (mut vol, mut pool, mut u, mut ls) = setup();
        let id = ls.store(&mut vol, &mut pool, &mut u, &[1u8; 20_000]);
        let pages_before = vol.total_pages();
        assert!(pages_before >= 3);
        ls.delete(&mut vol, &mut pool, id);
        assert_eq!(vol.total_pages(), 0);
        assert!(ls.is_empty());
    }

    #[test]
    fn descriptor_roundtrips_through_raw() {
        let (mut vol, mut pool, mut u, mut ls) = setup();
        let id = ls.store(&mut vol, &mut pool, &mut u, b"payload");
        let raw = id.raw();
        let back = LongItemId::from_raw(raw);
        assert_eq!(ls.fetch(&vol, &mut pool, &mut u, back), b"payload");
    }

    #[test]
    #[should_panic(expected = "unknown long item")]
    fn unknown_item_panics() {
        let (vol, mut pool, mut u, ls) = setup();
        ls.fetch(&vol, &mut pool, &mut u, LongItemId::from_raw(99));
    }
}
