//! Heap files: structured sequential files of records.
//!
//! [`HeapWriter`] buffers one page in memory and writes it to the volume
//! when full (charging the write I/O); [`HeapScan`] reads a file back in
//! sequence (charging reads through the pool). These are the WiSS services
//! used for base relations, Grace/Hybrid bucket files, Simple-hash overflow
//! files, sort runs and result relations.

use gamma_des::Usage;

use crate::disk::{FileId, Volume};
use crate::page::Page;
use crate::pool::BufferPool;

/// Buffered appender for one heap file.
#[derive(Debug)]
pub struct HeapWriter {
    file: FileId,
    page_bytes: usize,
    cur: Page,
    records: u64,
}

impl HeapWriter {
    /// Start writing to a freshly created file on `vol`.
    pub fn create(vol: &mut Volume, page_bytes: usize) -> Self {
        let file = vol.create_file();
        HeapWriter {
            file,
            page_bytes,
            cur: Page::new(page_bytes),
            records: 0,
        }
    }

    /// The file being written.
    pub fn file(&self) -> FileId {
        self.file
    }

    /// Records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Append one record, spilling the buffered page when full.
    ///
    /// # Panics
    /// Panics if the record cannot fit even in an empty page.
    pub fn push(&mut self, vol: &mut Volume, pool: &mut BufferPool, usage: &mut Usage, rec: &[u8]) {
        if self.cur.insert(rec).is_none() {
            assert!(
                !self.cur.is_empty(),
                "record of {} bytes exceeds page capacity",
                rec.len()
            );
            self.spill(vol, pool, usage);
            self.cur
                .insert(rec)
                .unwrap_or_else(|| panic!("record of {} bytes exceeds page capacity", rec.len()));
        }
        self.records += 1;
    }

    fn spill(&mut self, vol: &mut Volume, pool: &mut BufferPool, usage: &mut Usage) {
        let full = std::mem::replace(&mut self.cur, Page::new(self.page_bytes));
        let idx = vol.append_page(self.file, full);
        pool.charge_write(self.file, idx, usage);
    }

    /// Flush the final partial page and return the file id.
    pub fn finish(mut self, vol: &mut Volume, pool: &mut BufferPool, usage: &mut Usage) -> FileId {
        if !self.cur.is_empty() {
            self.spill(vol, pool, usage);
        }
        self.file
    }
}

/// Sequential scan over a heap file, charging reads as pages are entered.
///
/// [`HeapScan::next_ref`] yields records as slices borrowed from the
/// volume — the engine copies each record at most once, into whatever
/// staging buffer (tuple batch, packet frame, hash-table arena) receives
/// it. [`HeapScan::next`] wraps that in an owned copy for callers that
/// need one.
pub struct HeapScan<'a> {
    vol: &'a Volume,
    file: FileId,
    page_idx: usize,
    slot: usize,
    pages: usize,
}

impl<'a> HeapScan<'a> {
    /// Open a scan on `file`.
    pub fn open(vol: &'a Volume, file: FileId) -> Self {
        let pages = vol.file_pages(file);
        HeapScan {
            vol,
            file,
            page_idx: 0,
            slot: 0,
            pages,
        }
    }

    /// Fetch the next record as a slice borrowed from the volume (no
    /// copy), charging page reads to `usage` via `pool`.
    pub fn next_ref(&mut self, pool: &mut BufferPool, usage: &mut Usage) -> Option<&'a [u8]> {
        loop {
            if self.page_idx >= self.pages {
                return None;
            }
            if self.slot == 0 {
                pool.charge_read(self.file, self.page_idx, usage);
            }
            let page = self.vol.page(self.file, self.page_idx);
            match page.get(self.slot) {
                Some(rec) => {
                    self.slot += 1;
                    return Some(rec);
                }
                None => {
                    self.page_idx += 1;
                    self.slot = 0;
                }
            }
        }
    }

    /// Fetch the next record as an owned copy.
    pub fn next(&mut self, pool: &mut BufferPool, usage: &mut Usage) -> Option<Vec<u8>> {
        self.next_ref(pool, usage).map(<[u8]>::to_vec)
    }

    /// Drain the scan into a vector (test/convenience helper).
    pub fn collect_all(mut self, pool: &mut BufferPool, usage: &mut Usage) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Some(r) = self.next(pool, usage) {
            out.push(r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskConfig;

    fn setup() -> (Volume, BufferPool, Usage) {
        (
            Volume::new(),
            BufferPool::new(DiskConfig::fujitsu_8inch(), 8),
            Usage::ZERO,
        )
    }

    #[test]
    fn write_then_scan_roundtrips() {
        let (mut vol, mut pool, mut u) = setup();
        let mut w = HeapWriter::create(&mut vol, 8192);
        for i in 0..1000u32 {
            w.push(&mut vol, &mut pool, &mut u, &i.to_le_bytes());
        }
        assert_eq!(w.records(), 1000);
        let f = w.finish(&mut vol, &mut pool, &mut u);
        pool.clear();
        let got = HeapScan::open(&vol, f).collect_all(&mut pool, &mut u);
        assert_eq!(got.len(), 1000);
        for (i, r) in got.iter().enumerate() {
            assert_eq!(r.as_slice(), &(i as u32).to_le_bytes());
        }
    }

    #[test]
    fn page_count_matches_capacity() {
        let (mut vol, mut pool, mut u) = setup();
        let mut w = HeapWriter::create(&mut vol, 8192);
        let rec = [9u8; 208];
        for _ in 0..100 {
            w.push(&mut vol, &mut pool, &mut u, &rec);
        }
        let f = w.finish(&mut vol, &mut pool, &mut u);
        // 38 per page -> 100 records = 3 pages.
        assert_eq!(vol.file_pages(f), 3);
        assert_eq!(u.counts.pages_written, 3);
        assert_eq!(vol.file_records(f), 100);
    }

    #[test]
    fn scan_charges_one_read_per_page() {
        let (mut vol, mut pool, mut u) = setup();
        let mut w = HeapWriter::create(&mut vol, 8192);
        for _ in 0..76 {
            w.push(&mut vol, &mut pool, &mut u, &[1u8; 208]);
        }
        let f = w.finish(&mut vol, &mut pool, &mut u);
        pool.clear();
        let mut ru = Usage::ZERO;
        let _ = HeapScan::open(&vol, f).collect_all(&mut pool, &mut ru);
        assert_eq!(ru.counts.pages_read, 2);
    }

    #[test]
    fn empty_file_scan_yields_nothing() {
        let (mut vol, mut pool, mut u) = setup();
        let w = HeapWriter::create(&mut vol, 8192);
        let f = w.finish(&mut vol, &mut pool, &mut u);
        assert_eq!(vol.file_pages(f), 0);
        assert!(HeapScan::open(&vol, f)
            .collect_all(&mut pool, &mut u)
            .is_empty());
    }

    #[test]
    fn variable_length_records() {
        let (mut vol, mut pool, mut u) = setup();
        let mut w = HeapWriter::create(&mut vol, 512);
        let recs: Vec<Vec<u8>> = (1..60usize).map(|n| vec![n as u8; n]).collect();
        for r in &recs {
            w.push(&mut vol, &mut pool, &mut u, r);
        }
        let f = w.finish(&mut vol, &mut pool, &mut u);
        pool.clear();
        let got = HeapScan::open(&vol, f).collect_all(&mut pool, &mut u);
        assert_eq!(got, recs);
    }

    #[test]
    #[should_panic(expected = "exceeds page capacity")]
    fn oversized_record_panics() {
        let (mut vol, mut pool, mut u) = setup();
        let mut w = HeapWriter::create(&mut vol, 128);
        w.push(&mut vol, &mut pool, &mut u, &[0u8; 500]);
    }
}
