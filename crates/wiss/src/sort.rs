//! External merge sort — the WiSS sort utility.
//!
//! Two entry points:
//!
//! * [`external_sort`] fully materialises a sorted file (general substrate
//!   service),
//! * [`sort_into_runs`] stops merging once the remaining runs fit one final
//!   merge fan-in, so a consumer (the parallel sort-merge join) can perform
//!   the last merge on the fly through a [`RunMerger`].
//!
//! Run formation reads the input sequentially, fills the sort workspace
//! (`mem_bytes`), quicksorts it and writes a run. Merging proceeds in passes
//! of fan-in `mem_bytes / page_bytes − 1` (one page per input run plus one
//! output page, as on the real system). Every comparison actually performed
//! is charged to the ledger — the paper's "upward steps" in the sort-merge
//! curves are precisely these extra merge passes appearing as memory
//! shrinks.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use gamma_des::{SimTime, Usage};

use crate::disk::{FileId, Volume};
use crate::heap::{HeapScan, HeapWriter};
use crate::pool::BufferPool;

/// Sort workspace shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortConfig {
    /// Bytes of memory available for sorting/merging at this node.
    pub mem_bytes: u64,
    /// Page size (determines merge fan-in).
    pub page_bytes: usize,
}

impl SortConfig {
    /// Maximum number of runs merged at once: one buffer page per input run
    /// plus one for output, minimum 2.
    pub fn fan_in(&self) -> usize {
        ((self.mem_bytes as usize / self.page_bytes).saturating_sub(1)).max(2)
    }
}

/// CPU cost knobs for sorting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortCost {
    /// CPU per key comparison, µs.
    pub compare_us: u64,
    /// CPU per record moved (into the workspace or out to a run), µs.
    pub move_us: u64,
}

impl Default for SortCost {
    fn default() -> Self {
        // VAX 11/750 scale: a comparison plus loop overhead is tens of
        // instructions; a 208-byte record move a few hundred.
        SortCost {
            compare_us: 60,
            move_us: 180,
        }
    }
}

/// What a sort did (asserted on by tests, reported by the harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SortStats {
    /// Records sorted.
    pub records: u64,
    /// Runs produced by run formation.
    pub initial_runs: u64,
    /// Full merge passes over the data (0 when one run suffices).
    pub merge_passes: u64,
    /// Key comparisons performed.
    pub comparisons: u64,
}

fn charge_compares(usage: &mut Usage, cost: &SortCost, n: u64, stats: &mut SortStats) {
    usage.cpu(SimTime::from_us(cost.compare_us * n));
    usage.counts.comparisons += n;
    stats.comparisons += n;
}

fn charge_moves(usage: &mut Usage, cost: &SortCost, n: u64) {
    usage.cpu(SimTime::from_us(cost.move_us * n));
}

/// Form sorted runs from `input`.
#[allow(clippy::too_many_arguments)]
fn form_runs<K: Ord>(
    vol: &mut Volume,
    pool: &mut BufferPool,
    input: FileId,
    key: &dyn Fn(&[u8]) -> K,
    cfg: SortConfig,
    cost: &SortCost,
    usage: &mut Usage,
    stats: &mut SortStats,
) -> Vec<FileId> {
    let mut runs = Vec::new();
    // Workspace entries reference ranges of one contiguous record buffer
    // (two allocations total, not one per record).
    let mut workspace: Vec<(K, (u32, u32))> = Vec::new();
    let mut ws_bytes = 0u64;

    // Collect the input records page by page. We copy them out first (the
    // scan immutably borrows the volume) — on the real system the records
    // were copied into the sort workspace anyway, which `move_us` charges.
    let mut data: Vec<u8> = Vec::new();
    let mut ranges: Vec<(u32, u32)> = Vec::new();
    {
        let mut scan = HeapScan::open(vol, input);
        while let Some(rec) = scan.next_ref(pool, usage) {
            ranges.push((data.len() as u32, rec.len() as u32));
            data.extend_from_slice(rec);
        }
    }
    let data = data;

    let flush = |workspace: &mut Vec<(K, (u32, u32))>,
                 ws_bytes: &mut u64,
                 vol: &mut Volume,
                 pool: &mut BufferPool,
                 usage: &mut Usage,
                 stats: &mut SortStats,
                 runs: &mut Vec<FileId>| {
        if workspace.is_empty() {
            return;
        }
        let mut compares = 0u64;
        workspace.sort_by(|a, b| {
            compares += 1;
            a.0.cmp(&b.0)
        });
        charge_compares(usage, cost, compares, stats);
        let mut w = HeapWriter::create(vol, cfg.page_bytes);
        for &(_, (start, len)) in workspace.iter() {
            w.push(
                vol,
                pool,
                usage,
                &data[start as usize..(start + len) as usize],
            );
        }
        charge_moves(usage, cost, workspace.len() as u64);
        runs.push(w.finish(vol, pool, usage));
        stats.initial_runs += 1;
        workspace.clear();
        *ws_bytes = 0;
    };

    for (start, len) in ranges {
        stats.records += 1;
        ws_bytes += len as u64;
        charge_moves(usage, cost, 1);
        let rec = &data[start as usize..(start + len) as usize];
        workspace.push((key(rec), (start, len)));
        if ws_bytes >= cfg.mem_bytes {
            flush(
                &mut workspace,
                &mut ws_bytes,
                vol,
                pool,
                usage,
                stats,
                &mut runs,
            );
        }
    }
    flush(
        &mut workspace,
        &mut ws_bytes,
        vol,
        pool,
        usage,
        stats,
        &mut runs,
    );
    runs
}

/// Merge a group of runs into one new run, charging all I/O and compares.
#[allow(clippy::too_many_arguments)]
fn merge_group<K: Ord + Clone>(
    vol: &mut Volume,
    pool: &mut BufferPool,
    group: &[FileId],
    key: &dyn Fn(&[u8]) -> K,
    cfg: SortConfig,
    cost: &SortCost,
    usage: &mut Usage,
    stats: &mut SortStats,
) -> FileId {
    // Gather records in merged order via an actual k-way heap merge, into
    // one contiguous buffer (the merger borrows the volume, so the writer
    // below cannot run concurrently with it).
    let mut data: Vec<u8> = Vec::new();
    let mut ranges: Vec<(u32, u32)> = Vec::new();
    {
        let mut merger = RunMerger::open(vol, group.to_vec(), key);
        while let Some(rec) = merger.next_ref(pool, usage) {
            ranges.push((data.len() as u32, rec.len() as u32));
            data.extend_from_slice(rec);
        }
        charge_compares(usage, cost, merger.comparisons(), stats);
    }
    let mut w = HeapWriter::create(vol, cfg.page_bytes);
    for &(start, len) in &ranges {
        w.push(
            vol,
            pool,
            usage,
            &data[start as usize..(start + len) as usize],
        );
    }
    charge_moves(usage, cost, ranges.len() as u64);
    let out = w.finish(vol, pool, usage);
    for &r in group {
        pool.evict_file(r);
        vol.delete_file(r);
    }
    out
}

/// Merge `runs` down until at most `target` remain.
#[allow(clippy::too_many_arguments)]
fn merge_until<K: Ord + Clone>(
    vol: &mut Volume,
    pool: &mut BufferPool,
    mut runs: Vec<FileId>,
    key: &dyn Fn(&[u8]) -> K,
    cfg: SortConfig,
    cost: &SortCost,
    usage: &mut Usage,
    stats: &mut SortStats,
    target: usize,
) -> Vec<FileId> {
    let fan_in = cfg.fan_in();
    while runs.len() > target {
        let mut next: Vec<FileId> = Vec::new();
        for group in runs.chunks(fan_in) {
            if group.len() == 1 {
                next.push(group[0]);
            } else {
                next.push(merge_group(vol, pool, group, key, cfg, cost, usage, stats));
            }
        }
        stats.merge_passes += 1;
        runs = next;
    }
    runs
}

/// Fully sort `input` into a new file. The input file is left intact.
///
/// ```
/// use gamma_des::Usage;
/// use gamma_wiss::{external_sort, BufferPool, DiskConfig, HeapScan, HeapWriter, SortConfig, SortCost, Volume};
///
/// let mut vol = Volume::new();
/// let mut pool = BufferPool::new(DiskConfig::fujitsu_8inch(), 8);
/// let mut io = Usage::ZERO;
/// let mut w = HeapWriter::create(&mut vol, 8192);
/// for k in [5u32, 3, 9, 1, 7] {
///     w.push(&mut vol, &mut pool, &mut io, &k.to_le_bytes());
/// }
/// let input = w.finish(&mut vol, &mut pool, &mut io);
/// let key = |r: &[u8]| u32::from_le_bytes(r.try_into().unwrap());
/// let cfg = SortConfig { mem_bytes: 1 << 20, page_bytes: 8192 };
/// let (sorted, stats) =
///     external_sort(&mut vol, &mut pool, input, &key, cfg, &SortCost::default(), &mut io);
/// let got: Vec<u32> = HeapScan::open(&vol, sorted)
///     .collect_all(&mut pool, &mut io)
///     .iter()
///     .map(|r| key(r))
///     .collect();
/// assert_eq!(got, [1, 3, 5, 7, 9]);
/// assert_eq!(stats.records, 5);
/// ```
pub fn external_sort<K: Ord + Clone>(
    vol: &mut Volume,
    pool: &mut BufferPool,
    input: FileId,
    key: &dyn Fn(&[u8]) -> K,
    cfg: SortConfig,
    cost: &SortCost,
    usage: &mut Usage,
) -> (FileId, SortStats) {
    let mut stats = SortStats::default();
    let runs = form_runs(vol, pool, input, key, cfg, cost, usage, &mut stats);
    let runs = merge_until(vol, pool, runs, key, cfg, cost, usage, &mut stats, 1);
    let out = match runs.len() {
        0 => vol.create_file(),
        1 => runs[0],
        _ => unreachable!("merge_until(1) left multiple runs"),
    };
    (out, stats)
}

/// Sort `input` into at most `fan_in` runs, leaving the final merge to the
/// consumer (via [`RunMerger`]). This is how the parallel sort-merge join
/// uses the utility: the last merge happens on the fly while joining.
pub fn sort_into_runs<K: Ord + Clone>(
    vol: &mut Volume,
    pool: &mut BufferPool,
    input: FileId,
    key: &dyn Fn(&[u8]) -> K,
    cfg: SortConfig,
    cost: &SortCost,
    usage: &mut Usage,
) -> (Vec<FileId>, SortStats) {
    let mut stats = SortStats::default();
    let runs = form_runs(vol, pool, input, key, cfg, cost, usage, &mut stats);
    let fan_in = cfg.fan_in();
    let runs = merge_until(vol, pool, runs, key, cfg, cost, usage, &mut stats, fan_in);
    (runs, stats)
}

/// Entry in the merge heap (min-heap by key, then run index for
/// stability). Records stay borrowed from the volume — the merge never
/// copies a tuple.
struct HeapEntry<'a, K: Ord> {
    key: K,
    run: usize,
    rec: &'a [u8],
}

impl<K: Ord> PartialEq for HeapEntry<'_, K> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.run == other.run
    }
}
impl<K: Ord> Eq for HeapEntry<'_, K> {}
impl<K: Ord> PartialOrd for HeapEntry<'_, K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<K: Ord> Ord for HeapEntry<'_, K> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap.
        (&other.key, other.run).cmp(&(&self.key, self.run))
    }
}

/// Streaming k-way merge over sorted run files.
pub struct RunMerger<'a, K: Ord> {
    vol: &'a Volume,
    key: &'a dyn Fn(&[u8]) -> K,
    scans: Vec<HeapScan<'a>>,
    heap: BinaryHeap<HeapEntry<'a, K>>,
    primed: bool,
    comparisons: u64,
    log2_k: u64,
}

impl<'a, K: Ord + Clone> RunMerger<'a, K> {
    /// Open a merger over `runs` (each must be internally sorted by `key`).
    pub fn open(vol: &'a Volume, runs: Vec<FileId>, key: &'a dyn Fn(&[u8]) -> K) -> Self {
        let k = runs.len().max(1) as u64;
        let scans = runs.iter().map(|&r| HeapScan::open(vol, r)).collect();
        RunMerger {
            vol,
            key,
            scans,
            heap: BinaryHeap::new(),
            primed: false,
            comparisons: 0,
            log2_k: 64 - (k.saturating_sub(1)).leading_zeros() as u64,
        }
    }

    fn prime(&mut self, pool: &mut BufferPool, usage: &mut Usage) {
        let _ = self.vol;
        for run in 0..self.scans.len() {
            if let Some(rec) = self.scans[run].next_ref(pool, usage) {
                self.heap.push(HeapEntry {
                    key: (self.key)(rec),
                    run,
                    rec,
                });
            }
        }
        self.primed = true;
    }

    /// Next record in globally sorted order, borrowed from the volume.
    pub fn next_ref(&mut self, pool: &mut BufferPool, usage: &mut Usage) -> Option<&'a [u8]> {
        if !self.primed {
            self.prime(pool, usage);
        }
        let top = self.heap.pop()?;
        // A heap pop/refill costs ~log2(k) comparisons.
        self.comparisons += self.log2_k.max(1);
        if let Some(rec) = self.scans[top.run].next_ref(pool, usage) {
            self.heap.push(HeapEntry {
                key: (self.key)(rec),
                run: top.run,
                rec,
            });
        }
        Some(top.rec)
    }

    /// Next record in globally sorted order, as an owned copy.
    pub fn next(&mut self, pool: &mut BufferPool, usage: &mut Usage) -> Option<Vec<u8>> {
        self.next_ref(pool, usage).map(<[u8]>::to_vec)
    }

    /// Comparisons attributed to the merge so far.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskConfig;

    fn setup() -> (Volume, BufferPool, Usage) {
        (
            Volume::new(),
            BufferPool::new(DiskConfig::fujitsu_8inch(), 4),
            Usage::ZERO,
        )
    }

    fn key_u32(rec: &[u8]) -> u32 {
        u32::from_le_bytes(rec[0..4].try_into().unwrap())
    }

    fn write_input(vol: &mut Volume, pool: &mut BufferPool, u: &mut Usage, vals: &[u32]) -> FileId {
        let mut w = HeapWriter::create(vol, 8192);
        for &v in vals {
            let mut rec = v.to_le_bytes().to_vec();
            rec.extend_from_slice(&[0xAB; 60]); // payload
            w.push(vol, pool, u, &rec);
        }
        w.finish(vol, pool, u)
    }

    #[test]
    fn sorts_a_permutation() {
        let (mut vol, mut pool, mut u) = setup();
        let vals: Vec<u32> = (0..5000)
            .map(|i| (i * 2654435761u64 % 5000) as u32)
            .collect();
        let input = write_input(&mut vol, &mut pool, &mut u, &vals);
        let cfg = SortConfig {
            mem_bytes: 16 * 1024,
            page_bytes: 8192,
        };
        let (out, stats) = external_sort(
            &mut vol,
            &mut pool,
            input,
            &key_u32,
            cfg,
            &SortCost::default(),
            &mut u,
        );
        assert_eq!(stats.records, 5000);
        assert!(stats.initial_runs > 1);
        let mut got = Vec::new();
        let mut scan = HeapScan::open(&vol, out);
        while let Some(r) = scan.next(&mut pool, &mut u) {
            got.push(key_u32(&r));
        }
        let mut want = vals.clone();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(stats.comparisons > 0);
    }

    #[test]
    fn small_input_single_run_no_merge() {
        let (mut vol, mut pool, mut u) = setup();
        let input = write_input(&mut vol, &mut pool, &mut u, &[5, 3, 1, 4, 2]);
        let cfg = SortConfig {
            mem_bytes: 1 << 20,
            page_bytes: 8192,
        };
        let (out, stats) = external_sort(
            &mut vol,
            &mut pool,
            input,
            &key_u32,
            cfg,
            &SortCost::default(),
            &mut u,
        );
        assert_eq!(stats.initial_runs, 1);
        assert_eq!(stats.merge_passes, 0);
        assert_eq!(vol.file_records(out), 5);
    }

    #[test]
    fn empty_input() {
        let (mut vol, mut pool, mut u) = setup();
        let input = write_input(&mut vol, &mut pool, &mut u, &[]);
        let cfg = SortConfig {
            mem_bytes: 1024,
            page_bytes: 8192,
        };
        let (out, stats) = external_sort(
            &mut vol,
            &mut pool,
            input,
            &key_u32,
            cfg,
            &SortCost::default(),
            &mut u,
        );
        assert_eq!(stats.records, 0);
        assert_eq!(vol.file_pages(out), 0);
    }

    #[test]
    fn merge_passes_increase_as_memory_shrinks() {
        let passes_for = |mem: u64| {
            let (mut vol, mut pool, mut u) = setup();
            let vals: Vec<u32> = (0..8000).rev().collect();
            let input = write_input(&mut vol, &mut pool, &mut u, &vals);
            let cfg = SortConfig {
                mem_bytes: mem,
                page_bytes: 8192,
            };
            let (_, stats) = external_sort(
                &mut vol,
                &mut pool,
                input,
                &key_u32,
                cfg,
                &SortCost::default(),
                &mut u,
            );
            stats.merge_passes
        };
        let big = passes_for(512 * 1024);
        let small = passes_for(24 * 1024);
        assert!(
            small > big,
            "less memory must mean more passes ({small} vs {big})"
        );
    }

    #[test]
    fn sort_into_runs_leaves_final_merge() {
        let (mut vol, mut pool, mut u) = setup();
        let vals: Vec<u32> = (0..4000).rev().collect();
        let input = write_input(&mut vol, &mut pool, &mut u, &vals);
        let cfg = SortConfig {
            mem_bytes: 24 * 1024,
            page_bytes: 8192,
        };
        let (runs, stats) = sort_into_runs(
            &mut vol,
            &mut pool,
            input,
            &key_u32,
            cfg,
            &SortCost::default(),
            &mut u,
        );
        assert!(runs.len() > 1, "should leave several runs");
        assert!(runs.len() <= cfg.fan_in());
        assert!(stats.initial_runs >= runs.len() as u64);
        // Merging them on the fly yields sorted order.
        let mut merger = RunMerger::open(&vol, runs, &key_u32);
        let mut got = Vec::new();
        while let Some(r) = merger.next(&mut pool, &mut u) {
            got.push(key_u32(&r));
        }
        assert_eq!(got, (0..4000).collect::<Vec<_>>());
        assert!(merger.comparisons() > 0);
    }

    #[test]
    fn duplicates_survive_sorting() {
        let (mut vol, mut pool, mut u) = setup();
        let vals = vec![7u32; 500];
        let input = write_input(&mut vol, &mut pool, &mut u, &vals);
        let cfg = SortConfig {
            mem_bytes: 8 * 1024,
            page_bytes: 8192,
        };
        let (out, stats) = external_sort(
            &mut vol,
            &mut pool,
            input,
            &key_u32,
            cfg,
            &SortCost::default(),
            &mut u,
        );
        assert_eq!(stats.records, 500);
        assert_eq!(vol.file_records(out), 500);
    }

    #[test]
    fn input_file_left_intact() {
        let (mut vol, mut pool, mut u) = setup();
        let input = write_input(&mut vol, &mut pool, &mut u, &[3, 1, 2]);
        let cfg = SortConfig {
            mem_bytes: 1024,
            page_bytes: 8192,
        };
        let before = vol.file_records(input);
        let _ = external_sort(
            &mut vol,
            &mut pool,
            input,
            &key_u32,
            cfg,
            &SortCost::default(),
            &mut u,
        );
        assert_eq!(vol.file_records(input), before);
    }

    #[test]
    fn fan_in_floor_is_two() {
        let cfg = SortConfig {
            mem_bytes: 100,
            page_bytes: 8192,
        };
        assert_eq!(cfg.fan_in(), 2);
        let cfg = SortConfig {
            mem_bytes: 10 * 8192,
            page_bytes: 8192,
        };
        assert_eq!(cfg.fan_in(), 9);
    }
}
