//! # gamma-wiss — a WiSS-like storage substrate
//!
//! Gamma's file services came from the Wisconsin Storage System (WiSS):
//! structured sequential files, B+ indices, a sort utility, and a scan
//! mechanism with one-page readahead. This crate rebuilds those services on
//! top of simulated per-node disk volumes:
//!
//! * [`page`] — 8 KB slotted pages (variable-length records),
//! * [`disk`] — per-node [`disk::Volume`]s holding files of pages, plus the
//!   [`disk::DiskConfig`] service-time model (sequential vs. random) for an
//!   8-inch Fujitsu-class drive,
//! * [`pool`] — a per-node LRU buffer pool; all I/O charging flows through
//!   it so cached re-reads are free, exactly once, and the disk-arm model
//!   can distinguish sequential from random access (the one-page readahead
//!   of WiSS is captured by the engine's overlapped CPU/disk timing model),
//! * [`heap`] — heap-file writers and scans used for base relations, bucket
//!   files and overflow files,
//! * [`sort`] — the external merge sort utility (run formation + multi-pass
//!   merge) that drives the parallel sort-merge join; its pass count is what
//!   produces the "upward steps" in the paper's sort-merge curves,
//! * [`stream`] — byte-stream files "as in UNIX",
//! * [`longdata`] — long data items stored out of line,
//! * [`btree`] — a B+-tree, completing the WiSS service set.
//!
//! Everything executes for real on real bytes; the simulation aspect is the
//! *cost accounting* charged to [`gamma_des::Usage`] ledgers.

pub mod btree;
pub mod disk;
pub mod heap;
pub mod longdata;
pub mod page;
pub mod pool;
pub mod sort;
pub mod stream;

pub use disk::{DiskConfig, FileId, Volume};
pub use heap::{HeapScan, HeapWriter};
pub use longdata::{LongItemId, LongStore};
pub use page::Page;
pub use pool::BufferPool;
pub use sort::{external_sort, SortConfig, SortCost, SortStats};
pub use stream::ByteStream;
