//! Simulated per-node disk volumes.
//!
//! A [`Volume`] is the storage attached to one processor: a set of files,
//! each an append-only sequence of [`Page`]s. Pages are stored in memory
//! (this is a simulator), but every access is charged to a ledger through
//! the buffer pool, using the [`DiskConfig`] service-time model.

use std::collections::BTreeMap;

use crate::page::Page;

/// Identifies a file within one volume.
pub type FileId = u64;

/// Disk service-time model (per 8 KB page).
///
/// Defaults approximate the paper's 333 MB 8-inch Fujitsu drives: ~18 ms
/// average seek, ~8 ms half-rotation, ~1.8 MB/s transfer (4.5 ms for 8 KB).
/// Sequential access with WiSS's one-page readahead avoids the seek and most
/// rotational delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskConfig {
    /// Page size in bytes (the paper used 8 KB in all experiments).
    pub page_bytes: usize,
    /// Service time for a sequential page read, µs.
    pub seq_read_us: u64,
    /// Service time for a random page read, µs.
    pub rand_read_us: u64,
    /// Service time for a sequential page write, µs.
    pub seq_write_us: u64,
    /// Service time for a random page write, µs.
    pub rand_write_us: u64,
}

impl DiskConfig {
    /// Parameters approximating the paper's Fujitsu 8-inch drives.
    pub fn fujitsu_8inch() -> Self {
        DiskConfig {
            page_bytes: 8192,
            seq_read_us: 6_500,
            rand_read_us: 28_000,
            seq_write_us: 7_000,
            rand_write_us: 30_000,
        }
    }
}

impl Default for DiskConfig {
    fn default() -> Self {
        Self::fujitsu_8inch()
    }
}

/// The most recent head position, used to classify the next access as
/// sequential (same file, next page) or random.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeadPos {
    last: Option<(FileId, usize)>,
}

impl HeadPos {
    /// Classify an access to (`file`, `page`) and advance the head.
    /// Returns true if the access is sequential.
    pub fn access(&mut self, file: FileId, page: usize) -> bool {
        let seq = match self.last {
            Some((f, p)) => f == file && (page == p + 1 || page == p),
            None => false,
        };
        self.last = Some((file, page));
        seq
    }
}

/// One node's disk: a collection of page files.
#[derive(Debug, Clone, Default)]
pub struct Volume {
    files: BTreeMap<FileId, Vec<Page>>,
    next_id: FileId,
}

impl Volume {
    /// An empty volume.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty file and return its id.
    pub fn create_file(&mut self) -> FileId {
        let id = self.next_id;
        self.next_id += 1;
        self.files.insert(id, Vec::new());
        id
    }

    /// Delete a file, returning how many pages it held.
    ///
    /// # Panics
    /// Panics if the file does not exist (double frees are bugs).
    pub fn delete_file(&mut self, file: FileId) -> usize {
        self.files
            .remove(&file)
            .unwrap_or_else(|| panic!("delete of unknown file {file}"))
            .len()
    }

    /// True if the file exists.
    pub fn exists(&self, file: FileId) -> bool {
        self.files.contains_key(&file)
    }

    /// Number of pages in a file.
    pub fn file_pages(&self, file: FileId) -> usize {
        self.files
            .get(&file)
            .unwrap_or_else(|| panic!("unknown file {file}"))
            .len()
    }

    /// Total records across all pages of a file.
    pub fn file_records(&self, file: FileId) -> usize {
        self.files
            .get(&file)
            .unwrap_or_else(|| panic!("unknown file {file}"))
            .iter()
            .map(|p| p.len())
            .sum()
    }

    /// Borrow a page.
    pub fn page(&self, file: FileId, idx: usize) -> &Page {
        &self
            .files
            .get(&file)
            .unwrap_or_else(|| panic!("unknown file {file}"))[idx]
    }

    /// Mutably borrow a page (in-place record updates; the byte-stream
    /// layer uses this for chunk overwrites).
    pub fn page_mut(&mut self, file: FileId, idx: usize) -> &mut Page {
        &mut self
            .files
            .get_mut(&file)
            .unwrap_or_else(|| panic!("unknown file {file}"))[idx]
    }

    /// Append a fully built page to a file; returns its index.
    pub fn append_page(&mut self, file: FileId, page: Page) -> usize {
        let pages = self
            .files
            .get_mut(&file)
            .unwrap_or_else(|| panic!("unknown file {file}"));
        pages.push(page);
        pages.len() - 1
    }

    /// Ids of all live files (ascending).
    pub fn file_ids(&self) -> impl Iterator<Item = FileId> + '_ {
        self.files.keys().copied()
    }

    /// Total pages across all files (for capacity/debug reporting).
    pub fn total_pages(&self) -> usize {
        self.files.values().map(|f| f.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_append_read() {
        let mut v = Volume::new();
        let f = v.create_file();
        let mut p = Page::new(1024);
        p.insert(b"rec").unwrap();
        let idx = v.append_page(f, p);
        assert_eq!(idx, 0);
        assert_eq!(v.file_pages(f), 1);
        assert_eq!(v.file_records(f), 1);
        assert_eq!(v.page(f, 0).get(0), Some(&b"rec"[..]));
    }

    #[test]
    fn file_ids_are_unique_and_ascending() {
        let mut v = Volume::new();
        let a = v.create_file();
        let b = v.create_file();
        let c = v.create_file();
        assert!(a < b && b < c);
        v.delete_file(b);
        let d = v.create_file();
        assert!(d > c, "ids are never reused");
        assert_eq!(v.file_ids().collect::<Vec<_>>(), vec![a, c, d]);
    }

    #[test]
    fn delete_returns_page_count() {
        let mut v = Volume::new();
        let f = v.create_file();
        v.append_page(f, Page::new(256));
        v.append_page(f, Page::new(256));
        assert_eq!(v.delete_file(f), 2);
        assert!(!v.exists(f));
    }

    #[test]
    #[should_panic(expected = "unknown file")]
    fn double_delete_panics() {
        let mut v = Volume::new();
        let f = v.create_file();
        v.delete_file(f);
        v.delete_file(f);
    }

    #[test]
    fn head_position_classifies_access() {
        let mut h = HeadPos::default();
        assert!(!h.access(1, 0), "first access is random (seek to file)");
        assert!(h.access(1, 1), "next page is sequential");
        assert!(h.access(1, 1), "re-read of same page is sequential");
        assert!(!h.access(1, 5), "skip is random");
        assert!(!h.access(2, 6), "different file is random");
        assert!(h.access(2, 7));
    }

    #[test]
    fn total_pages_spans_files() {
        let mut v = Volume::new();
        let a = v.create_file();
        let b = v.create_file();
        v.append_page(a, Page::new(256));
        v.append_page(b, Page::new(256));
        v.append_page(b, Page::new(256));
        assert_eq!(v.total_pages(), 3);
    }
}
