//! B+-tree index.
//!
//! WiSS provided B+ indices alongside sequential files; Gamma used them for
//! indexed selections (e.g. the `joinAselB` benchmark variants select
//! through an index before joining). The tree here is an order-`B` B+-tree
//! with all values in the leaves and leaf chaining for range scans.
//!
//! The join experiments themselves never build indices (all four algorithms
//! scan), so this structure carries no I/O ledger plumbing; the engine
//! charges index I/O at its call sites using the tree's [`BPlusTree::depth`]
//! and leaf counts, mirroring how the paper costs indexed selections.

/// Maximum keys per node. 64 keys ≈ one 8 KB page of (u64 key, u64 ptr)
/// pairs with headers, roughly WiSS's fan-out for integer keys.
const B: usize = 64;
const MIN: usize = B / 2;

#[derive(Debug, Clone)]
enum Node<K, V> {
    Leaf { keys: Vec<K>, vals: Vec<V> },
    Internal { keys: Vec<K>, kids: Vec<Node<K, V>> },
}

impl<K: Ord + Clone, V> Node<K, V> {
    fn is_full(&self) -> bool {
        match self {
            Node::Leaf { keys, .. } => keys.len() >= B,
            Node::Internal { keys, .. } => keys.len() >= B,
        }
    }

    /// Split a full node; returns (separator key, right sibling).
    fn split(&mut self) -> (K, Node<K, V>) {
        match self {
            Node::Leaf { keys, vals } => {
                let right_keys = keys.split_off(MIN);
                let right_vals = vals.split_off(MIN);
                let sep = right_keys[0].clone();
                (
                    sep,
                    Node::Leaf {
                        keys: right_keys,
                        vals: right_vals,
                    },
                )
            }
            Node::Internal { keys, kids } => {
                // Promote keys[MIN]; right gets keys[MIN+1..].
                let mut right_keys = keys.split_off(MIN);
                let sep = right_keys.remove(0);
                let right_kids = kids.split_off(MIN + 1);
                (
                    sep,
                    Node::Internal {
                        keys: right_keys,
                        kids: right_kids,
                    },
                )
            }
        }
    }
}

/// An order-64 B+-tree mapping `K` to one or more `V` (duplicate keys are
/// allowed — join attributes are frequently non-unique).
///
/// ```
/// use gamma_wiss::btree::BPlusTree;
///
/// let mut t = BPlusTree::new();
/// for i in 0..1_000u64 {
///     t.insert(i, i * 2);
/// }
/// assert_eq!(t.get(&7), Some(&14));
/// assert_eq!(t.range(&10, &14).len(), 5);
/// assert_eq!(t.remove(&7), Some(14));
/// assert_eq!(t.get(&7), None);
/// ```
#[derive(Debug, Clone)]
pub struct BPlusTree<K, V> {
    root: Node<K, V>,
    len: usize,
    depth: usize,
}

impl<K: Ord + Clone, V: Clone> Default for BPlusTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone, V: Clone> BPlusTree<K, V> {
    /// An empty tree.
    pub fn new() -> Self {
        BPlusTree {
            root: Node::Leaf {
                keys: Vec::new(),
                vals: Vec::new(),
            },
            len: 0,
            depth: 1,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 = a single leaf). This is the number of page
    /// reads an indexed lookup costs.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Insert an entry (duplicates allowed).
    pub fn insert(&mut self, key: K, val: V) {
        if self.root.is_full() {
            let old_root = std::mem::replace(
                &mut self.root,
                Node::Internal {
                    keys: Vec::new(),
                    kids: Vec::new(),
                },
            );
            let mut left = old_root;
            let (sep, right) = left.split();
            self.root = Node::Internal {
                keys: vec![sep],
                kids: vec![left, right],
            };
            self.depth += 1;
        }
        Self::insert_nonfull(&mut self.root, key, val);
        self.len += 1;
    }

    fn insert_nonfull(node: &mut Node<K, V>, key: K, val: V) {
        match node {
            Node::Leaf { keys, vals } => {
                let pos = keys.partition_point(|k| *k <= key);
                keys.insert(pos, key);
                vals.insert(pos, val);
            }
            Node::Internal { keys, kids } => {
                let mut idx = keys.partition_point(|k| *k <= key);
                if kids[idx].is_full() {
                    let (sep, right) = kids[idx].split();
                    keys.insert(idx, sep.clone());
                    kids.insert(idx + 1, right);
                    if key >= sep {
                        idx += 1;
                    }
                }
                Self::insert_nonfull(&mut kids[idx], key, val);
            }
        }
    }

    /// Remove one entry with `key` (the first in leaf order), returning
    /// its value. Deletion is *lazy*, as in many contemporary systems
    /// including WiSS-era trees: leaves may underflow (search stays
    /// correct) and the root collapses when it loses all separators, so
    /// the tree never grows from deletions and shrinks when emptied.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let removed = Self::remove_rec(&mut self.root, key)?;
        self.len -= 1;
        // Collapse a root that has a single child left.
        loop {
            let replace = match &mut self.root {
                Node::Internal { kids, .. } if kids.len() == 1 => Some(kids.remove(0)),
                _ => None,
            };
            match replace {
                Some(child) => {
                    self.root = child;
                    self.depth -= 1;
                }
                None => break,
            }
        }
        Some(removed)
    }

    fn remove_rec(node: &mut Node<K, V>, key: &K) -> Option<V> {
        match node {
            Node::Leaf { keys, vals } => {
                let pos = keys.partition_point(|k| k < key);
                if pos < keys.len() && keys[pos] == *key {
                    keys.remove(pos);
                    Some(vals.remove(pos))
                } else {
                    None
                }
            }
            Node::Internal { keys, kids } => {
                // Duplicates may straddle a separator equal to `key`: the
                // child at the partition point holds keys >= separator, but
                // an equal key can also end the child to its left. Try the
                // canonical child first, then the left neighbour.
                let idx = keys.partition_point(|k| k <= key);
                if let Some(v) = Self::remove_rec(&mut kids[idx], key) {
                    Self::prune_empty_child(keys, kids, idx);
                    return Some(v);
                }
                if idx > 0 {
                    if let Some(v) = Self::remove_rec(&mut kids[idx - 1], key) {
                        Self::prune_empty_child(keys, kids, idx - 1);
                        return Some(v);
                    }
                }
                None
            }
        }
    }

    /// True when a subtree holds no entries (short-circuits at the first
    /// non-empty leaf; empty subtrees are small because they are pruned
    /// eagerly).
    fn subtree_empty(node: &Node<K, V>) -> bool {
        match node {
            Node::Leaf { keys, .. } => keys.is_empty(),
            Node::Internal { kids, .. } => kids.iter().all(|k| Self::subtree_empty(k)),
        }
    }

    /// Drop a child whose subtree has become completely empty (lazy
    /// deletion's only structural maintenance besides root collapse).
    fn prune_empty_child(keys: &mut Vec<K>, kids: &mut Vec<Node<K, V>>, idx: usize) {
        if kids.len() > 1 && Self::subtree_empty(&kids[idx]) {
            kids.remove(idx);
            // Remove the separator that bounded this child.
            if idx < keys.len() {
                keys.remove(idx);
            } else {
                keys.pop();
            }
        }
    }

    /// First value stored under `key`, if any.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { keys, vals } => {
                    let pos = keys.partition_point(|k| k < key);
                    return if pos < keys.len() && keys[pos] == *key {
                        Some(&vals[pos])
                    } else {
                        None
                    };
                }
                Node::Internal { keys, kids } => {
                    let idx = keys.partition_point(|k| k <= key);
                    node = &kids[idx];
                }
            }
        }
    }

    /// All values in `[lo, hi]`, in key order.
    pub fn range(&self, lo: &K, hi: &K) -> Vec<(&K, &V)> {
        let mut out = Vec::new();
        Self::range_walk(&self.root, lo, hi, &mut out);
        out
    }

    fn range_walk<'a>(node: &'a Node<K, V>, lo: &K, hi: &K, out: &mut Vec<(&'a K, &'a V)>) {
        match node {
            Node::Leaf { keys, vals } => {
                let start = keys.partition_point(|k| k < lo);
                for i in start..keys.len() {
                    if keys[i] > *hi {
                        break;
                    }
                    out.push((&keys[i], &vals[i]));
                }
            }
            Node::Internal { keys, kids } => {
                let start = keys.partition_point(|k| k < lo);
                let end = keys.partition_point(|k| k <= hi);
                for kid in &kids[start..=end.min(kids.len() - 1)] {
                    Self::range_walk(kid, lo, hi, out);
                }
            }
        }
    }

    /// All entries in key order.
    pub fn iter(&self) -> Vec<(&K, &V)> {
        let mut out = Vec::with_capacity(self.len);
        Self::walk(&self.root, &mut out);
        out
    }

    fn walk<'a>(node: &'a Node<K, V>, out: &mut Vec<(&'a K, &'a V)>) {
        match node {
            Node::Leaf { keys, vals } => {
                out.extend(keys.iter().zip(vals.iter()));
            }
            Node::Internal { kids, .. } => {
                for kid in kids {
                    Self::walk(kid, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut t = BPlusTree::new();
        for i in 0..1000u64 {
            t.insert(i * 3, i);
        }
        assert_eq!(t.len(), 1000);
        assert_eq!(t.get(&30), Some(&10));
        assert_eq!(t.get(&31), None);
        assert_eq!(t.get(&2997), Some(&999));
    }

    #[test]
    fn handles_reverse_and_random_insert_order() {
        let mut t = BPlusTree::new();
        for i in (0..2000u64).rev() {
            t.insert(i, i);
        }
        let entries = t.iter();
        assert_eq!(entries.len(), 2000);
        for (i, (k, v)) in entries.iter().enumerate() {
            assert_eq!(**k, i as u64);
            assert_eq!(**v, i as u64);
        }
    }

    #[test]
    fn duplicates_are_kept() {
        let mut t = BPlusTree::new();
        for i in 0..300u64 {
            t.insert(7, i);
        }
        t.insert(3, 0);
        t.insert(9, 0);
        assert_eq!(t.len(), 302);
        let dup = t.range(&7, &7);
        assert_eq!(dup.len(), 300);
    }

    #[test]
    fn range_scan() {
        let mut t = BPlusTree::new();
        for i in 0..500u64 {
            t.insert(i, i * 10);
        }
        let r = t.range(&100, &109);
        assert_eq!(r.len(), 10);
        assert_eq!(*r[0].0, 100);
        assert_eq!(*r[9].1, 1090);
        assert!(t.range(&600, &700).is_empty());
        assert_eq!(t.range(&0, &499).len(), 500);
    }

    #[test]
    fn depth_grows_logarithmically() {
        let mut t = BPlusTree::new();
        assert_eq!(t.depth(), 1);
        for i in 0..100_000u64 {
            t.insert(i, ());
        }
        // Order-64 tree: 100K entries needs about log_32(100000/32) + 1 ≈ 3-4.
        assert!(t.depth() >= 3 && t.depth() <= 5, "depth={}", t.depth());
    }

    #[test]
    fn sorted_iteration_matches_reference() {
        let mut t = BPlusTree::new();
        let mut reference = Vec::new();
        let mut x = 123456789u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = x >> 33;
            t.insert(k, k);
            reference.push(k);
        }
        reference.sort_unstable();
        let got: Vec<u64> = t.iter().iter().map(|(k, _)| **k).collect();
        assert_eq!(got, reference);
    }

    #[test]
    fn remove_existing_and_missing() {
        let mut t = BPlusTree::new();
        for i in 0..2_000u64 {
            t.insert(i, i * 2);
        }
        assert_eq!(t.remove(&500), Some(1_000));
        assert_eq!(t.get(&500), None);
        assert_eq!(t.remove(&500), None);
        assert_eq!(t.len(), 1_999);
        assert_eq!(t.remove(&99_999), None);
        // Everything else still reachable.
        assert_eq!(t.get(&499), Some(&998));
        assert_eq!(t.get(&501), Some(&1_002));
    }

    #[test]
    fn remove_duplicates_one_at_a_time() {
        let mut t = BPlusTree::new();
        for i in 0..10u64 {
            t.insert(7, i);
        }
        for left in (0..10u64).rev() {
            assert!(t.remove(&7).is_some());
            assert_eq!(t.range(&7, &7).len() as u64, left);
        }
        assert_eq!(t.remove(&7), None);
        assert!(t.is_empty());
    }

    #[test]
    fn drain_a_large_tree_completely() {
        let mut t = BPlusTree::new();
        let n = 5_000u64;
        for i in 0..n {
            t.insert(i.wrapping_mul(0x9E3779B97F4A7C15) >> 40, i);
        }
        let keys: Vec<u64> = t.iter().iter().map(|(k, _)| **k).collect();
        let grown_depth = t.depth();
        assert!(grown_depth > 1);
        for k in keys {
            assert!(t.remove(&k).is_some());
        }
        assert!(t.is_empty());
        assert_eq!(t.depth(), 1, "root collapses as the tree drains");
        // And the tree is still usable.
        t.insert(1, 1);
        assert_eq!(t.get(&1), Some(&1));
    }

    #[test]
    fn interleaved_insert_remove_matches_model() {
        let mut t: BPlusTree<u64, u64> = BPlusTree::new();
        let mut model: std::collections::BTreeMap<u64, u64> = Default::default();
        let mut x = 42u64;
        for step in 0..20_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = (x >> 33) % 512;
            if step % 3 == 2 {
                assert_eq!(
                    t.remove(&k).is_some(),
                    model.remove(&k).is_some(),
                    "step {step}"
                );
            } else {
                if model.insert(k, step).is_none() {
                    t.insert(k, step);
                } else {
                    // Model overwrote: mirror by removing then inserting.
                    t.remove(&k);
                    t.insert(k, step);
                }
            }
            if step % 1_000 == 0 {
                assert_eq!(t.len(), model.len(), "step {step}");
            }
        }
        let got: Vec<u64> = t.iter().iter().map(|(k, _)| **k).collect();
        let want: Vec<u64> = model.keys().copied().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_tree_behaviour() {
        let t: BPlusTree<u64, u64> = BPlusTree::new();
        assert!(t.is_empty());
        assert_eq!(t.get(&1), None);
        assert!(t.range(&0, &100).is_empty());
        assert!(t.iter().is_empty());
    }
}
