//! Byte-stream files — "byte-stream files as in UNIX" (paper §2.2).
//!
//! A [`ByteStream`] presents a flat, byte-addressed file over fixed-size
//! page chunks: `read_at` / `write_at` with arbitrary offsets and lengths,
//! growing the file on writes past the end. Every chunk touched is charged
//! through the buffer pool like any other page access.

use gamma_des::Usage;

use crate::disk::{FileId, Volume};
use crate::page::Page;
use crate::pool::BufferPool;

/// A UNIX-style byte-addressed file.
///
/// ```
/// use gamma_des::Usage;
/// use gamma_wiss::{BufferPool, ByteStream, DiskConfig, Volume};
///
/// let mut vol = Volume::new();
/// let mut pool = BufferPool::new(DiskConfig::fujitsu_8inch(), 8);
/// let mut io = Usage::ZERO;
/// let mut f = ByteStream::create(&mut vol, 8192);
/// f.append(&mut vol, &mut pool, &mut io, b"hello world");
/// f.write_at(&mut vol, &mut pool, &mut io, 6, b"gamma");
/// assert_eq!(f.read_at(&vol, &mut pool, &mut io, 0, 64), b"hello gamma");
/// assert!(io.counts.pages_written > 0, "every access is charged");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ByteStream {
    file: FileId,
    len: u64,
    page_bytes: usize,
    chunk: usize,
}

impl ByteStream {
    /// Create an empty byte-stream file on `vol`.
    pub fn create(vol: &mut Volume, page_bytes: usize) -> Self {
        let file = vol.create_file();
        // One fixed-size record per page; the slotted header costs 8 bytes.
        let chunk = Page::capacity_chunk(page_bytes);
        ByteStream {
            file,
            len: 0,
            page_bytes,
            chunk,
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the stream holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Underlying file id.
    pub fn file(&self) -> FileId {
        self.file
    }

    fn ensure_pages(
        &mut self,
        vol: &mut Volume,
        pool: &mut BufferPool,
        usage: &mut Usage,
        upto: u64,
    ) {
        let needed = (upto as usize).div_ceil(self.chunk);
        let mut have = vol.file_pages(self.file);
        while have < needed {
            let mut p = Page::new(self.page_bytes);
            p.insert(&vec![0u8; self.chunk]).expect("chunk fits page");
            let idx = vol.append_page(self.file, p);
            pool.charge_write(self.file, idx, usage);
            have += 1;
        }
    }

    /// Write `data` at byte `offset`, growing the file as needed (holes are
    /// zero-filled). Charges a read-modify-write for partially overwritten
    /// chunks and a plain write for fully covered ones.
    pub fn write_at(
        &mut self,
        vol: &mut Volume,
        pool: &mut BufferPool,
        usage: &mut Usage,
        offset: u64,
        data: &[u8],
    ) {
        if data.is_empty() {
            return;
        }
        let end = offset + data.len() as u64;
        self.ensure_pages(vol, pool, usage, end);
        let mut pos = offset;
        let mut src = 0usize;
        while src < data.len() {
            let page_idx = (pos as usize) / self.chunk;
            let in_page = (pos as usize) % self.chunk;
            let n = (self.chunk - in_page).min(data.len() - src);
            if n < self.chunk {
                // Partial chunk: read-modify-write.
                pool.charge_read(self.file, page_idx, usage);
            }
            let page = vol.page_mut(self.file, page_idx);
            let mut chunk = page.get(0).expect("chunk record").to_vec();
            chunk[in_page..in_page + n].copy_from_slice(&data[src..src + n]);
            page.update(0, &chunk);
            pool.charge_write(self.file, page_idx, usage);
            pos += n as u64;
            src += n;
        }
        self.len = self.len.max(end);
    }

    /// Read `len` bytes at `offset`. Reads past the end are truncated.
    pub fn read_at(
        &self,
        vol: &Volume,
        pool: &mut BufferPool,
        usage: &mut Usage,
        offset: u64,
        len: usize,
    ) -> Vec<u8> {
        if offset >= self.len {
            return Vec::new();
        }
        let end = (offset + len as u64).min(self.len);
        let mut out = Vec::with_capacity((end - offset) as usize);
        let mut pos = offset;
        while pos < end {
            let page_idx = (pos as usize) / self.chunk;
            let in_page = (pos as usize) % self.chunk;
            let n = (self.chunk - in_page).min((end - pos) as usize);
            pool.charge_read(self.file, page_idx, usage);
            let chunk = vol.page(self.file, page_idx).get(0).expect("chunk record");
            out.extend_from_slice(&chunk[in_page..in_page + n]);
            pos += n as u64;
        }
        out
    }

    /// Append `data` at the end of the stream.
    pub fn append(
        &mut self,
        vol: &mut Volume,
        pool: &mut BufferPool,
        usage: &mut Usage,
        data: &[u8],
    ) {
        self.write_at(vol, pool, usage, self.len, data);
    }

    /// Truncate to `len` bytes (never grows).
    pub fn truncate(&mut self, len: u64) {
        self.len = self.len.min(len);
    }

    /// Delete the underlying file.
    pub fn delete(self, vol: &mut Volume, pool: &mut BufferPool) {
        pool.evict_file(self.file);
        vol.delete_file(self.file);
    }
}

impl Page {
    /// Usable chunk size for one-record-per-page byte-stream layout.
    pub fn capacity_chunk(page_bytes: usize) -> usize {
        page_bytes - 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskConfig;

    fn setup() -> (Volume, BufferPool, Usage) {
        (
            Volume::new(),
            BufferPool::new(DiskConfig::fujitsu_8inch(), 8),
            Usage::ZERO,
        )
    }

    #[test]
    fn write_read_roundtrip() {
        let (mut vol, mut pool, mut u) = setup();
        let mut s = ByteStream::create(&mut vol, 8192);
        let data: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
        s.append(&mut vol, &mut pool, &mut u, &data);
        assert_eq!(s.len(), 50_000);
        let got = s.read_at(&vol, &mut pool, &mut u, 0, 50_000);
        assert_eq!(got, data);
    }

    #[test]
    fn random_access_reads() {
        let (mut vol, mut pool, mut u) = setup();
        let mut s = ByteStream::create(&mut vol, 8192);
        let data: Vec<u8> = (0..30_000u32).map(|i| (i % 256) as u8).collect();
        s.append(&mut vol, &mut pool, &mut u, &data);
        // Straddles a chunk boundary (chunk = 8184).
        let got = s.read_at(&vol, &mut pool, &mut u, 8_180, 10);
        assert_eq!(got, &data[8_180..8_190]);
        // Truncated read past end.
        let got = s.read_at(&vol, &mut pool, &mut u, 29_995, 100);
        assert_eq!(got, &data[29_995..]);
        // Entirely past end.
        assert!(s.read_at(&vol, &mut pool, &mut u, 40_000, 4).is_empty());
    }

    #[test]
    fn overwrite_in_place() {
        let (mut vol, mut pool, mut u) = setup();
        let mut s = ByteStream::create(&mut vol, 8192);
        s.append(&mut vol, &mut pool, &mut u, &[1u8; 10_000]);
        s.write_at(&mut vol, &mut pool, &mut u, 5_000, &[9u8; 100]);
        assert_eq!(s.len(), 10_000, "overwrite must not grow");
        let got = s.read_at(&vol, &mut pool, &mut u, 4_999, 102);
        assert_eq!(got[0], 1);
        assert!(got[1..101].iter().all(|&b| b == 9));
        assert_eq!(got[101], 1);
    }

    #[test]
    fn sparse_writes_zero_fill_holes() {
        let (mut vol, mut pool, mut u) = setup();
        let mut s = ByteStream::create(&mut vol, 8192);
        s.write_at(&mut vol, &mut pool, &mut u, 20_000, b"tail");
        assert_eq!(s.len(), 20_004);
        let hole = s.read_at(&vol, &mut pool, &mut u, 9_000, 16);
        assert!(hole.iter().all(|&b| b == 0));
        let tail = s.read_at(&vol, &mut pool, &mut u, 20_000, 4);
        assert_eq!(tail, b"tail");
    }

    #[test]
    fn truncate_then_append() {
        let (mut vol, mut pool, mut u) = setup();
        let mut s = ByteStream::create(&mut vol, 8192);
        s.append(&mut vol, &mut pool, &mut u, b"hello world");
        s.truncate(5);
        assert_eq!(s.len(), 5);
        s.append(&mut vol, &mut pool, &mut u, b"!");
        let got = s.read_at(&vol, &mut pool, &mut u, 0, 16);
        assert_eq!(got, b"hello!");
    }

    #[test]
    fn io_is_charged() {
        let (mut vol, mut pool, mut u) = setup();
        let mut s = ByteStream::create(&mut vol, 8192);
        s.append(&mut vol, &mut pool, &mut u, &[7u8; 30_000]);
        assert!(u.counts.pages_written >= 4, "4 chunks of ~8K");
        let before = u.counts.pages_read;
        pool.clear();
        let _ = s.read_at(&vol, &mut pool, &mut u, 0, 30_000);
        assert!(u.counts.pages_read > before);
    }

    #[test]
    fn delete_frees_file() {
        let (mut vol, mut pool, mut u) = setup();
        let mut s = ByteStream::create(&mut vol, 8192);
        s.append(&mut vol, &mut pool, &mut u, b"x");
        let f = s.file();
        s.delete(&mut vol, &mut pool);
        assert!(!vol.exists(f));
    }
}
