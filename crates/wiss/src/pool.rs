//! Per-node buffer pool and I/O charging.
//!
//! Every disk access in the engine is charged through a [`BufferPool`]:
//! a hit costs nothing (the page is already in a frame), a miss charges the
//! disk service time from [`DiskConfig`], classified as sequential or random
//! by the volume's head-position tracker. Writes are write-through (the
//! write is always charged) and leave the page resident.
//!
//! WiSS's one-page readahead is *not* modelled as an explicit prefetch
//! event: the engine's per-node timing model (`max(cpu, disk, net)`) already
//! overlaps a scan's disk time with its CPU time, which is exactly what
//! readahead bought on the real machine.

use std::collections::HashMap;

use gamma_des::{SimTime, Usage};

use crate::disk::{DiskConfig, FileId, HeadPos};

/// LRU buffer pool for one node's volume.
#[derive(Debug, Clone)]
pub struct BufferPool {
    cfg: DiskConfig,
    capacity: usize,
    /// frame key -> LRU stamp
    frames: HashMap<(FileId, usize), u64>,
    stamp: u64,
    head: HeadPos,
    hits: u64,
    misses: u64,
    /// High-water mark of resident frames since the last [`clear`]
    /// (always on — the scheduler's admission control budgets against it,
    /// metrics or not).
    ///
    /// [`clear`]: BufferPool::clear
    peak: usize,
    /// Owning node, for trace attribution (set by the machine at build).
    node: u16,
}

impl BufferPool {
    /// A pool of `capacity` frames using disk model `cfg`.
    ///
    /// # Panics
    /// Panics on a zero-capacity pool.
    pub fn new(cfg: DiskConfig, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            cfg,
            capacity,
            frames: HashMap::with_capacity(capacity),
            stamp: 0,
            head: HeadPos::default(),
            hits: 0,
            misses: 0,
            peak: 0,
            node: 0,
        }
    }

    /// Tag this pool with its owning node so trace events attribute I/O
    /// to the right track. Pools default to node 0.
    pub fn set_node(&mut self, node: u16) {
        self.node = node;
    }

    /// Disk model in force.
    pub fn config(&self) -> &DiskConfig {
        &self.cfg
    }

    /// (hits, misses) since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Most frames ever resident at once since the last [`BufferPool::clear`].
    pub fn peak_pages(&self) -> usize {
        self.peak
    }

    fn touch(&mut self, key: (FileId, usize)) {
        self.stamp += 1;
        let stamp = self.stamp;
        if self.frames.len() >= self.capacity && !self.frames.contains_key(&key) {
            // Evict the least recently used frame.
            if let Some((&victim, _)) = self.frames.iter().min_by_key(|(_, &s)| s) {
                self.frames.remove(&victim);
                #[cfg(feature = "metrics")]
                gamma_metrics::counter_add("pool_evictions", self.node, "pool", 1);
            }
        }
        self.frames.insert(key, stamp);
        self.peak = self.peak.max(self.frames.len());
        #[cfg(feature = "metrics")]
        gamma_metrics::gauge_max(
            "pool_peak_pages",
            self.node,
            "pool",
            self.frames.len() as u64,
        );
    }

    /// Charge a read of (`file`, `page`). Returns true on a pool hit.
    pub fn charge_read(&mut self, file: FileId, page: usize, usage: &mut Usage) -> bool {
        let key = (file, page);
        if self.frames.contains_key(&key) {
            self.hits += 1;
            #[cfg(feature = "metrics")]
            gamma_metrics::counter_add("pool_hits", self.node, "pool", 1);
            self.touch(key);
            return true;
        }
        self.misses += 1;
        #[cfg(feature = "metrics")]
        gamma_metrics::counter_add("pool_misses", self.node, "pool", 1);
        let seq = self.head.access(file, page);
        let us = if seq {
            self.cfg.seq_read_us
        } else {
            self.cfg.rand_read_us
        };
        usage.disk(SimTime::from_us(us));
        usage.counts.pages_read += 1;
        #[cfg(feature = "metrics")]
        gamma_metrics::counter_add("pages_read", self.node, "pool", 1);
        #[cfg(feature = "trace")]
        gamma_trace::emit(
            self.node,
            usage.total_demand().as_us(),
            gamma_trace::EventKind::DiskRead {
                file: file as u32,
                page: page as u32,
            },
        );
        self.touch(key);
        false
    }

    /// Charge a write of (`file`, `page`). Write-through: always charged.
    pub fn charge_write(&mut self, file: FileId, page: usize, usage: &mut Usage) {
        let seq = self.head.access(file, page);
        let us = if seq {
            self.cfg.seq_write_us
        } else {
            self.cfg.rand_write_us
        };
        usage.disk(SimTime::from_us(us));
        usage.counts.pages_written += 1;
        #[cfg(feature = "metrics")]
        gamma_metrics::counter_add("pages_written", self.node, "pool", 1);
        #[cfg(feature = "trace")]
        gamma_trace::emit(
            self.node,
            usage.total_demand().as_us(),
            gamma_trace::EventKind::DiskWrite {
                file: file as u32,
                page: page as u32,
            },
        );
        self.touch((file, page));
    }

    /// Drop any frames belonging to `file` (called on file deletion).
    pub fn evict_file(&mut self, file: FileId) {
        self.frames.retain(|(f, _), _| *f != file);
    }

    /// Drop every frame (e.g. between experiments to cold-start caches)
    /// and reset the peak high-water mark.
    pub fn clear(&mut self) {
        self.frames.clear();
        self.head = HeadPos::default();
        self.peak = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(frames: usize) -> BufferPool {
        BufferPool::new(DiskConfig::fujitsu_8inch(), frames)
    }

    #[test]
    fn sequential_reads_cost_less_than_random() {
        let mut p = pool(100);
        let mut seq = Usage::ZERO;
        for i in 0..10 {
            p.charge_read(1, i, &mut seq);
        }
        let mut p2 = pool(100);
        let mut rnd = Usage::ZERO;
        for i in 0..10 {
            p2.charge_read(1, i * 7, &mut rnd);
        }
        assert!(seq.disk < rnd.disk);
        assert_eq!(seq.counts.pages_read, 10);
        assert_eq!(rnd.counts.pages_read, 10);
    }

    #[test]
    fn pool_hit_is_free() {
        let mut p = pool(10);
        let mut u = Usage::ZERO;
        p.charge_read(1, 0, &mut u);
        let after_miss = u.disk;
        assert!(p.charge_read(1, 0, &mut u), "second read hits");
        assert!(p.charge_read(1, 0, &mut u));
        assert_eq!(u.disk, after_miss, "hits charge nothing");
        assert_eq!(u.counts.pages_read, 1);
        assert_eq!(p.stats(), (2, 1));
    }

    #[test]
    fn lru_eviction() {
        let mut p = pool(2);
        let mut u = Usage::ZERO;
        p.charge_read(1, 0, &mut u); // frames: {(1,0)}
        p.charge_read(1, 1, &mut u); // frames: {(1,0),(1,1)}
        p.charge_read(1, 0, &mut u); // hit, (1,0) most recent
        p.charge_read(1, 2, &mut u); // evicts (1,1)
        assert!(p.charge_read(1, 0, &mut u), "(1,0) survived");
        assert!(!p.charge_read(1, 1, &mut u), "(1,1) was evicted");
    }

    #[test]
    fn writes_are_write_through_and_cached() {
        let mut p = pool(10);
        let mut u = Usage::ZERO;
        p.charge_write(3, 0, &mut u);
        assert_eq!(u.counts.pages_written, 1);
        assert!(u.disk > SimTime::ZERO);
        let before = u.disk;
        assert!(p.charge_read(3, 0, &mut u), "written page is resident");
        assert_eq!(u.disk, before);
    }

    #[test]
    fn evict_file_clears_only_that_file() {
        let mut p = pool(10);
        let mut u = Usage::ZERO;
        p.charge_read(1, 0, &mut u);
        p.charge_read(2, 0, &mut u);
        p.evict_file(1);
        assert!(!p.charge_read(1, 0, &mut u));
        assert!(p.charge_read(2, 0, &mut u));
    }

    #[test]
    fn clear_resets_everything() {
        let mut p = pool(10);
        let mut u = Usage::ZERO;
        p.charge_read(1, 0, &mut u);
        p.clear();
        assert!(!p.charge_read(1, 0, &mut u), "cold after clear");
    }

    #[test]
    fn peak_tracks_high_water_and_resets_on_clear() {
        let mut p = pool(3);
        let mut u = Usage::ZERO;
        assert_eq!(p.peak_pages(), 0);
        for i in 0..5 {
            p.charge_read(1, i, &mut u);
        }
        assert_eq!(p.peak_pages(), 3, "capped at capacity by eviction");
        p.clear();
        assert_eq!(p.peak_pages(), 0);
        p.charge_read(1, 0, &mut u);
        assert_eq!(p.peak_pages(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_rejected() {
        pool(0);
    }
}
