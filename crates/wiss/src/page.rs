//! Slotted pages.
//!
//! Classic slotted-page layout over a fixed-size byte buffer:
//!
//! ```text
//! +--------+-----------+----------------------+------------------+
//! | nslots | free_end  | slot dir (off,len)*  |  ...free...  |recs|
//! +--------+-----------+----------------------+------------------+
//!   u16        u16        4 bytes per slot      records grow <-
//! ```
//!
//! Records are immutable once inserted (the join engine never updates in
//! place; temp files are written once and scanned). Variable-length records
//! are supported because the composed join output tuples are wider than the
//! source tuples.

use bytes::{Buf, BufMut, BytesMut};

/// Size of the per-page header in bytes.
const HEADER: usize = 4;
/// Size of one slot-directory entry (offset u16 + length u16).
const SLOT: usize = 4;

/// A slotted page of records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    buf: BytesMut,
}

impl Page {
    /// An empty page of `page_bytes` total size (Gamma used 8 KB pages).
    ///
    /// # Panics
    /// Panics if the page is too small to hold the header plus one slot.
    pub fn new(page_bytes: usize) -> Self {
        assert!(
            page_bytes > HEADER + SLOT && page_bytes <= u16::MAX as usize + 1,
            "page size {page_bytes} out of range"
        );
        let mut buf = BytesMut::zeroed(page_bytes);
        // nslots = 0
        buf[0..2].copy_from_slice(&0u16.to_le_bytes());
        // free_end = page_bytes (records grow downward from the end)
        buf[2..4].copy_from_slice(&((page_bytes - 1) as u16).to_le_bytes());
        Page { buf }
    }

    /// Total size of the page in bytes.
    pub fn size(&self) -> usize {
        self.buf.len()
    }

    fn nslots(&self) -> usize {
        u16::from_le_bytes([self.buf[0], self.buf[1]]) as usize
    }

    // free_end stores `page_bytes - 1` at creation so 8192-byte pages fit in
    // a u16; the real free boundary is free_end_raw + 1 when fresh. We track
    // the exact boundary instead via the stored value + 1.
    fn free_end(&self) -> usize {
        u16::from_le_bytes([self.buf[2], self.buf[3]]) as usize + 1
    }

    fn set_nslots(&mut self, n: usize) {
        self.buf[0..2].copy_from_slice(&(n as u16).to_le_bytes());
    }

    fn set_free_end(&mut self, e: usize) {
        self.buf[2..4].copy_from_slice(&((e - 1) as u16).to_le_bytes());
    }

    /// Number of records stored.
    pub fn len(&self) -> usize {
        self.nslots()
    }

    /// True when the page holds no records.
    pub fn is_empty(&self) -> bool {
        self.nslots() == 0
    }

    /// Free bytes remaining for one more record (accounting for its slot).
    pub fn free_space(&self) -> usize {
        let dir_end = HEADER + self.nslots() * SLOT;
        let free = self.free_end().saturating_sub(dir_end);
        free.saturating_sub(SLOT)
    }

    /// True if a record of `len` bytes fits.
    pub fn fits(&self, len: usize) -> bool {
        len <= self.free_space()
    }

    /// Number of records of fixed size `rec` that fit in an empty page of
    /// `page_bytes` — 38 Wisconsin tuples (208 B) per 8 KB page.
    pub fn capacity_for(page_bytes: usize, rec: usize) -> usize {
        (page_bytes - HEADER) / (rec + SLOT)
    }

    /// Insert a record, returning its slot number, or `None` if it does not
    /// fit.
    ///
    /// # Panics
    /// Panics on zero-length records (they would be indistinguishable from
    /// missing slots and never occur in the engine).
    pub fn insert(&mut self, rec: &[u8]) -> Option<usize> {
        assert!(!rec.is_empty(), "zero-length records are not supported");
        if !self.fits(rec.len()) {
            return None;
        }
        let slot = self.nslots();
        let end = self.free_end();
        let start = end - rec.len();
        self.buf[start..end].copy_from_slice(rec);
        let dir = HEADER + slot * SLOT;
        self.buf[dir..dir + 2].copy_from_slice(&(start as u16).to_le_bytes());
        self.buf[dir + 2..dir + 4].copy_from_slice(&(rec.len() as u16).to_le_bytes());
        self.set_nslots(slot + 1);
        self.set_free_end(start);
        Some(slot)
    }

    /// Overwrite the record in `slot` in place. The replacement must have
    /// exactly the original length (used by the byte-stream file layer,
    /// whose chunks are fixed size).
    ///
    /// # Panics
    /// Panics if the slot is out of range or the lengths differ.
    pub fn update(&mut self, slot: usize, rec: &[u8]) {
        assert!(slot < self.nslots(), "slot {slot} out of range");
        let dir = HEADER + slot * SLOT;
        let off = u16::from_le_bytes([self.buf[dir], self.buf[dir + 1]]) as usize;
        let len = u16::from_le_bytes([self.buf[dir + 2], self.buf[dir + 3]]) as usize;
        assert_eq!(len, rec.len(), "in-place update must preserve length");
        self.buf[off..off + len].copy_from_slice(rec);
    }

    /// Record stored in `slot`, or `None` if the slot is out of range.
    pub fn get(&self, slot: usize) -> Option<&[u8]> {
        if slot >= self.nslots() {
            return None;
        }
        let dir = HEADER + slot * SLOT;
        let mut d = &self.buf[dir..dir + 4];
        let off = d.get_u16_le() as usize;
        let len = d.get_u16_le() as usize;
        Some(&self.buf[off..off + len])
    }

    /// Iterate over the records in slot order.
    pub fn records(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.nslots()).map(move |s| self.get(s).expect("slot in range"))
    }

    /// Serialize the page (it already is its on-disk image).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Rebuild a page from its on-disk image.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut buf = BytesMut::with_capacity(bytes.len());
        buf.put_slice(bytes);
        Page { buf }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get_roundtrip() {
        let mut p = Page::new(8192);
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!").unwrap();
        assert_eq!(p.get(a), Some(&b"hello"[..]));
        assert_eq!(p.get(b), Some(&b"world!"[..]));
        assert_eq!(p.len(), 2);
        assert_eq!(p.get(2), None);
    }

    #[test]
    fn records_iterates_in_slot_order() {
        let mut p = Page::new(8192);
        for i in 0..10u8 {
            p.insert(&[i; 16]).unwrap();
        }
        let recs: Vec<_> = p.records().collect();
        assert_eq!(recs.len(), 10);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(*r, &[i as u8; 16]);
        }
    }

    #[test]
    fn fills_to_capacity_exactly() {
        let mut p = Page::new(8192);
        let rec = [7u8; 208];
        let mut n = 0;
        while p.insert(&rec).is_some() {
            n += 1;
        }
        assert_eq!(n, Page::capacity_for(8192, 208));
        assert_eq!(n, 38, "38 Wisconsin tuples per 8 KB page");
        assert!(!p.fits(208));
    }

    #[test]
    fn wide_result_tuples_fit_fewer() {
        // Composed joinABprime output tuples are 416 bytes.
        assert_eq!(Page::capacity_for(8192, 416), 19);
    }

    #[test]
    fn reject_overfull_record_but_allow_large() {
        let mut p = Page::new(256);
        assert!(p.insert(&[0u8; 300]).is_none());
        assert!(p.insert(&[0u8; 200]).is_some());
    }

    #[test]
    fn serialization_roundtrip() {
        let mut p = Page::new(4096);
        p.insert(b"abc").unwrap();
        p.insert(b"defgh").unwrap();
        let q = Page::from_bytes(p.as_bytes());
        assert_eq!(p, q);
        assert_eq!(q.get(1), Some(&b"defgh"[..]));
    }

    #[test]
    fn free_space_decreases_monotonically() {
        let mut p = Page::new(1024);
        let mut last = p.free_space();
        while p.insert(&[1u8; 50]).is_some() {
            let now = p.free_space();
            assert!(now < last);
            last = now;
        }
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_length_records_rejected() {
        Page::new(1024).insert(b"");
    }

    #[test]
    fn small_and_max_page_sizes() {
        let mut p = Page::new(64);
        assert!(p.insert(&[1u8; 32]).is_some());
        let p = Page::new(65536); // u16::MAX + 1, the largest representable
        assert_eq!(p.size(), 65536);
    }
}
