//! Single-server FIFO request queues for a node's disk arm and network
//! interface.
//!
//! The ledgers in [`crate::ledger`] record *when* each disk/NI request was
//! issued (the node's CPU progress at the charge site) and *how long* the
//! device needs to service it. This module replays those request logs
//! through a single-server FIFO queue on the event kernel ([`crate::Sim`])
//! to find out when the device actually finishes — including the queueing
//! delay that appears when requests arrive faster than the device drains
//! them (convoy effects).
//!
//! The legacy timing model (`Usage::busy_time`) assumed a device at 95 %
//! load behaves like one at 5 %: phase time was just
//! `max(cpu, Σ disk service, Σ net service)`. The queued model keeps the
//! full-overlap assumption (read-ahead, DMA) but makes the device a real
//! server: a request issued at time `a` with service time `s` completes at
//! `max(a, previous completion) + s`. The device's completion time for the
//! phase is the finish time of its last request, which is never below the
//! legacy bound (all the work still has to happen) and rises above it when
//! requests bunch up.
//!
//! [`fifo_drain`] replays one phase in isolation (the server starts idle at
//! the phase boundary). For *concurrent* queries that restriction no longer
//! holds: [`SharedServer`] is the cross-phase, cross-query variant that
//! lives on the absolute virtual clock and carries its backlog between
//! phases — the gamma-sched engine owns one per device (DESIGN.md §12).

use crate::time::SimTime;

/// One device request: issued at `issue` (relative to the phase start, on
/// the issuing node's CPU-progress clock), needing `service` device time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Request {
    /// When the request was handed to the device, relative to phase start.
    pub issue: SimTime,
    /// Device service time (seek + rotate + transfer, or wire occupancy).
    pub service: SimTime,
}

/// Per-node request logs, one per queued device.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RequestLog {
    /// Disk-arm requests in issue order.
    pub disk: Vec<Request>,
    /// Network-interface requests in issue order.
    pub net: Vec<Request>,
}

impl RequestLog {
    /// Log with no requests.
    pub const EMPTY: RequestLog = RequestLog {
        disk: Vec::new(),
        net: Vec::new(),
    };

    /// True when neither device has any logged request.
    pub fn is_empty(&self) -> bool {
        self.disk.is_empty() && self.net.is_empty()
    }
}

/// Result of draining one device's request log through its FIFO queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// When the device finishes its last request (phase-relative). Zero for
    /// an empty log.
    pub completion: SimTime,
    /// Total time requests spent waiting in the queue before service began.
    pub wait: SimTime,
    /// Longest single wait.
    pub max_wait: SimTime,
    /// Total service demand (Σ service; equals the legacy ledger field).
    pub service: SimTime,
    /// Number of requests serviced.
    pub requests: u64,
}

/// Drain a request log through a single-server FIFO queue and report when
/// the device finishes.
///
/// Requests are served in issue order (ties broken by log order). The log
/// produced by a ledger is already issue-ordered because issue offsets are
/// the node's monotone CPU progress, so the queue reduces to the closed-form
/// recurrence `start = max(issue, previous completion)` — no event kernel,
/// no allocation. The event-kernel formulation survives as a test-only
/// cross-check (`fold_drain_matches_event_kernel`), and this is the same
/// recurrence [`SharedServer`] and [`fold_waits`] use.
pub fn fifo_drain(requests: &[Request]) -> QueueStats {
    let mut stats = QueueStats {
        requests: requests.len() as u64,
        ..QueueStats::default()
    };
    let mut prev = SimTime::ZERO;
    for r in requests {
        let start = prev.max(r.issue);
        let wait = start - r.issue; // SimTime::sub saturates; starts are never early
        stats.wait += wait;
        stats.max_wait = stats.max_wait.max(wait);
        stats.service += r.service;
        prev = start + r.service;
    }
    stats.completion = prev; // ZERO for an empty log
    stats
}

/// A clock-driven single-server FIFO queue that persists across phases and
/// queries.
///
/// [`fifo_drain`] replays one phase's request log in isolation: the server
/// starts idle and its clock is phase-relative. When many queries share one
/// machine that is no longer enough — a disk arm busy finishing query A's
/// partition phase delays the first read of query B's build phase. A
/// `SharedServer` models exactly that: it lives on the *absolute* virtual
/// clock, remembers when it frees up (`free_at`), and serves each submitted
/// request at `max(arrival, free_at)`. Its [`QueueStats`] accumulate over
/// everything it ever served, so cross-phase and cross-query convoy waits
/// are visible in one place.
///
/// Callers must submit requests in non-decreasing arrival order (FIFO is
/// defined by arrival order; the scheduler's CPU-convoy dispatch guarantees
/// this per device — see DESIGN.md §12). A fresh server with one phase's
/// log submitted at its issue offsets reproduces [`fifo_drain`] exactly
/// (see the `shared_server_matches_fifo_drain` test).
#[derive(Debug, Clone, Default)]
pub struct SharedServer {
    free_at: SimTime,
    last_arrival: SimTime,
    stats: QueueStats,
}

impl SharedServer {
    /// An idle server at virtual time zero.
    pub fn new() -> Self {
        SharedServer::default()
    }

    /// When the server finishes everything submitted so far.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Lifetime statistics over every request served.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Serve one request arriving at absolute time `arrival` needing
    /// `service` device time; returns its completion time. Service begins at
    /// `max(arrival, free_at)` — the single-server FIFO recurrence.
    pub fn submit(&mut self, arrival: SimTime, service: SimTime) -> SimTime {
        self.submit_span(arrival, service).completion
    }

    /// Like [`SharedServer::submit`], but report the request's full
    /// lifecycle — when it queued, when service began, when it completed —
    /// so observers (the gamma-prof flight recorder) can sample queue depth
    /// and busy time without re-deriving the FIFO recurrence.
    pub fn submit_span(&mut self, arrival: SimTime, service: SimTime) -> ServiceSpan {
        debug_assert!(
            arrival >= self.last_arrival,
            "FIFO server requires non-decreasing arrivals ({arrival} after {})",
            self.last_arrival
        );
        self.last_arrival = arrival;
        let start = self.free_at.max(arrival);
        let wait = start - arrival;
        self.stats.wait += wait;
        self.stats.max_wait = self.stats.max_wait.max(wait);
        self.stats.service += service;
        self.stats.requests += 1;
        self.free_at = start + service;
        self.stats.completion = self.free_at;
        ServiceSpan {
            arrival,
            start,
            completion: self.free_at,
        }
    }
}

/// The lifecycle of one request through a [`SharedServer`]: it queued at
/// `arrival`, was served over `[start, completion)`, and waited
/// `start - arrival` in between.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceSpan {
    /// When the request joined the queue.
    pub arrival: SimTime,
    /// When service began (`max(arrival, free_at)` at submission).
    pub start: SimTime,
    /// When service finished.
    pub completion: SimTime,
}

impl ServiceSpan {
    /// Time spent queued before service began.
    pub fn wait(&self) -> SimTime {
        self.start - self.arrival
    }

    /// Service duration.
    pub fn service(&self) -> SimTime {
        self.completion - self.start
    }
}

/// Walk a request log through the same FIFO discipline as [`fifo_drain`]
/// without the event kernel, calling `f(wait, service)` for each request
/// in order. A straight fold suffices because a single-server FIFO queue
/// over an issue-ordered log is `start = max(issue, previous completion)`
/// — the per-request decomposition the metrics layer uses to fill its
/// wait/service histograms (their sums reconcile exactly with the
/// [`QueueStats`] totals; see the `fold_matches_drain` test).
pub fn fold_waits(requests: &[Request], mut f: impl FnMut(SimTime, SimTime)) {
    let mut prev = SimTime::ZERO;
    for r in requests {
        let start = prev.max(r.issue);
        f(start - r.issue, r.service);
        prev = start + r.service;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Sim;
    use std::collections::VecDeque;

    /// The original event-driven formulation of [`fifo_drain`]: requests
    /// arrive on the kernel's clock and park in a FIFO while the server is
    /// busy. Kept as the reference implementation the closed-form fold is
    /// checked against.
    struct Server {
        queued: VecDeque<Request>,
        busy: bool,
        stats: QueueStats,
    }

    fn arrive(sim: &mut Sim<Server>, req: Request) {
        if sim.state.busy {
            sim.state.queued.push_back(req);
        } else {
            begin_service(sim, req);
        }
    }

    fn begin_service(sim: &mut Sim<Server>, req: Request) {
        let wait = sim.now() - req.issue;
        sim.state.busy = true;
        sim.state.stats.wait += wait;
        sim.state.stats.max_wait = sim.state.stats.max_wait.max(wait);
        sim.schedule_in(req.service, complete);
    }

    fn complete(sim: &mut Sim<Server>) {
        sim.state.stats.completion = sim.now();
        match sim.state.queued.pop_front() {
            Some(next) => begin_service(sim, next),
            None => sim.state.busy = false,
        }
    }

    fn fifo_drain_kernel(requests: &[Request]) -> QueueStats {
        let mut sim = Sim::untraced(Server {
            queued: VecDeque::with_capacity(requests.len()),
            busy: false,
            stats: QueueStats {
                requests: requests.len() as u64,
                ..QueueStats::default()
            },
        });
        for &req in requests {
            sim.state.stats.service += req.service;
            sim.schedule_at(req.issue, move |s| arrive(s, req));
        }
        sim.run_until_idle();
        assert!(!sim.state.busy && sim.state.queued.is_empty());
        sim.state.stats
    }

    #[test]
    fn fold_drain_matches_event_kernel() {
        let logs: Vec<Vec<Request>> = vec![
            vec![],
            vec![req(40, 10)],
            vec![req(0, 10), req(100, 10), req(200, 10)],
            vec![req(0, 10), req(0, 10), req(0, 10)],
            vec![req(100, 10), req(110, 10)],
            vec![req(0, 7), req(3, 2), req(3, 9), req(20, 1), req(21, 30)],
            vec![req(0, 1); 64],
        ];
        for log in logs {
            assert_eq!(fifo_drain(&log), fifo_drain_kernel(&log), "{log:?}");
        }
    }

    fn req(issue: u64, service: u64) -> Request {
        Request {
            issue: SimTime::from_us(issue),
            service: SimTime::from_us(service),
        }
    }

    #[test]
    fn empty_log_is_all_zero() {
        let s = fifo_drain(&[]);
        assert_eq!(s, QueueStats::default());
    }

    #[test]
    fn single_request_completes_after_service() {
        let s = fifo_drain(&[req(40, 10)]);
        assert_eq!(s.completion, SimTime::from_us(50));
        assert_eq!(s.wait, SimTime::ZERO);
        assert_eq!(s.service, SimTime::from_us(10));
        assert_eq!(s.requests, 1);
    }

    #[test]
    fn spaced_requests_never_wait() {
        // Arrivals slower than service: the queue is always empty.
        let s = fifo_drain(&[req(0, 10), req(100, 10), req(200, 10)]);
        assert_eq!(s.completion, SimTime::from_us(210));
        assert_eq!(s.wait, SimTime::ZERO);
    }

    #[test]
    fn burst_serialises_and_waits() {
        // Three requests issued at once: the second waits 10, the third 20.
        let s = fifo_drain(&[req(0, 10), req(0, 10), req(0, 10)]);
        assert_eq!(s.completion, SimTime::from_us(30));
        assert_eq!(s.wait, SimTime::from_us(30));
        assert_eq!(s.max_wait, SimTime::from_us(20));
    }

    #[test]
    fn idle_gap_delays_completion_past_service_sum() {
        // The server idles 0..100, so completion exceeds Σ service even
        // though nothing ever waits.
        let s = fifo_drain(&[req(100, 10), req(110, 10)]);
        assert_eq!(s.completion, SimTime::from_us(120));
        assert_eq!(s.wait, SimTime::ZERO);
        assert_eq!(s.service, SimTime::from_us(20));
    }

    #[test]
    fn completion_never_below_total_service() {
        let logs: Vec<Vec<Request>> = vec![
            vec![req(0, 5), req(1, 5), req(2, 5)],
            vec![req(7, 3), req(7, 3), req(50, 1)],
            vec![req(0, 1); 64],
        ];
        for log in logs {
            let s = fifo_drain(&log);
            assert!(s.completion >= s.service, "{s:?}");
        }
    }

    #[test]
    fn fold_matches_drain() {
        let logs: Vec<Vec<Request>> = vec![
            vec![],
            vec![req(40, 10)],
            vec![req(0, 10), req(100, 10), req(200, 10)],
            vec![req(0, 10), req(0, 10), req(0, 10)],
            vec![req(100, 10), req(110, 10)],
            vec![req(0, 7), req(3, 2), req(3, 9), req(20, 1), req(21, 30)],
            vec![req(0, 1); 64],
        ];
        for log in logs {
            let drained = fifo_drain(&log);
            let mut wait = SimTime::ZERO;
            let mut max_wait = SimTime::ZERO;
            let mut service = SimTime::ZERO;
            let mut n = 0;
            fold_waits(&log, |w, s| {
                wait += w;
                max_wait = max_wait.max(w);
                service += s;
                n += 1;
            });
            assert_eq!(wait, drained.wait, "{log:?}");
            assert_eq!(max_wait, drained.max_wait, "{log:?}");
            assert_eq!(service, drained.service, "{log:?}");
            assert_eq!(n, drained.requests, "{log:?}");
        }
    }

    #[test]
    fn shared_server_matches_fifo_drain() {
        let logs: Vec<Vec<Request>> = vec![
            vec![],
            vec![req(40, 10)],
            vec![req(0, 10), req(100, 10), req(200, 10)],
            vec![req(0, 10), req(0, 10), req(0, 10)],
            vec![req(100, 10), req(110, 10)],
            vec![req(0, 7), req(3, 2), req(3, 9), req(20, 1), req(21, 30)],
            vec![req(0, 1); 64],
        ];
        for log in logs {
            let drained = fifo_drain(&log);
            let mut server = SharedServer::new();
            for r in &log {
                server.submit(r.issue, r.service);
            }
            assert_eq!(server.stats(), drained, "{log:?}");
            assert_eq!(server.free_at(), drained.completion, "{log:?}");
        }
    }

    #[test]
    fn shared_server_carries_backlog_across_phases() {
        // Phase 1 leaves the device busy until 120; phase 2's first request
        // arrives at 50 and must wait 70 even though *its* phase just began.
        let mut server = SharedServer::new();
        server.submit(SimTime::from_us(0), SimTime::from_us(120));
        let done = server.submit(SimTime::from_us(50), SimTime::from_us(10));
        assert_eq!(done, SimTime::from_us(130));
        assert_eq!(server.stats().wait, SimTime::from_us(70));
        assert_eq!(server.stats().max_wait, SimTime::from_us(70));
        assert_eq!(server.stats().requests, 2);
    }

    #[test]
    fn submit_span_reports_the_lifecycle() {
        let mut server = SharedServer::new();
        let first = server.submit_span(SimTime::from_us(10), SimTime::from_us(30));
        assert_eq!(first.arrival, SimTime::from_us(10));
        assert_eq!(first.start, SimTime::from_us(10));
        assert_eq!(first.completion, SimTime::from_us(40));
        assert_eq!(first.wait(), SimTime::ZERO);
        assert_eq!(first.service(), SimTime::from_us(30));
        // Second request arrives while the server is busy: waits 15.
        let second = server.submit_span(SimTime::from_us(25), SimTime::from_us(5));
        assert_eq!(second.start, SimTime::from_us(40));
        assert_eq!(second.completion, SimTime::from_us(45));
        assert_eq!(second.wait(), SimTime::from_us(15));
        // `submit` is exactly `submit_span().completion`.
        assert_eq!(
            server.submit(SimTime::from_us(50), SimTime::from_us(1)),
            SimTime::from_us(51)
        );
    }

    #[test]
    fn shared_server_idles_between_bursts() {
        let mut server = SharedServer::new();
        server.submit(SimTime::from_us(0), SimTime::from_us(10));
        let done = server.submit(SimTime::from_us(100), SimTime::from_us(10));
        assert_eq!(done, SimTime::from_us(110));
        assert_eq!(server.stats().wait, SimTime::ZERO);
    }

    #[test]
    fn fifo_completion_times_are_nondecreasing() {
        // Re-drain prefixes: each added request can only push completion out.
        let log = [req(0, 7), req(3, 2), req(3, 9), req(20, 1), req(21, 30)];
        let mut prev = SimTime::ZERO;
        for n in 0..=log.len() {
            let s = fifo_drain(&log[..n]);
            assert!(s.completion >= prev);
            prev = s.completion;
        }
    }
}
