//! Resource ledgers.
//!
//! Every operator in the join engine executes its work *for real* on real
//! tuples, and charges the mechanical cost of each step (hashing a tuple,
//! reading a page, sending a packet, …) to a [`Usage`] ledger belonging to
//! one (node, phase) pair. The ledger is therefore both the *clock input*
//! (how long did this node spend in this phase) and the *instrumentation
//! output* (how many page I/Os, packets, probes, … happened), which is how
//! the benchmark harness explains every curve it reproduces.

use std::ops::{Add, AddAssign};

use crate::queue::{self, QueueStats, Request, RequestLog};
use crate::time::SimTime;

/// Pure event counters. These do not contribute to time directly — the
/// [`Usage`] time fields do — but they are what the paper's analysis talks
/// about (number of I/Os, short-circuited messages, probe chain lengths…)
/// and the tests assert on them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts {
    /// 8 KB pages read from a simulated disk volume.
    pub pages_read: u64,
    /// 8 KB pages written to a simulated disk volume.
    pub pages_written: u64,
    /// Network packets placed on the token ring by this node.
    pub packets_sent: u64,
    /// Network packets received from the token ring by this node.
    pub packets_recv: u64,
    /// Messages short-circuited because sender and receiver share a node.
    pub msgs_shortcircuit: u64,
    /// Tuples consumed by the node's operator(s) in this phase.
    pub tuples_in: u64,
    /// Tuples emitted by the node's operator(s) in this phase.
    pub tuples_out: u64,
    /// Hash-table insertions.
    pub hash_inserts: u64,
    /// Hash-table probe operations.
    pub hash_probes: u64,
    /// Key comparisons (probe chains, sort comparisons, merge comparisons).
    pub comparisons: u64,
    /// Tuples eliminated by a bit-vector filter.
    pub filter_drops: u64,
    /// Scheduler control messages processed.
    pub control_msgs: u64,
    /// Tuples evicted to an overflow file by the Simple-hash heuristic.
    pub overflow_evictions: u64,
    /// 8 KB pages of build input re-written to an overflow spool by the
    /// dynamic spill/restore path (the residue that stayed spilled).
    pub pages_spilled: u64,
    /// 8 KB pages of spilled build input read back and re-admitted to the
    /// in-memory hash table by the dynamic spill/restore path.
    pub pages_restored: u64,
}

impl Counts {
    /// Ledger with all counters zero.
    pub const ZERO: Counts = Counts {
        pages_read: 0,
        pages_written: 0,
        packets_sent: 0,
        packets_recv: 0,
        msgs_shortcircuit: 0,
        tuples_in: 0,
        tuples_out: 0,
        hash_inserts: 0,
        hash_probes: 0,
        comparisons: 0,
        filter_drops: 0,
        control_msgs: 0,
        overflow_evictions: 0,
        pages_spilled: 0,
        pages_restored: 0,
    };

    /// Total disk page operations.
    pub fn page_ios(&self) -> u64 {
        self.pages_read + self.pages_written
    }
}

impl Add for Counts {
    type Output = Counts;
    fn add(self, r: Counts) -> Counts {
        Counts {
            pages_read: self.pages_read + r.pages_read,
            pages_written: self.pages_written + r.pages_written,
            packets_sent: self.packets_sent + r.packets_sent,
            packets_recv: self.packets_recv + r.packets_recv,
            msgs_shortcircuit: self.msgs_shortcircuit + r.msgs_shortcircuit,
            tuples_in: self.tuples_in + r.tuples_in,
            tuples_out: self.tuples_out + r.tuples_out,
            hash_inserts: self.hash_inserts + r.hash_inserts,
            hash_probes: self.hash_probes + r.hash_probes,
            comparisons: self.comparisons + r.comparisons,
            filter_drops: self.filter_drops + r.filter_drops,
            control_msgs: self.control_msgs + r.control_msgs,
            overflow_evictions: self.overflow_evictions + r.overflow_evictions,
            pages_spilled: self.pages_spilled + r.pages_spilled,
            pages_restored: self.pages_restored + r.pages_restored,
        }
    }
}

impl AddAssign for Counts {
    fn add_assign(&mut self, r: Counts) {
        *self = *self + r;
    }
}

/// Resource demand accumulated by one node during one phase.
///
/// The three time fields model the node's three (overlappable) resources:
/// its CPU, its disk arm, and its network interface. Gamma overlapped disk
/// I/O with computation via read-ahead and overlapped network DMA with
/// computation, so a node's phase time is *not* the sum of the three. Under
/// the legacy model it is their maximum ([`Usage::busy_time`]); under the
/// queued model each disk/NI charge is also logged as a request (issued at
/// the node's CPU progress) and the devices are real FIFO servers — see
/// [`Usage::queue_timing`] and [`crate::queue`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Usage {
    /// CPU demand.
    pub cpu: SimTime,
    /// Disk service demand (arm + transfer).
    pub disk: SimTime,
    /// Network-interface service demand (per-packet wire occupancy at the
    /// NI; protocol *CPU* cost is charged to `cpu`).
    pub net: SimTime,
    /// Bytes this node placed on the shared ring (for the shared-bandwidth
    /// bound computed at the phase level).
    pub ring_bytes: u64,
    /// Event counters.
    pub counts: Counts,
    /// Per-device request logs (issue offset + service time per charge),
    /// the input to the queued timing model.
    pub reqs: RequestLog,
    /// Time disk requests spent queued before service. Filled in by
    /// [`Usage::annotate_queue_waits`] when a phase is sealed; zero until
    /// then (and always zero under the legacy model).
    pub disk_wait: SimTime,
    /// Time NI requests spent queued before service (see [`Usage::disk_wait`]).
    pub net_wait: SimTime,
}

/// Queue-model completion times for one node's phase: the drained
/// [`QueueStats`] for each device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeQueueTiming {
    /// Disk-arm queue result.
    pub disk: QueueStats,
    /// Network-interface queue result.
    pub net: QueueStats,
}

impl Usage {
    /// Ledger with zero demand.
    pub const ZERO: Usage = Usage {
        cpu: SimTime::ZERO,
        disk: SimTime::ZERO,
        net: SimTime::ZERO,
        ring_bytes: 0,
        counts: Counts::ZERO,
        reqs: RequestLog::EMPTY,
        disk_wait: SimTime::ZERO,
        net_wait: SimTime::ZERO,
    };

    /// Charge CPU time.
    #[inline]
    pub fn cpu(&mut self, t: SimTime) {
        self.cpu += t;
    }

    /// Charge disk service time. The charge is also logged as a disk
    /// request issued at the node's current CPU progress — the read-ahead /
    /// write-behind process hands the request to the arm and computation
    /// continues.
    #[inline]
    pub fn disk(&mut self, t: SimTime) {
        self.reqs.disk.push(Request {
            issue: self.cpu,
            service: t,
        });
        self.disk += t;
    }

    /// Charge network-interface time and ring occupancy; logged as an NI
    /// request issued at the node's current CPU progress (DMA overlaps with
    /// computation).
    #[inline]
    pub fn net(&mut self, t: SimTime, bytes: u64) {
        self.reqs.net.push(Request {
            issue: self.cpu,
            service: t,
        });
        self.net += t;
        self.ring_bytes += bytes;
    }

    /// The node's completion time for this phase under the legacy
    /// overlapped-resources model: the slowest of its three resources.
    /// A device at 95 % load costs exactly what one at 5 % does, so no
    /// convoy effects — [`Usage::queued_busy_time`] fixes that.
    ///
    /// The paper observes local joins run the CPUs at 100% utilisation —
    /// i.e. `cpu` is the max — while remote configurations drop the disk
    /// nodes to ~60%, which this model reproduces.
    #[inline]
    pub fn busy_time(&self) -> SimTime {
        self.cpu.max(self.disk).max(self.net)
    }

    /// Drain this node's request logs through per-device FIFO queues
    /// (see [`crate::queue`]).
    ///
    /// A ledger whose service time was accumulated without request logging
    /// (e.g. a hand-built total) falls back to a single request issued at
    /// time zero, which reproduces the legacy bound for that device.
    pub fn queue_timing(&self) -> NodeQueueTiming {
        let drain = |log: &[Request], total: SimTime| -> QueueStats {
            if log.is_empty() && total > SimTime::ZERO {
                return queue::fifo_drain(&[Request {
                    issue: SimTime::ZERO,
                    service: total,
                }]);
            }
            queue::fifo_drain(log)
        };
        NodeQueueTiming {
            disk: drain(&self.reqs.disk, self.disk),
            net: drain(&self.reqs.net, self.net),
        }
    }

    /// The node's completion time under the queued model: CPU overlapped
    /// against each device's *queued* completion instead of its bare
    /// service total. Never below [`Usage::busy_time`].
    pub fn queued_busy_time(&self) -> SimTime {
        let q = self.queue_timing();
        self.cpu
            .max(q.disk.completion.max(self.disk))
            .max(q.net.completion.max(self.net))
    }

    /// Record the per-device queue waits on the ledger (for the report and
    /// trace layers to attribute queueing delay per node and phase) and
    /// return the drained timing.
    pub fn annotate_queue_waits(&mut self) -> NodeQueueTiming {
        let q = self.queue_timing();
        self.disk_wait = q.disk.wait;
        self.net_wait = q.net.wait;
        q
    }

    /// Sum of the resource demands (used by utilisation reporting only).
    #[inline]
    pub fn total_demand(&self) -> SimTime {
        self.cpu + self.disk + self.net
    }

    /// Emit per-request disk/NI wait and service histograms for this
    /// ledger into `reg`, attributed to `(node, phase)`. Replays the same
    /// FIFO discipline per request via [`queue::fold_waits`], so each
    /// device's `*_service_us` histogram sums exactly to the ledger's
    /// service total and `*_wait_us` sums exactly to the annotated wait —
    /// every charged microsecond stays attributable. Mirrors the
    /// unlogged-total fallback of [`Usage::queue_timing`] (one synthetic
    /// request at issue zero).
    #[cfg(feature = "metrics")]
    pub fn meter_device_requests(&self, reg: &mut gamma_metrics::Registry, node: u16, phase: u32) {
        let mut meter = |log: &[Request], total: SimTime, wait: &'static str, svc: &'static str| {
            let synthetic = [Request {
                issue: SimTime::ZERO,
                service: total,
            }];
            let log = if log.is_empty() && total > SimTime::ZERO {
                &synthetic[..]
            } else {
                log
            };
            queue::fold_waits(log, |w, s| {
                reg.observe_at(wait, phase, node, "", w.as_us());
                reg.observe_at(svc, phase, node, "", s.as_us());
            });
        };
        meter(
            &self.reqs.disk,
            self.disk,
            "disk_request_wait_us",
            "disk_request_service_us",
        );
        meter(
            &self.reqs.net,
            self.net,
            "net_request_wait_us",
            "net_request_service_us",
        );
    }
}

impl Add for Usage {
    type Output = Usage;
    fn add(mut self, r: Usage) -> Usage {
        // Request logs from different (node, phase) ledgers target
        // different servers; the concatenation keeps the totals right for
        // demand aggregation but is not meaningful queue input.
        self.reqs.disk.extend_from_slice(&r.reqs.disk);
        self.reqs.net.extend_from_slice(&r.reqs.net);
        Usage {
            cpu: self.cpu + r.cpu,
            disk: self.disk + r.disk,
            net: self.net + r.net,
            ring_bytes: self.ring_bytes + r.ring_bytes,
            counts: self.counts + r.counts,
            reqs: self.reqs,
            disk_wait: self.disk_wait + r.disk_wait,
            net_wait: self.net_wait + r.net_wait,
        }
    }
}

impl AddAssign for Usage {
    fn add_assign(&mut self, r: Usage) {
        let lhs = std::mem::take(self);
        *self = lhs + r;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_time_is_resource_max() {
        let mut u = Usage::ZERO;
        u.cpu(SimTime::from_us(300));
        u.disk(SimTime::from_us(500));
        u.net(SimTime::from_us(100), 2048);
        assert_eq!(u.busy_time(), SimTime::from_us(500));
        assert_eq!(u.ring_bytes, 2048);
        assert_eq!(u.total_demand(), SimTime::from_us(900));
    }

    #[test]
    fn usage_addition_accumulates_everything() {
        let mut a = Usage::ZERO;
        a.cpu(SimTime::from_us(10));
        a.counts.pages_read = 3;
        let mut b = Usage::ZERO;
        b.cpu(SimTime::from_us(5));
        b.net(SimTime::from_us(7), 64);
        b.counts.pages_read = 2;
        b.counts.packets_sent = 1;
        let c = a + b;
        assert_eq!(c.cpu, SimTime::from_us(15));
        assert_eq!(c.net, SimTime::from_us(7));
        assert_eq!(c.ring_bytes, 64);
        assert_eq!(c.counts.pages_read, 5);
        assert_eq!(c.counts.packets_sent, 1);
        assert_eq!(c.reqs.net.len(), 1);
    }

    #[test]
    fn charges_log_requests_at_cpu_progress() {
        let mut u = Usage::ZERO;
        u.cpu(SimTime::from_us(100));
        u.disk(SimTime::from_us(20));
        u.cpu(SimTime::from_us(50));
        u.net(SimTime::from_us(5), 128);
        assert_eq!(
            u.reqs.disk,
            vec![Request {
                issue: SimTime::from_us(100),
                service: SimTime::from_us(20),
            }]
        );
        assert_eq!(u.reqs.net[0].issue, SimTime::from_us(150));
    }

    #[test]
    fn queued_busy_never_below_legacy() {
        let mut u = Usage::ZERO;
        for _ in 0..10 {
            u.cpu(SimTime::from_us(10));
            u.disk(SimTime::from_us(9));
        }
        assert!(u.queued_busy_time() >= u.busy_time());
    }

    #[test]
    fn unlogged_totals_fall_back_to_legacy_bound() {
        // A hand-assembled ledger with service totals but no request log
        // behaves like one request issued at time zero.
        let u = Usage {
            cpu: SimTime::from_us(40),
            disk: SimTime::from_us(70),
            ..Usage::ZERO
        };
        let q = u.queue_timing();
        assert_eq!(q.disk.completion, SimTime::from_us(70));
        assert_eq!(q.disk.wait, SimTime::ZERO);
        assert_eq!(u.queued_busy_time(), u.busy_time());
    }

    #[test]
    fn annotate_records_waits() {
        let mut u = Usage::ZERO;
        // Three disk requests issued back-to-back at cpu=0: 2nd waits 10,
        // 3rd waits 20.
        for _ in 0..3 {
            u.disk(SimTime::from_us(10));
        }
        let q = u.annotate_queue_waits();
        assert_eq!(u.disk_wait, SimTime::from_us(30));
        assert_eq!(q.disk.completion, SimTime::from_us(30));
        assert_eq!(u.net_wait, SimTime::ZERO);
    }

    #[test]
    fn counts_page_ios() {
        let c = Counts {
            pages_read: 4,
            pages_written: 6,
            ..Counts::ZERO
        };
        assert_eq!(c.page_ios(), 10);
    }

    #[test]
    fn add_assign_matches_add() {
        let mut a = Usage::ZERO;
        a.cpu(SimTime::from_us(1));
        let mut b = a.clone();
        b += a.clone();
        assert_eq!(b, a.clone() + a);
    }

    #[test]
    fn zero_is_identity() {
        let mut u = Usage::ZERO;
        u.disk(SimTime::from_ms(2));
        u.counts.hash_probes = 9;
        assert_eq!(u.clone() + Usage::ZERO, u);
    }
}
