//! Virtual time for the simulator.
//!
//! All simulated durations are expressed in microseconds, which is fine
//! grained enough for the per-tuple CPU costs of a 0.6-MIPS VAX 11/750 and
//! coarse enough that a full benchmark sweep stays within `u64` range
//! (2^64 µs is ~585,000 years of virtual time).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in (or span of) virtual time, in microseconds.
///
/// `SimTime` is used both as an absolute clock value and as a duration;
/// the arithmetic is saturating on subtraction so that cost-model math can
/// never panic on underflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The zero point / empty duration.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the simulation epoch.
    #[inline]
    pub const fn as_us(self) -> u64 {
        self.0
    }

    /// Value in (fractional) milliseconds.
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in (fractional) seconds — the unit the paper reports.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Larger of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Smaller of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Saturating difference (`self - other`, clamped at zero).
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Scale a duration by an integer factor.
    #[inline]
    pub fn scaled(self, factor: u64) -> SimTime {
        SimTime(self.0 * factor)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        SimTime(iter.map(|t| t.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_ms())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_ms(2_000));
        assert_eq!(SimTime::from_ms(3), SimTime::from_us(3_000));
        assert_eq!(SimTime::from_us(42).as_us(), 42);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_us(100);
        let b = SimTime::from_us(40);
        assert_eq!(a + b, SimTime::from_us(140));
        assert_eq!(a - b, SimTime::from_us(60));
        // Subtraction saturates rather than panicking.
        assert_eq!(b - a, SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_us(140));
        c -= SimTime::from_us(1_000);
        assert_eq!(c, SimTime::ZERO);
    }

    #[test]
    fn min_max_scale() {
        let a = SimTime::from_us(5);
        let b = SimTime::from_us(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.scaled(3), SimTime::from_us(15));
    }

    #[test]
    fn conversions() {
        assert!((SimTime::from_ms(1500).as_secs() - 1.5).abs() < 1e-9);
        assert!((SimTime::from_us(2500).as_ms() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn sum_iterator() {
        let total: SimTime = (1..=4).map(SimTime::from_us).sum();
        assert_eq!(total, SimTime::from_us(10));
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::from_us(5).to_string(), "5us");
        assert_eq!(SimTime::from_us(1_500).to_string(), "1.500ms");
        assert_eq!(SimTime::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_us(1) < SimTime::from_us(2));
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }
}
