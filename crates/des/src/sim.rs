//! The event-queue kernel.
//!
//! [`Sim`] owns a virtual clock and a priority queue of scheduled events.
//! An event is a boxed closure receiving `&mut Sim<S>`, so handlers can
//! inspect/mutate the shared state `S` and schedule further events. Events
//! scheduled for the same instant fire in scheduling order (FIFO), making
//! every simulation fully deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

type EventFn<S> = Box<dyn FnOnce(&mut Sim<S>)>;

struct Scheduled<S> {
    at: SimTime,
    seq: u64,
    cancelled: bool,
    run: Option<EventFn<S>>,
}

impl<S> PartialEq for Scheduled<S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<S> Eq for Scheduled<S> {}
impl<S> PartialOrd for Scheduled<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Scheduled<S> {
    // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Discrete-event simulator with user state `S`.
///
/// ```
/// use gamma_des::{Sim, SimTime};
///
/// let mut sim = Sim::new(Vec::<&str>::new());
/// sim.schedule_at(SimTime::from_ms(2), |s| s.state.push("later"));
/// sim.schedule_at(SimTime::from_ms(1), |s| {
///     s.state.push("first");
///     s.schedule_in(SimTime::from_ms(5), |s2| s2.state.push("chained"));
/// });
/// let end = sim.run_until_idle();
/// assert_eq!(sim.state, ["first", "later", "chained"]);
/// assert_eq!(end, SimTime::from_ms(6));
/// ```
pub struct Sim<S> {
    clock: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled<S>>,
    cancelled: Vec<u64>,
    events_fired: u64,
    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    trace_steps: bool,
    /// The simulation's shared state (the "world": machine, files, stats…).
    pub state: S,
}

impl<S> Sim<S> {
    /// Create a simulator at time zero around the given state.
    pub fn new(state: S) -> Self {
        Sim {
            clock: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            cancelled: Vec::new(),
            events_fired: 0,
            trace_steps: true,
            state,
        }
    }

    /// Like [`Sim::new`] but with kernel-step tracing suppressed. For
    /// auxiliary simulations run *inside* the engine (e.g. draining a
    /// device request queue), whose internal steps are not scheduler
    /// events and may fire while a trace sink is already borrowed.
    pub fn untraced(state: S) -> Self {
        Sim {
            trace_steps: false,
            ..Sim::new(state)
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of events executed so far.
    pub fn events_fired(&self) -> u64 {
        self.events_fired
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len() - self.cancelled.len()
    }

    /// Schedule `f` to run at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — the kernel never rewinds time.
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F) -> EventId
    where
        F: FnOnce(&mut Sim<S>) + 'static,
    {
        assert!(
            at >= self.clock,
            "cannot schedule into the past: now={} at={}",
            self.clock,
            at
        );
        let id = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            at,
            seq: id,
            cancelled: false,
            run: Some(Box::new(f)),
        });
        EventId(id)
    }

    /// Schedule `f` to run `delay` after the current time.
    pub fn schedule_in<F>(&mut self, delay: SimTime, f: F) -> EventId
    where
        F: FnOnce(&mut Sim<S>) + 'static,
    {
        self.schedule_at(self.clock + delay, f)
    }

    /// Cancel a previously scheduled event. Cancelling an event that has
    /// already fired (or was already cancelled) is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.push(id.0);
    }

    /// Run events until the queue drains; returns the final clock value.
    pub fn run_until_idle(&mut self) -> SimTime {
        while self.step() {}
        self.clock
    }

    /// Run events with timestamps `<= until` (inclusive); later events stay
    /// queued. Returns the clock, which will be `min(until, drain time)`.
    pub fn run_until(&mut self, until: SimTime) -> SimTime {
        loop {
            match self.queue.peek() {
                Some(ev) if ev.at <= until => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.clock < until && !self.queue.is_empty() {
            self.clock = until;
        }
        self.clock
    }

    /// Pop and run a single event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        while let Some(mut ev) = self.queue.pop() {
            if let Some(pos) = self.cancelled.iter().position(|&c| c == ev.seq) {
                self.cancelled.swap_remove(pos);
                continue;
            }
            if ev.cancelled {
                continue;
            }
            debug_assert!(ev.at >= self.clock, "event queue went backwards");
            self.clock = ev.at;
            self.events_fired += 1;
            #[cfg(feature = "trace")]
            if self.trace_steps {
                gamma_trace::with(|s| s.emit_sim_step(self.clock.as_us()));
            }
            let f = ev.run.take().expect("event closure consumed twice");
            f(self);
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(Vec::<u32>::new());
        sim.schedule_at(SimTime::from_us(30), |s| s.state.push(3));
        sim.schedule_at(SimTime::from_us(10), |s| s.state.push(1));
        sim.schedule_at(SimTime::from_us(20), |s| s.state.push(2));
        let end = sim.run_until_idle();
        assert_eq!(sim.state, vec![1, 2, 3]);
        assert_eq!(end, SimTime::from_us(30));
    }

    #[test]
    fn same_time_events_fire_fifo() {
        let mut sim = Sim::new(Vec::<u32>::new());
        let t = SimTime::from_us(5);
        for i in 0..100 {
            sim.schedule_at(t, move |s| s.state.push(i));
        }
        sim.run_until_idle();
        assert_eq!(sim.state, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new(Vec::<(u64, u32)>::new());
        sim.schedule_at(SimTime::from_us(1), |s| {
            let now = s.now();
            s.state.push((now.as_us(), 1));
            s.schedule_in(SimTime::from_us(4), |s2| {
                let now = s2.now();
                s2.state.push((now.as_us(), 2));
            });
        });
        sim.run_until_idle();
        assert_eq!(sim.state, vec![(1, 1), (5, 2)]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Sim::new(());
        sim.schedule_at(SimTime::from_us(10), |s| {
            s.schedule_at(SimTime::from_us(5), |_| {});
        });
        sim.run_until_idle();
    }

    #[test]
    fn cancellation() {
        let mut sim = Sim::new(Vec::<u32>::new());
        let _keep = sim.schedule_at(SimTime::from_us(1), |s| s.state.push(1));
        let kill = sim.schedule_at(SimTime::from_us(2), |s| s.state.push(2));
        sim.schedule_at(SimTime::from_us(3), |s| s.state.push(3));
        sim.cancel(kill);
        sim.run_until_idle();
        assert_eq!(sim.state, vec![1, 3]);
        assert_eq!(sim.events_fired(), 2);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut sim = Sim::new(0u32);
        let id = sim.schedule_at(SimTime::from_us(1), |s| s.state += 1);
        sim.run_until_idle();
        sim.cancel(id);
        sim.schedule_at(SimTime::from_us(2), |s| s.state += 10);
        sim.run_until_idle();
        assert_eq!(sim.state, 11);
    }

    #[test]
    fn run_until_stops_at_boundary() {
        let mut sim = Sim::new(Vec::<u32>::new());
        sim.schedule_at(SimTime::from_us(10), |s| s.state.push(1));
        sim.schedule_at(SimTime::from_us(20), |s| s.state.push(2));
        sim.run_until(SimTime::from_us(15));
        assert_eq!(sim.state, vec![1]);
        assert_eq!(sim.now(), SimTime::from_us(15));
        assert_eq!(sim.pending(), 1);
        sim.run_until_idle();
        assert_eq!(sim.state, vec![1, 2]);
    }

    #[test]
    fn determinism_across_runs() {
        // Two identical simulations produce identical event traces.
        fn trace() -> Vec<(u64, u32)> {
            let log = Rc::new(RefCell::new(Vec::new()));
            let mut sim = Sim::new(Rc::clone(&log));
            for i in 0..50u32 {
                let t = SimTime::from_us((i as u64 * 7) % 13);
                sim.schedule_at(t, move |s| {
                    let now = s.now();
                    s.state.borrow_mut().push((now.as_us(), i));
                });
            }
            sim.run_until_idle();
            let out = log.borrow().clone();
            out
        }
        assert_eq!(trace(), trace());
    }

    #[test]
    fn pending_counts_exclude_cancelled() {
        let mut sim = Sim::new(());
        let a = sim.schedule_at(SimTime::from_us(1), |_| {});
        let _b = sim.schedule_at(SimTime::from_us(2), |_| {});
        sim.cancel(a);
        assert_eq!(sim.pending(), 1);
    }
}
