//! # gamma-des — deterministic discrete-event simulation kernel
//!
//! This crate is the foundation of the Gamma machine simulator used to
//! reproduce Schneider & DeWitt's 1989 evaluation of four parallel join
//! algorithms. It provides:
//!
//! * [`SimTime`] — a virtual clock in microseconds,
//! * [`Sim`] — an event queue with deterministic FIFO tie-breaking and a
//!   user-supplied state type,
//! * [`Usage`] / [`Counts`] — per-(node, phase) resource ledgers that higher
//!   layers charge CPU, disk and network demand to,
//! * [`queue`] — single-server FIFO request queues for each node's disk arm
//!   and network interface, drained on the event kernel,
//! * [`phase`] — helpers that turn per-node ledgers into phase completion
//!   times under a selectable [`TimingModel`]: the legacy
//!   *overlapped-resources, balanced-pipeline* bound (a node's phase time is
//!   `max(cpu, disk, net)`) or the queued model (CPU overlapped against each
//!   device's FIFO-queued completion, so loaded devices produce convoy
//!   effects). Either way a phase completes at the max over nodes and is
//!   bounded below by shared ring bandwidth.
//!
//! The kernel is intentionally small and fully deterministic: two events at
//! the same virtual time fire in the order they were scheduled, so a whole
//! query simulation is reproducible bit-for-bit, which the test suite relies
//! on heavily.

pub mod ledger;
pub mod phase;
pub mod queue;
pub mod sim;
pub mod time;

pub use ledger::{Counts, NodeQueueTiming, Usage};
pub use phase::{
    compose, phase_duration, pipeline_compose, pipeline_duration, PhaseTiming, TimingModel,
};
pub use queue::{
    fifo_drain, fold_waits, QueueStats, Request, RequestLog, ServiceSpan, SharedServer,
};
pub use sim::{EventId, Sim};
pub use time::SimTime;
