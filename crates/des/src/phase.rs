//! Phase-timing composition.
//!
//! A Gamma query executes as a sequence of *phases* (e.g. "partition R /
//! build bucket 1", "join bucket i"). Within a phase each participating node
//! accumulates a [`Usage`] ledger; this module turns those ledgers into a
//! phase completion time under a selectable [`TimingModel`]:
//!
//! * a node's resources (CPU, disk, NI) overlap → node time is either the
//!   flat max of the three service totals ([`TimingModel::Legacy`]) or the
//!   CPU overlapped against each device's FIFO-queued completion
//!   ([`TimingModel::Queued`], see [`crate::queue`]);
//! * nodes run in parallel → phase time is the max over nodes;
//! * the token ring is shared → phase time is additionally bounded below by
//!   `total ring bytes / ring bandwidth`.
//!
//! Pipelined producer→consumer phases add a small fill latency: the pipeline
//! cannot finish before the first tuple has crossed it.

use crate::ledger::Usage;
use crate::time::SimTime;

/// Which per-node overlap model turns a ledger into a node completion time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TimingModel {
    /// The original closed-form bound `max(cpu, Σ disk, Σ net)`. It treats
    /// each device as if it could absorb its whole service demand with no
    /// queueing delay — an idealisation the queued model (and, for
    /// concurrent queries, the scheduler's shared [`crate::SharedServer`]
    /// queues) has since replaced. Kept only for A/B validation against
    /// historical numbers.
    Legacy,
    /// Per-node FIFO request queues for the disk arm and the NI: node time
    /// is `max(cpu, queued disk completion, queued NI completion)`. Never
    /// below the legacy bound; rises above it when requests bunch up on a
    /// loaded device (convoy effects).
    #[default]
    Queued,
}

impl TimingModel {
    /// The node completion time for `u` under this model.
    #[inline]
    pub fn node_busy(self, u: &Usage) -> SimTime {
        match self {
            TimingModel::Legacy => u.busy_time(),
            TimingModel::Queued => u.queued_busy_time(),
        }
    }
}

/// Result of composing one phase's per-node ledgers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTiming {
    /// When the phase completes, relative to its start.
    pub duration: SimTime,
    /// The per-node maximum busy time (before the ring bound was applied).
    pub max_node_busy: SimTime,
    /// The shared-ring lower bound for this phase.
    pub ring_bound: SimTime,
    /// Index of the critical (slowest) node; `None` when no node did any
    /// work (an empty or all-zero phase has no critical node).
    pub critical_node: Option<usize>,
    /// Total time disk requests spent queued, summed over nodes (zero under
    /// [`TimingModel::Legacy`]).
    pub disk_wait: SimTime,
    /// Total time NI requests spent queued, summed over nodes (zero under
    /// [`TimingModel::Legacy`]).
    pub net_wait: SimTime,
}

/// Compose a phase from per-node ledgers under the given timing model.
///
/// `ring_bandwidth_bytes_per_sec` is the capacity of the shared token ring
/// (80 Mbit/s = 10,000,000 bytes/s in the paper's hardware).
pub fn compose(
    per_node: &[Usage],
    ring_bandwidth_bytes_per_sec: u64,
    model: TimingModel,
) -> PhaseTiming {
    assert!(
        ring_bandwidth_bytes_per_sec > 0,
        "ring bandwidth must be positive"
    );
    let mut max_node_busy = SimTime::ZERO;
    let mut critical_node = None;
    let mut ring_bytes: u64 = 0;
    let mut disk_wait = SimTime::ZERO;
    let mut net_wait = SimTime::ZERO;
    for (i, u) in per_node.iter().enumerate() {
        let busy = match model {
            TimingModel::Legacy => u.busy_time(),
            TimingModel::Queued => {
                let q = u.queue_timing();
                disk_wait += q.disk.wait;
                net_wait += q.net.wait;
                u.cpu
                    .max(q.disk.completion.max(u.disk))
                    .max(q.net.completion.max(u.net))
            }
        };
        if busy > max_node_busy {
            max_node_busy = busy;
            critical_node = Some(i);
        }
        ring_bytes += u.ring_bytes;
    }
    // bytes / (bytes/s) in µs, rounding up so a non-empty transfer is never
    // free. The product is computed in u128: `bytes * 1_000_000` overflows
    // u64 beyond ~18 TB per phase, and a saturating product would silently
    // *underestimate* the bound.
    let ring_us =
        (u128::from(ring_bytes) * 1_000_000u128).div_ceil(u128::from(ring_bandwidth_bytes_per_sec));
    let ring_us = u64::try_from(ring_us).unwrap_or(u64::MAX);
    let ring_bound = if ring_bytes == 0 {
        SimTime::ZERO
    } else {
        SimTime::from_us(ring_us.max(1))
    };
    PhaseTiming {
        duration: max_node_busy.max(ring_bound),
        max_node_busy,
        ring_bound,
        critical_node,
        disk_wait,
        net_wait,
    }
}

/// Compose a phase under the legacy flat-`max` model. Thin wrapper over
/// [`compose`]; new code should pass an explicit [`TimingModel`].
pub fn phase_duration(per_node: &[Usage], ring_bandwidth_bytes_per_sec: u64) -> PhaseTiming {
    compose(per_node, ring_bandwidth_bytes_per_sec, TimingModel::Legacy)
}

/// Compose a pipelined phase: producers and consumers overlap fully except
/// for a fill latency (time for the first unit of work to traverse the
/// pipeline). `per_node` already contains each node's *total* demand for the
/// phase (a node hosting both a producer and a consumer process has both
/// charged to the same ledger, since they share its CPU).
pub fn pipeline_compose(
    per_node: &[Usage],
    ring_bandwidth_bytes_per_sec: u64,
    fill_latency: SimTime,
    model: TimingModel,
) -> PhaseTiming {
    let mut t = compose(per_node, ring_bandwidth_bytes_per_sec, model);
    if t.duration > SimTime::ZERO {
        t.duration += fill_latency;
    }
    t
}

/// Legacy-model wrapper over [`pipeline_compose`].
pub fn pipeline_duration(
    per_node: &[Usage],
    ring_bandwidth_bytes_per_sec: u64,
    fill_latency: SimTime,
) -> PhaseTiming {
    pipeline_compose(
        per_node,
        ring_bandwidth_bytes_per_sec,
        fill_latency,
        TimingModel::Legacy,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage(cpu: u64, disk: u64, net: u64, ring: u64) -> Usage {
        let mut u = Usage::ZERO;
        u.cpu(SimTime::from_us(cpu));
        u.disk(SimTime::from_us(disk));
        u.net(SimTime::from_us(net), ring);
        u
    }

    #[test]
    fn phase_is_max_over_nodes() {
        let nodes = vec![
            usage(100, 50, 10, 0),
            usage(30, 200, 5, 0),
            usage(80, 90, 0, 0),
        ];
        let t = phase_duration(&nodes, 10_000_000);
        assert_eq!(t.duration, SimTime::from_us(200));
        assert_eq!(t.critical_node, Some(1));
        assert_eq!(t.ring_bound, SimTime::ZERO);
    }

    #[test]
    fn ring_bound_applies_when_binding() {
        // 2 nodes each put 10 MB on the ring; at 10 MB/s that is 2 s even
        // though each node's NI time is tiny.
        let nodes = vec![
            usage(1000, 0, 10, 10_000_000),
            usage(1000, 0, 10, 10_000_000),
        ];
        let t = phase_duration(&nodes, 10_000_000);
        assert_eq!(t.ring_bound, SimTime::from_secs(2));
        assert_eq!(t.duration, SimTime::from_secs(2));
        assert_eq!(t.max_node_busy, SimTime::from_us(1000));
    }

    #[test]
    fn ring_bound_rounds_up_nonzero_transfers() {
        let nodes = vec![usage(0, 0, 0, 1)];
        let t = phase_duration(&nodes, 10_000_000);
        assert_eq!(t.ring_bound, SimTime::from_us(1));
    }

    #[test]
    fn ring_bound_survives_u64_overflow() {
        // 100 TB on the ring at 10 MB/s is 1e13 µs. The old
        // `saturating_mul(1_000_000)` clamped the numerator to u64::MAX and
        // reported ~1.8e12 µs — a 5× underestimate.
        let nodes = vec![usage(0, 0, 0, 100_000_000_000_000)];
        let t = phase_duration(&nodes, 10_000_000);
        assert_eq!(t.ring_bound, SimTime::from_us(10_000_000_000_000));
    }

    #[test]
    fn empty_phase_is_zero_with_no_critical_node() {
        let t = phase_duration(&[], 10_000_000);
        assert_eq!(t.duration, SimTime::ZERO);
        assert_eq!(t.critical_node, None);
        let t = phase_duration(&[Usage::ZERO, Usage::ZERO], 10_000_000);
        assert_eq!(t.duration, SimTime::ZERO);
        assert_eq!(t.critical_node, None);
    }

    #[test]
    fn pipeline_adds_fill_latency_only_when_nonempty() {
        let nodes = vec![usage(500, 0, 0, 0)];
        let t = pipeline_duration(&nodes, 10_000_000, SimTime::from_us(42));
        assert_eq!(t.duration, SimTime::from_us(542));
        let t = pipeline_duration(&[Usage::ZERO], 10_000_000, SimTime::from_us(42));
        assert_eq!(t.duration, SimTime::ZERO);
    }

    #[test]
    fn queued_model_never_below_legacy() {
        let nodes = vec![usage(100, 50, 10, 0), usage(30, 200, 5, 0)];
        let legacy = compose(&nodes, 10_000_000, TimingModel::Legacy);
        let queued = compose(&nodes, 10_000_000, TimingModel::Queued);
        assert!(queued.duration >= legacy.duration);
    }

    #[test]
    fn queued_model_counts_convoy_waits() {
        // One node issues its whole disk demand as a burst after a CPU
        // lead-in: the flat bound hides the serialisation, the queue does
        // not.
        let mut u = Usage::ZERO;
        u.cpu(SimTime::from_us(700));
        for _ in 0..30 {
            u.disk(SimTime::from_us(30)); // 900 µs of service, all issued at 700
        }
        let nodes = vec![u];
        let legacy = compose(&nodes, 10_000_000, TimingModel::Legacy);
        let queued = compose(&nodes, 10_000_000, TimingModel::Queued);
        assert_eq!(legacy.duration, SimTime::from_us(900));
        assert_eq!(queued.duration, SimTime::from_us(1600)); // 700 + 900
        assert!(queued.disk_wait > SimTime::ZERO);
        assert_eq!(legacy.disk_wait, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "ring bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        phase_duration(&[], 0);
    }
}
