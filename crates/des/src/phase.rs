//! Phase-timing composition.
//!
//! A Gamma query executes as a sequence of *phases* (e.g. "partition R /
//! build bucket 1", "join bucket i"). Within a phase each participating node
//! accumulates a [`Usage`] ledger; this module turns those ledgers into a
//! phase completion time under the engine's timing model:
//!
//! * a node's resources (CPU, disk, NI) overlap → node time is the max of
//!   the three ([`Usage::busy_time`]);
//! * nodes run in parallel → phase time is the max over nodes;
//! * the token ring is shared → phase time is additionally bounded below by
//!   `total ring bytes / ring bandwidth`.
//!
//! Pipelined producer→consumer phases add a small fill latency: the pipeline
//! cannot finish before the first tuple has crossed it.

use crate::ledger::Usage;
use crate::time::SimTime;

/// Result of composing one phase's per-node ledgers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTiming {
    /// When the phase completes, relative to its start.
    pub duration: SimTime,
    /// The per-node maximum busy time (before the ring bound was applied).
    pub max_node_busy: SimTime,
    /// The shared-ring lower bound for this phase.
    pub ring_bound: SimTime,
    /// Index of the critical (slowest) node.
    pub critical_node: usize,
}

/// Compose a phase from per-node ledgers.
///
/// `ring_bandwidth_bytes_per_sec` is the capacity of the shared token ring
/// (80 Mbit/s = 10,000,000 bytes/s in the paper's hardware).
pub fn phase_duration(per_node: &[Usage], ring_bandwidth_bytes_per_sec: u64) -> PhaseTiming {
    assert!(
        ring_bandwidth_bytes_per_sec > 0,
        "ring bandwidth must be positive"
    );
    let mut max_node_busy = SimTime::ZERO;
    let mut critical_node = 0;
    let mut ring_bytes: u64 = 0;
    for (i, u) in per_node.iter().enumerate() {
        let busy = u.busy_time();
        if busy > max_node_busy {
            max_node_busy = busy;
            critical_node = i;
        }
        ring_bytes += u.ring_bytes;
    }
    // bytes / (bytes/s) in µs, rounding up so a non-empty transfer is never free.
    let ring_us = ring_bytes
        .saturating_mul(1_000_000)
        .div_ceil(ring_bandwidth_bytes_per_sec);
    let ring_bound = if ring_bytes == 0 {
        SimTime::ZERO
    } else {
        SimTime::from_us(ring_us.max(1))
    };
    PhaseTiming {
        duration: max_node_busy.max(ring_bound),
        max_node_busy,
        ring_bound,
        critical_node,
    }
}

/// Compose a pipelined phase: producers and consumers overlap fully except
/// for a fill latency (time for the first unit of work to traverse the
/// pipeline). `per_node` already contains each node's *total* demand for the
/// phase (a node hosting both a producer and a consumer process has both
/// charged to the same ledger, since they share its CPU).
pub fn pipeline_duration(
    per_node: &[Usage],
    ring_bandwidth_bytes_per_sec: u64,
    fill_latency: SimTime,
) -> PhaseTiming {
    let mut t = phase_duration(per_node, ring_bandwidth_bytes_per_sec);
    if t.duration > SimTime::ZERO {
        t.duration += fill_latency;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage(cpu: u64, disk: u64, net: u64, ring: u64) -> Usage {
        let mut u = Usage::ZERO;
        u.cpu(SimTime::from_us(cpu));
        u.disk(SimTime::from_us(disk));
        u.net(SimTime::from_us(net), ring);
        u
    }

    #[test]
    fn phase_is_max_over_nodes() {
        let nodes = vec![
            usage(100, 50, 10, 0),
            usage(30, 200, 5, 0),
            usage(80, 90, 0, 0),
        ];
        let t = phase_duration(&nodes, 10_000_000);
        assert_eq!(t.duration, SimTime::from_us(200));
        assert_eq!(t.critical_node, 1);
        assert_eq!(t.ring_bound, SimTime::ZERO);
    }

    #[test]
    fn ring_bound_applies_when_binding() {
        // 2 nodes each put 10 MB on the ring; at 10 MB/s that is 2 s even
        // though each node's NI time is tiny.
        let nodes = vec![
            usage(1000, 0, 10, 10_000_000),
            usage(1000, 0, 10, 10_000_000),
        ];
        let t = phase_duration(&nodes, 10_000_000);
        assert_eq!(t.ring_bound, SimTime::from_secs(2));
        assert_eq!(t.duration, SimTime::from_secs(2));
        assert_eq!(t.max_node_busy, SimTime::from_us(1000));
    }

    #[test]
    fn ring_bound_rounds_up_nonzero_transfers() {
        let nodes = vec![usage(0, 0, 0, 1)];
        let t = phase_duration(&nodes, 10_000_000);
        assert_eq!(t.ring_bound, SimTime::from_us(1));
    }

    #[test]
    fn empty_phase_is_zero() {
        let t = phase_duration(&[], 10_000_000);
        assert_eq!(t.duration, SimTime::ZERO);
        let t = phase_duration(&[Usage::ZERO, Usage::ZERO], 10_000_000);
        assert_eq!(t.duration, SimTime::ZERO);
    }

    #[test]
    fn pipeline_adds_fill_latency_only_when_nonempty() {
        let nodes = vec![usage(500, 0, 0, 0)];
        let t = pipeline_duration(&nodes, 10_000_000, SimTime::from_us(42));
        assert_eq!(t.duration, SimTime::from_us(542));
        let t = pipeline_duration(&[Usage::ZERO], 10_000_000, SimTime::from_us(42));
        assert_eq!(t.duration, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "ring bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        phase_duration(&[], 0);
    }
}
