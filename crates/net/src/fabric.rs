//! Packet batching and cost accounting for inter-node streams.

use gamma_des::{SimTime, Usage};

use crate::config::RingConfig;

/// Pending (not yet flushed) bytes/tuples for one sender→receiver stream.
#[derive(Debug, Clone, Copy, Default)]
struct Pending {
    bytes: u64,
    tuples: u64,
}

/// The interconnect fabric for one machine.
///
/// `Fabric` tracks, for every ordered (src, dst) node pair, the bytes
/// accumulated toward the next outgoing packet, and charges the supplied
/// per-node [`Usage`] ledgers as packets fill. Callers must [`Fabric::flush`]
/// at the end of each phase so partially filled packets are paid for — Gamma
/// flushed output buffers when an operator closed its output streams.
#[derive(Debug, Clone)]
pub struct Fabric {
    cfg: RingConfig,
    nodes: usize,
    pending: Vec<Pending>,
}

impl Fabric {
    /// A fabric connecting `nodes` processors.
    pub fn new(cfg: RingConfig, nodes: usize) -> Self {
        assert!(nodes > 0, "a machine needs at least one node");
        Fabric {
            cfg,
            nodes,
            pending: vec![Pending::default(); nodes * nodes],
        }
    }

    /// Network configuration in force.
    pub fn config(&self) -> &RingConfig {
        &self.cfg
    }

    /// Number of nodes the fabric connects.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    #[inline]
    fn slot(&mut self, src: usize, dst: usize) -> &mut Pending {
        debug_assert!(src < self.nodes && dst < self.nodes);
        &mut self.pending[src * self.nodes + dst]
    }

    /// Send one tuple of `bytes` from `src` to `dst`, batching into packets.
    ///
    /// Same-node sends are short-circuited: they are batched exactly like
    /// remote sends (the producing process still fills message buffers) but
    /// a full buffer costs only the short-circuit hand-off and never touches
    /// the ring.
    pub fn send_tuple(&mut self, usage: &mut [Usage], src: usize, dst: usize, bytes: u64) {
        let cfg_packet = self.cfg.packet_bytes;
        let marshal = self.cfg.marshal_cpu_per_tuple;
        let local_copy = self.cfg.shortcircuit_cpu_per_tuple;
        if src == dst {
            usage[src].cpu(local_copy);
        } else {
            usage[src].cpu(marshal);
        }
        let p = self.slot(src, dst);
        p.tuples += 1;
        if p.bytes + bytes > cfg_packet && p.bytes > 0 {
            // Tuple does not fit in the current packet: flush, then start a
            // new packet with this tuple (tuples are never split in Gamma).
            let (fb, ft) = (p.bytes, p.tuples - 1);
            p.bytes = bytes;
            p.tuples = 1;
            self.emit(usage, src, dst, fb, ft);
        } else {
            p.bytes += bytes;
            if p.bytes >= cfg_packet {
                let (fb, ft) = (p.bytes, p.tuples);
                p.bytes = 0;
                p.tuples = 0;
                self.emit(usage, src, dst, fb, ft);
            }
        }
    }

    /// Flush every partially filled packet (end of an operator's output
    /// streams / end of phase).
    pub fn flush(&mut self, usage: &mut [Usage]) {
        for src in 0..self.nodes {
            for dst in 0..self.nodes {
                let p = self.pending[src * self.nodes + dst];
                if p.bytes > 0 {
                    self.pending[src * self.nodes + dst] = Pending::default();
                    self.emit(usage, src, dst, p.bytes, p.tuples);
                }
            }
        }
    }

    /// Charge one (possibly short-circuited) message of `bytes` carrying
    /// `tuples` tuples.
    fn emit(&mut self, usage: &mut [Usage], src: usize, dst: usize, bytes: u64, tuples: u64) {
        if src == dst {
            usage[src].cpu(self.cfg.shortcircuit_cpu_per_msg);
            usage[src].counts.msgs_shortcircuit += 1;
            #[cfg(feature = "metrics")]
            {
                gamma_metrics::counter_add("msgs_shortcircuit", src as u16, "fabric", 1);
                gamma_metrics::counter_add("shortcircuit_bytes", src as u16, "fabric", bytes);
            }
            #[cfg(feature = "trace")]
            gamma_trace::emit(
                src as u16,
                usage[src].total_demand().as_us(),
                gamma_trace::EventKind::ShortCircuit {
                    bytes: crate::trace_bytes(bytes),
                },
            );
        } else {
            usage[src].cpu(self.cfg.send_cpu_per_packet);
            usage[src].net(self.cfg.wire_time(bytes), bytes);
            usage[src].counts.packets_sent += 1;
            usage[dst].cpu(self.cfg.recv_cpu_per_packet);
            usage[dst].cpu(SimTime::from_us(
                self.cfg.unmarshal_cpu_per_tuple.as_us() * tuples,
            ));
            usage[dst].counts.packets_recv += 1;
            #[cfg(feature = "metrics")]
            {
                gamma_metrics::counter_add("packets_sent", src as u16, "fabric", 1);
                gamma_metrics::counter_add("wire_bytes", src as u16, "fabric", bytes);
                gamma_metrics::observe("packet_bytes", src as u16, "fabric", bytes);
                gamma_metrics::counter_add("packets_recv", dst as u16, "fabric", 1);
            }
            #[cfg(feature = "trace")]
            {
                gamma_trace::emit(
                    src as u16,
                    usage[src].total_demand().as_us(),
                    gamma_trace::EventKind::PacketSend {
                        dst: dst as u16,
                        bytes: crate::trace_bytes(bytes),
                    },
                );
                gamma_trace::emit(
                    dst as u16,
                    usage[dst].total_demand().as_us(),
                    gamma_trace::EventKind::PacketRecv {
                        src: src as u16,
                        bytes: crate::trace_bytes(bytes),
                    },
                );
            }
        }
    }

    /// Send a control message (operator start/commit, split table, bit
    /// filter) of `bytes` from `src` to `dst`. Control messages are sent
    /// immediately — they are not batched with tuple traffic — and may span
    /// several packets (a split table larger than one packet "must be sent
    /// in pieces", the cause of the paper's low-memory cost bump).
    ///
    /// Returns the number of packets used.
    pub fn control(&mut self, usage: &mut [Usage], src: usize, dst: usize, bytes: u64) -> u64 {
        let bytes = bytes.max(1);
        if src == dst {
            usage[src].cpu(self.cfg.shortcircuit_cpu_per_msg);
            usage[src].cpu(self.cfg.control_cpu_per_msg);
            usage[src].counts.msgs_shortcircuit += 1;
            usage[src].counts.control_msgs += 1;
            #[cfg(feature = "metrics")]
            {
                gamma_metrics::counter_add("msgs_shortcircuit", src as u16, "control", 1);
                gamma_metrics::counter_add("shortcircuit_bytes", src as u16, "control", bytes);
                gamma_metrics::counter_add("control_msgs", src as u16, "control", 1);
            }
            #[cfg(feature = "trace")]
            {
                let at = usage[src].total_demand().as_us();
                gamma_trace::emit(
                    src as u16,
                    at,
                    gamma_trace::EventKind::ShortCircuit {
                        bytes: crate::trace_bytes(bytes),
                    },
                );
                gamma_trace::emit(
                    src as u16,
                    at,
                    gamma_trace::EventKind::Control {
                        dst: dst as u16,
                        bytes: crate::trace_bytes(bytes),
                    },
                );
            }
            return 0;
        }
        let packets = self.cfg.packets_for(bytes);
        let mut remaining = bytes;
        for _ in 0..packets {
            let chunk = remaining.min(self.cfg.packet_bytes);
            remaining -= chunk;
            usage[src].cpu(self.cfg.send_cpu_per_packet);
            usage[src].net(self.cfg.wire_time(chunk), chunk);
            usage[src].counts.packets_sent += 1;
            usage[dst].cpu(self.cfg.recv_cpu_per_packet);
            usage[dst].counts.packets_recv += 1;
            #[cfg(feature = "metrics")]
            {
                gamma_metrics::counter_add("packets_sent", src as u16, "control", 1);
                gamma_metrics::counter_add("wire_bytes", src as u16, "control", chunk);
                gamma_metrics::observe("packet_bytes", src as u16, "control", chunk);
                gamma_metrics::counter_add("packets_recv", dst as u16, "control", 1);
            }
            #[cfg(feature = "trace")]
            {
                gamma_trace::emit(
                    src as u16,
                    usage[src].total_demand().as_us(),
                    gamma_trace::EventKind::PacketSend {
                        dst: dst as u16,
                        bytes: crate::trace_bytes(chunk),
                    },
                );
                gamma_trace::emit(
                    dst as u16,
                    usage[dst].total_demand().as_us(),
                    gamma_trace::EventKind::PacketRecv {
                        src: src as u16,
                        bytes: crate::trace_bytes(chunk),
                    },
                );
            }
        }
        usage[dst].cpu(self.cfg.control_cpu_per_msg);
        usage[dst].counts.control_msgs += 1;
        #[cfg(feature = "metrics")]
        gamma_metrics::counter_add("control_msgs", dst as u16, "control", 1);
        #[cfg(feature = "trace")]
        gamma_trace::emit(
            dst as u16,
            usage[dst].total_demand().as_us(),
            gamma_trace::EventKind::Control {
                dst: dst as u16,
                bytes: crate::trace_bytes(bytes),
            },
        );
        packets
    }

    /// Charge the receiver side of a control message sent by the (off-node)
    /// scheduler process to `node`: operator starts, split tables,
    /// bit-filter broadcasts. The scheduler's own serialized send cost is
    /// what the query replay adds to response time; this accounts the
    /// receiving node's protocol CPU and the ring occupancy. Returns
    /// packets used.
    pub fn scheduler_control(&mut self, usage: &mut Usage, node: usize, bytes: u64) -> u64 {
        let bytes = bytes.max(1);
        let packets = self.cfg.packets_for(bytes);
        let mut remaining = bytes;
        for _ in 0..packets {
            let chunk = remaining.min(self.cfg.packet_bytes);
            remaining -= chunk;
            usage.cpu(self.cfg.recv_cpu_per_packet);
            usage.net(self.cfg.wire_time(chunk), chunk);
            usage.counts.packets_recv += 1;
            #[cfg(feature = "metrics")]
            {
                gamma_metrics::counter_add("packets_recv", node as u16, "sched", 1);
                gamma_metrics::counter_add("wire_bytes", node as u16, "sched", chunk);
                gamma_metrics::observe("packet_bytes", node as u16, "sched", chunk);
            }
            #[cfg(feature = "trace")]
            gamma_trace::emit(
                node as u16,
                usage.total_demand().as_us(),
                gamma_trace::EventKind::PacketRecv {
                    src: u16::MAX, // the off-node scheduler process
                    bytes: crate::trace_bytes(chunk),
                },
            );
        }
        usage.cpu(self.cfg.control_cpu_per_msg);
        usage.counts.control_msgs += 1;
        #[cfg(feature = "metrics")]
        gamma_metrics::counter_add("control_msgs", node as u16, "sched", 1);
        #[cfg(feature = "trace")]
        gamma_trace::emit(
            node as u16,
            usage.total_demand().as_us(),
            gamma_trace::EventKind::Control {
                dst: node as u16,
                bytes: crate::trace_bytes(bytes),
            },
        );
        #[cfg(all(not(feature = "trace"), not(feature = "metrics")))]
        let _ = node;
        packets
    }

    /// Serialized scheduler-side cost of dispatching one control message of
    /// `bytes` (CPU to build it plus per-packet protocol cost). Added
    /// directly to response time by the query replay, since Gamma ran one
    /// scheduler process per query.
    pub fn scheduler_dispatch_cost(&self, dispatch_cpu: SimTime, bytes: u64) -> SimTime {
        let packets = self.cfg.packets_for(bytes.max(1));
        dispatch_cpu + self.cfg.send_cpu_per_packet.scaled(packets)
    }

    /// True if no stream holds unflushed bytes (used by debug assertions at
    /// phase boundaries).
    pub fn is_drained(&self) -> bool {
        self.pending.iter().all(|p| p.bytes == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric(n: usize) -> (Fabric, Vec<Usage>) {
        (
            Fabric::new(RingConfig::gamma_1989(), n),
            vec![Usage::ZERO; n],
        )
    }

    #[test]
    fn remote_tuples_batch_into_packets() {
        let (mut f, mut u) = fabric(2);
        // 208-byte Wisconsin tuples: 9 fit in a 2 KB packet (1872 bytes),
        // the 10th overflows into the next packet.
        for _ in 0..9 {
            f.send_tuple(&mut u, 0, 1, 208);
        }
        assert_eq!(
            u[0].counts.packets_sent, 0,
            "9*208=1872 < 2048, still pending"
        );
        f.send_tuple(&mut u, 0, 1, 208);
        assert_eq!(u[0].counts.packets_sent, 1, "10th tuple flushes the packet");
        assert_eq!(u[1].counts.packets_recv, 1);
        f.flush(&mut u);
        assert_eq!(
            u[0].counts.packets_sent, 2,
            "flush emits the partial packet"
        );
        assert!(f.is_drained());
    }

    #[test]
    fn exact_fill_flushes_immediately() {
        let (mut f, mut u) = fabric(2);
        f.send_tuple(&mut u, 0, 1, 2048);
        assert_eq!(u[0].counts.packets_sent, 1);
        assert!(f.is_drained());
    }

    #[test]
    fn local_sends_shortcircuit() {
        let (mut f, mut u) = fabric(2);
        for _ in 0..10 {
            f.send_tuple(&mut u, 1, 1, 208);
        }
        f.flush(&mut u);
        assert_eq!(u[1].counts.packets_sent, 0);
        assert_eq!(
            u[1].counts.msgs_shortcircuit, 2,
            "one full + one partial message"
        );
        assert_eq!(
            u[1].ring_bytes, 0,
            "short-circuited messages never touch the ring"
        );
        // Short-circuiting is much cheaper than the remote path.
        let (mut f2, mut u2) = fabric(2);
        for _ in 0..10 {
            f2.send_tuple(&mut u2, 0, 1, 208);
        }
        f2.flush(&mut u2);
        let remote_cpu = u2[0].cpu + u2[1].cpu;
        assert!(u[1].cpu.as_us() * 2 < remote_cpu.as_us());
    }

    #[test]
    fn ring_bytes_accounted_for_remote_only() {
        let (mut f, mut u) = fabric(3);
        f.send_tuple(&mut u, 0, 2, 2048);
        assert_eq!(u[0].ring_bytes, 2048);
        assert_eq!(
            u[2].ring_bytes, 0,
            "receiver does not double-count ring bytes"
        );
    }

    #[test]
    fn control_message_spans_packets() {
        let (mut f, mut u) = fabric(2);
        // A 5000-byte split table needs 3 packets of 2048.
        let packets = f.control(&mut u, 0, 1, 5000);
        assert_eq!(packets, 3);
        assert_eq!(u[0].counts.packets_sent, 3);
        assert_eq!(u[1].counts.control_msgs, 1);
    }

    #[test]
    fn control_message_local_is_free_of_packets() {
        let (mut f, mut u) = fabric(2);
        let packets = f.control(&mut u, 1, 1, 5000);
        assert_eq!(packets, 0);
        assert_eq!(u[1].counts.control_msgs, 1);
        assert_eq!(u[1].counts.msgs_shortcircuit, 1);
    }

    #[test]
    fn oversized_tuple_gets_own_packets() {
        let (mut f, mut u) = fabric(2);
        f.send_tuple(&mut u, 0, 1, 100);
        // A tuple bigger than remaining space flushes the pending packet
        // first, then travels alone.
        f.send_tuple(&mut u, 0, 1, 2040);
        assert_eq!(u[0].counts.packets_sent, 1, "first packet flushed early");
        f.flush(&mut u);
        assert_eq!(u[0].counts.packets_sent, 2);
    }

    #[test]
    fn tuple_counts_charged_to_receiver() {
        let (mut f, mut u) = fabric(2);
        for _ in 0..10 {
            f.send_tuple(&mut u, 0, 1, 208);
        }
        f.flush(&mut u);
        let per_tuple = RingConfig::gamma_1989().unmarshal_cpu_per_tuple;
        let per_packet = RingConfig::gamma_1989().recv_cpu_per_packet;
        assert_eq!(u[1].cpu, per_packet.scaled(2) + per_tuple.scaled(10));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_fabric_rejected() {
        Fabric::new(RingConfig::gamma_1989(), 0);
    }
}
