//! # gamma-net — token-ring interconnect model
//!
//! Models the 80 Mbit/s token ring that connects Gamma's VAX 11/750 nodes:
//!
//! * tuples travelling to the same destination are **batched into 2 KB
//!   packets** (Gamma's network packet size — the reason split tables larger
//!   than 2 KB must be sent in pieces, visible as the extra rise at the low
//!   end of the paper's memory sweeps),
//! * messages between processes on the **same node are short-circuited** by
//!   the communications software: no ring traffic and a far cheaper CPU
//!   path (this is what makes HPJA joins fast),
//! * per-packet protocol CPU cost dominates per-byte cost, as it did on the
//!   real hardware's sliding-window datagram protocol,
//! * the ring is a **shared medium**: `gamma-des::phase_duration` applies
//!   the aggregate-bytes/bandwidth lower bound from the `ring_bytes` this
//!   crate charges.
//!
//! The fabric does not move any payload bytes itself — the join engine hands
//! real tuples to real consumers directly — it only *accounts* for the
//! communication, charging [`gamma_des::Usage`] ledgers supplied by the
//! caller.

pub mod config;
pub mod exchange;
pub mod fabric;

pub use config::RingConfig;
pub use exchange::{Drained, Exchange, Inbox, Msg, Outbox};
pub use fabric::Fabric;

/// Narrow a payload size to the fixed-width `u32` byte field trace events
/// carry. A silent `as` cast here once wrapped >4 GiB transfers to almost
/// nothing in the trace; every real payload is batched into 2 KB packets,
/// so anything past `u32` is a charging bug — fail loudly instead of
/// mis-recording it.
#[inline]
pub fn trace_bytes(bytes: u64) -> u32 {
    u32::try_from(bytes).expect("payload byte count exceeds the u32 trace field")
}
