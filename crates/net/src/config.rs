//! Network cost parameters.

use gamma_des::SimTime;

/// Cost/shape parameters of the token ring and its datagram protocol.
///
/// The defaults approximate the paper's hardware: an 80 Mbit/s Proteon ring
/// connecting 0.6-MIPS VAX 11/750s whose per-packet protocol path (sliding
/// window, checksums, buffer management) costs on the order of a couple of
/// thousand instructions — i.e. milliseconds of CPU — while short-circuited
/// local messages reduce to a queue hand-off.
#[derive(Debug, Clone, PartialEq)]
pub struct RingConfig {
    /// Maximum packet payload in bytes (Gamma used 2 KB packets).
    pub packet_bytes: u64,
    /// Shared ring capacity in bytes/second (80 Mbit/s = 10 MB/s).
    pub bandwidth_bytes_per_sec: u64,
    /// Sender protocol CPU per packet.
    pub send_cpu_per_packet: SimTime,
    /// Receiver protocol CPU per packet.
    pub recv_cpu_per_packet: SimTime,
    /// Sender CPU to marshal one tuple into an outgoing packet buffer.
    pub marshal_cpu_per_tuple: SimTime,
    /// Receiver CPU to unmarshal one tuple from a packet buffer.
    pub unmarshal_cpu_per_tuple: SimTime,
    /// CPU for a short-circuited (same node) message hand-off.
    pub shortcircuit_cpu_per_msg: SimTime,
    /// CPU to move one tuple through a short-circuited message.
    pub shortcircuit_cpu_per_tuple: SimTime,
    /// Network-interface occupancy is `bytes / bandwidth` per packet; this
    /// extra per-packet latency models media access (token acquisition).
    pub media_access_latency: SimTime,
    /// CPU on the receiver to process one control message.
    pub control_cpu_per_msg: SimTime,
}

impl RingConfig {
    /// Parameters approximating Gamma's 1989 hardware.
    pub fn gamma_1989() -> Self {
        RingConfig {
            packet_bytes: 2048,
            bandwidth_bytes_per_sec: 10_000_000,
            send_cpu_per_packet: SimTime::from_us(8_000),
            recv_cpu_per_packet: SimTime::from_us(8_000),
            marshal_cpu_per_tuple: SimTime::from_us(600),
            unmarshal_cpu_per_tuple: SimTime::from_us(600),
            shortcircuit_cpu_per_msg: SimTime::from_us(150),
            shortcircuit_cpu_per_tuple: SimTime::from_us(50),
            media_access_latency: SimTime::from_us(50),
            control_cpu_per_msg: SimTime::from_us(3_000),
        }
    }

    /// How many whole packets a `bytes`-sized payload needs.
    pub fn packets_for(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            0
        } else {
            bytes.div_ceil(self.packet_bytes)
        }
    }

    /// Network-interface occupancy of one packet carrying `bytes` payload.
    pub fn wire_time(&self, bytes: u64) -> SimTime {
        // u128 intermediate: `bytes * 1_000_000` overflows u64 beyond
        // ~18 TB, and a saturating product silently underestimates.
        let us =
            (u128::from(bytes) * 1_000_000u128).div_ceil(u128::from(self.bandwidth_bytes_per_sec));
        SimTime::from_us(u64::try_from(us).unwrap_or(u64::MAX)) + self.media_access_latency
    }
}

impl Default for RingConfig {
    fn default() -> Self {
        Self::gamma_1989()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packets_for_rounds_up() {
        let c = RingConfig::gamma_1989();
        assert_eq!(c.packets_for(0), 0);
        assert_eq!(c.packets_for(1), 1);
        assert_eq!(c.packets_for(2048), 1);
        assert_eq!(c.packets_for(2049), 2);
        assert_eq!(c.packets_for(4096), 2);
    }

    #[test]
    fn wire_time_scales_with_bytes() {
        let c = RingConfig::gamma_1989();
        // 2048 bytes at 10 MB/s is 204.8 µs -> 205 rounded up, plus media access.
        assert_eq!(
            c.wire_time(2048),
            SimTime::from_us(205) + c.media_access_latency
        );
        assert!(c.wire_time(4096) > c.wire_time(1024));
    }

    #[test]
    fn wire_time_survives_u64_overflow() {
        // 100 TB at 10 MB/s is 1e13 µs; the old saturating u64 product
        // clamped this to ~1.8e12 µs.
        let c = RingConfig::gamma_1989();
        assert_eq!(
            c.wire_time(100_000_000_000_000),
            SimTime::from_us(10_000_000_000_000) + c.media_access_latency
        );
    }

    #[test]
    fn trace_bytes_roundtrips_at_boundary() {
        assert_eq!(crate::trace_bytes(u32::MAX as u64), u32::MAX);
        assert_eq!(crate::trace_bytes(2048), 2048);
    }

    #[test]
    #[should_panic(expected = "exceeds the u32 trace field")]
    fn trace_bytes_rejects_wrapping() {
        crate::trace_bytes(u32::MAX as u64 + 1);
    }

    #[test]
    fn default_is_gamma_1989() {
        assert_eq!(RingConfig::default(), RingConfig::gamma_1989());
    }
}
