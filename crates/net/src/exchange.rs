//! Mailbox-style tuple exchange between per-node operator instances.
//!
//! [`Fabric`](crate::Fabric) charges both ends of a stream at the moment a
//! packet fills, which forces the caller to hold every node's ledger at
//! once — fine for a sequential driver loop, fatal for per-node workers.
//! `Exchange` splits the same accounting in two:
//!
//! * a producer owns an [`Outbox`] and pays the send side (marshalling,
//!   per-packet protocol CPU, ring occupancy) as packets fill, exactly as
//!   `Fabric::send_tuple` would charge the source node;
//! * packets carry their payloads to a per-node [`Inbox`], and the consumer
//!   pays the receive side (per-packet protocol CPU, per-tuple
//!   unmarshalling) when it drains them.
//!
//! Same-node messages are short-circuited just like the fabric's: they are
//! batched identically, the producer pays the cheap hand-off, and the
//! consumer pays nothing at drain time (the communications software hands
//! the buffer over by reference).
//!
//! Packet boundaries, byte counts, and per-node charge totals are identical
//! to routing the same tuple stream through `Fabric` — only the receiver's
//! charges move from "when the packet filled" to "when the consumer drained
//! it", which is also where they belong in a message-passing execution.
//!
//! Ordering is deterministic: [`Exchange::route`] moves sealed packets into
//! inboxes source-major, so a consumer sees source 0's tuples (in emission
//! order), then source 1's, regardless of how producers were scheduled.

use gamma_des::{SimTime, Usage};

use crate::config::RingConfig;

/// One delivered message: the sending node, the caller-defined stream tag,
/// the query it belongs to (0 outside the scheduler), and the payload
/// bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Msg {
    pub src: usize,
    pub tag: u32,
    /// Query the message belongs to. 0 for plain single-query runs; the
    /// scheduler stamps each admitted query's id so interleaved plan
    /// instances multiplex over one exchange without mixing streams.
    pub query: u32,
    pub payload: Vec<u8>,
}

/// A sealed packet travelling from one producer to one consumer.
#[derive(Debug, Clone)]
struct Packet {
    /// Modeled wire bytes (payload sizes as charged, not serialized size).
    bytes: u64,
    /// True when src == dst: short-circuited, free for the receiver.
    local: bool,
    /// Query whose tuples fill this packet (packets never mix queries:
    /// a packet is sealed within one query's execution step).
    query: u32,
    msgs: Vec<(u32, Vec<u8>)>,
}

/// Per-destination stream state inside an [`Outbox`].
#[derive(Debug, Clone, Default)]
struct Stream {
    pending_bytes: u64,
    pending: Vec<(u32, Vec<u8>)>,
    sealed: Vec<Packet>,
}

/// The sending half of one node's exchange endpoint. Owns the packet
/// batching state for every destination; charges only the producer's
/// ledger.
#[derive(Debug, Clone)]
pub struct Outbox {
    src: usize,
    cfg: RingConfig,
    query: u32,
    streams: Vec<Stream>,
}

impl Outbox {
    fn new(src: usize, cfg: RingConfig, nodes: usize) -> Self {
        Outbox {
            src,
            cfg,
            query: 0,
            streams: vec![Stream::default(); nodes],
        }
    }

    /// The node this outbox belongs to.
    pub fn node(&self) -> usize {
        self.src
    }

    /// Stamp subsequently sent tuples with `query` (0 is the single-query
    /// default). Must only change while the outbox is drained — a packet
    /// never mixes queries.
    pub fn set_query(&mut self, query: u32) {
        debug_assert!(
            self.streams
                .iter()
                .all(|s| s.pending.is_empty() && s.sealed.is_empty()),
            "query changed mid-packet"
        );
        self.query = query;
    }

    /// Send one tuple to `dst` on stream `tag`, batching into packets and
    /// charging the producer ledger exactly as [`Fabric::send_tuple`]
    /// charges the source node.
    ///
    /// [`Fabric::send_tuple`]: crate::Fabric::send_tuple
    pub fn send(&mut self, usage: &mut Usage, dst: usize, tag: u32, payload: Vec<u8>) {
        let bytes = payload.len() as u64;
        let packet = self.cfg.packet_bytes;
        if self.src == dst {
            usage.cpu(self.cfg.shortcircuit_cpu_per_tuple);
        } else {
            usage.cpu(self.cfg.marshal_cpu_per_tuple);
        }
        let src = self.src;
        let local = src == dst;
        let query = self.query;
        let s = &mut self.streams[dst];
        if s.pending_bytes + bytes > packet && s.pending_bytes > 0 {
            // Tuple does not fit in the current packet: seal it, then start
            // a new packet with this tuple (tuples are never split).
            let full = Packet {
                bytes: s.pending_bytes,
                local,
                query,
                msgs: std::mem::take(&mut s.pending),
            };
            s.pending_bytes = bytes;
            s.pending.push((tag, payload));
            let fb = full.bytes;
            s.sealed.push(full);
            Self::charge_emit(&self.cfg, usage, src, dst, fb);
        } else {
            s.pending_bytes += bytes;
            s.pending.push((tag, payload));
            if s.pending_bytes >= packet {
                let full = Packet {
                    bytes: s.pending_bytes,
                    local,
                    query,
                    msgs: std::mem::take(&mut s.pending),
                };
                s.pending_bytes = 0;
                let fb = full.bytes;
                s.sealed.push(full);
                Self::charge_emit(&self.cfg, usage, src, dst, fb);
            }
        }
    }

    /// Producer-side charge for one completed packet (mirrors the source
    /// half of `Fabric::emit`).
    fn charge_emit(cfg: &RingConfig, usage: &mut Usage, src: usize, dst: usize, bytes: u64) {
        if src == dst {
            usage.cpu(cfg.shortcircuit_cpu_per_msg);
            usage.counts.msgs_shortcircuit += 1;
            #[cfg(feature = "metrics")]
            {
                gamma_metrics::counter_add("msgs_shortcircuit", src as u16, "exchange", 1);
                gamma_metrics::counter_add("shortcircuit_bytes", src as u16, "exchange", bytes);
            }
            #[cfg(feature = "trace")]
            gamma_trace::emit(
                src as u16,
                usage.total_demand().as_us(),
                gamma_trace::EventKind::ShortCircuit {
                    bytes: crate::trace_bytes(bytes),
                },
            );
        } else {
            usage.cpu(cfg.send_cpu_per_packet);
            usage.net(cfg.wire_time(bytes), bytes);
            usage.counts.packets_sent += 1;
            #[cfg(feature = "metrics")]
            {
                gamma_metrics::counter_add("packets_sent", src as u16, "exchange", 1);
                gamma_metrics::counter_add("wire_bytes", src as u16, "exchange", bytes);
                gamma_metrics::observe("packet_bytes", src as u16, "exchange", bytes);
            }
            #[cfg(feature = "trace")]
            gamma_trace::emit(
                src as u16,
                usage.total_demand().as_us(),
                gamma_trace::EventKind::PacketSend {
                    dst: dst as u16,
                    bytes: crate::trace_bytes(bytes),
                },
            );
        }
        #[cfg(all(not(feature = "trace"), not(feature = "metrics")))]
        let _ = (src, dst, bytes);
        #[cfg(all(not(feature = "trace"), feature = "metrics"))]
        let _ = dst;
    }

    /// Seal every partially filled packet (end of the producer's output
    /// streams for this step). Destinations flush in ascending order, like
    /// `Fabric::flush` walks its destination-inner loop for one source.
    pub fn seal(&mut self, usage: &mut Usage) {
        let src = self.src;
        let query = self.query;
        let cfg = self.cfg.clone();
        for (dst, s) in self.streams.iter_mut().enumerate() {
            if s.pending_bytes > 0 {
                let p = Packet {
                    bytes: s.pending_bytes,
                    local: src == dst,
                    query,
                    msgs: std::mem::take(&mut s.pending),
                };
                s.pending_bytes = 0;
                let bytes = p.bytes;
                s.sealed.push(p);
                Self::charge_emit(&cfg, usage, src, dst, bytes);
            }
        }
    }

    /// True when no stream holds pending or sealed-but-unrouted data.
    pub fn is_drained(&self) -> bool {
        self.streams
            .iter()
            .all(|s| s.pending_bytes == 0 && s.pending.is_empty() && s.sealed.is_empty())
    }
}

/// The receiving half of one node's exchange endpoint: packets delivered by
/// [`Exchange::route`], in source-major order.
#[derive(Debug, Default)]
pub struct Inbox {
    node: usize,
    packets: Vec<(usize, Packet)>,
}

impl Inbox {
    /// The node this inbox belongs to.
    pub fn node(&self) -> usize {
        self.node
    }

    /// True when no undelivered packets remain.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Drain every delivered packet, charging the consumer's ledger for the
    /// receive side of each remote packet (per-packet protocol CPU plus
    /// per-tuple unmarshalling — the receiver half of `Fabric::emit`).
    /// Short-circuited packets cost nothing here. Messages come back in
    /// (source ascending, emission order) — the order a sequential
    /// source-major driver loop would have produced them.
    pub fn drain(&mut self, usage: &mut Usage, cfg: &RingConfig) -> Vec<Msg> {
        let mut out = Vec::new();
        for (src, p) in self.packets.drain(..) {
            if !p.local {
                usage.cpu(cfg.recv_cpu_per_packet);
                usage.cpu(SimTime::from_us(
                    cfg.unmarshal_cpu_per_tuple.as_us() * p.msgs.len() as u64,
                ));
                usage.counts.packets_recv += 1;
                #[cfg(feature = "metrics")]
                gamma_metrics::counter_add("packets_recv", self.node as u16, "exchange", 1);
                #[cfg(feature = "trace")]
                gamma_trace::emit(
                    self.node as u16,
                    usage.total_demand().as_us(),
                    gamma_trace::EventKind::PacketRecv {
                        src: src as u16,
                        bytes: crate::trace_bytes(p.bytes),
                    },
                );
            }
            let query = p.query;
            for (tag, payload) in p.msgs {
                out.push(Msg {
                    src,
                    tag,
                    query,
                    payload,
                });
            }
        }
        out
    }
}

/// The machine-wide exchange: one [`Outbox`] per node plus the undelivered
/// packets for each destination node.
#[derive(Debug)]
pub struct Exchange {
    outboxes: Vec<Outbox>,
    inboxes: Vec<Vec<(usize, Packet)>>,
}

impl Exchange {
    /// An exchange connecting `nodes` processors.
    pub fn new(cfg: RingConfig, nodes: usize) -> Self {
        assert!(nodes > 0, "a machine needs at least one node");
        Exchange {
            outboxes: (0..nodes)
                .map(|n| Outbox::new(n, cfg.clone(), nodes))
                .collect(),
            inboxes: (0..nodes).map(|_| Vec::new()).collect(),
        }
    }

    /// Number of nodes connected.
    pub fn nodes(&self) -> usize {
        self.outboxes.len()
    }

    /// Disjoint mutable access to the outboxes (one per node), for handing
    /// each worker its own sending endpoint.
    pub fn outboxes_mut(&mut self) -> &mut [Outbox] {
        &mut self.outboxes
    }

    /// Stamp every node's subsequently sent tuples with `query`. The
    /// scheduler brackets each admitted query's execution steps with this;
    /// plain single-query runs never call it and stay stamped 0.
    pub fn set_query(&mut self, query: u32) {
        for ob in self.outboxes.iter_mut() {
            ob.set_query(query);
        }
    }

    /// Move every sealed packet into its destination inbox, source-major:
    /// all of node 0's sealed packets (in emission order), then node 1's…
    /// Deterministic regardless of producer scheduling.
    pub fn route(&mut self) {
        for src in 0..self.outboxes.len() {
            let ob = &mut self.outboxes[src];
            for dst in 0..ob.streams.len() {
                for p in ob.streams[dst].sealed.drain(..) {
                    self.inboxes[dst].push((src, p));
                }
            }
        }
    }

    /// Take node `n`'s inbox (undelivered packets), leaving it empty.
    pub fn take_inbox(&mut self, n: usize) -> Inbox {
        Inbox {
            node: n,
            packets: std::mem::take(&mut self.inboxes[n]),
        }
    }

    /// Put an inbox's remaining state back (after a consumer step asserts
    /// it drained everything, this is a no-op but keeps ownership simple).
    pub fn return_inbox(&mut self, inbox: Inbox) {
        debug_assert!(self.inboxes[inbox.node].is_empty());
        self.inboxes[inbox.node] = inbox.packets;
    }

    /// True when no pending bytes, sealed packets, or undelivered inbox
    /// packets remain anywhere — the phase-boundary invariant.
    pub fn is_drained(&self) -> bool {
        self.outboxes.iter().all(|o| o.is_drained()) && self.inboxes.iter().all(|i| i.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exchange(n: usize) -> (Exchange, Vec<Usage>) {
        (
            Exchange::new(RingConfig::gamma_1989(), n),
            vec![Usage::ZERO; n],
        )
    }

    fn send_n(ex: &mut Exchange, u: &mut [Usage], src: usize, dst: usize, bytes: usize, n: usize) {
        for i in 0..n {
            ex.outboxes_mut()[src].send(&mut u[src], dst, i as u32, vec![0u8; bytes]);
        }
    }

    #[test]
    fn remote_tuples_batch_into_packets() {
        let (mut ex, mut u) = exchange(2);
        send_n(&mut ex, &mut u, 0, 1, 208, 9);
        assert_eq!(
            u[0].counts.packets_sent, 0,
            "9*208=1872 < 2048, still pending"
        );
        send_n(&mut ex, &mut u, 0, 1, 208, 1);
        assert_eq!(u[0].counts.packets_sent, 1, "10th tuple seals the packet");
        ex.outboxes_mut()[0].seal(&mut u[0]);
        assert_eq!(u[0].counts.packets_sent, 2, "seal emits the partial packet");
        ex.route();
        let mut inbox = ex.take_inbox(1);
        let msgs = inbox.drain(&mut u[1], &RingConfig::gamma_1989());
        ex.return_inbox(inbox);
        assert_eq!(msgs.len(), 10);
        assert_eq!(u[1].counts.packets_recv, 2);
        assert!(ex.is_drained());
    }

    #[test]
    fn charges_match_fabric_exactly() {
        // The producer+consumer totals must equal what Fabric charges for
        // the identical tuple stream — packet boundaries and all.
        let cfg = RingConfig::gamma_1989();
        let sizes = [208u64, 100, 2048, 2040, 16, 208, 208, 1000, 3000, 5];
        let mut fab = crate::Fabric::new(cfg.clone(), 3);
        let mut fu = vec![Usage::ZERO; 3];
        for (i, &b) in sizes.iter().enumerate() {
            let dst = if i % 3 == 0 { 0 } else { 2 };
            fab.send_tuple(&mut fu, 0, dst, b);
        }
        fab.flush(&mut fu);

        let (mut ex, mut u) = exchange(3);
        for (i, &b) in sizes.iter().enumerate() {
            let dst = if i % 3 == 0 { 0 } else { 2 };
            ex.outboxes_mut()[0].send(&mut u[0], dst, 7, vec![0u8; b as usize]);
        }
        ex.outboxes_mut()[0].seal(&mut u[0]);
        ex.route();
        for n in [0usize, 2] {
            let mut inbox = ex.take_inbox(n);
            inbox.drain(&mut u[n], &cfg);
            ex.return_inbox(inbox);
        }
        assert!(ex.is_drained());
        for n in 0..3 {
            assert_eq!(u[n].cpu, fu[n].cpu, "node {n} cpu");
            assert_eq!(u[n].net, fu[n].net, "node {n} net");
            assert_eq!(u[n].ring_bytes, fu[n].ring_bytes, "node {n} ring bytes");
            assert_eq!(
                u[n].counts.packets_sent, fu[n].counts.packets_sent,
                "node {n} packets sent"
            );
            assert_eq!(
                u[n].counts.packets_recv, fu[n].counts.packets_recv,
                "node {n} packets recv"
            );
            assert_eq!(
                u[n].counts.msgs_shortcircuit, fu[n].counts.msgs_shortcircuit,
                "node {n} short circuits"
            );
        }
    }

    #[test]
    fn local_sends_shortcircuit_and_cost_nothing_to_drain() {
        let (mut ex, mut u) = exchange(2);
        send_n(&mut ex, &mut u, 1, 1, 208, 10);
        ex.outboxes_mut()[1].seal(&mut u[1]);
        assert_eq!(u[1].counts.packets_sent, 0);
        assert_eq!(
            u[1].counts.msgs_shortcircuit, 2,
            "one full + one partial message"
        );
        assert_eq!(u[1].ring_bytes, 0);
        ex.route();
        let before = u[1].clone();
        let mut inbox = ex.take_inbox(1);
        let msgs = inbox.drain(&mut u[1], &RingConfig::gamma_1989());
        ex.return_inbox(inbox);
        assert_eq!(msgs.len(), 10);
        assert_eq!(u[1], before, "short-circuited drain is free");
    }

    #[test]
    fn route_orders_source_major() {
        let (mut ex, mut u) = exchange(3);
        // Producers send interleaved; the consumer still sees src 0 first.
        ex.outboxes_mut()[2].send(&mut u[2], 1, 9, vec![2u8; 8]);
        ex.outboxes_mut()[0].send(&mut u[0], 1, 9, vec![0u8; 8]);
        ex.outboxes_mut()[2].send(&mut u[2], 1, 9, vec![3u8; 8]);
        ex.outboxes_mut()[0].seal(&mut u[0]);
        ex.outboxes_mut()[2].seal(&mut u[2]);
        ex.route();
        let mut inbox = ex.take_inbox(1);
        let msgs = inbox.drain(&mut u[1], &RingConfig::gamma_1989());
        ex.return_inbox(inbox);
        let srcs: Vec<usize> = msgs.iter().map(|m| m.src).collect();
        assert_eq!(srcs, vec![0, 2, 2]);
        assert_eq!(msgs[1].payload, vec![2u8; 8]);
        assert_eq!(msgs[2].payload, vec![3u8; 8]);
    }

    #[test]
    fn oversized_tuple_gets_own_packets() {
        let (mut ex, mut u) = exchange(2);
        send_n(&mut ex, &mut u, 0, 1, 100, 1);
        send_n(&mut ex, &mut u, 0, 1, 2040, 1);
        assert_eq!(u[0].counts.packets_sent, 1, "first packet sealed early");
        ex.outboxes_mut()[0].seal(&mut u[0]);
        assert_eq!(u[0].counts.packets_sent, 2);
    }

    #[test]
    fn tags_and_payloads_survive_transit() {
        let (mut ex, mut u) = exchange(2);
        ex.outboxes_mut()[0].send(&mut u[0], 1, 0xAB00_0001, vec![1, 2, 3]);
        ex.outboxes_mut()[0].send(&mut u[0], 1, 0xCD00_0002, vec![4, 5]);
        ex.outboxes_mut()[0].seal(&mut u[0]);
        ex.route();
        let mut inbox = ex.take_inbox(1);
        let msgs = inbox.drain(&mut u[1], &RingConfig::gamma_1989());
        ex.return_inbox(inbox);
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[0].tag, 0xAB00_0001);
        assert_eq!(msgs[0].payload, vec![1, 2, 3]);
        assert_eq!(msgs[1].tag, 0xCD00_0002);
        assert_eq!(msgs[1].payload, vec![4, 5]);
    }

    #[test]
    fn query_ids_survive_transit() {
        let (mut ex, mut u) = exchange(2);
        ex.set_query(3);
        ex.outboxes_mut()[0].send(&mut u[0], 1, 7, vec![1, 2, 3]);
        ex.outboxes_mut()[0].seal(&mut u[0]);
        ex.route();
        ex.set_query(4);
        ex.outboxes_mut()[0].send(&mut u[0], 1, 7, vec![4, 5]);
        ex.outboxes_mut()[0].seal(&mut u[0]);
        ex.route();
        let mut inbox = ex.take_inbox(1);
        let msgs = inbox.drain(&mut u[1], &RingConfig::gamma_1989());
        ex.return_inbox(inbox);
        let queries: Vec<u32> = msgs.iter().map(|m| m.query).collect();
        assert_eq!(queries, vec![3, 4]);
    }

    #[test]
    fn undrained_exchange_is_detected() {
        let (mut ex, mut u) = exchange(2);
        send_n(&mut ex, &mut u, 0, 1, 208, 1);
        assert!(!ex.is_drained(), "pending bytes");
        ex.outboxes_mut()[0].seal(&mut u[0]);
        assert!(!ex.is_drained(), "sealed but unrouted");
        ex.route();
        assert!(!ex.is_drained(), "routed but undrained");
        let mut inbox = ex.take_inbox(1);
        inbox.drain(&mut u[1], &RingConfig::gamma_1989());
        ex.return_inbox(inbox);
        assert!(ex.is_drained());
    }
}
