//! Mailbox-style tuple exchange between per-node operator instances.
//!
//! [`Fabric`](crate::Fabric) charges both ends of a stream at the moment a
//! packet fills, which forces the caller to hold every node's ledger at
//! once — fine for a sequential driver loop, fatal for per-node workers.
//! `Exchange` splits the same accounting in two:
//!
//! * a producer owns an [`Outbox`] and pays the send side (marshalling,
//!   per-packet protocol CPU, ring occupancy) as packets fill, exactly as
//!   `Fabric::send_tuple` would charge the source node;
//! * packets carry their payloads to a per-node [`Inbox`], and the consumer
//!   pays the receive side (per-packet protocol CPU, per-tuple
//!   unmarshalling) when it drains them.
//!
//! Same-node messages are short-circuited just like the fabric's: they are
//! batched identically, the producer pays the cheap hand-off, and the
//! consumer pays nothing at drain time (the communications software hands
//! the buffer over by reference).
//!
//! Packet boundaries, byte counts, and per-node charge totals are identical
//! to routing the same tuple stream through `Fabric` — only the receiver's
//! charges move from "when the packet filled" to "when the consumer drained
//! it", which is also where they belong in a message-passing execution.
//!
//! Ordering is deterministic: [`Exchange::route`] moves sealed packets into
//! inboxes source-major, so a consumer sees source 0's tuples (in emission
//! order), then source 1's, regardless of how producers were scheduled.
//!
//! ## Host representation
//!
//! A packet is one contiguous frame buffer (`[tag:u32][len:u32][payload]`
//! per message) rather than a `Vec` of per-tuple `Vec<u8>`s: a producer
//! copies payload bytes straight into the current packet's buffer
//! ([`Outbox::send`] takes `&[u8]`), and a consumer gets borrowed
//! [`Msg`] views out of a [`Drained`] batch — one heap allocation per
//! *packet* on each side instead of one per *tuple*. The modeled `bytes`
//! of a packet remain the sum of payload lengths (frame headers are
//! unmodeled metadata, like `tag` always was), so every virtual charge,
//! packet boundary, and counter is unchanged.

use std::sync::{Arc, Mutex};

use gamma_des::{SimTime, Usage};

use crate::config::RingConfig;

/// Bytes of unmodeled frame metadata per message (`tag` + payload length).
const FRAME_HEADER: usize = 8;

/// Recycled packet frame buffers. Sealing a packet hands its buffer to the
/// consumer inside the [`Drained`] batch; when the batch drops, the buffers
/// come back here and the next packet starts at full capacity instead of
/// regrowing from empty (which costs ~4 reallocations per 2 KB packet).
/// Host-side only: buffer reuse cannot change a packet boundary or charge.
static FREE_BUFS: Mutex<Vec<Vec<u8>>> = Mutex::new(Vec::new());

/// Most buffers the free list retains; beyond this, dropped buffers are
/// simply freed (bounds host memory across machines of any size).
const FREE_BUFS_MAX: usize = 1024;

fn take_buf() -> Vec<u8> {
    match FREE_BUFS.try_lock() {
        Ok(mut l) => l.pop().unwrap_or_default(),
        Err(_) => Vec::new(),
    }
}

fn recycle_buf(mut buf: Vec<u8>) {
    if buf.capacity() == 0 {
        return;
    }
    buf.clear();
    if let Ok(mut l) = FREE_BUFS.try_lock() {
        if l.len() < FREE_BUFS_MAX {
            l.push(buf);
        }
    }
}

/// One delivered message: the sending node, the caller-defined stream tag,
/// the query it belongs to (0 outside the scheduler), and a borrowed view
/// of the payload bytes (owned by the [`Drained`] batch it came from).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Msg<'a> {
    pub src: usize,
    pub tag: u32,
    /// Query the message belongs to. 0 for plain single-query runs; the
    /// scheduler stamps each admitted query's id so interleaved plan
    /// instances multiplex over one exchange without mixing streams.
    pub query: u32,
    pub payload: &'a [u8],
}

/// A sealed packet travelling from one producer to one consumer.
#[derive(Debug, Clone)]
struct Packet {
    /// Modeled wire bytes (payload sizes as charged, not serialized size).
    bytes: u64,
    /// True when src == dst: short-circuited, free for the receiver.
    local: bool,
    /// Query whose tuples fill this packet (packets never mix queries:
    /// a packet is sealed within one query's execution step).
    query: u32,
    /// Messages framed in `buf`.
    count: u32,
    /// Contiguous `[tag][len][payload]` frames.
    buf: Vec<u8>,
}

/// Per-destination stream state inside an [`Outbox`].
#[derive(Debug, Clone, Default)]
struct Stream {
    pending_bytes: u64,
    pending_count: u32,
    pending: Vec<u8>,
    sealed: Vec<Packet>,
}

impl Stream {
    fn push_frame(&mut self, packet_bytes: u64, tag: u32, a: &[u8], b: &[u8]) {
        let len = (a.len() + b.len()) as u32;
        if self.pending.capacity() == 0 {
            // One right-sized allocation per fresh buffer instead of
            // doubling up from empty (~4 reallocations per 2 KB packet).
            // Sized for a full packet plus one overhanging tuple's frame.
            self.pending
                .reserve(2 * (packet_bytes as usize + FRAME_HEADER));
        }
        self.pending.reserve(FRAME_HEADER + len as usize);
        self.pending.extend_from_slice(&tag.to_le_bytes());
        self.pending.extend_from_slice(&len.to_le_bytes());
        self.pending.extend_from_slice(a);
        self.pending.extend_from_slice(b);
        self.pending_count += 1;
    }

    fn seal_pending(&mut self, local: bool, query: u32) -> Packet {
        let p = Packet {
            bytes: self.pending_bytes,
            local,
            query,
            count: self.pending_count,
            buf: std::mem::replace(&mut self.pending, take_buf()),
        };
        self.pending_bytes = 0;
        self.pending_count = 0;
        p
    }
}

/// The sending half of one node's exchange endpoint. Owns the packet
/// batching state for every destination; charges only the producer's
/// ledger.
#[derive(Debug, Clone)]
pub struct Outbox {
    src: usize,
    /// Shared with every other outbox and the exchange (never cloned per
    /// endpoint — the config is immutable for the machine's lifetime).
    cfg: Arc<RingConfig>,
    query: u32,
    streams: Vec<Stream>,
}

impl Outbox {
    fn new(src: usize, cfg: Arc<RingConfig>, nodes: usize) -> Self {
        Outbox {
            src,
            cfg,
            query: 0,
            streams: vec![Stream::default(); nodes],
        }
    }

    /// The node this outbox belongs to.
    pub fn node(&self) -> usize {
        self.src
    }

    /// Stamp subsequently sent tuples with `query` (0 is the single-query
    /// default). Must only change while the outbox is drained — a packet
    /// never mixes queries.
    pub fn set_query(&mut self, query: u32) {
        debug_assert!(
            self.streams
                .iter()
                .all(|s| s.pending.is_empty() && s.sealed.is_empty()),
            "query changed mid-packet"
        );
        self.query = query;
    }

    /// Send one tuple to `dst` on stream `tag`, batching into packets and
    /// charging the producer ledger exactly as [`Fabric::send_tuple`]
    /// charges the source node. The payload bytes are copied into the
    /// current packet's frame buffer — no per-tuple allocation.
    ///
    /// [`Fabric::send_tuple`]: crate::Fabric::send_tuple
    pub fn send(&mut self, usage: &mut Usage, dst: usize, tag: u32, payload: &[u8]) {
        self.send2(usage, dst, tag, payload, &[]);
    }

    /// Send one logical tuple whose payload is the concatenation `a ++ b`
    /// (e.g. a composed join result), framed as a single message without
    /// materializing the concatenation anywhere else.
    pub fn send2(&mut self, usage: &mut Usage, dst: usize, tag: u32, a: &[u8], b: &[u8]) {
        let bytes = (a.len() + b.len()) as u64;
        let packet = self.cfg.packet_bytes;
        if self.src == dst {
            usage.cpu(self.cfg.shortcircuit_cpu_per_tuple);
        } else {
            usage.cpu(self.cfg.marshal_cpu_per_tuple);
        }
        let src = self.src;
        let local = src == dst;
        let query = self.query;
        let s = &mut self.streams[dst];
        if s.pending_bytes + bytes > packet && s.pending_bytes > 0 {
            // Tuple does not fit in the current packet: seal it, then start
            // a new packet with this tuple (tuples are never split).
            let full = s.seal_pending(local, query);
            s.pending_bytes = bytes;
            s.push_frame(packet, tag, a, b);
            let fb = full.bytes;
            s.sealed.push(full);
            Self::charge_emit(&self.cfg, usage, src, dst, fb);
        } else {
            s.pending_bytes += bytes;
            s.push_frame(packet, tag, a, b);
            if s.pending_bytes >= packet {
                let full = s.seal_pending(local, query);
                let fb = full.bytes;
                s.sealed.push(full);
                Self::charge_emit(&self.cfg, usage, src, dst, fb);
            }
        }
    }

    /// Producer-side charge for one completed packet (mirrors the source
    /// half of `Fabric::emit`).
    fn charge_emit(cfg: &RingConfig, usage: &mut Usage, src: usize, dst: usize, bytes: u64) {
        if src == dst {
            usage.cpu(cfg.shortcircuit_cpu_per_msg);
            usage.counts.msgs_shortcircuit += 1;
            #[cfg(feature = "metrics")]
            {
                gamma_metrics::counter_add("msgs_shortcircuit", src as u16, "exchange", 1);
                gamma_metrics::counter_add("shortcircuit_bytes", src as u16, "exchange", bytes);
            }
            #[cfg(feature = "trace")]
            gamma_trace::emit(
                src as u16,
                usage.total_demand().as_us(),
                gamma_trace::EventKind::ShortCircuit {
                    bytes: crate::trace_bytes(bytes),
                },
            );
        } else {
            usage.cpu(cfg.send_cpu_per_packet);
            usage.net(cfg.wire_time(bytes), bytes);
            usage.counts.packets_sent += 1;
            #[cfg(feature = "metrics")]
            {
                gamma_metrics::counter_add("packets_sent", src as u16, "exchange", 1);
                gamma_metrics::counter_add("wire_bytes", src as u16, "exchange", bytes);
                gamma_metrics::observe("packet_bytes", src as u16, "exchange", bytes);
            }
            #[cfg(feature = "trace")]
            gamma_trace::emit(
                src as u16,
                usage.total_demand().as_us(),
                gamma_trace::EventKind::PacketSend {
                    dst: dst as u16,
                    bytes: crate::trace_bytes(bytes),
                },
            );
        }
        #[cfg(all(not(feature = "trace"), not(feature = "metrics")))]
        let _ = (src, dst, bytes);
        #[cfg(all(not(feature = "trace"), feature = "metrics"))]
        let _ = dst;
    }

    /// Seal every partially filled packet (end of the producer's output
    /// streams for this step). Destinations flush in ascending order, like
    /// `Fabric::flush` walks its destination-inner loop for one source.
    pub fn seal(&mut self, usage: &mut Usage) {
        let src = self.src;
        let query = self.query;
        let cfg = Arc::clone(&self.cfg);
        for (dst, s) in self.streams.iter_mut().enumerate() {
            if s.pending_bytes > 0 {
                let p = s.seal_pending(src == dst, query);
                let bytes = p.bytes;
                s.sealed.push(p);
                Self::charge_emit(&cfg, usage, src, dst, bytes);
            }
        }
    }

    /// True when no stream holds pending or sealed-but-unrouted data.
    pub fn is_drained(&self) -> bool {
        self.streams
            .iter()
            .all(|s| s.pending_bytes == 0 && s.pending.is_empty() && s.sealed.is_empty())
    }
}

/// The receiving half of one node's exchange endpoint: packets delivered by
/// [`Exchange::route`], in source-major order.
#[derive(Debug, Default)]
pub struct Inbox {
    node: usize,
    packets: Vec<(usize, Packet)>,
}

impl Inbox {
    /// The node this inbox belongs to.
    pub fn node(&self) -> usize {
        self.node
    }

    /// True when no undelivered packets remain.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Drain every delivered packet, charging the consumer's ledger for the
    /// receive side of each remote packet (per-packet protocol CPU plus
    /// per-tuple unmarshalling — the receiver half of `Fabric::emit`).
    /// Short-circuited packets cost nothing here. Messages come back in
    /// (source ascending, emission order) — the order a sequential
    /// source-major driver loop would have produced them. The returned
    /// [`Drained`] batch owns the packet buffers; iterate it for borrowed
    /// [`Msg`] views.
    pub fn drain(&mut self, usage: &mut Usage, cfg: &RingConfig) -> Drained {
        let packets = std::mem::take(&mut self.packets);
        #[allow(unused_variables)]
        for (src, p) in &packets {
            if !p.local {
                usage.cpu(cfg.recv_cpu_per_packet);
                usage.cpu(SimTime::from_us(
                    cfg.unmarshal_cpu_per_tuple.as_us() * p.count as u64,
                ));
                usage.counts.packets_recv += 1;
                #[cfg(feature = "metrics")]
                gamma_metrics::counter_add("packets_recv", self.node as u16, "exchange", 1);
                #[cfg(feature = "trace")]
                gamma_trace::emit(
                    self.node as u16,
                    usage.total_demand().as_us(),
                    gamma_trace::EventKind::PacketRecv {
                        src: *src as u16,
                        bytes: crate::trace_bytes(p.bytes),
                    },
                );
            }
        }
        Drained { packets }
    }
}

/// A batch of drained packets; owns the frame buffers so [`Msg`] views can
/// be borrowed from it while the consumer's context stays mutable. Dropping
/// the batch recycles the buffers for future packets.
#[derive(Debug, Default)]
pub struct Drained {
    packets: Vec<(usize, Packet)>,
}

impl Drop for Drained {
    fn drop(&mut self) {
        for (_, p) in self.packets.drain(..) {
            recycle_buf(p.buf);
        }
    }
}

impl Drained {
    /// Total number of messages across every packet.
    pub fn len(&self) -> usize {
        self.packets.iter().map(|(_, p)| p.count as usize).sum()
    }

    /// True when no packets were delivered.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Iterate the messages in delivery order (source-major, emission
    /// order within a source).
    pub fn iter(&self) -> impl Iterator<Item = Msg<'_>> + '_ {
        self.packets.iter().flat_map(|(src, p)| {
            let mut pos = 0usize;
            std::iter::from_fn(move || {
                if pos >= p.buf.len() {
                    return None;
                }
                let tag = u32::from_le_bytes(p.buf[pos..pos + 4].try_into().unwrap());
                let len = u32::from_le_bytes(p.buf[pos + 4..pos + FRAME_HEADER].try_into().unwrap())
                    as usize;
                let payload = &p.buf[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
                pos += FRAME_HEADER + len;
                Some(Msg {
                    src: *src,
                    tag,
                    query: p.query,
                    payload,
                })
            })
        })
    }

    /// Collect borrowed message views (one small Vec per drain, not one
    /// allocation per tuple).
    pub fn msgs(&self) -> Vec<Msg<'_>> {
        self.iter().collect()
    }
}

/// The machine-wide exchange: one [`Outbox`] per node plus the undelivered
/// packets for each destination node.
#[derive(Debug)]
pub struct Exchange {
    outboxes: Vec<Outbox>,
    inboxes: Vec<Vec<(usize, Packet)>>,
    /// High-water mark of each inbox's undelivered packet count, observed
    /// at every `route()`. Deterministic across executors because routing
    /// replays sends in source-major input order.
    peak_inbox: Vec<usize>,
}

impl Exchange {
    /// An exchange connecting `nodes` processors.
    pub fn new(cfg: RingConfig, nodes: usize) -> Self {
        assert!(nodes > 0, "a machine needs at least one node");
        let cfg = Arc::new(cfg);
        Exchange {
            outboxes: (0..nodes)
                .map(|n| Outbox::new(n, Arc::clone(&cfg), nodes))
                .collect(),
            inboxes: (0..nodes).map(|_| Vec::new()).collect(),
            peak_inbox: vec![0; nodes],
        }
    }

    /// Number of nodes connected.
    pub fn nodes(&self) -> usize {
        self.outboxes.len()
    }

    /// Disjoint mutable access to the outboxes (one per node), for handing
    /// each worker its own sending endpoint.
    pub fn outboxes_mut(&mut self) -> &mut [Outbox] {
        &mut self.outboxes
    }

    /// Stamp every node's subsequently sent tuples with `query`. The
    /// scheduler brackets each admitted query's execution steps with this;
    /// plain single-query runs never call it and stay stamped 0.
    pub fn set_query(&mut self, query: u32) {
        for ob in self.outboxes.iter_mut() {
            ob.set_query(query);
        }
    }

    /// Move every sealed packet into its destination inbox, source-major:
    /// all of node 0's sealed packets (in emission order), then node 1's…
    /// Deterministic regardless of producer scheduling.
    pub fn route(&mut self) {
        for src in 0..self.outboxes.len() {
            let ob = &mut self.outboxes[src];
            for dst in 0..ob.streams.len() {
                for p in ob.streams[dst].sealed.drain(..) {
                    self.inboxes[dst].push((src, p));
                }
            }
        }
        for (n, inbox) in self.inboxes.iter().enumerate() {
            self.peak_inbox[n] = self.peak_inbox[n].max(inbox.len());
        }
    }

    /// Per-node high-water marks of undelivered inbox packets, the
    /// exchange's contribution to the flight-recorder envelope.
    pub fn peak_inbox_packets(&self) -> &[usize] {
        &self.peak_inbox
    }

    /// Take node `n`'s inbox (undelivered packets), leaving it empty.
    pub fn take_inbox(&mut self, n: usize) -> Inbox {
        Inbox {
            node: n,
            packets: std::mem::take(&mut self.inboxes[n]),
        }
    }

    /// Put an inbox's remaining state back (after a consumer step asserts
    /// it drained everything, this is a no-op but keeps ownership simple).
    pub fn return_inbox(&mut self, inbox: Inbox) {
        debug_assert!(self.inboxes[inbox.node].is_empty());
        self.inboxes[inbox.node] = inbox.packets;
    }

    /// True when no pending bytes, sealed packets, or undelivered inbox
    /// packets remain anywhere — the phase-boundary invariant.
    pub fn is_drained(&self) -> bool {
        self.outboxes.iter().all(|o| o.is_drained()) && self.inboxes.iter().all(|i| i.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exchange(n: usize) -> (Exchange, Vec<Usage>) {
        (
            Exchange::new(RingConfig::gamma_1989(), n),
            vec![Usage::ZERO; n],
        )
    }

    fn send_n(ex: &mut Exchange, u: &mut [Usage], src: usize, dst: usize, bytes: usize, n: usize) {
        for i in 0..n {
            ex.outboxes_mut()[src].send(&mut u[src], dst, i as u32, &vec![0u8; bytes]);
        }
    }

    #[test]
    fn remote_tuples_batch_into_packets() {
        let (mut ex, mut u) = exchange(2);
        send_n(&mut ex, &mut u, 0, 1, 208, 9);
        assert_eq!(
            u[0].counts.packets_sent, 0,
            "9*208=1872 < 2048, still pending"
        );
        send_n(&mut ex, &mut u, 0, 1, 208, 1);
        assert_eq!(u[0].counts.packets_sent, 1, "10th tuple seals the packet");
        ex.outboxes_mut()[0].seal(&mut u[0]);
        assert_eq!(u[0].counts.packets_sent, 2, "seal emits the partial packet");
        ex.route();
        let mut inbox = ex.take_inbox(1);
        let drained = inbox.drain(&mut u[1], &RingConfig::gamma_1989());
        ex.return_inbox(inbox);
        assert_eq!(drained.len(), 10);
        assert_eq!(drained.iter().count(), 10);
        assert_eq!(u[1].counts.packets_recv, 2);
        assert!(ex.is_drained());
    }

    #[test]
    fn charges_match_fabric_exactly() {
        // The producer+consumer totals must equal what Fabric charges for
        // the identical tuple stream — packet boundaries and all.
        let cfg = RingConfig::gamma_1989();
        let sizes = [208u64, 100, 2048, 2040, 16, 208, 208, 1000, 3000, 5];
        let mut fab = crate::Fabric::new(cfg.clone(), 3);
        let mut fu = vec![Usage::ZERO; 3];
        for (i, &b) in sizes.iter().enumerate() {
            let dst = if i % 3 == 0 { 0 } else { 2 };
            fab.send_tuple(&mut fu, 0, dst, b);
        }
        fab.flush(&mut fu);

        let (mut ex, mut u) = exchange(3);
        for (i, &b) in sizes.iter().enumerate() {
            let dst = if i % 3 == 0 { 0 } else { 2 };
            ex.outboxes_mut()[0].send(&mut u[0], dst, 7, &vec![0u8; b as usize]);
        }
        ex.outboxes_mut()[0].seal(&mut u[0]);
        ex.route();
        for n in [0usize, 2] {
            let mut inbox = ex.take_inbox(n);
            inbox.drain(&mut u[n], &cfg);
            ex.return_inbox(inbox);
        }
        assert!(ex.is_drained());
        for n in 0..3 {
            assert_eq!(u[n].cpu, fu[n].cpu, "node {n} cpu");
            assert_eq!(u[n].net, fu[n].net, "node {n} net");
            assert_eq!(u[n].ring_bytes, fu[n].ring_bytes, "node {n} ring bytes");
            assert_eq!(
                u[n].counts.packets_sent, fu[n].counts.packets_sent,
                "node {n} packets sent"
            );
            assert_eq!(
                u[n].counts.packets_recv, fu[n].counts.packets_recv,
                "node {n} packets recv"
            );
            assert_eq!(
                u[n].counts.msgs_shortcircuit, fu[n].counts.msgs_shortcircuit,
                "node {n} short circuits"
            );
        }
    }

    #[test]
    fn split_payload_sends_charge_like_single_payload_sends() {
        // send2(a, b) must be indistinguishable — charges, boundaries,
        // delivered bytes — from send(a ++ b).
        let cfg = RingConfig::gamma_1989();
        let (mut ex, mut u) = exchange(2);
        let (mut ex2, mut u2) = exchange(2);
        let pairs: [(usize, usize); 5] = [(100, 108), (0, 208), (2040, 8), (1, 1), (208, 0)];
        for (i, &(a, b)) in pairs.iter().enumerate() {
            let left = vec![i as u8; a];
            let right = vec![!(i as u8); b];
            ex.outboxes_mut()[0].send2(&mut u[0], 1, i as u32, &left, &right);
            let mut whole = left.clone();
            whole.extend_from_slice(&right);
            ex2.outboxes_mut()[0].send(&mut u2[0], 1, i as u32, &whole);
        }
        ex.outboxes_mut()[0].seal(&mut u[0]);
        ex2.outboxes_mut()[0].seal(&mut u2[0]);
        assert_eq!(u[0], u2[0]);
        ex.route();
        ex2.route();
        let mut i1 = ex.take_inbox(1);
        let mut i2 = ex2.take_inbox(1);
        let d1 = i1.drain(&mut u[1], &cfg);
        let d2 = i2.drain(&mut u2[1], &cfg);
        assert_eq!(u[1], u2[1]);
        let m1: Vec<(u32, Vec<u8>)> = d1.iter().map(|m| (m.tag, m.payload.to_vec())).collect();
        let m2: Vec<(u32, Vec<u8>)> = d2.iter().map(|m| (m.tag, m.payload.to_vec())).collect();
        assert_eq!(m1, m2);
        ex.return_inbox(i1);
        ex2.return_inbox(i2);
    }

    #[test]
    fn local_sends_shortcircuit_and_cost_nothing_to_drain() {
        let (mut ex, mut u) = exchange(2);
        send_n(&mut ex, &mut u, 1, 1, 208, 10);
        ex.outboxes_mut()[1].seal(&mut u[1]);
        assert_eq!(u[1].counts.packets_sent, 0);
        assert_eq!(
            u[1].counts.msgs_shortcircuit, 2,
            "one full + one partial message"
        );
        assert_eq!(u[1].ring_bytes, 0);
        ex.route();
        let before = u[1].clone();
        let mut inbox = ex.take_inbox(1);
        let drained = inbox.drain(&mut u[1], &RingConfig::gamma_1989());
        ex.return_inbox(inbox);
        assert_eq!(drained.len(), 10);
        assert_eq!(u[1], before, "short-circuited drain is free");
    }

    #[test]
    fn route_orders_source_major() {
        let (mut ex, mut u) = exchange(3);
        // Producers send interleaved; the consumer still sees src 0 first.
        ex.outboxes_mut()[2].send(&mut u[2], 1, 9, &[2u8; 8]);
        ex.outboxes_mut()[0].send(&mut u[0], 1, 9, &[0u8; 8]);
        ex.outboxes_mut()[2].send(&mut u[2], 1, 9, &[3u8; 8]);
        ex.outboxes_mut()[0].seal(&mut u[0]);
        ex.outboxes_mut()[2].seal(&mut u[2]);
        ex.route();
        let mut inbox = ex.take_inbox(1);
        let drained = inbox.drain(&mut u[1], &RingConfig::gamma_1989());
        let msgs = drained.msgs();
        let srcs: Vec<usize> = msgs.iter().map(|m| m.src).collect();
        assert_eq!(srcs, vec![0, 2, 2]);
        assert_eq!(msgs[1].payload, vec![2u8; 8]);
        assert_eq!(msgs[2].payload, vec![3u8; 8]);
        ex.return_inbox(inbox);
    }

    #[test]
    fn peak_inbox_tracks_the_route_high_water_mark() {
        let (mut ex, mut u) = exchange(3);
        assert_eq!(ex.peak_inbox_packets(), &[0, 0, 0]);
        ex.outboxes_mut()[0].send(&mut u[0], 1, 9, &[0u8; 8]);
        ex.outboxes_mut()[2].send(&mut u[2], 1, 9, &[2u8; 8]);
        ex.outboxes_mut()[0].seal(&mut u[0]);
        ex.outboxes_mut()[2].seal(&mut u[2]);
        ex.route();
        assert_eq!(ex.peak_inbox_packets(), &[0, 2, 0]);
        let mut inbox = ex.take_inbox(1);
        inbox.drain(&mut u[1], &RingConfig::gamma_1989());
        ex.return_inbox(inbox);
        // A later, smaller burst does not lower the recorded peak.
        ex.outboxes_mut()[0].send(&mut u[0], 1, 9, &[0u8; 8]);
        ex.outboxes_mut()[0].seal(&mut u[0]);
        ex.route();
        assert_eq!(ex.peak_inbox_packets(), &[0, 2, 0]);
    }

    #[test]
    fn oversized_tuple_gets_own_packets() {
        let (mut ex, mut u) = exchange(2);
        send_n(&mut ex, &mut u, 0, 1, 100, 1);
        send_n(&mut ex, &mut u, 0, 1, 2040, 1);
        assert_eq!(u[0].counts.packets_sent, 1, "first packet sealed early");
        ex.outboxes_mut()[0].seal(&mut u[0]);
        assert_eq!(u[0].counts.packets_sent, 2);
    }

    #[test]
    fn tags_and_payloads_survive_transit() {
        let (mut ex, mut u) = exchange(2);
        ex.outboxes_mut()[0].send(&mut u[0], 1, 0xAB00_0001, &[1, 2, 3]);
        ex.outboxes_mut()[0].send(&mut u[0], 1, 0xCD00_0002, &[4, 5]);
        ex.outboxes_mut()[0].seal(&mut u[0]);
        ex.route();
        let mut inbox = ex.take_inbox(1);
        let drained = inbox.drain(&mut u[1], &RingConfig::gamma_1989());
        let msgs = drained.msgs();
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[0].tag, 0xAB00_0001);
        assert_eq!(msgs[0].payload, vec![1, 2, 3]);
        assert_eq!(msgs[1].tag, 0xCD00_0002);
        assert_eq!(msgs[1].payload, vec![4, 5]);
        ex.return_inbox(inbox);
    }

    #[test]
    fn query_ids_survive_transit() {
        let (mut ex, mut u) = exchange(2);
        ex.set_query(3);
        ex.outboxes_mut()[0].send(&mut u[0], 1, 7, &[1, 2, 3]);
        ex.outboxes_mut()[0].seal(&mut u[0]);
        ex.route();
        ex.set_query(4);
        ex.outboxes_mut()[0].send(&mut u[0], 1, 7, &[4, 5]);
        ex.outboxes_mut()[0].seal(&mut u[0]);
        ex.route();
        let mut inbox = ex.take_inbox(1);
        let drained = inbox.drain(&mut u[1], &RingConfig::gamma_1989());
        let queries: Vec<u32> = drained.iter().map(|m| m.query).collect();
        assert_eq!(queries, vec![3, 4]);
        ex.return_inbox(inbox);
    }

    #[test]
    fn undrained_exchange_is_detected() {
        let (mut ex, mut u) = exchange(2);
        send_n(&mut ex, &mut u, 0, 1, 208, 1);
        assert!(!ex.is_drained(), "pending bytes");
        ex.outboxes_mut()[0].seal(&mut u[0]);
        assert!(!ex.is_drained(), "sealed but unrouted");
        ex.route();
        assert!(!ex.is_drained(), "routed but undrained");
        let mut inbox = ex.take_inbox(1);
        inbox.drain(&mut u[1], &RingConfig::gamma_1989());
        ex.return_inbox(inbox);
        assert!(ex.is_drained());
    }
}
