//! Minimal offline stand-in for the `rand_distr` crate.
//!
//! Provides the [`Normal`] distribution via the Box–Muller transform —
//! statistically equivalent to the real crate's ziggurat sampler, and
//! deterministic for a fixed `rand` stub stream, which is all the
//! workspace requires.

use rand::RngCore;

/// Types that can draw samples of `T` from an RNG.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error for invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid normal distribution parameters")
    }
}

impl std::error::Error for NormalError {}

/// Normal (Gaussian) distribution, sampled by Box–Muller.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// A normal distribution with the given mean and standard deviation.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !std_dev.is_finite() || std_dev < 0.0 || !mean.is_finite() {
            return Err(NormalError);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: two uniforms -> one standard normal deviate.
        // u1 is nudged away from zero so ln(u1) stays finite.
        let u1 = ((rng.next_u64() >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64);
        let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn rejects_bad_params() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn sample_statistics() {
        let normal = Normal::new(10.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "sd {}", var.sqrt());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let normal = Normal::new(0.0, 1.0).unwrap();
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for _ in 0..32 {
            assert_eq!(normal.sample(&mut a), normal.sample(&mut b));
        }
    }
}
