//! Minimal offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small API subset the engine actually uses:
//! [`BytesMut`] as a growable byte buffer and the [`Buf`]/[`BufMut`]
//! cursor traits. Semantics match the real crate for this subset.

use std::ops::{Deref, DerefMut};

/// A growable, contiguous byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// A buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> Self {
        BytesMut {
            inner: vec![0u8; len],
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { inner: v }
    }
}

/// Read cursor over a byte source.
pub trait Buf {
    /// Remaining readable bytes.
    fn remaining(&self) -> usize;
    /// Advance the cursor by `n` bytes.
    fn advance(&mut self, n: usize);
    /// View of the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Read a little-endian `u16` and advance.
    fn get_u16_le(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_le_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Read a little-endian `u32` and advance.
    fn get_u32_le(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_index() {
        let mut b = BytesMut::zeroed(8);
        assert_eq!(b.len(), 8);
        b[0..2].copy_from_slice(&7u16.to_le_bytes());
        assert_eq!(u16::from_le_bytes([b[0], b[1]]), 7);
    }

    #[test]
    fn buf_cursor_reads() {
        let data = [1u8, 0, 2, 0];
        let mut cur: &[u8] = &data;
        assert_eq!(cur.get_u16_le(), 1);
        assert_eq!(cur.get_u16_le(), 2);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn put_slice_appends() {
        let mut b = BytesMut::with_capacity(4);
        b.put_slice(b"ab");
        b.put_slice(b"cd");
        assert_eq!(&b[..], b"abcd");
    }
}
