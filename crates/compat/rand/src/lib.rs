//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the API subset the generators actually use:
//! [`Rng::gen_range`], [`SeedableRng::seed_from_u64`], [`StdRng`], and
//! the [`seq::SliceRandom`] shuffle. The core generator is
//! xoshiro256** seeded through SplitMix64 — not the real `StdRng`
//! stream, but a high-quality deterministic PRNG, which is all the
//! workspace requires (every consumer seeds explicitly and asserts
//! statistical, not stream-exact, properties).

/// Named generators, mirroring the real crate's module layout.
pub mod rngs {
    pub use crate::StdRng;
}

/// Types re-exported by the real crate's prelude that callers import.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng, StdRng};
}

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniform random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with uniform random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                self.start + (bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end - start) as u64;
                if span == u64::MAX as $t as u64 && start == 0 {
                    return rng.next_u64() as $t;
                }
                start + (bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u16, u32, u64, usize);

impl SampleRange<i64> for std::ops::Range<i64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(bounded_u64(rng, span) as i64)
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

/// Debiased bounded sample in `0..span` (Lemire-style rejection).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone keeps the modulo unbiased.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Uniform f64 in `[0, 1)` from the high 53 bits.
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// High-level sampling methods, blanket-implemented for any bit source.
pub trait Rng: RngCore {
    /// Uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Uniform `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// xoshiro256** — the workspace's deterministic standard generator.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Sequence-related helpers (`shuffle`, `choose`).
pub mod seq {
    use crate::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }
}
