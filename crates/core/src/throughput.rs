//! Multiuser throughput bounds — §5's conjecture made quantitative.
//!
//! The paper closes: *"when the 'remote' configuration is used, CPU
//! utilization at the processors with disks drops… Thus, in a multiuser
//! environment, offloading joins to remote processors may permit higher
//! throughput by reducing the load at the processors with disks."*
//!
//! This module applies classical operational analysis (the bottleneck law
//! and asymptotic bounds of Denning & Buzen) to a measured
//! [`crate::JoinReport`]: every phase's per-node busy times define each
//! processor's service demand per query, the largest demand is the
//! bottleneck, and standard bounds give the achievable throughput and
//! response time as the number of concurrent queries grows. The engine
//! measures one query at a time; these laws extrapolate to the multiuser
//! regime the authors left to future work.

use gamma_des::SimTime;

use crate::machine::Machine;
use crate::report::PhaseRecord;

/// Per-query service demands, one entry per processor, in seconds.
#[derive(Debug, Clone)]
pub struct DemandProfile {
    /// Busy seconds each node contributes to one query (CPU, disk and NI
    /// demands folded with the engine's overlap model).
    pub per_node_busy: Vec<f64>,
    /// Serialized scheduler seconds per query.
    pub scheduler: f64,
    /// Single-user response time, seconds.
    pub response: f64,
}

impl DemandProfile {
    /// Extract demands from a run's phase records.
    pub fn from_phases(machine: &Machine, phases: &[PhaseRecord], response: SimTime) -> Self {
        let mut per_node_busy = vec![0.0f64; machine.nodes()];
        let mut scheduler = 0.0f64;
        for ph in phases {
            scheduler += ph.sched_overhead.as_secs();
            for (n, u) in ph.ledgers.iter().enumerate() {
                per_node_busy[n] += u.busy_time().as_secs();
            }
        }
        DemandProfile {
            per_node_busy,
            scheduler,
            response: response.as_secs(),
        }
    }

    /// The bottleneck service demand `D_max`, seconds per query.
    pub fn bottleneck(&self) -> f64 {
        self.per_node_busy
            .iter()
            .copied()
            .chain(std::iter::once(self.scheduler))
            .fold(0.0, f64::max)
    }

    /// Sum of all service demands `D`, seconds of work per query.
    pub fn total_demand(&self) -> f64 {
        self.per_node_busy.iter().sum::<f64>() + self.scheduler
    }

    /// Asymptotic throughput bound: `X(N) <= min(N / (D + Z), 1 / D_max)`
    /// queries/second with `N` concurrent clients and think time `Z`.
    pub fn throughput_bound(&self, clients: u32, think_seconds: f64) -> f64 {
        let d = self.total_demand();
        let dmax = self.bottleneck();
        if dmax <= 0.0 {
            return 0.0;
        }
        (clients as f64 / (d + think_seconds)).min(1.0 / dmax)
    }

    /// Response-time lower bound at `N` clients (the other face of the
    /// asymptotic bounds): `R(N) >= max(D, N * D_max - Z)`.
    pub fn response_bound(&self, clients: u32, think_seconds: f64) -> f64 {
        let d = self.total_demand();
        (clients as f64 * self.bottleneck() - think_seconds).max(d)
    }

    /// Number of clients at which the bottleneck saturates:
    /// `N* = (D + Z) / D_max`.
    pub fn saturation_point(&self, think_seconds: f64) -> f64 {
        let dmax = self.bottleneck();
        if dmax <= 0.0 {
            return f64::INFINITY;
        }
        (self.total_demand() + think_seconds) / dmax
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamma_des::Usage;

    fn profile(busy: &[f64]) -> DemandProfile {
        DemandProfile {
            per_node_busy: busy.to_vec(),
            scheduler: 0.1,
            response: busy.iter().copied().fold(0.0, f64::max),
        }
    }

    #[test]
    fn bottleneck_and_total() {
        let p = profile(&[2.0, 5.0, 3.0]);
        assert_eq!(p.bottleneck(), 5.0);
        assert!((p.total_demand() - 10.1).abs() < 1e-9);
    }

    #[test]
    fn throughput_saturates_at_bottleneck() {
        let p = profile(&[2.0, 5.0, 3.0]);
        // One client: limited by the full demand cycle.
        let x1 = p.throughput_bound(1, 0.0);
        assert!((x1 - 1.0 / 10.1).abs() < 1e-9);
        // Many clients: limited by the bottleneck node.
        let x100 = p.throughput_bound(100, 0.0);
        assert!((x100 - 0.2).abs() < 1e-9);
        // Monotone non-decreasing in clients.
        assert!(p.throughput_bound(2, 0.0) >= x1);
    }

    #[test]
    fn saturation_point_matches_bounds_crossing() {
        let p = profile(&[2.0, 5.0, 3.0]);
        let nstar = p.saturation_point(0.0);
        assert!((nstar - 10.1 / 5.0).abs() < 1e-9);
        // Just below N*: the linear bound binds; above: the bottleneck.
        let below = p.throughput_bound(2, 0.0);
        assert!(below < 1.0 / 5.0 + 1e-12);
    }

    #[test]
    fn response_bound_grows_linearly_past_saturation() {
        let p = profile(&[2.0, 5.0, 3.0]);
        assert!((p.response_bound(1, 0.0) - 10.1).abs() < 1e-9);
        assert!((p.response_bound(10, 0.0) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn from_phases_folds_ledgers() {
        use crate::machine::MachineConfig;
        let machine = Machine::new(MachineConfig::local_8());
        let mut a = Usage::ZERO;
        a.cpu(SimTime::from_secs(2));
        let mut b = Usage::ZERO;
        b.disk(SimTime::from_secs(3));
        let mut ledgers = machine.ledgers();
        ledgers[0] = a;
        ledgers[1] = b;
        let ph = PhaseRecord::new("x", ledgers, SimTime::from_ms(500));
        let p = DemandProfile::from_phases(&machine, &[ph], SimTime::from_secs(3));
        assert!((p.per_node_busy[0] - 2.0).abs() < 1e-9);
        assert!((p.per_node_busy[1] - 3.0).abs() < 1e-9);
        assert!((p.scheduler - 0.5).abs() < 1e-9);
        assert_eq!(p.bottleneck(), 3.0);
    }

    #[test]
    fn zero_demand_is_handled() {
        let p = profile(&[]);
        // Only scheduler demand remains.
        assert!((p.bottleneck() - 0.1).abs() < 1e-9);
        let empty = DemandProfile {
            per_node_busy: vec![],
            scheduler: 0.0,
            response: 0.0,
        };
        assert_eq!(empty.throughput_bound(10, 1.0), 0.0);
        assert!(empty.saturation_point(1.0).is_infinite());
    }
}
