//! Machine configuration, per-node state, relation catalog and result sink.
//!
//! A [`Machine`] is one Gamma configuration: `disk_nodes` processors with
//! attached volumes (always the first node ids) plus `diskless_nodes`
//! processors used only for join computation, all connected by the ring
//! fabric. Each processor owns its local state as a [`NodeState`] — volume,
//! buffer pool — so the executor can hand disjoint `&mut NodeState` to
//! per-node workers. Inter-node tuple traffic travels through the machine's
//! [`Exchange`] as explicit messages; the [`Fabric`] remains for
//! control-plane accounting (scheduler dispatch, operator start, filter
//! broadcast). Relations are horizontally declustered across the disk nodes
//! at load time by one of the paper's strategies (round-robin, hashed,
//! range).

use gamma_des::Usage;
use gamma_net::{Exchange, Fabric};
use gamma_wiss::{BufferPool, FileId, HeapWriter, Volume};

use crate::cost::CostModel;
use crate::exec::ExecConfig;
use crate::hash::{hash_u32, JOIN_SEED};
use crate::tuple::{Attr, Schema};

/// Processor identifier (0-based; disk nodes come first).
pub type NodeId = usize;
/// Catalog identifier of a stored relation.
pub type RelationId = usize;
/// One per-node ledger vector for a phase.
pub type Ledgers = Vec<Usage>;

/// Shape of the machine.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Processors with attached disks (store all relations; execute scans).
    pub disk_nodes: usize,
    /// Diskless processors available for join computation.
    pub diskless_nodes: usize,
    /// Cost model.
    pub cost: CostModel,
}

impl MachineConfig {
    /// The paper's default: 8 disk nodes, no diskless join nodes ("local").
    pub fn local_8() -> Self {
        MachineConfig {
            disk_nodes: 8,
            diskless_nodes: 0,
            cost: CostModel::gamma_1989(),
        }
    }

    /// The paper's "remote" configuration: 8 disk + 8 diskless nodes.
    pub fn remote_8_plus_8() -> Self {
        MachineConfig {
            disk_nodes: 8,
            diskless_nodes: 8,
            cost: CostModel::gamma_1989(),
        }
    }
}

/// How a relation's tuples were assigned to disk nodes at load time.
#[derive(Debug, Clone)]
pub enum Declustering {
    /// Tuples dealt to nodes in rotation.
    RoundRobin,
    /// `h(attr) mod D` — the strategy that enables HPJA short-circuiting.
    Hashed {
        /// Partitioning attribute.
        attr: Attr,
    },
    /// Range partitioning by `attr` with `D-1` ascending cut points; node
    /// `i` stores values in `[cuts[i-1], cuts[i])`. Used by §4.4 to keep
    /// scans balanced under skew.
    Range {
        /// Partitioning attribute.
        attr: Attr,
        /// Ascending cut points (length `D-1`).
        cuts: Vec<u32>,
    },
}

impl Declustering {
    /// Destination disk node for a tuple.
    pub fn place(&self, tuple: &[u8], disk_nodes: usize, seq: u64) -> NodeId {
        match self {
            Declustering::RoundRobin => (seq % disk_nodes as u64) as NodeId,
            Declustering::Hashed { attr } => {
                (hash_u32(JOIN_SEED, attr.get(tuple)) % disk_nodes as u64) as NodeId
            }
            Declustering::Range { attr, cuts } => {
                let v = attr.get(tuple);
                cuts.partition_point(|&c| c <= v)
            }
        }
    }
}

/// A horizontally declustered stored relation.
#[derive(Debug, Clone)]
pub struct StoredRelation {
    /// Human-readable name.
    pub name: String,
    /// Tuple layout.
    pub schema: Schema,
    /// One heap-file fragment per disk node (indexed by disk node id).
    pub fragments: Vec<FileId>,
    /// Declustering strategy used at load.
    pub declustering: Declustering,
    /// Total tuples.
    pub tuples: u64,
    /// Total data bytes (tuples × width) — the "size of the relation" used
    /// for memory ratios.
    pub data_bytes: u64,
}

/// Everything one processor owns locally: its disk volume and buffer pool
/// (disk nodes only). The executor hands each per-node worker a disjoint
/// `&mut NodeState` together with the node's phase ledger slot, so no
/// worker can reach across to another node's disk — cross-node traffic
/// must go through the [`Exchange`].
pub struct NodeState {
    /// This processor's id.
    pub id: NodeId,
    /// Attached volume (`None` for diskless nodes).
    pub volume: Option<Volume>,
    /// Buffer pool in front of the volume (`None` for diskless nodes).
    pub pool: Option<BufferPool>,
}

impl NodeState {
    /// Volume + pool together, for WiSS calls that need both mutably.
    /// Panics on diskless nodes.
    pub fn vp(&mut self) -> (&mut Volume, &mut BufferPool) {
        (
            self.volume.as_mut().expect("disk node"),
            self.pool.as_mut().expect("disk node"),
        )
    }

    /// This node's volume; panics on diskless nodes.
    pub fn vol(&self) -> &Volume {
        self.volume.as_ref().expect("disk node")
    }

    /// This node's volume, mutably; panics on diskless nodes.
    pub fn vol_mut(&mut self) -> &mut Volume {
        self.volume.as_mut().expect("disk node")
    }
}

/// One simulated Gamma machine.
pub struct Machine {
    /// Configuration.
    pub cfg: MachineConfig,
    /// Per-node local state (volume, pool), indexed by node id.
    pub nodes: Vec<NodeState>,
    /// The interconnect's control plane: scheduler messages, operator
    /// starts, split-table and bit-filter broadcasts.
    pub fabric: Fabric,
    /// The interconnect's data plane: every inter-node tuple travels here
    /// as an explicit message between per-node mailboxes.
    pub exchange: Exchange,
    /// Which executor runs this machine's steps: the serial reference
    /// path, or a persistent worker pool reused across waves, phases and
    /// queries. Per-machine state — there is no process-global switch.
    pub exec: ExecConfig,
    relations: Vec<Option<StoredRelation>>,
}

impl Machine {
    /// Build a machine.
    pub fn new(cfg: MachineConfig) -> Self {
        assert!(cfg.disk_nodes > 0, "a machine needs disk nodes");
        let total = cfg.disk_nodes + cfg.diskless_nodes;
        let nodes = (0..total)
            .map(|n| NodeState {
                id: n,
                volume: (n < cfg.disk_nodes).then(Volume::new),
                pool: (n < cfg.disk_nodes).then(|| {
                    let mut p = BufferPool::new(cfg.cost.disk, cfg.cost.pool_frames);
                    p.set_node(n as u16);
                    p
                }),
            })
            .collect();
        let fabric = Fabric::new(cfg.cost.ring.clone(), total);
        let exchange = Exchange::new(cfg.cost.ring.clone(), total);
        Machine {
            cfg,
            nodes,
            fabric,
            exchange,
            exec: ExecConfig::auto(),
            relations: Vec::new(),
        }
    }

    /// Replace the executor configuration (builder-style), e.g.
    /// `Machine::new(cfg).with_exec(ExecConfig::serial())` for the serial
    /// reference run of a byte-identity comparison.
    pub fn with_exec(mut self, exec: ExecConfig) -> Self {
        self.exec = exec;
        self
    }

    /// Total processor count.
    pub fn nodes(&self) -> usize {
        self.cfg.disk_nodes + self.cfg.diskless_nodes
    }

    /// Ids of the processors with disks.
    pub fn disk_nodes(&self) -> Vec<NodeId> {
        (0..self.cfg.disk_nodes).collect()
    }

    /// Ids of the diskless processors.
    pub fn diskless_nodes(&self) -> Vec<NodeId> {
        (self.cfg.disk_nodes..self.nodes()).collect()
    }

    /// Fresh zeroed ledgers, one per node.
    pub fn ledgers(&self) -> Ledgers {
        vec![Usage::ZERO; self.nodes()]
    }

    /// Cold-start every buffer pool (between experiments).
    pub fn clear_pools(&mut self) {
        for n in self.nodes.iter_mut() {
            if let Some(p) = n.pool.as_mut() {
                p.clear();
            }
        }
    }

    /// Per-node buffer-pool peak page counts since the last
    /// [`Machine::clear_pools`] (0 for diskless nodes). `run_join` clears
    /// pools at entry, so after a query this is its per-node footprint —
    /// what the scheduler's admission control budgets against.
    pub fn pool_peaks(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .map(|n| n.pool.as_ref().map_or(0, |p| p.peak_pages()))
            .collect()
    }

    /// Load a relation, placing each tuple per `declustering`. Loading is
    /// not part of any measured query, so no ledger is charged; the tuples
    /// do however land in real page files that later scans pay to read.
    pub fn load_relation<I>(
        &mut self,
        name: &str,
        schema: Schema,
        declustering: Declustering,
        tuples: I,
    ) -> RelationId
    where
        I: IntoIterator,
        I::Item: AsRef<[u8]>,
    {
        let d = self.cfg.disk_nodes;
        let page_bytes = self.cfg.cost.disk.page_bytes;
        let mut scratch = Usage::ZERO; // load-time I/O is not measured
        let mut writers: Vec<HeapWriter> = (0..d)
            .map(|n| HeapWriter::create(self.nodes[n].vol_mut(), page_bytes))
            .collect();
        let mut count = 0u64;
        let mut bytes = 0u64;
        for t in tuples {
            let t = t.as_ref();
            let node = declustering.place(t, d, count);
            assert!(node < d, "declustering routed to nonexistent node {node}");
            let (vol, pool) = self.nodes[node].vp();
            writers[node].push(vol, pool, &mut scratch, t);
            bytes += t.len() as u64;
            count += 1;
        }
        let fragments: Vec<FileId> = writers
            .into_iter()
            .enumerate()
            .map(|(n, w)| {
                let (vol, pool) = self.nodes[n].vp();
                w.finish(vol, pool, &mut scratch)
            })
            .collect();
        self.relations.push(Some(StoredRelation {
            name: name.to_string(),
            schema,
            fragments,
            declustering,
            tuples: count,
            data_bytes: bytes,
        }));
        self.clear_pools();
        self.relations.len() - 1
    }

    /// Register files produced by an operator (store nodes) as a new
    /// stored relation — how `SELECT ... INTO` results and materialized
    /// operator outputs enter the catalog.
    pub fn register_relation(
        &mut self,
        name: &str,
        schema: Schema,
        declustering: Declustering,
        fragments: Vec<FileId>,
    ) -> RelationId {
        assert_eq!(
            fragments.len(),
            self.cfg.disk_nodes,
            "one fragment per disk node"
        );
        let mut tuples = 0u64;
        let mut bytes = 0u64;
        for (n, &f) in fragments.iter().enumerate() {
            let vol = self.nodes[n].vol();
            tuples += vol.file_records(f) as u64;
            for p in 0..vol.file_pages(f) {
                bytes += vol
                    .page(f, p)
                    .records()
                    .map(|r| r.len() as u64)
                    .sum::<u64>();
            }
        }
        self.relations.push(Some(StoredRelation {
            name: name.to_string(),
            schema,
            fragments,
            declustering,
            tuples,
            data_bytes: bytes,
        }));
        self.relations.len() - 1
    }

    /// Mutable access for same-crate operators (update/delete rewrite
    /// fragments and cardinalities in place).
    pub(crate) fn relation_mut(&mut self, id: RelationId) -> &mut StoredRelation {
        self.relations[id]
            .as_mut()
            .unwrap_or_else(|| panic!("relation {id} was dropped"))
    }

    /// Look up a relation.
    pub fn relation(&self, id: RelationId) -> &StoredRelation {
        self.relations[id]
            .as_ref()
            .unwrap_or_else(|| panic!("relation {id} was dropped"))
    }

    /// Drop a relation and free its fragments.
    pub fn drop_relation(&mut self, id: RelationId) {
        let rel = self.relations[id]
            .take()
            .unwrap_or_else(|| panic!("relation {id} already dropped"));
        for (n, f) in rel.fragments.iter().enumerate() {
            let (vol, pool) = self.nodes[n].vp();
            vol.delete_file(*f);
            pool.evict_file(*f);
        }
    }
}

/// Order-independent checksum of a result multiset — engine results are
/// compared against the oracle join through this.
#[inline]
pub fn multiset_checksum(acc: u64, rec: &[u8]) -> u64 {
    // FNV-1a per record, summed (wrapping) across records so order and
    // distribution across nodes do not matter.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in rec {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    acc.wrapping_add(h)
}

/// Exchange stream tag carried by every result tuple headed for a store
/// operator.
pub const RESULT_TAG: u32 = 0x52 << 24;

/// Per-producer round-robin destination chooser for result tuples. Each
/// producing operator instance deals its matches to the store operators
/// independently (starting at its own offset so producers do not gang up
/// on store node 0), which keeps the assignment deterministic without any
/// cross-worker coordination.
#[derive(Debug, Clone, Copy)]
pub struct ResultRoute {
    disk_nodes: usize,
    next: usize,
}

impl ResultRoute {
    /// A route for the producer on node `src`.
    pub fn new(src: NodeId, disk_nodes: usize) -> Self {
        ResultRoute {
            disk_nodes,
            next: src % disk_nodes,
        }
    }

    /// Next store node in rotation.
    pub fn advance(&mut self) -> NodeId {
        let dst = self.next;
        self.next = (self.next + 1) % self.disk_nodes;
        dst
    }
}

/// Round-robin result store: the operators at the root of the query tree
/// distribute result tuples to store operators at each disk site (Section
/// 2.2). Producers send [`RESULT_TAG`] messages through the [`Exchange`];
/// the store side runs at the disk nodes when their inboxes drain.
pub struct ResultSink {
    writers: Vec<Option<HeapWriter>>,
    disk_nodes: usize,
    tuples: u64,
    checksum: u64,
}

/// What a finished [`ResultSink`] produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultInfo {
    /// Result heap files, one per disk node.
    pub files: Vec<FileId>,
    /// Result cardinality.
    pub tuples: u64,
    /// Order-independent checksum of the result multiset.
    pub checksum: u64,
}

impl ResultSink {
    /// Open one store operator per disk node.
    pub fn new(machine: &mut Machine) -> Self {
        let d = machine.cfg.disk_nodes;
        let page = machine.cfg.cost.disk.page_bytes;
        let writers = (0..d)
            .map(|n| Some(HeapWriter::create(machine.nodes[n].vol_mut(), page)))
            .collect();
        ResultSink {
            writers,
            disk_nodes: d,
            tuples: 0,
            checksum: 0,
        }
    }

    /// Number of store operators.
    pub fn disk_nodes(&self) -> usize {
        self.disk_nodes
    }

    /// Take disk node `n`'s store writer for the duration of a consumer
    /// step (the step's worker owns it; return with [`put_writer`]).
    ///
    /// [`put_writer`]: ResultSink::put_writer
    pub fn take_writer(&mut self, n: NodeId) -> HeapWriter {
        self.writers[n].take().expect("store writer in use")
    }

    /// Return a store writer borrowed with [`ResultSink::take_writer`].
    pub fn put_writer(&mut self, n: NodeId, w: HeapWriter) {
        debug_assert!(self.writers[n].is_none());
        self.writers[n] = Some(w);
    }

    /// Store one delivered result tuple at its destination disk node:
    /// the store operator's CPU plus the heap append. Returns the record's
    /// checksum contribution; callers fold the per-step tallies back with
    /// [`ResultSink::absorb`].
    pub fn store_at(
        cost: &CostModel,
        node: &mut NodeState,
        usage: &mut Usage,
        w: &mut HeapWriter,
        rec: &[u8],
    ) -> u64 {
        usage.cpu(cost.t(cost.store_tuple_us));
        let (vol, pool) = node.vp();
        w.push(vol, pool, usage, rec);
        multiset_checksum(0, rec)
    }

    /// Fold one step's stored-tuple count and checksum sum into the sink.
    pub fn absorb(&mut self, tuples: u64, checksum: u64) {
        self.tuples += tuples;
        self.checksum = self.checksum.wrapping_add(checksum);
    }

    /// Main-thread producer path for simple operators: send one composed
    /// result tuple from the operator on `src` into the exchange. The
    /// tuple is stored when [`ResultSink::flush`] drains the store nodes.
    pub fn push(
        &mut self,
        machine: &mut Machine,
        usage: &mut Ledgers,
        route: &mut ResultRoute,
        src: NodeId,
        rec: &[u8],
    ) {
        let dst = route.advance();
        usage[src].counts.tuples_out += 1;
        #[cfg(feature = "metrics")]
        gamma_metrics::counter_add("op_tuples_out", src as u16, "result", 1);
        machine.exchange.outboxes_mut()[src].send(&mut usage[src], dst, RESULT_TAG, rec);
    }

    /// Main-thread store path: seal every outbox, route, and run the store
    /// operators sequentially over their inboxes. Every delivered message
    /// must be a result tuple (operators with other in-flight traffic must
    /// drain it before flushing the sink).
    pub fn flush(&mut self, machine: &mut Machine, usage: &mut Ledgers) {
        let cost = machine.cfg.cost.clone();
        for (n, ledger) in usage.iter_mut().enumerate() {
            machine.exchange.outboxes_mut()[n].seal(ledger);
        }
        machine.exchange.route();
        for (n, ledger) in usage.iter_mut().enumerate().take(self.disk_nodes) {
            let mut inbox = machine.exchange.take_inbox(n);
            let msgs = inbox.drain(ledger, machine.fabric.config());
            machine.exchange.return_inbox(inbox);
            let mut w = self.take_writer(n);
            let mut tuples = 0u64;
            let mut sum = 0u64;
            for m in msgs.iter() {
                assert_eq!(m.tag, RESULT_TAG, "unexpected stream in result flush");
                sum = sum.wrapping_add(Self::store_at(
                    &cost,
                    &mut machine.nodes[n],
                    ledger,
                    &mut w,
                    m.payload,
                ));
                tuples += 1;
            }
            self.put_writer(n, w);
            self.absorb(tuples, sum);
        }
    }

    /// Close the store operators and return the result description.
    pub fn finish(mut self, machine: &mut Machine, usage: &mut Ledgers) -> ResultInfo {
        let mut files = Vec::with_capacity(self.disk_nodes);
        let writers = std::mem::take(&mut self.writers);
        for (n, w) in writers.into_iter().enumerate() {
            let w = w.expect("store writer in use");
            let (vol, pool) = machine.nodes[n].vp();
            files.push(w.finish(vol, pool, &mut usage[n]));
        }
        ResultInfo {
            files,
            tuples: self.tuples,
            checksum: self.checksum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Field;

    fn schema() -> Schema {
        Schema::new(vec![Field::Int("k".into()), Field::Str("pad".into(), 28)])
    }

    fn mk_tuple(schema: &Schema, k: u32) -> Vec<u8> {
        let mut t = vec![0u8; schema.tuple_bytes()];
        schema.int_attr("k").put(&mut t, k);
        t
    }

    #[test]
    fn machine_shape() {
        let m = Machine::new(MachineConfig::remote_8_plus_8());
        assert_eq!(m.nodes(), 16);
        assert_eq!(m.disk_nodes(), (0..8).collect::<Vec<_>>());
        assert_eq!(m.diskless_nodes(), (8..16).collect::<Vec<_>>());
        assert!(m.nodes[0].volume.is_some());
        assert!(m.nodes[8].volume.is_none());
        assert_eq!(m.nodes[5].id, 5);
    }

    #[test]
    fn hashed_load_places_by_join_hash() {
        let mut m = Machine::new(MachineConfig::local_8());
        let s = schema();
        let attr = s.int_attr("k");
        let tuples: Vec<Vec<u8>> = (0..800).map(|k| mk_tuple(&s, k)).collect();
        let id = m.load_relation("t", s.clone(), Declustering::Hashed { attr }, tuples);
        let rel = m.relation(id);
        assert_eq!(rel.tuples, 800);
        assert_eq!(rel.data_bytes, 800 * 32);
        // Every stored tuple must be on its hash-home node.
        for n in 0..8 {
            let vol = m.nodes[n].vol();
            let f = rel.fragments[n];
            for page_idx in 0..vol.file_pages(f) {
                for rec in vol.page(f, page_idx).records() {
                    let k = attr.get(rec);
                    assert_eq!((hash_u32(JOIN_SEED, k) % 8) as usize, n);
                }
            }
        }
    }

    #[test]
    fn round_robin_load_balances_exactly() {
        let mut m = Machine::new(MachineConfig::local_8());
        let s = schema();
        let tuples: Vec<Vec<u8>> = (0..800).map(|k| mk_tuple(&s, k)).collect();
        let id = m.load_relation("t", s, Declustering::RoundRobin, tuples);
        let rel = m.relation(id);
        for n in 0..8 {
            assert_eq!(m.nodes[n].vol().file_records(rel.fragments[n]), 100);
        }
    }

    #[test]
    fn range_load_respects_cuts() {
        let mut m = Machine::new(MachineConfig::local_8());
        let s = schema();
        let attr = s.int_attr("k");
        let cuts = vec![100, 200, 300, 400, 500, 600, 700];
        let tuples: Vec<Vec<u8>> = (0..800).map(|k| mk_tuple(&s, k)).collect();
        let id = m.load_relation("t", s, Declustering::Range { attr, cuts }, tuples);
        let rel = m.relation(id);
        for n in 0..8 {
            assert_eq!(
                m.nodes[n].vol().file_records(rel.fragments[n]),
                100,
                "node {n}"
            );
        }
    }

    #[test]
    fn drop_relation_frees_files() {
        let mut m = Machine::new(MachineConfig::local_8());
        let s = schema();
        let tuples: Vec<Vec<u8>> = (0..80).map(|k| mk_tuple(&s, k)).collect();
        let id = m.load_relation("t", s, Declustering::RoundRobin, tuples);
        let f0 = m.relation(id).fragments[0];
        m.drop_relation(id);
        assert!(!m.nodes[0].vol().exists(f0));
    }

    #[test]
    #[should_panic(expected = "was dropped")]
    fn using_dropped_relation_panics() {
        let mut m = Machine::new(MachineConfig::local_8());
        let s = schema();
        let id = m.load_relation("t", s, Declustering::RoundRobin, Vec::<Vec<u8>>::new());
        m.drop_relation(id);
        m.relation(id);
    }

    #[test]
    fn result_sink_round_robins_and_checksums() {
        let mut m = Machine::new(MachineConfig::local_8());
        let mut ledgers = m.ledgers();
        let mut sink = ResultSink::new(&mut m);
        let mut route = ResultRoute::new(0, 8);
        for i in 0..16u32 {
            sink.push(&mut m, &mut ledgers, &mut route, 0, &i.to_le_bytes());
        }
        sink.flush(&mut m, &mut ledgers);
        assert!(m.exchange.is_drained());
        let info = sink.finish(&mut m, &mut ledgers);
        assert_eq!(info.tuples, 16);
        for (n, f) in info.files.iter().enumerate() {
            assert_eq!(m.nodes[n].vol().file_records(*f), 2);
        }
        assert_eq!(ledgers[0].counts.tuples_out, 16);
        // Checksum is order independent.
        let a = multiset_checksum(multiset_checksum(0, b"x"), b"y");
        let b = multiset_checksum(multiset_checksum(0, b"y"), b"x");
        assert_eq!(a, b);
        assert_ne!(a, multiset_checksum(0, b"x"));
    }

    #[test]
    fn ledgers_match_node_count() {
        let m = Machine::new(MachineConfig::remote_8_plus_8());
        assert_eq!(m.ledgers().len(), 16);
    }
}
