//! Machine configuration, relation catalog and result sink.
//!
//! A [`Machine`] is one Gamma configuration: `disk_nodes` processors with
//! attached volumes (always the first node ids) plus `diskless_nodes`
//! processors used only for join computation, all connected by the ring
//! fabric. Relations are horizontally declustered across the disk nodes at
//! load time by one of the paper's strategies (round-robin, hashed, range).

use gamma_des::Usage;
use gamma_net::Fabric;
use gamma_wiss::{BufferPool, FileId, HeapWriter, Volume};

use crate::cost::CostModel;
use crate::hash::{hash_u32, JOIN_SEED};
use crate::tuple::{Attr, Schema};

/// Processor identifier (0-based; disk nodes come first).
pub type NodeId = usize;
/// Catalog identifier of a stored relation.
pub type RelationId = usize;
/// One per-node ledger vector for a phase.
pub type Ledgers = Vec<Usage>;

/// Shape of the machine.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Processors with attached disks (store all relations; execute scans).
    pub disk_nodes: usize,
    /// Diskless processors available for join computation.
    pub diskless_nodes: usize,
    /// Cost model.
    pub cost: CostModel,
}

impl MachineConfig {
    /// The paper's default: 8 disk nodes, no diskless join nodes ("local").
    pub fn local_8() -> Self {
        MachineConfig {
            disk_nodes: 8,
            diskless_nodes: 0,
            cost: CostModel::gamma_1989(),
        }
    }

    /// The paper's "remote" configuration: 8 disk + 8 diskless nodes.
    pub fn remote_8_plus_8() -> Self {
        MachineConfig {
            disk_nodes: 8,
            diskless_nodes: 8,
            cost: CostModel::gamma_1989(),
        }
    }
}

/// How a relation's tuples were assigned to disk nodes at load time.
#[derive(Debug, Clone)]
pub enum Declustering {
    /// Tuples dealt to nodes in rotation.
    RoundRobin,
    /// `h(attr) mod D` — the strategy that enables HPJA short-circuiting.
    Hashed {
        /// Partitioning attribute.
        attr: Attr,
    },
    /// Range partitioning by `attr` with `D-1` ascending cut points; node
    /// `i` stores values in `[cuts[i-1], cuts[i])`. Used by §4.4 to keep
    /// scans balanced under skew.
    Range {
        /// Partitioning attribute.
        attr: Attr,
        /// Ascending cut points (length `D-1`).
        cuts: Vec<u32>,
    },
}

impl Declustering {
    /// Destination disk node for a tuple.
    pub fn place(&self, tuple: &[u8], disk_nodes: usize, seq: u64) -> NodeId {
        match self {
            Declustering::RoundRobin => (seq % disk_nodes as u64) as NodeId,
            Declustering::Hashed { attr } => {
                (hash_u32(JOIN_SEED, attr.get(tuple)) % disk_nodes as u64) as NodeId
            }
            Declustering::Range { attr, cuts } => {
                let v = attr.get(tuple);
                cuts.partition_point(|&c| c <= v)
            }
        }
    }
}

/// A horizontally declustered stored relation.
#[derive(Debug, Clone)]
pub struct StoredRelation {
    /// Human-readable name.
    pub name: String,
    /// Tuple layout.
    pub schema: Schema,
    /// One heap-file fragment per disk node (indexed by disk node id).
    pub fragments: Vec<FileId>,
    /// Declustering strategy used at load.
    pub declustering: Declustering,
    /// Total tuples.
    pub tuples: u64,
    /// Total data bytes (tuples × width) — the "size of the relation" used
    /// for memory ratios.
    pub data_bytes: u64,
}

/// One simulated Gamma machine.
pub struct Machine {
    /// Configuration.
    pub cfg: MachineConfig,
    /// Per-node volume (`None` for diskless nodes).
    pub volumes: Vec<Option<Volume>>,
    /// Per-node buffer pool (`None` for diskless nodes).
    pub pools: Vec<Option<BufferPool>>,
    /// The interconnect.
    pub fabric: Fabric,
    relations: Vec<Option<StoredRelation>>,
}

impl Machine {
    /// Build a machine.
    pub fn new(cfg: MachineConfig) -> Self {
        assert!(cfg.disk_nodes > 0, "a machine needs disk nodes");
        let total = cfg.disk_nodes + cfg.diskless_nodes;
        let volumes = (0..total)
            .map(|n| (n < cfg.disk_nodes).then(Volume::new))
            .collect();
        let pools = (0..total)
            .map(|n| {
                (n < cfg.disk_nodes).then(|| {
                    let mut p = BufferPool::new(cfg.cost.disk, cfg.cost.pool_frames);
                    p.set_node(n as u16);
                    p
                })
            })
            .collect();
        let fabric = Fabric::new(cfg.cost.ring.clone(), total);
        Machine {
            cfg,
            volumes,
            pools,
            fabric,
            relations: Vec::new(),
        }
    }

    /// Total processor count.
    pub fn nodes(&self) -> usize {
        self.cfg.disk_nodes + self.cfg.diskless_nodes
    }

    /// Ids of the processors with disks.
    pub fn disk_nodes(&self) -> Vec<NodeId> {
        (0..self.cfg.disk_nodes).collect()
    }

    /// Ids of the diskless processors.
    pub fn diskless_nodes(&self) -> Vec<NodeId> {
        (self.cfg.disk_nodes..self.nodes()).collect()
    }

    /// Fresh zeroed ledgers, one per node.
    pub fn ledgers(&self) -> Ledgers {
        vec![Usage::ZERO; self.nodes()]
    }

    /// Cold-start every buffer pool (between experiments).
    pub fn clear_pools(&mut self) {
        for p in self.pools.iter_mut().flatten() {
            p.clear();
        }
    }

    /// Load a relation, placing each tuple per `declustering`. Loading is
    /// not part of any measured query, so no ledger is charged; the tuples
    /// do however land in real page files that later scans pay to read.
    pub fn load_relation(
        &mut self,
        name: &str,
        schema: Schema,
        declustering: Declustering,
        tuples: impl IntoIterator<Item = Vec<u8>>,
    ) -> RelationId {
        let d = self.cfg.disk_nodes;
        let page_bytes = self.cfg.cost.disk.page_bytes;
        let mut scratch = Usage::ZERO; // load-time I/O is not measured
        let mut writers: Vec<HeapWriter> = (0..d)
            .map(|n| HeapWriter::create(self.volumes[n].as_mut().expect("disk node"), page_bytes))
            .collect();
        let mut count = 0u64;
        let mut bytes = 0u64;
        for t in tuples {
            let node = declustering.place(&t, d, count);
            assert!(node < d, "declustering routed to nonexistent node {node}");
            writers[node].push(
                self.volumes[node].as_mut().expect("disk node"),
                self.pools[node].as_mut().expect("disk node"),
                &mut scratch,
                &t,
            );
            bytes += t.len() as u64;
            count += 1;
        }
        let fragments: Vec<FileId> = writers
            .into_iter()
            .enumerate()
            .map(|(n, w)| {
                w.finish(
                    self.volumes[n].as_mut().expect("disk node"),
                    self.pools[n].as_mut().expect("disk node"),
                    &mut scratch,
                )
            })
            .collect();
        self.relations.push(Some(StoredRelation {
            name: name.to_string(),
            schema,
            fragments,
            declustering,
            tuples: count,
            data_bytes: bytes,
        }));
        self.clear_pools();
        self.relations.len() - 1
    }

    /// Register files produced by an operator (store nodes) as a new
    /// stored relation — how `SELECT ... INTO` results and materialized
    /// operator outputs enter the catalog.
    pub fn register_relation(
        &mut self,
        name: &str,
        schema: Schema,
        declustering: Declustering,
        fragments: Vec<FileId>,
    ) -> RelationId {
        assert_eq!(
            fragments.len(),
            self.cfg.disk_nodes,
            "one fragment per disk node"
        );
        let mut tuples = 0u64;
        let mut bytes = 0u64;
        for (n, &f) in fragments.iter().enumerate() {
            let vol = self.volumes[n].as_ref().expect("disk node");
            tuples += vol.file_records(f) as u64;
            for p in 0..vol.file_pages(f) {
                bytes += vol
                    .page(f, p)
                    .records()
                    .map(|r| r.len() as u64)
                    .sum::<u64>();
            }
        }
        self.relations.push(Some(StoredRelation {
            name: name.to_string(),
            schema,
            fragments,
            declustering,
            tuples,
            data_bytes: bytes,
        }));
        self.relations.len() - 1
    }

    /// Mutable access for same-crate operators (update/delete rewrite
    /// fragments and cardinalities in place).
    pub(crate) fn relation_mut(&mut self, id: RelationId) -> &mut StoredRelation {
        self.relations[id]
            .as_mut()
            .unwrap_or_else(|| panic!("relation {id} was dropped"))
    }

    /// Look up a relation.
    pub fn relation(&self, id: RelationId) -> &StoredRelation {
        self.relations[id]
            .as_ref()
            .unwrap_or_else(|| panic!("relation {id} was dropped"))
    }

    /// Drop a relation and free its fragments.
    pub fn drop_relation(&mut self, id: RelationId) {
        let rel = self.relations[id]
            .take()
            .unwrap_or_else(|| panic!("relation {id} already dropped"));
        for (n, f) in rel.fragments.iter().enumerate() {
            self.volumes[n].as_mut().expect("disk node").delete_file(*f);
            self.pools[n].as_mut().expect("disk node").evict_file(*f);
        }
    }
}

/// Order-independent checksum of a result multiset — engine results are
/// compared against the oracle join through this.
#[inline]
pub fn multiset_checksum(acc: u64, rec: &[u8]) -> u64 {
    // FNV-1a per record, summed (wrapping) across records so order and
    // distribution across nodes do not matter.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in rec {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    acc.wrapping_add(h)
}

/// Round-robin result store: the operators at the root of the query tree
/// distribute result tuples round-robin to store operators at each disk
/// site (Section 2.2).
pub struct ResultSink {
    writers: Vec<Option<HeapWriter>>,
    disk_nodes: usize,
    rr: usize,
    tuples: u64,
    checksum: u64,
}

/// What a finished [`ResultSink`] produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultInfo {
    /// Result heap files, one per disk node.
    pub files: Vec<FileId>,
    /// Result cardinality.
    pub tuples: u64,
    /// Order-independent checksum of the result multiset.
    pub checksum: u64,
}

impl ResultSink {
    /// Open one store operator per disk node.
    pub fn new(machine: &mut Machine) -> Self {
        let d = machine.cfg.disk_nodes;
        let page = machine.cfg.cost.disk.page_bytes;
        let writers = (0..d)
            .map(|n| {
                Some(HeapWriter::create(
                    machine.volumes[n].as_mut().unwrap(),
                    page,
                ))
            })
            .collect();
        ResultSink {
            writers,
            disk_nodes: d,
            rr: 0,
            tuples: 0,
            checksum: 0,
        }
    }

    /// Emit one composed result tuple from the join process on `src`.
    /// Charges the network hop and the store operator's CPU + page writes.
    pub fn push(&mut self, machine: &mut Machine, usage: &mut Ledgers, src: NodeId, rec: &[u8]) {
        let dst = self.rr % self.disk_nodes;
        self.rr += 1;
        machine.fabric.send_tuple(usage, src, dst, rec.len() as u64);
        usage[dst].cpu(machine.cfg.cost.t(machine.cfg.cost.store_tuple_us));
        let w = self.writers[dst].as_mut().expect("sink finished");
        w.push(
            machine.volumes[dst].as_mut().unwrap(),
            machine.pools[dst].as_mut().unwrap(),
            &mut usage[dst],
            rec,
        );
        usage[src].counts.tuples_out += 1;
        self.tuples += 1;
        self.checksum = multiset_checksum(self.checksum, rec);
    }

    /// Flush the store operators and return the result description.
    pub fn finish(mut self, machine: &mut Machine, usage: &mut Ledgers) -> ResultInfo {
        let mut files = Vec::with_capacity(self.disk_nodes);
        let writers = std::mem::take(&mut self.writers);
        for (n, w) in writers.into_iter().enumerate() {
            let w = w.expect("finished twice");
            files.push(w.finish(
                machine.volumes[n].as_mut().unwrap(),
                machine.pools[n].as_mut().unwrap(),
                &mut usage[n],
            ));
        }
        ResultInfo {
            files,
            tuples: self.tuples,
            checksum: self.checksum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Field;

    fn schema() -> Schema {
        Schema::new(vec![Field::Int("k".into()), Field::Str("pad".into(), 28)])
    }

    fn mk_tuple(schema: &Schema, k: u32) -> Vec<u8> {
        let mut t = vec![0u8; schema.tuple_bytes()];
        schema.int_attr("k").put(&mut t, k);
        t
    }

    #[test]
    fn machine_shape() {
        let m = Machine::new(MachineConfig::remote_8_plus_8());
        assert_eq!(m.nodes(), 16);
        assert_eq!(m.disk_nodes(), (0..8).collect::<Vec<_>>());
        assert_eq!(m.diskless_nodes(), (8..16).collect::<Vec<_>>());
        assert!(m.volumes[0].is_some());
        assert!(m.volumes[8].is_none());
    }

    #[test]
    fn hashed_load_places_by_join_hash() {
        let mut m = Machine::new(MachineConfig::local_8());
        let s = schema();
        let attr = s.int_attr("k");
        let tuples: Vec<Vec<u8>> = (0..800).map(|k| mk_tuple(&s, k)).collect();
        let id = m.load_relation("t", s.clone(), Declustering::Hashed { attr }, tuples);
        let rel = m.relation(id);
        assert_eq!(rel.tuples, 800);
        assert_eq!(rel.data_bytes, 800 * 32);
        // Every stored tuple must be on its hash-home node.
        for n in 0..8 {
            let vol = m.volumes[n].as_ref().unwrap();
            let f = rel.fragments[n];
            for page_idx in 0..vol.file_pages(f) {
                for rec in vol.page(f, page_idx).records() {
                    let k = attr.get(rec);
                    assert_eq!((hash_u32(JOIN_SEED, k) % 8) as usize, n);
                }
            }
        }
    }

    #[test]
    fn round_robin_load_balances_exactly() {
        let mut m = Machine::new(MachineConfig::local_8());
        let s = schema();
        let tuples: Vec<Vec<u8>> = (0..800).map(|k| mk_tuple(&s, k)).collect();
        let id = m.load_relation("t", s, Declustering::RoundRobin, tuples);
        let rel = m.relation(id);
        for n in 0..8 {
            assert_eq!(
                m.volumes[n]
                    .as_ref()
                    .unwrap()
                    .file_records(rel.fragments[n]),
                100
            );
        }
    }

    #[test]
    fn range_load_respects_cuts() {
        let mut m = Machine::new(MachineConfig::local_8());
        let s = schema();
        let attr = s.int_attr("k");
        let cuts = vec![100, 200, 300, 400, 500, 600, 700];
        let tuples: Vec<Vec<u8>> = (0..800).map(|k| mk_tuple(&s, k)).collect();
        let id = m.load_relation("t", s, Declustering::Range { attr, cuts }, tuples);
        let rel = m.relation(id);
        for n in 0..8 {
            let vol = m.volumes[n].as_ref().unwrap();
            let f = rel.fragments[n];
            assert_eq!(vol.file_records(f), 100, "node {n}");
        }
    }

    #[test]
    fn drop_relation_frees_files() {
        let mut m = Machine::new(MachineConfig::local_8());
        let s = schema();
        let tuples: Vec<Vec<u8>> = (0..80).map(|k| mk_tuple(&s, k)).collect();
        let id = m.load_relation("t", s, Declustering::RoundRobin, tuples);
        let f0 = m.relation(id).fragments[0];
        m.drop_relation(id);
        assert!(!m.volumes[0].as_ref().unwrap().exists(f0));
    }

    #[test]
    #[should_panic(expected = "was dropped")]
    fn using_dropped_relation_panics() {
        let mut m = Machine::new(MachineConfig::local_8());
        let s = schema();
        let id = m.load_relation("t", s, Declustering::RoundRobin, vec![]);
        m.drop_relation(id);
        m.relation(id);
    }

    #[test]
    fn result_sink_round_robins_and_checksums() {
        let mut m = Machine::new(MachineConfig::local_8());
        let mut ledgers = m.ledgers();
        let mut sink = ResultSink::new(&mut m);
        for i in 0..16u32 {
            sink.push(&mut m, &mut ledgers, 0, &i.to_le_bytes());
        }
        let info = sink.finish(&mut m, &mut ledgers);
        assert_eq!(info.tuples, 16);
        for (n, f) in info.files.iter().enumerate() {
            assert_eq!(m.volumes[n].as_ref().unwrap().file_records(*f), 2);
        }
        // Checksum is order independent.
        let a = multiset_checksum(multiset_checksum(0, b"x"), b"y");
        let b = multiset_checksum(multiset_checksum(0, b"y"), b"x");
        assert_eq!(a, b);
        assert_ne!(a, multiset_checksum(0, b"x"));
    }

    #[test]
    fn ledgers_match_node_count() {
        let m = Machine::new(MachineConfig::remote_8_plus_8());
        assert_eq!(m.ledgers().len(), 16);
    }
}
