//! The calibrated cost model.
//!
//! All constants are virtual microseconds on a 0.6-MIPS VAX 11/750. They
//! were calibrated (see `EXPERIMENTS.md`) so that the `joinABprime`
//! benchmark lands in the paper's response-time ballpark (tens of seconds)
//! and, more importantly, so that the *relative* weights — per-packet
//! protocol cost vs. short-circuit hand-off, CPU path vs. disk service,
//! per-bucket scheduling overhead — match the behaviours the paper
//! documents (100 % CPU utilisation for local joins, ~60 % at disk nodes
//! for remote joins, cheap extra Grace buckets, expensive Simple overflow
//! passes).

use gamma_des::{SimTime, TimingModel};
use gamma_net::RingConfig;
use gamma_wiss::{DiskConfig, SortCost};

/// Per-operation CPU costs plus the substrate configurations.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Read one tuple out of a buffered page and evaluate predicates.
    pub scan_tuple_us: u64,
    /// Compute the randomizing hash function on a join attribute.
    pub hash_us: u64,
    /// Index a split table and pick the output stream.
    pub route_us: u64,
    /// Insert a tuple into an in-memory join hash table.
    pub build_insert_us: u64,
    /// Probe a join hash table (bucket lookup, before chain compares).
    pub probe_us: u64,
    /// Compare the probe key against one chain entry.
    pub chain_compare_us: u64,
    /// Compose one result tuple from a matching pair.
    pub compose_us: u64,
    /// Append one tuple to a result/temp page.
    pub store_tuple_us: u64,
    /// Set one bit in a bit-vector filter.
    pub filter_set_us: u64,
    /// Test one bit in a bit-vector filter.
    pub filter_test_us: u64,
    /// Update the overflow histogram on hash-table insert.
    pub histogram_update_us: u64,
    /// Evict one tuple from the hash table to an overflow buffer.
    pub evict_tuple_us: u64,
    /// Examine one resident entry while the clearing heuristic searches
    /// the table (charged for every resident tuple per clearing).
    pub clear_scan_us: u64,
    /// One merge-join comparison.
    pub merge_compare_us: u64,
    /// Update one (local or merged) aggregate accumulator.
    pub agg_update_us: u64,

    /// Bytes per split-table entry (machine id, port, bucket, h' function
    /// descriptor). 40 bytes makes a 7-bucket 8-disk table (56 entries)
    /// exceed one 2 KB packet while 6 buckets (48 entries) still fit,
    /// matching the paper's observed threshold.
    pub split_entry_bytes: u64,
    /// Bytes of an operator-start control message before its split table.
    pub operator_start_bytes: u64,
    /// Scheduler CPU to prepare and dispatch one operator start (charged
    /// serially at the scheduler, i.e. added to response time directly).
    pub scheduler_dispatch_us: u64,

    /// Total bytes of the (aggregate, packet-sized) bit filter. 2048 bytes
    /// shared across the join sites.
    pub filter_packet_bytes: u64,
    /// Per-site framing overhead subtracted from the filter, in bits: with
    /// 8 sites this yields the paper's 1,973 usable bits per site.
    pub filter_overhead_bits_per_site: u64,

    /// Fraction (in percent) of hash-table memory the overflow heuristic
    /// tries to clear per invocation (the paper's 10 %).
    pub overflow_clear_pct: u64,

    /// Network model.
    pub ring: RingConfig,
    /// Disk model.
    pub disk: DiskConfig,
    /// Sort CPU model.
    pub sort: SortCost,

    /// Buffer-pool frames per node (beyond join memory, which is accounted
    /// separately). Kept small: Gamma's 2 MB nodes gave most memory to the
    /// join operators.
    pub pool_frames: usize,
    /// Per-tuple memory overhead charged against join memory when staged in
    /// a hash table (chain pointer + slot bookkeeping).
    pub hash_entry_overhead_bytes: u64,
    /// Headroom the join operators allocate above the optimizer's per-site
    /// estimate, in percent. Covers hash-distribution variance and
    /// per-entry overhead so that integral-ratio Grace/Hybrid runs never
    /// overflow, as the paper states.
    pub table_headroom_pct: u64,

    /// How per-node ledgers become phase times: `Queued` (default) drains
    /// each node's disk/NI request log through FIFO device queues so loaded
    /// devices show convoy effects; `Legacy` is the original flat
    /// `max(cpu, disk, net)` bound, kept reachable for A/B validation.
    pub timing: TimingModel,
}

impl CostModel {
    /// The calibrated 1989 model used by all experiments.
    pub fn gamma_1989() -> Self {
        CostModel {
            scan_tuple_us: 800,
            hash_us: 450,
            route_us: 150,
            build_insert_us: 750,
            probe_us: 700,
            chain_compare_us: 240,
            compose_us: 900,
            store_tuple_us: 600,
            filter_set_us: 120,
            filter_test_us: 120,
            histogram_update_us: 90,
            evict_tuple_us: 400,
            clear_scan_us: 70,
            merge_compare_us: 180,
            agg_update_us: 300,

            split_entry_bytes: 40,
            operator_start_bytes: 256,
            scheduler_dispatch_us: 4_000,

            filter_packet_bytes: 2048,
            filter_overhead_bits_per_site: 75,

            overflow_clear_pct: 10,

            ring: RingConfig::gamma_1989(),
            disk: DiskConfig::fujitsu_8inch(),
            sort: SortCost {
                compare_us: 300,
                move_us: 800,
            },
            pool_frames: 48,
            hash_entry_overhead_bytes: 8,
            table_headroom_pct: 35,
            timing: TimingModel::Queued,
        }
    }

    /// The same model under the legacy flat-`max` overlap bound.
    pub fn gamma_1989_legacy_timing() -> Self {
        CostModel {
            timing: TimingModel::Legacy,
            ..Self::gamma_1989()
        }
    }

    /// µs → [`SimTime`] convenience.
    #[inline]
    pub fn t(&self, us: u64) -> SimTime {
        SimTime::from_us(us)
    }

    /// Charge `us` microseconds of CPU to a ledger.
    #[inline]
    pub fn charge(&self, usage: &mut gamma_des::Usage, us: u64) {
        usage.cpu(SimTime::from_us(us));
    }

    /// Usable bit-filter bits at each of `join_sites` sites.
    pub fn filter_bits_per_site(&self, join_sites: usize) -> u64 {
        let total_bits = self.filter_packet_bytes * 8;
        (total_bits / join_sites as u64).saturating_sub(self.filter_overhead_bits_per_site)
    }

    /// Bytes of a partitioning split table with `entries` entries.
    pub fn split_table_bytes(&self, entries: usize) -> u64 {
        self.split_entry_bytes * entries as u64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::gamma_1989()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_bits_match_paper() {
        let c = CostModel::gamma_1989();
        // "a single 2Kbyte packet for a filter (shared across all 8 joining
        //  sites — yielding 1,973 bits/site after overhead)"
        assert_eq!(c.filter_bits_per_site(8), 1_973);
    }

    #[test]
    fn seven_bucket_split_table_exceeds_a_packet() {
        let c = CostModel::gamma_1989();
        // Hybrid, 8 disk nodes, local join (8 join processes):
        // entries = J + D*(N-1) = 8 + 8*(N-1).
        let entries = |n: usize| 8 + 8 * (n - 1);
        assert!(c.split_table_bytes(entries(6)) <= c.ring.packet_bytes);
        assert!(
            c.split_table_bytes(entries(7)) > c.ring.packet_bytes,
            "the paper observed the packet-size threshold at 7 buckets"
        );
    }

    #[test]
    fn clearing_heuristic_is_ten_percent() {
        assert_eq!(CostModel::gamma_1989().overflow_clear_pct, 10);
    }
}
