//! Phase records and join reports.
//!
//! Every algorithm driver produces an ordered list of [`PhaseRecord`]s —
//! the per-node ledgers of real work done in each phase plus the
//! scheduler's serialized dispatch overhead for starting the phase's
//! operators. The query replay (see `query`) turns that list into a
//! response time through the DES; the resulting [`JoinReport`] keeps the
//! full per-phase breakdown so the benchmark harness (and the tests) can
//! explain every curve.

use gamma_des::{compose, PhaseTiming, SimTime, TimingModel, Usage};

use crate::machine::{Ledgers, ResultInfo};

/// One phase of a join's execution.
pub struct PhaseRecord {
    /// Human-readable phase name (e.g. `"partition R / build bucket 1"`).
    pub name: String,
    /// Per-node resource ledgers for the phase.
    pub ledgers: Ledgers,
    /// Serialized scheduler time spent dispatching this phase's operators
    /// (control-message builds and sends happen one at a time at the
    /// scheduler process).
    pub sched_overhead: SimTime,
}

impl PhaseRecord {
    /// Bundle a phase. Each node's disk/NI request log is drained through
    /// its FIFO device queues here, recording per-resource queue waits on
    /// the ledgers so the report and trace layers can attribute queueing
    /// delay per (node, phase). With tracing active, this is also the
    /// phase-seal point: every trace event emitted since the previous seal
    /// is attributed to this phase, along with the per-node resource splits
    /// the exporters use to place events on the timeline.
    pub fn new(name: impl Into<String>, mut ledgers: Ledgers, sched_overhead: SimTime) -> Self {
        let name = name.into();
        let timings: Vec<_> = ledgers
            .iter_mut()
            .map(|u| u.annotate_queue_waits())
            .collect();
        #[cfg(not(feature = "trace"))]
        drop(timings);
        #[cfg(feature = "trace")]
        gamma_trace::with(|sink| {
            let query_id = sink.current_query();
            let per_node = ledgers
                .iter()
                .zip(&timings)
                .map(|(u, q)| gamma_trace::NodeUsage {
                    query_id,
                    cpu_us: u.cpu.as_us(),
                    disk_us: u.disk.as_us(),
                    net_us: u.net.as_us(),
                    disk_wait_us: q.disk.wait.as_us(),
                    net_wait_us: q.net.wait.as_us(),
                    disk_done_us: q.disk.completion.as_us(),
                    net_done_us: q.net.completion.as_us(),
                })
                .collect();
            sink.seal_phase(&name, per_node);
        });
        // Seal the metrics phase so subsequent emissions attribute to the
        // next one. The per-phase `ledger_*` mirror is NOT emitted here:
        // some drivers charge the result store's final page flush to the
        // last phase's ledgers after sealing it, so ledgers are only
        // mirrored once they are final — at replay (see `query`).
        #[cfg(feature = "metrics")]
        gamma_metrics::seal_phase(&name);
        PhaseRecord {
            name,
            ledgers,
            sched_overhead,
        }
    }

    /// Aggregate usage over all nodes.
    pub fn total(&self) -> Usage {
        self.ledgers.iter().cloned().fold(Usage::ZERO, |a, b| a + b)
    }

    /// Timing under the given model.
    pub fn timing(&self, ring_bandwidth: u64, model: TimingModel) -> PhaseTiming {
        compose(&self.ledgers, ring_bandwidth, model)
    }
}

/// A timed phase, as it appears in the final report.
#[derive(Debug, Clone)]
pub struct PhaseSummary {
    /// Phase name.
    pub name: String,
    /// Scheduler dispatch overhead preceding the phase.
    pub sched_overhead: SimTime,
    /// Parallel execution time of the phase.
    pub duration: SimTime,
    /// Aggregate usage across nodes.
    pub total: Usage,
    /// Index of the slowest node; `None` when no node did any work.
    pub critical_node: Option<usize>,
    /// Total time disk requests spent queued, summed over nodes (zero under
    /// the legacy timing model).
    pub disk_wait: SimTime,
    /// Total time NI requests spent queued, summed over nodes.
    pub net_wait: SimTime,
}

impl PhaseSummary {
    /// Pages the dynamic spill/restore path re-wrote to overflow spools in
    /// this phase (zero on the legacy all-or-nothing path).
    pub fn pages_spilled(&self) -> u64 {
        self.total.counts.pages_spilled
    }

    /// Pages the dynamic spill/restore path read back and re-admitted to
    /// hash tables in this phase.
    pub fn pages_restored(&self) -> u64 {
        self.total.counts.pages_restored
    }
}

/// Everything measured about one join execution.
#[derive(Debug, Clone)]
pub struct JoinReport {
    /// Algorithm name.
    pub algorithm: String,
    /// End-to-end response time (the paper's y-axis).
    pub response: SimTime,
    /// Ordered timed phases.
    pub phases: Vec<PhaseSummary>,
    /// Result cardinality.
    pub result_tuples: u64,
    /// Order-independent checksum of the result multiset (compared against
    /// the oracle join by tests).
    pub result_checksum: u64,
    /// Buckets used (1 for Simple and Sort-Merge).
    pub buckets: usize,
    /// Simple-hash overflow passes executed anywhere in the join.
    pub overflow_passes: u32,
    /// Whether the block-nested-loops safety net fired.
    pub bnl_fallback: bool,
    /// Mean CPU utilisation of the disk nodes over the response time.
    pub disk_node_cpu_utilization: f64,
    /// Mean CPU utilisation of the join (diskless, if any) nodes.
    pub join_node_cpu_utilization: f64,
    /// Aggregate usage over all phases and nodes.
    pub total: Usage,
    /// Per-node service demands for multiuser extrapolation
    /// (see [`crate::throughput`]).
    pub demand: crate::throughput::DemandProfile,
}

impl JoinReport {
    /// Total page I/Os.
    pub fn page_ios(&self) -> u64 {
        self.total.counts.page_ios()
    }

    /// Total packets placed on the ring.
    pub fn packets(&self) -> u64 {
        self.total.counts.packets_sent
    }

    /// Total short-circuited messages.
    pub fn shortcircuits(&self) -> u64 {
        self.total.counts.msgs_shortcircuit
    }

    /// Response time in (fractional) seconds — the unit the paper plots.
    pub fn seconds(&self) -> f64 {
        self.response.as_secs()
    }

    /// Total pages the dynamic spill/restore path re-wrote to overflow
    /// spools (zero on the legacy all-or-nothing path).
    pub fn pages_spilled(&self) -> u64 {
        self.total.counts.pages_spilled
    }

    /// Total pages the dynamic spill/restore path read back and re-admitted
    /// to hash tables.
    pub fn pages_restored(&self) -> u64 {
        self.total.counts.pages_restored
    }
}

/// Carrier for the pieces a driver returns to the replay.
pub struct DriverOutput {
    /// Ordered phases.
    pub phases: Vec<PhaseRecord>,
    /// Result description.
    pub result: ResultInfo,
    /// Buckets used.
    pub buckets: usize,
    /// Overflow passes executed.
    pub overflow_passes: u32,
    /// BNL fallback fired.
    pub bnl_fallback: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_total_sums_nodes() {
        let mut a = Usage::ZERO;
        a.cpu(SimTime::from_us(10));
        let mut b = Usage::ZERO;
        b.cpu(SimTime::from_us(5));
        b.counts.pages_read = 2;
        let p = PhaseRecord::new("x", vec![a, b], SimTime::ZERO);
        let t = p.total();
        assert_eq!(t.cpu, SimTime::from_us(15));
        assert_eq!(t.counts.pages_read, 2);
    }

    #[test]
    fn phase_timing_uses_engine_model() {
        let mut a = Usage::ZERO;
        a.cpu(SimTime::from_us(10));
        let mut b = Usage::ZERO;
        b.disk(SimTime::from_us(99));
        let p = PhaseRecord::new("x", vec![a, b], SimTime::ZERO);
        let t = p.timing(10_000_000, TimingModel::Legacy);
        assert_eq!(t.duration, SimTime::from_us(99));
        assert_eq!(t.critical_node, Some(1));
        // A lone request issued at cpu=0 queues for nothing, so the queued
        // model agrees exactly here.
        let q = p.timing(10_000_000, TimingModel::Queued);
        assert_eq!(q.duration, SimTime::from_us(99));
        assert_eq!(q.disk_wait, SimTime::ZERO);
    }

    #[test]
    fn sealing_annotates_queue_waits() {
        let mut a = Usage::ZERO;
        for _ in 0..3 {
            a.disk(SimTime::from_us(10)); // burst at cpu=0: waits 0+10+20
        }
        let p = PhaseRecord::new("x", vec![a], SimTime::ZERO);
        assert_eq!(p.ledgers[0].disk_wait, SimTime::from_us(30));
    }
}
