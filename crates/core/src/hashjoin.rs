//! Shared multi-site hash-join machinery with Simple-hash overflow
//! resolution.
//!
//! Every hash-based join in the system funnels through a [`SiteSet`]: one
//! [`JoinHashTable`] per join process, plus that site's bit filter and its
//! overflow spool files. The Simple algorithm uses a `SiteSet` directly for
//! the whole relation; Hybrid uses one for its first bucket; every
//! Grace/Hybrid bucket join uses one for the bucket. Since the paper uses
//! Simple hash as "the overflow resolution method for our parallel
//! implementations of the Grace and Hybrid algorithms" (§3.2), the
//! recursive overflow machinery here serves all of them.
//!
//! Key behaviours implemented exactly as described:
//!
//! * overflow files `R'_i` / `S'_i` of join site *i* live **whole on one
//!   disk** (the disk paired with the site), different sites on different
//!   disks;
//! * the *outer* relation's tuples destined for an overflowed range are
//!   diverted at the **source** (the split table is augmented with the `h'`
//!   cutoffs) and spooled directly to `S'`, never visiting the join site;
//! * recursive passes re-split the aggregate overflow partitions across
//!   *all* join sites **with a fresh hash function**, which is what turns
//!   HPJA joins into non-HPJA joins during overflow processing (§4.1);
//! * bit filters are applied only to tuples that will actually probe this
//!   pass — overflow-bound tuples are filtered by the next pass's filters,
//!   preserving the no-false-negative guarantee;
//! * a block-nested-loops fallback guards against pathological inputs on
//!   which hash partitioning cannot make progress (every tuple carrying
//!   the same join value).

use gamma_des::SimTime;
use gamma_wiss::{FileId, HeapScan, HeapWriter};

use crate::bitfilter::BitFilter;
use crate::hash::{hash_u32, overflow_seed, respread_seed};
use crate::hash_table::{JoinHashTable, Offer};
use crate::machine::{Ledgers, Machine, NodeId, ResultSink};
use crate::tuple::{compose, Attr};

/// An overflow spool file under construction.
struct Spool {
    node: NodeId,
    writer: Option<HeapWriter>,
    count: u64,
}

impl Spool {
    fn new(machine: &mut Machine, node: NodeId) -> Self {
        let page = machine.cfg.cost.disk.page_bytes;
        Spool {
            node,
            writer: Some(HeapWriter::create(
                machine.volumes[node]
                    .as_mut()
                    .expect("overflow on disk node"),
                page,
            )),
            count: 0,
        }
    }

    fn push(&mut self, machine: &mut Machine, ledgers: &mut Ledgers, rec: &[u8]) {
        let node = self.node;
        machine
            .cfg
            .cost
            .charge(&mut ledgers[node], machine.cfg.cost.store_tuple_us);
        self.writer.as_mut().expect("spool finished").push(
            machine.volumes[node].as_mut().unwrap(),
            machine.pools[node].as_mut().unwrap(),
            &mut ledgers[node],
            rec,
        );
        self.count += 1;
    }

    fn finish(mut self, machine: &mut Machine, ledgers: &mut Ledgers) -> (NodeId, FileId, u64) {
        let node = self.node;
        let f = self.writer.take().unwrap().finish(
            machine.volumes[node].as_mut().unwrap(),
            machine.pools[node].as_mut().unwrap(),
            &mut ledgers[node],
        );
        (node, f, self.count)
    }
}

/// Per-join-site state for one build/probe round.
pub struct Site {
    /// Processor running this join process.
    pub node: NodeId,
    table: JoinHashTable,
    filter: Option<BitFilter>,
    /// Disk node hosting this site's overflow files.
    overflow_home: NodeId,
    r_spool: Option<Spool>,
    s_spool: Option<Spool>,
}

/// A set of join sites executing one (sub-)join.
pub struct SiteSet {
    sites: Vec<Site>,
    pass: u32,
    build_tuples: u64,
}

/// Overflow partition pair left behind by a pass.
#[derive(Debug, Clone)]
pub struct OverflowPair {
    /// `(node, file, tuples)` of the `R'` fragment.
    pub r: (NodeId, FileId, u64),
    /// `(node, file, tuples)` of the `S'` fragment.
    pub s: (NodeId, FileId, u64),
}

impl SiteSet {
    /// Create per-site tables of `capacity_per_site` bytes at the given
    /// join nodes. `pass` selects the `h'` seeds; `filter_bits`, when set,
    /// builds a bit filter per site salted by `filter_salt`.
    pub fn new(
        machine: &Machine,
        join_nodes: &[NodeId],
        capacity_per_site: u64,
        expected_tuple_bytes: u64,
        pass: u32,
        filter_bits: Option<u64>,
        filter_salt: u64,
    ) -> Self {
        let disk = machine.cfg.disk_nodes;
        let sites = join_nodes
            .iter()
            .enumerate()
            .map(|(i, &node)| Site {
                node,
                table: JoinHashTable::new(
                    capacity_per_site,
                    expected_tuple_bytes,
                    overflow_seed(pass, i),
                ),
                filter: filter_bits.map(|b| BitFilter::new(b, filter_salt.wrapping_add(i as u64))),
                overflow_home: if node < disk { node } else { i % disk },
                r_spool: None,
                s_spool: None,
            })
            .collect();
        SiteSet {
            sites,
            pass,
            build_tuples: 0,
        }
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True if the set has no sites (never constructed this way in
    /// practice; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Node of site `i`.
    pub fn node(&self, i: usize) -> NodeId {
        self.sites[i].node
    }

    /// The `h'` cutoff of site `i` (exposed to producers through the
    /// augmented split table).
    pub fn cutoff(&self, i: usize) -> Option<u64> {
        self.sites[i].table.cutoff()
    }

    /// Does site `i`'s augmented split-table entry divert this outer value
    /// to the overflow file?
    pub fn outer_diverts(&self, i: usize, val: u32) -> bool {
        match self.sites[i].table.cutoff() {
            Some(c) => self.sites[i].table.hprime(val) >= c,
            None => false,
        }
    }

    /// Would site `i`'s bit filter drop this outer value? Charges the test.
    pub fn filter_drops(
        &self,
        machine: &Machine,
        ledgers: &mut Ledgers,
        src: NodeId,
        i: usize,
        val: u32,
    ) -> bool {
        match &self.sites[i].filter {
            Some(f) => {
                machine
                    .cfg
                    .cost
                    .charge(&mut ledgers[src], machine.cfg.cost.filter_test_us);
                if f.test(val) {
                    false
                } else {
                    ledgers[src].counts.filter_drops += 1;
                    true
                }
            }
            None => false,
        }
    }

    /// Deliver an inner (building) tuple to site `i`. Handles hash-table
    /// overflow: evictions and diversions are spooled to `R'_i`.
    pub fn deliver_build(
        &mut self,
        machine: &mut Machine,
        ledgers: &mut Ledgers,
        i: usize,
        val: u32,
        tuple: Vec<u8>,
    ) {
        self.build_tuples += 1;
        let cost = machine.cfg.cost.clone();
        let node = self.sites[i].node;
        ledgers[node].counts.tuples_in += 1;
        cost.charge(
            &mut ledgers[node],
            cost.build_insert_us + cost.histogram_update_us,
        );
        if let Some(f) = &mut self.sites[i].filter {
            cost.charge(&mut ledgers[node], cost.filter_set_us);
            f.set(val);
        }
        ledgers[node].counts.hash_inserts += 1;
        #[cfg(feature = "trace")]
        gamma_trace::emit(
            node as u16,
            ledgers[node].total_demand().as_us(),
            gamma_trace::EventKind::HashInsert,
        );
        match self.sites[i]
            .table
            .offer(val, tuple, cost.overflow_clear_pct)
        {
            Offer::Stored => {}
            Offer::Diverted(t) => {
                self.spool_inner_from_site(machine, ledgers, i, &t);
            }
            Offer::Overflowed {
                evicted,
                diverted,
                scanned,
            } => {
                // The heuristic examines every resident tuple to find the
                // ones above the new cutoff (§4.1).
                cost.charge(&mut ledgers[node], cost.clear_scan_us * scanned);
                #[cfg(feature = "trace")]
                gamma_trace::emit(
                    node as u16,
                    ledgers[node].total_demand().as_us(),
                    gamma_trace::EventKind::BucketSpill { bucket: i as u16 },
                );
                for (_, t) in evicted {
                    cost.charge(&mut ledgers[node], cost.evict_tuple_us);
                    ledgers[node].counts.overflow_evictions += 1;
                    self.spool_inner_from_site(machine, ledgers, i, &t);
                }
                if let Some(t) = diverted {
                    self.spool_inner_from_site(machine, ledgers, i, &t);
                }
            }
        }
    }

    fn spool_inner_from_site(
        &mut self,
        machine: &mut Machine,
        ledgers: &mut Ledgers,
        i: usize,
        rec: &[u8],
    ) {
        let site_node = self.sites[i].node;
        let home = self.sites[i].overflow_home;
        if self.sites[i].r_spool.is_none() {
            self.sites[i].r_spool = Some(Spool::new(machine, home));
        }
        machine
            .fabric
            .send_tuple(ledgers, site_node, home, rec.len() as u64);
        self.sites[i]
            .r_spool
            .as_mut()
            .unwrap()
            .push(machine, ledgers, rec);
    }

    /// Spool an outer tuple diverted at the source straight to `S'_i`.
    pub fn spool_outer(
        &mut self,
        machine: &mut Machine,
        ledgers: &mut Ledgers,
        src: NodeId,
        i: usize,
        rec: &[u8],
    ) {
        let home = self.sites[i].overflow_home;
        if self.sites[i].s_spool.is_none() {
            self.sites[i].s_spool = Some(Spool::new(machine, home));
        }
        machine
            .fabric
            .send_tuple(ledgers, src, home, rec.len() as u64);
        self.sites[i]
            .s_spool
            .as_mut()
            .unwrap()
            .push(machine, ledgers, rec);
    }

    /// Deliver an outer (probing) tuple to site `i`; matches are composed
    /// `R ‖ S` and pushed to the sink.
    pub fn deliver_probe(
        &mut self,
        machine: &mut Machine,
        ledgers: &mut Ledgers,
        i: usize,
        val: u32,
        tuple: &[u8],
        sink: &mut ResultSink,
    ) {
        let cost = machine.cfg.cost.clone();
        let node = self.sites[i].node;
        ledgers[node].counts.tuples_in += 1;
        ledgers[node].counts.hash_probes += 1;
        let (matches, compares) = self.sites[i].table.probe(val);
        cost.charge(
            &mut ledgers[node],
            cost.probe_us + cost.chain_compare_us * compares,
        );
        ledgers[node].counts.comparisons += compares;
        #[cfg(feature = "trace")]
        gamma_trace::emit(
            node as u16,
            ledgers[node].total_demand().as_us(),
            gamma_trace::EventKind::HashProbe {
                matched: !matches.is_empty(),
            },
        );
        let composed: Vec<Vec<u8>> = matches.iter().map(|m| compose(m, tuple)).collect();
        for out in composed {
            cost.charge(&mut ledgers[node], cost.compose_us);
            sink.push(machine, ledgers, node, &out);
        }
    }

    /// Tuples delivered to build so far (including spooled ones).
    pub fn build_tuples(&self) -> u64 {
        self.build_tuples
    }

    /// Close the spool files and return the overflow pairs that need a
    /// recursive pass. Sites that never overflowed return nothing.
    pub fn take_overflows(
        &mut self,
        machine: &mut Machine,
        ledgers: &mut Ledgers,
    ) -> Vec<OverflowPair> {
        let mut pairs = Vec::new();
        for site in &mut self.sites {
            match (site.r_spool.take(), site.s_spool.take()) {
                (None, None) => {}
                (r, s) => {
                    let r = r
                        .map(|sp| sp.finish(machine, ledgers))
                        .unwrap_or_else(|| empty_file(machine, ledgers, site.overflow_home));
                    let s = s
                        .map(|sp| sp.finish(machine, ledgers))
                        .unwrap_or_else(|| empty_file(machine, ledgers, site.overflow_home));
                    pairs.push(OverflowPair { r, s });
                }
            }
        }
        pairs
    }

    /// Overflow pass this set belongs to (0 = first pass).
    pub fn pass(&self) -> u32 {
        self.pass
    }

    /// Saturation of site `i`'s filter, if filtering (test/diagnostics).
    pub fn filter_saturation(&self, i: usize) -> Option<f64> {
        self.sites[i].filter.as_ref().map(|f| f.saturation())
    }
}

fn empty_file(machine: &mut Machine, ledgers: &mut Ledgers, node: NodeId) -> (NodeId, FileId, u64) {
    let w = HeapWriter::create(
        machine.volumes[node].as_mut().unwrap(),
        machine.cfg.cost.disk.page_bytes,
    );
    let f = w.finish(
        machine.volumes[node].as_mut().unwrap(),
        machine.pools[node].as_mut().unwrap(),
        &mut ledgers[node],
    );
    (node, f, 0)
}

/// Outcome of [`resolve_overflows`].
#[derive(Debug, Clone, Copy, Default)]
pub struct OverflowStats {
    /// Recursive Simple-hash passes executed.
    pub passes: u32,
    /// Whether the block-nested-loops fallback fired.
    pub bnl_fallback: bool,
}

/// Parameters shared by every recursive overflow pass.
pub struct OverflowEnv<'a> {
    /// Join processors.
    pub join_nodes: &'a [NodeId],
    /// Per-site hash-table capacity in bytes.
    pub capacity_per_site: u64,
    /// Expected tuple width (hash-table sizing).
    pub tuple_bytes: u64,
    /// Inner-relation join attribute (within spooled `R'` tuples).
    pub r_attr: Attr,
    /// Outer-relation join attribute (within spooled `S'` tuples).
    pub s_attr: Attr,
    /// Bits per site for bit filters (None = filtering off).
    pub filter_bits: Option<u64>,
    /// Salt namespace for this sub-join's filters.
    pub filter_salt: u64,
}

/// Recursively join the overflow partitions produced by a pass, exactly as
/// §3.2 describes: read the aggregate `R'`, re-split across all join sites
/// with a fresh hash function, build; read `S'`, re-split, probe; repeat
/// until no site overflows. Appends one `(build, probe)` phase pair per
/// pass to `phases`.
#[allow(clippy::too_many_arguments)]
pub fn resolve_overflows(
    machine: &mut Machine,
    env: &OverflowEnv<'_>,
    mut pairs: Vec<OverflowPair>,
    first_pass: u32,
    sink: &mut ResultSink,
    phases: &mut Vec<crate::report::PhaseRecord>,
    phase_prefix: &str,
) -> OverflowStats {
    let mut stats = OverflowStats::default();
    let mut pass = first_pass;
    while !pairs.is_empty() {
        let input_r: u64 = pairs.iter().map(|p| p.r.2).sum();
        stats.passes += 1;
        let seed = respread_seed(pass);
        let mut set = SiteSet::new(
            machine,
            env.join_nodes,
            env.capacity_per_site,
            env.tuple_bytes,
            pass,
            env.filter_bits,
            env.filter_salt.wrapping_add(0x1000 + pass as u64),
        );
        let cost = machine.cfg.cost.clone();
        let j = env.join_nodes.len() as u64;

        // ---- build pass over the aggregate R' ----
        let mut ledgers = machine.ledgers();
        for p in &pairs {
            let (node, file, _) = p.r;
            let recs = read_records(machine, &mut ledgers, node, file);
            for rec in recs {
                cost.charge(
                    &mut ledgers[node],
                    cost.scan_tuple_us + cost.hash_us + cost.route_us,
                );
                let val = env.r_attr.get(&rec);
                let i = (hash_u32(seed, val) % j) as usize;
                machine
                    .fabric
                    .send_tuple(&mut ledgers, node, env.join_nodes[i], rec.len() as u64);
                set.deliver_build(machine, &mut ledgers, i, val, rec);
            }
        }
        machine.fabric.flush(&mut ledgers);
        let sched = dispatch_overhead(machine, &mut ledgers, env.join_nodes, 0);
        phases.push(crate::report::PhaseRecord::new(
            format!("{phase_prefix}overflow-build p{pass}"),
            ledgers,
            sched,
        ));

        // ---- probe pass over the aggregate S' ----
        let mut ledgers = machine.ledgers();
        broadcast_filters(machine, &mut ledgers, &set);
        for p in &pairs {
            let (node, file, _) = p.s;
            let recs = read_records(machine, &mut ledgers, node, file);
            for rec in recs {
                cost.charge(
                    &mut ledgers[node],
                    cost.scan_tuple_us + cost.hash_us + cost.route_us,
                );
                let val = env.s_attr.get(&rec);
                let i = (hash_u32(seed, val) % j) as usize;
                // Filter before the overflow check — safe because filter
                // bits are set for every arriving inner tuple (§4.2).
                if set.filter_drops(machine, &mut ledgers, node, i, val) {
                    // dropped at the source
                } else if set.outer_diverts(i, val) {
                    set.spool_outer(machine, &mut ledgers, node, i, &rec);
                } else {
                    machine.fabric.send_tuple(
                        &mut ledgers,
                        node,
                        env.join_nodes[i],
                        rec.len() as u64,
                    );
                    set.deliver_probe(machine, &mut ledgers, i, val, &rec, sink);
                }
            }
        }
        machine.fabric.flush(&mut ledgers);
        let next = set.take_overflows(machine, &mut ledgers);

        // Free the consumed overflow files.
        for p in &pairs {
            delete_file(machine, p.r.0, p.r.1);
            delete_file(machine, p.s.0, p.s.1);
        }
        let sched = dispatch_overhead(machine, &mut ledgers, env.join_nodes, 0);
        phases.push(crate::report::PhaseRecord::new(
            format!("{phase_prefix}overflow-probe p{pass}"),
            ledgers,
            sched,
        ));

        let next_r: u64 = next.iter().map(|p| p.r.2).sum();
        if !next.is_empty() && next_r >= input_r {
            // Hash partitioning is not separating the data (e.g. one value
            // dominates): fall back to block-nested-loops.
            stats.bnl_fallback = true;
            let mut ledgers = machine.ledgers();
            block_nested_loops(machine, env, &next, sink, &mut ledgers);
            machine.fabric.flush(&mut ledgers);
            for p in &next {
                delete_file(machine, p.r.0, p.r.1);
                delete_file(machine, p.s.0, p.s.1);
            }
            phases.push(crate::report::PhaseRecord::new(
                format!("{phase_prefix}overflow-bnl p{pass}"),
                ledgers,
                SimTime::ZERO,
            ));
            return stats;
        }
        pairs = next;
        pass += 1;
        assert!(pass < 64, "overflow recursion ran away");
    }
    stats
}

/// Block-nested-loops fallback: join each `(R', S')` pair by staging `R'`
/// in memory-sized blocks and scanning `S'` once per block.
fn block_nested_loops(
    machine: &mut Machine,
    env: &OverflowEnv<'_>,
    pairs: &[OverflowPair],
    sink: &mut ResultSink,
    ledgers: &mut Ledgers,
) {
    let cost = machine.cfg.cost.clone();
    let block_bytes = env.capacity_per_site.max(env.tuple_bytes);
    for p in pairs {
        let (r_node, r_file, _) = p.r;
        let (s_node, s_file, _) = p.s;
        let r_recs = read_records(machine, ledgers, r_node, r_file);
        for block in r_recs.chunks((block_bytes / env.tuple_bytes.max(1)).max(1) as usize) {
            let s_recs = read_records(machine, ledgers, s_node, s_file);
            for s_rec in &s_recs {
                cost.charge(&mut ledgers[s_node], cost.scan_tuple_us);
                let sv = env.s_attr.get(s_rec);
                for r_rec in block {
                    cost.charge(&mut ledgers[s_node], cost.chain_compare_us);
                    if env.r_attr.get(r_rec) == sv {
                        cost.charge(&mut ledgers[s_node], cost.compose_us);
                        let out = compose(r_rec, s_rec);
                        sink.push(machine, ledgers, s_node, &out);
                    }
                }
            }
        }
    }
}

/// Read every record of a file, charging page reads at `node`.
pub fn read_records(
    machine: &mut Machine,
    ledgers: &mut Ledgers,
    node: NodeId,
    file: FileId,
) -> Vec<Vec<u8>> {
    let vol = machine.volumes[node].as_ref().expect("file on disk node");
    let pool = machine.pools[node].as_mut().unwrap();
    HeapScan::open(vol, file).collect_all(pool, &mut ledgers[node])
}

/// Delete a file and evict its frames.
pub fn delete_file(machine: &mut Machine, node: NodeId, file: FileId) {
    machine.volumes[node].as_mut().unwrap().delete_file(file);
    machine.pools[node].as_mut().unwrap().evict_file(file);
}

/// Charge operator-start control messages for a phase: the scheduler sends
/// each participant one message carrying `table_bytes` of split table.
/// Returns the scheduler's serialized dispatch time (added to response).
pub fn dispatch_overhead(
    machine: &mut Machine,
    ledgers: &mut Ledgers,
    participants: &[NodeId],
    table_bytes: u64,
) -> SimTime {
    let cost = machine.cfg.cost.clone();
    let mut t = SimTime::ZERO;
    for &n in participants {
        let bytes = cost.operator_start_bytes + table_bytes;
        machine.fabric.scheduler_control(&mut ledgers[n], n, bytes);
        t += machine
            .fabric
            .scheduler_dispatch_cost(SimTime::from_us(cost.scheduler_dispatch_us), bytes);
    }
    t
}

/// Broadcast the sites' bit filters to every disk (scanning) node: Gamma
/// shipped the aggregate packet-sized filter back to the producers so
/// non-joining outer tuples die at the source. No-op when filtering is off.
pub fn broadcast_filters(machine: &mut Machine, ledgers: &mut Ledgers, set: &SiteSet) {
    if set.filter_saturation(0).is_none() {
        return;
    }
    let bytes = machine.cfg.cost.filter_packet_bytes;
    let send_cpu = machine.cfg.cost.ring.send_cpu_per_packet;
    // Each site contributes its slice of the aggregate filter packet...
    for i in 0..set.len() {
        let node = set.node(i);
        ledgers[node].cpu(send_cpu);
        ledgers[node].counts.packets_sent += 1;
        #[cfg(feature = "trace")]
        gamma_trace::emit(
            node as u16,
            ledgers[node].total_demand().as_us(),
            gamma_trace::EventKind::PacketSend {
                dst: u16::MAX, // aggregate broadcast to the scanning nodes
                bytes: bytes as u32,
            },
        );
    }
    // ...and each disk node receives the aggregate packet.
    for n in machine.disk_nodes() {
        machine.fabric.scheduler_control(&mut ledgers[n], n, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Declustering, MachineConfig, ResultInfo};
    use crate::tuple::{Field, Schema};

    fn schema() -> Schema {
        Schema::new(vec![Field::Int("k".into()), Field::Str("pad".into(), 44)])
    }

    fn mk(schema: &Schema, k: u32) -> Vec<u8> {
        let mut t = vec![0u8; schema.tuple_bytes()];
        schema.int_attr("k").put(&mut t, k);
        t
    }

    /// Drive a full simple-hash style join through the SiteSet machinery.
    fn run_simple(
        n_r: u32,
        n_s: u32,
        capacity_per_site: u64,
        skew_all_same: bool,
    ) -> (ResultInfo, OverflowStats) {
        let mut m = Machine::new(MachineConfig::local_8());
        let s = schema();
        let attr = s.int_attr("k");
        let r: Vec<Vec<u8>> = (0..n_r)
            .map(|k| mk(&s, if skew_all_same { 7 } else { k }))
            .collect();
        let sout: Vec<Vec<u8>> = (0..n_s).map(|k| mk(&s, k % n_r.max(1))).collect();
        let rid = m.load_relation("r", s.clone(), Declustering::RoundRobin, r);
        let sid = m.load_relation("s", s.clone(), Declustering::RoundRobin, sout);

        let join_nodes = m.disk_nodes();
        let mut set = SiteSet::new(&m, &join_nodes, capacity_per_site, 48, 0, None, 0);
        let mut sink = ResultSink::new(&mut m);
        let mut phases = Vec::new();
        let cost = m.cfg.cost.clone();
        let j = join_nodes.len() as u64;

        let mut ledgers = m.ledgers();
        let frags = m.relation(rid).fragments.clone();
        for (node, file) in frags.into_iter().enumerate() {
            let recs = read_records(&mut m, &mut ledgers, node, file);
            for rec in recs {
                let val = attr.get(&rec);
                let i = (hash_u32(crate::hash::JOIN_SEED, val) % j) as usize;
                set.deliver_build(&mut m, &mut ledgers, i, val, rec);
            }
        }
        let mut ledgers = m.ledgers();
        let frags = m.relation(sid).fragments.clone();
        for (node, file) in frags.into_iter().enumerate() {
            let recs = read_records(&mut m, &mut ledgers, node, file);
            for rec in recs {
                let val = attr.get(&rec);
                let i = (hash_u32(crate::hash::JOIN_SEED, val) % j) as usize;
                if set.outer_diverts(i, val) {
                    set.spool_outer(&mut m, &mut ledgers, node, i, &rec);
                } else {
                    set.deliver_probe(&mut m, &mut ledgers, i, val, &rec, &mut sink);
                }
            }
        }
        let pairs = set.take_overflows(&mut m, &mut ledgers);
        let env = OverflowEnv {
            join_nodes: &join_nodes,
            capacity_per_site,
            tuple_bytes: 48,
            r_attr: attr,
            s_attr: attr,
            filter_bits: None,
            filter_salt: 0,
        };
        let stats = resolve_overflows(&mut m, &env, pairs, 1, &mut sink, &mut phases, "t:");
        let _ = cost;
        let mut ledgers = m.ledgers();
        let info = sink.finish(&mut m, &mut ledgers);
        (info, stats)
    }

    #[test]
    fn in_memory_join_is_exact() {
        // Everything fits: every S tuple finds exactly one R match.
        let (info, stats) = run_simple(500, 2000, 1 << 20, false);
        assert_eq!(info.tuples, 2000);
        assert_eq!(stats.passes, 0);
    }

    #[test]
    fn overflow_join_is_still_exact() {
        // Tiny tables force multiple overflow passes; result unchanged.
        let (full, _) = run_simple(500, 2000, 1 << 20, false);
        let (tight, stats) = run_simple(500, 2000, 1_500, false);
        assert_eq!(tight.tuples, 2000);
        assert_eq!(tight.checksum, full.checksum, "same result multiset");
        assert!(stats.passes >= 1, "must have recursed");
        assert!(!stats.bnl_fallback);
    }

    #[test]
    fn pathological_skew_falls_back_to_bnl() {
        // Every R tuple has value 7; hashing cannot separate them.
        let (info, stats) = run_simple(400, 400, 3_000, true);
        // Every S tuple has value 7 % 400 pattern -> all values 7 since
        // k % 400 only equals 7 for k=7: S values are k % 400, R values all 7.
        // Matches: S tuples with value 7: k ∈ {7} -> 1 tuple × 400 R dups.
        assert_eq!(info.tuples, 400);
        assert!(stats.bnl_fallback);
    }

    #[test]
    fn filters_never_lose_results() {
        let mut m = Machine::new(MachineConfig::local_8());
        let s = schema();
        let _attr = s.int_attr("k");
        let join_nodes = m.disk_nodes();
        let mut set = SiteSet::new(&m, &join_nodes, 1 << 20, 48, 0, Some(1973), 42);
        let mut sink = ResultSink::new(&mut m);
        let mut ledgers = m.ledgers();
        for k in 0..300u32 {
            let rec = mk(&s, k);
            let i = (hash_u32(crate::hash::JOIN_SEED, k) % 8) as usize;
            set.deliver_build(&mut m, &mut ledgers, i, k, rec);
        }
        let mut kept = 0;
        let mut dropped = 0;
        for k in 0..3000u32 {
            let rec = mk(&s, k);
            let i = (hash_u32(crate::hash::JOIN_SEED, k) % 8) as usize;
            if set.filter_drops(&m, &mut ledgers, 0, i, k) {
                dropped += 1;
                assert!(k >= 300, "a joining tuple was filtered!");
            } else {
                kept += 1;
                set.deliver_probe(&mut m, &mut ledgers, i, k, &rec, &mut sink);
            }
        }
        assert!(dropped > 1500, "filter should drop most non-joining tuples");
        assert!(kept >= 300);
        let info = sink.finish(&mut m, &mut ledgers);
        assert_eq!(info.tuples, 300, "all real matches survive filtering");
    }

    #[test]
    fn remote_sites_spool_overflow_to_disk_nodes() {
        let m = Machine::new(MachineConfig::remote_8_plus_8());
        let join_nodes = m.diskless_nodes();
        let set = SiteSet::new(&m, &join_nodes, 1024, 48, 0, None, 0);
        for i in 0..set.len() {
            let site = &set.sites[i];
            assert!(site.overflow_home < 8, "overflow must live on a disk node");
        }
    }

    #[test]
    fn dispatch_overhead_grows_with_split_table() {
        let mut m = Machine::new(MachineConfig::local_8());
        let nodes = m.disk_nodes();
        let mut l1 = m.ledgers();
        let small = dispatch_overhead(&mut m, &mut l1, &nodes, 512);
        let mut l2 = m.ledgers();
        let big = dispatch_overhead(&mut m, &mut l2, &nodes, 5_000);
        assert!(
            big > small,
            "multi-packet split tables cost more to dispatch"
        );
        assert_eq!(l1[0].counts.control_msgs, 1);
    }
}
