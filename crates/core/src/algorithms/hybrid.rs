//! Parallel Hybrid hash-join (§3.4).
//!
//! Like Grace, the relations are split into `N` buckets through the
//! Appendix A partitioning split table — but bucket 1 never touches disk:
//! its entries route straight to the join processes, so partitioning R
//! overlaps with building the first hash table and partitioning S overlaps
//! with probing it. Buckets 2..N are spooled to disk exactly like Grace's
//! and joined consecutively afterwards. When the optimizer runs the
//! algorithm "optimistically" (fewer buckets than the memory ratio
//! requires, Figure 7), bucket 1 overflows and the Simple-hash machinery
//! resolves it.

use gamma_wiss::FileId;

use crate::batch::TupleBatch;
use crate::bitfilter::BitFilter;
use crate::exec::control::{broadcast_filters, dispatch_overhead};
use crate::exec::hash::{
    resolve_overflows, resolve_overflows_robust, restore_spills, tag, take_overflows, Consumers,
    OverflowEnv, TAG_BUCKET, TAG_BUILD, TAG_PROBE, TAG_SPOOL_S,
};
use crate::exec::{run_step, scan};
use crate::hash::{hash_u32, JOIN_SEED};
use crate::machine::{Machine, ResultSink};
use crate::report::{DriverOutput, PhaseRecord};
use crate::split::{PartitioningSplitTable, RefineCfg, Route};

use super::common::Resolved;
use super::grace::{bucket_filters, join_bucket};

/// Filter-salt namespace for Hybrid.
const HYBRID_SALT: u64 = 0x4B;

/// Execute a Hybrid hash-join.
pub fn run(machine: &mut Machine, rz: &Resolved) -> DriverOutput {
    let buckets = rz.buckets;
    let disk_nodes = machine.disk_nodes();
    let mut part = PartitioningSplitTable::hybrid(&rz.join_nodes, &disk_nodes, buckets);
    let mut phases = Vec::new();
    let mut sink = ResultSink::new(machine);

    let mut consumers = Consumers::new(machine);
    let sites = consumers.install_sites(
        machine,
        &rz.join_nodes,
        rz.capacity_per_site,
        rz.r_tuple_bytes,
        0,
        rz.filter_bits,
        HYBRID_SALT,
        rz.r_attr,
        rz.s_attr,
    );

    // Per-bucket filters for the spooled buckets when the §4.2/§5
    // bucket-forming extension is on (bucket 1 is covered by the join
    // sites' own filters).
    let mut form_filters = rz
        .filter_bucket_forming
        .then(|| bucket_filters(machine, buckets, HYBRID_SALT));

    // ---- Phase 1: partition R into buckets, overlapped with building
    // bucket 1's hash tables. ----
    let mut ledgers = machine.ledgers();
    #[cfg(feature = "trace")]
    gamma_trace::emit(
        rz.join_nodes[0] as u16,
        0,
        gamma_trace::EventKind::BucketOpen { bucket: 1 },
    );
    consumers.open_buckets(machine, 2, buckets);
    // Building producers each fill a private filter shard; the shards are
    // OR-folded below (commutative, so worker scheduling cannot matter).
    let shard_proto: Option<Vec<BitFilter>> = form_filters.clone();
    if rz.skew_refinement {
        // ---- Wave A: sample. Scan each fragment, hash every tuple, and
        // build a per-split-table-entry histogram. The scanned records stay
        // resident on the scan node so wave B can route them without a
        // second disk pass; the extra cost is one histogram update per
        // tuple plus the refined-table re-broadcast. ----
        let e = part.entries();
        type SampleState = (FileId, TupleBatch, Vec<(u32, u64)>, Vec<u64>);
        // Held tuples + their (value, hash) pairs + this node's filter shards.
        type RouteState = (TupleBatch, Vec<(u32, u64)>, Option<Vec<BitFilter>>);
        let mut sample_states: Vec<SampleState> = disk_nodes
            .iter()
            .map(|&n| {
                (
                    rz.r_fragments[n],
                    TupleBatch::new(),
                    Vec::new(),
                    vec![0u64; e],
                )
            })
            .collect();
        run_step(
            machine,
            &mut ledgers,
            "sample R",
            &disk_nodes,
            &mut sample_states,
            |ctx, (file, recs, hashed, hist)| {
                *recs = scan::scan_fragment(ctx, *file, rz.r_pred);
                *hashed = ctx.par_map_batch(recs, |rec| {
                    let val = rz.r_attr.get(rec);
                    (val, hash_u32(JOIN_SEED, val))
                });
                for (_, h) in hashed.iter() {
                    ctx.charge(ctx.cost.hash_us + ctx.cost.histogram_update_us);
                    hist[(*h % e as u64) as usize] += 1;
                }
            },
        );
        let mut hist = vec![0u64; e];
        for (_, _, _, local) in &sample_states {
            for (m, v) in hist.iter_mut().zip(local) {
                *m += v;
            }
        }
        if let Some(refined) = part.refine(&hist, &RefineCfg::default()) {
            // The scheduler re-broadcasts the larger refined table to every
            // producer before any tuple moves.
            let bytes = machine.cfg.cost.split_table_bytes(refined.entries());
            for &n in &disk_nodes {
                machine.fabric.scheduler_control(&mut ledgers[n], n, bytes);
            }
            part = refined;
        }
        // ---- Wave B: route the held records through the (possibly
        // refined) table. Hashes were computed in wave A. ----
        let mut route_states: Vec<RouteState> = sample_states
            .into_iter()
            .map(|(_, recs, hashed, _)| (recs, hashed, shard_proto.clone()))
            .collect();
        {
            let part = &part;
            run_step(
                machine,
                &mut ledgers,
                "partition R",
                &disk_nodes,
                &mut route_states,
                |ctx, (recs, hashed, shard)| {
                    let batch = std::mem::take(recs);
                    for (rec, (val, h)) in batch.iter().zip(hashed.iter()) {
                        ctx.charge(ctx.cost.route_us);
                        match part.route(*h) {
                            Route::Join { node: dst } => {
                                let i = part.join_site_index(*h);
                                ctx.send(dst, tag(TAG_BUILD, i), rec);
                            }
                            Route::Spool { node: dst, bucket } => {
                                if let Some(shard) = shard {
                                    ctx.charge(ctx.cost.filter_set_us);
                                    shard[bucket - 1].set(*val);
                                }
                                ctx.send(dst, tag(TAG_BUCKET, bucket), rec);
                            }
                        }
                    }
                },
            );
        }
        if let Some(main) = &mut form_filters {
            for (_, _, shard) in &route_states {
                for (m, s) in main.iter_mut().zip(shard.as_ref().expect("build shard")) {
                    m.or_with(s);
                }
            }
        }
    } else {
        let mut r_states: Vec<(FileId, Option<Vec<BitFilter>>)> = disk_nodes
            .iter()
            .map(|&n| (rz.r_fragments[n], shard_proto.clone()))
            .collect();
        {
            let part = &part;
            run_step(
                machine,
                &mut ledgers,
                "partition R",
                &disk_nodes,
                &mut r_states,
                |ctx, (file, shard)| {
                    let recs = scan::scan_fragment(ctx, *file, rz.r_pred);
                    // Pure per-tuple hashing, chunked on the pool; charges,
                    // filter updates and sends replay in record order below.
                    let routed = ctx.par_map_batch(&recs, |rec| {
                        let val = rz.r_attr.get(rec);
                        (val, hash_u32(JOIN_SEED, val))
                    });
                    for (rec, (val, h)) in recs.iter().zip(routed) {
                        ctx.charge(ctx.cost.hash_us + ctx.cost.route_us);
                        match part.route(h) {
                            Route::Join { node: dst } => {
                                let i = part.join_site_index(h);
                                ctx.send(dst, tag(TAG_BUILD, i), rec);
                            }
                            Route::Spool { node: dst, bucket } => {
                                if let Some(shard) = shard {
                                    ctx.charge(ctx.cost.filter_set_us);
                                    shard[bucket - 1].set(val);
                                }
                                ctx.send(dst, tag(TAG_BUCKET, bucket), rec);
                            }
                        }
                    }
                },
            );
        }
        if let Some(main) = &mut form_filters {
            for (_, shard) in &r_states {
                for (m, s) in main.iter_mut().zip(shard.as_ref().expect("build shard")) {
                    m.or_with(s);
                }
            }
        }
    }
    consumers.settle(machine, &mut ledgers, &mut sink);
    if rz.dynamic_spill {
        // The build side has settled: read each overflowed site's R' spool
        // back, raise its table cutoff as far as the freed slack allows,
        // and re-admit the restorable band. Only the residue stays spilled.
        restore_spills(machine, &mut ledgers, &mut consumers, &sites, &mut sink);
    }
    let r_files = consumers.close_buckets(machine, &mut ledgers);
    let table_bytes = machine.cfg.cost.split_table_bytes(part.entries());
    let mut sched = dispatch_overhead(machine, &mut ledgers, &disk_nodes, table_bytes);
    sched += dispatch_overhead(machine, &mut ledgers, &rz.join_nodes, table_bytes);
    phases.push(PhaseRecord::new(
        "partition R / build bucket 1",
        ledgers,
        sched,
    ));

    // ---- Phase 2: partition S, overlapped with probing bucket 1. ----
    let mut ledgers = machine.ledgers();
    broadcast_filters(machine, &mut ledgers, &sites);
    if let Some(filters) = &form_filters {
        // Broadcast the per-bucket filter packets to the scanning nodes.
        let bytes = machine.cfg.cost.filter_packet_bytes * filters.len() as u64;
        for &n in &disk_nodes {
            machine.fabric.scheduler_control(&mut ledgers[n], n, bytes);
        }
    }
    consumers.open_buckets(machine, 2, buckets);
    let snap = consumers.probe_snapshot(&sites);
    let mut s_states: Vec<FileId> = disk_nodes.iter().map(|&n| rz.s_fragments[n]).collect();
    {
        let part = &part;
        let sites = &sites;
        let snap = &snap;
        let form_filters = form_filters.as_deref();
        run_step(
            machine,
            &mut ledgers,
            "partition S",
            &disk_nodes,
            &mut s_states,
            |ctx, f| {
                let recs = scan::scan_fragment(ctx, *f, rz.s_pred);
                let routed = ctx.par_map_batch(&recs, |rec| {
                    let val = rz.s_attr.get(rec);
                    (val, hash_u32(JOIN_SEED, val))
                });
                for (rec, (val, h)) in recs.iter().zip(routed) {
                    ctx.charge(ctx.cost.hash_us + ctx.cost.route_us);
                    match part.route(h) {
                        Route::Join { node: dst } => {
                            let i = part.join_site_index(h);
                            // Filter before the overflow check — safe because
                            // filter bits are set for every arriving inner
                            // tuple.
                            if snap.filter_drops(ctx, i, val) {
                                // dropped at the source
                            } else if snap.outer_diverts(i, val) {
                                ctx.send(sites.home(i), tag(TAG_SPOOL_S, i), rec);
                            } else {
                                ctx.send(dst, tag(TAG_PROBE, i), rec);
                            }
                        }
                        Route::Spool { node: dst, bucket } => {
                            if let Some(filters) = form_filters {
                                ctx.charge(ctx.cost.filter_test_us);
                                if !filters[bucket - 1].test(val) {
                                    ctx.ledger.counts.filter_drops += 1;
                                    #[cfg(feature = "metrics")]
                                    gamma_metrics::counter_add(
                                        "filter_drops",
                                        ctx.node as u16,
                                        "forming",
                                        1,
                                    );
                                    continue;
                                }
                            }
                            ctx.send(dst, tag(TAG_BUCKET, bucket), rec);
                        }
                    }
                }
            },
        );
    }
    consumers.settle(machine, &mut ledgers, &mut sink);
    let s_files = consumers.close_buckets(machine, &mut ledgers);
    let pairs = take_overflows(machine, &mut ledgers, &mut consumers, &sites);
    let sched = dispatch_overhead(machine, &mut ledgers, &disk_nodes, table_bytes);
    #[cfg(feature = "trace")]
    gamma_trace::emit(
        rz.join_nodes[0] as u16,
        ledgers[rz.join_nodes[0]].total_demand().as_us(),
        gamma_trace::EventKind::BucketClose { bucket: 1 },
    );
    phases.push(PhaseRecord::new(
        "partition S / probe bucket 1",
        ledgers,
        sched,
    ));

    // ---- Bucket 1 overflow (the Figure 7 "optimistic" path). ----
    let env = OverflowEnv {
        join_nodes: &rz.join_nodes,
        capacity_per_site: rz.capacity_per_site,
        tuple_bytes: rz.r_tuple_bytes,
        r_attr: rz.r_attr,
        s_attr: rz.s_attr,
        filter_bits: rz.filter_bits,
        filter_salt: HYBRID_SALT.wrapping_add(0x99),
    };
    let stats = if rz.dynamic_spill {
        resolve_overflows_robust(machine, &env, pairs, &mut sink, &mut phases, "bucket 1 ")
    } else {
        resolve_overflows(machine, &env, pairs, 1, &mut sink, &mut phases, "bucket 1 ")
    };
    let mut overflow_passes = stats.passes;
    let mut bnl = stats.bnl_fallback;

    // ---- Buckets 2..N, joined exactly like Grace buckets. ----
    for b in 2..=buckets {
        let r_b: Vec<FileId> = (0..disk_nodes.len()).map(|n| r_files[n][b - 2]).collect();
        let s_b: Vec<FileId> = (0..disk_nodes.len()).map(|n| s_files[n][b - 2]).collect();
        let (p, f) = join_bucket(
            machine,
            rz,
            &mut phases,
            &mut sink,
            &r_b,
            &s_b,
            b,
            HYBRID_SALT,
        );
        overflow_passes += p;
        bnl |= f;
    }

    let last = phases.last_mut().expect("phases exist");
    let result = sink.finish(machine, &mut last.ledgers);
    // The store's final page flushes landed after the phase sealed;
    // refresh the queue-wait annotation so the recorded waits cover the
    // final request log (replay drains the same log when timing the phase).
    for u in last.ledgers.iter_mut() {
        u.annotate_queue_waits();
    }
    DriverOutput {
        phases,
        result,
        buckets,
        overflow_passes,
        bnl_fallback: bnl,
    }
}
