//! Parallel Hybrid hash-join (§3.4).
//!
//! Like Grace, the relations are split into `N` buckets through the
//! Appendix A partitioning split table — but bucket 1 never touches disk:
//! its entries route straight to the join processes, so partitioning R
//! overlaps with building the first hash table and partitioning S overlaps
//! with probing it. Buckets 2..N are spooled to disk exactly like Grace's
//! and joined consecutively afterwards. When the optimizer runs the
//! algorithm "optimistically" (fewer buckets than the memory ratio
//! requires, Figure 7), bucket 1 overflows and the Simple-hash machinery
//! resolves it.

use gamma_wiss::{FileId, HeapWriter};

use crate::hash::{hash_u32, JOIN_SEED};
use crate::hashjoin::{
    broadcast_filters, dispatch_overhead, resolve_overflows, OverflowEnv, SiteSet,
};
use crate::machine::{Ledgers, Machine, NodeId, ResultSink};
use crate::report::{DriverOutput, PhaseRecord};
use crate::split::{PartitioningSplitTable, Route};

use super::common::Resolved;
use super::grace::{bucket_filters, join_bucket};

/// Filter-salt namespace for Hybrid.
const HYBRID_SALT: u64 = 0x4B;

/// Spool writers for buckets 2..N at each disk node.
struct SpoolFiles {
    writers: Vec<Vec<Option<HeapWriter>>>,
}

impl SpoolFiles {
    fn new(machine: &mut Machine, buckets: usize) -> Self {
        let page = machine.cfg.cost.disk.page_bytes;
        let writers = machine
            .disk_nodes()
            .into_iter()
            .map(|n| {
                (0..buckets.saturating_sub(1))
                    .map(|_| {
                        Some(HeapWriter::create(
                            machine.volumes[n].as_mut().unwrap(),
                            page,
                        ))
                    })
                    .collect()
            })
            .collect();
        SpoolFiles { writers }
    }

    fn push(
        &mut self,
        machine: &mut Machine,
        ledgers: &mut Ledgers,
        node: NodeId,
        bucket: usize,
        rec: &[u8],
    ) {
        debug_assert!(bucket >= 2);
        let cost = machine.cfg.cost.clone();
        cost.charge(&mut ledgers[node], cost.store_tuple_us);
        self.writers[node][bucket - 2]
            .as_mut()
            .expect("spool closed")
            .push(
                machine.volumes[node].as_mut().unwrap(),
                machine.pools[node].as_mut().unwrap(),
                &mut ledgers[node],
                rec,
            );
    }

    fn finish(self, machine: &mut Machine, ledgers: &mut Ledgers) -> Vec<Vec<FileId>> {
        self.writers
            .into_iter()
            .enumerate()
            .map(|(n, ws)| {
                ws.into_iter()
                    .map(|w| {
                        w.unwrap().finish(
                            machine.volumes[n].as_mut().unwrap(),
                            machine.pools[n].as_mut().unwrap(),
                            &mut ledgers[n],
                        )
                    })
                    .collect()
            })
            .collect()
    }
}

/// Execute a Hybrid hash-join.
pub fn run(machine: &mut Machine, rz: &Resolved) -> DriverOutput {
    let cost = machine.cfg.cost.clone();
    let buckets = rz.buckets;
    let disk_nodes = machine.disk_nodes();
    let part = PartitioningSplitTable::hybrid(&rz.join_nodes, &disk_nodes, buckets);
    let table_bytes = cost.split_table_bytes(part.entries());
    let mut phases = Vec::new();
    let mut sink = ResultSink::new(machine);

    let mut set = SiteSet::new(
        machine,
        &rz.join_nodes,
        rz.capacity_per_site,
        rz.r_tuple_bytes,
        0,
        rz.filter_bits,
        HYBRID_SALT,
    );

    // Per-bucket filters for the spooled buckets when the §4.2/§5
    // bucket-forming extension is on (bucket 1 is covered by the join
    // sites' own filters).
    let mut form_filters = rz
        .filter_bucket_forming
        .then(|| bucket_filters(machine, buckets, HYBRID_SALT));

    // ---- Phase 1: partition R into buckets, overlapped with building
    // bucket 1's hash tables. ----
    let mut ledgers = machine.ledgers();
    #[cfg(feature = "trace")]
    gamma_trace::emit(
        rz.join_nodes[0] as u16,
        0,
        gamma_trace::EventKind::BucketOpen { bucket: 1 },
    );
    let mut r_spool = SpoolFiles::new(machine, buckets);
    for &node in &disk_nodes {
        let recs = super::common::scan_fragment(
            machine,
            &mut ledgers,
            node,
            rz.r_fragments[node],
            rz.r_pred,
        );
        for rec in recs {
            let val = rz.r_attr.get(&rec);
            cost.charge(&mut ledgers[node], cost.hash_us + cost.route_us);
            let h = hash_u32(JOIN_SEED, val);
            match part.route(h) {
                Route::Join { node: dst } => {
                    let i = part.join_site_index(h);
                    machine
                        .fabric
                        .send_tuple(&mut ledgers, node, dst, rec.len() as u64);
                    set.deliver_build(machine, &mut ledgers, i, val, rec);
                }
                Route::Spool { node: dst, bucket } => {
                    if let Some(filters) = &mut form_filters {
                        cost.charge(&mut ledgers[node], cost.filter_set_us);
                        filters[bucket - 1].set(val);
                    }
                    machine
                        .fabric
                        .send_tuple(&mut ledgers, node, dst, rec.len() as u64);
                    r_spool.push(machine, &mut ledgers, dst, bucket, &rec);
                }
            }
        }
    }
    machine.fabric.flush(&mut ledgers);
    let r_files = r_spool.finish(machine, &mut ledgers);
    let mut sched = dispatch_overhead(machine, &mut ledgers, &disk_nodes, table_bytes);
    sched += dispatch_overhead(machine, &mut ledgers, &rz.join_nodes, table_bytes);
    phases.push(PhaseRecord::new(
        "partition R / build bucket 1",
        ledgers,
        sched,
    ));

    // ---- Phase 2: partition S, overlapped with probing bucket 1. ----
    let mut ledgers = machine.ledgers();
    broadcast_filters(machine, &mut ledgers, &set);
    if let Some(filters) = &form_filters {
        // Broadcast the per-bucket filter packets to the scanning nodes.
        let bytes = cost.filter_packet_bytes * filters.len() as u64;
        for &n in &disk_nodes {
            machine.fabric.scheduler_control(&mut ledgers[n], n, bytes);
        }
    }
    let mut s_spool = SpoolFiles::new(machine, buckets);
    for &node in &disk_nodes {
        let recs = super::common::scan_fragment(
            machine,
            &mut ledgers,
            node,
            rz.s_fragments[node],
            rz.s_pred,
        );
        for rec in recs {
            let val = rz.s_attr.get(&rec);
            cost.charge(&mut ledgers[node], cost.hash_us + cost.route_us);
            let h = hash_u32(JOIN_SEED, val);
            match part.route(h) {
                Route::Join { node: dst } => {
                    let i = part.join_site_index(h);
                    // Filter before the overflow check — safe because
                    // filter bits are set for every arriving inner tuple.
                    if set.filter_drops(machine, &mut ledgers, node, i, val) {
                        // dropped at the source
                    } else if set.outer_diverts(i, val) {
                        set.spool_outer(machine, &mut ledgers, node, i, &rec);
                    } else {
                        machine
                            .fabric
                            .send_tuple(&mut ledgers, node, dst, rec.len() as u64);
                        set.deliver_probe(machine, &mut ledgers, i, val, &rec, &mut sink);
                    }
                }
                Route::Spool { node: dst, bucket } => {
                    if let Some(filters) = &form_filters {
                        cost.charge(&mut ledgers[node], cost.filter_test_us);
                        if !filters[bucket - 1].test(val) {
                            ledgers[node].counts.filter_drops += 1;
                            continue;
                        }
                    }
                    machine
                        .fabric
                        .send_tuple(&mut ledgers, node, dst, rec.len() as u64);
                    s_spool.push(machine, &mut ledgers, dst, bucket, &rec);
                }
            }
        }
    }
    machine.fabric.flush(&mut ledgers);
    let s_files = s_spool.finish(machine, &mut ledgers);
    let pairs = set.take_overflows(machine, &mut ledgers);
    let sched = dispatch_overhead(machine, &mut ledgers, &disk_nodes, table_bytes);
    #[cfg(feature = "trace")]
    gamma_trace::emit(
        rz.join_nodes[0] as u16,
        ledgers[rz.join_nodes[0]].total_demand().as_us(),
        gamma_trace::EventKind::BucketClose { bucket: 1 },
    );
    phases.push(PhaseRecord::new(
        "partition S / probe bucket 1",
        ledgers,
        sched,
    ));

    // ---- Bucket 1 overflow (the Figure 7 "optimistic" path). ----
    let env = OverflowEnv {
        join_nodes: &rz.join_nodes,
        capacity_per_site: rz.capacity_per_site,
        tuple_bytes: rz.r_tuple_bytes,
        r_attr: rz.r_attr,
        s_attr: rz.s_attr,
        filter_bits: rz.filter_bits,
        filter_salt: HYBRID_SALT.wrapping_add(0x99),
    };
    let stats = resolve_overflows(machine, &env, pairs, 1, &mut sink, &mut phases, "bucket 1 ");
    let mut overflow_passes = stats.passes;
    let mut bnl = stats.bnl_fallback;

    // ---- Buckets 2..N, joined exactly like Grace buckets. ----
    for b in 2..=buckets {
        let r_b: Vec<FileId> = (0..disk_nodes.len()).map(|n| r_files[n][b - 2]).collect();
        let s_b: Vec<FileId> = (0..disk_nodes.len()).map(|n| s_files[n][b - 2]).collect();
        let (p, f) = join_bucket(
            machine,
            rz,
            &mut phases,
            &mut sink,
            &r_b,
            &s_b,
            b,
            HYBRID_SALT,
        );
        overflow_passes += p;
        bnl |= f;
    }

    let last = phases.last_mut().expect("phases exist");
    let result = sink.finish(machine, &mut last.ledgers);
    DriverOutput {
        phases,
        result,
        buckets,
        overflow_passes,
        bnl_fallback: bnl,
    }
}
