//! Parallel sort-merge join (§3.1).
//!
//! Both relations are redistributed across the disk nodes through the same
//! D-entry split table (so only co-located fragments can join), each local
//! fragment is sorted with the WiSS external sort, and a local merge join
//! computes the result in parallel at every disk site. Join processors are
//! always the processors with disks — the paper's implementation cannot
//! use diskless nodes (duplicate outer values force the inner scan to back
//! up, which needs the sorted file local).
//!
//! Bit filters are built at each disk site while the inner relation is
//! partitioned into its temp file, then applied at the *source* while the
//! outer relation is partitioned: a filtered tuple is never transmitted,
//! stored, sorted or merged — which is why sort-merge gains the most from
//! filtering (Table 4).
//!
//! As in the paper's implementation ("each of the local files is sorted in
//! parallel… a local merge join performed in parallel across the disk sites
//! will fully compute the join"), each relation is sorted to completion
//! before the merge join starts. The merge join itself streams the two
//! sorted files lazily, so a highly skewed inner relation ends the merge
//! early without reading the tail of the outer relation's *sorted* file
//! (§4.4's NU anomaly) — the sorting cost, however, is fully paid.

use gamma_des::{SimTime, Usage};
use gamma_wiss::sort::{external_sort, RunMerger};
use gamma_wiss::{BufferPool, FileId, SortConfig, Volume};

use crate::batch::TupleBatch;
use crate::bitfilter::BitFilter;
use crate::exec::control::dispatch_overhead;
use crate::exec::hash::{Consumers, TAG_PART};
use crate::exec::{self, run_step, scan};
use crate::hash::{hash_u32, JOIN_SEED};
use crate::machine::{Machine, ResultRoute, ResultSink, RESULT_TAG};
use crate::report::{DriverOutput, PhaseRecord};
use crate::split::JoiningSplitTable;

use super::common::{RangePred, Resolved};

/// Filter-salt namespace for sort-merge.
const SM_SALT: u64 = 0x53;

/// Redistribute one relation into per-node temp files (phase 1 / 3).
#[allow(clippy::too_many_arguments)]
fn partition(
    machine: &mut Machine,
    phases: &mut Vec<PhaseRecord>,
    sink: &mut ResultSink,
    fragments: &[FileId],
    attr: crate::tuple::Attr,
    pred: Option<RangePred>,
    filters: &mut [Option<BitFilter>],
    build_filters: bool,
    label: &str,
) -> Vec<FileId> {
    let disk_nodes = machine.disk_nodes();
    let d = disk_nodes.len();
    let jt = JoiningSplitTable::new(disk_nodes.clone());
    let mut consumers = Consumers::new(machine);
    if build_filters {
        // Inner partitioning: each destination site builds its own filter
        // while it stores arriving tuples.
        let taken: Vec<Option<BitFilter>> = filters.iter_mut().map(Option::take).collect();
        consumers.open_parts(machine, taken, attr);
    } else {
        consumers.open_parts(machine, vec![None; d], attr);
    }
    let mut ledgers = machine.ledgers();
    let mut states: Vec<FileId> = disk_nodes.iter().map(|&n| fragments[n]).collect();
    {
        let jt = &jt;
        let test_filters: Option<&[Option<BitFilter>]> = (!build_filters).then_some(&*filters);
        run_step(
            machine,
            &mut ledgers,
            "partition",
            &disk_nodes,
            &mut states,
            |ctx, f| {
                let recs = scan::scan_fragment(ctx, *f, pred);
                // Pure per-tuple routing, chunked on the pool; charges, filter
                // tests and sends replay in record order below.
                let routed = ctx.par_map_batch(&recs, |rec| {
                    let val = attr.get(rec);
                    (val, jt.site_index(hash_u32(JOIN_SEED, val)))
                });
                for (rec, (val, i)) in recs.iter().zip(routed) {
                    ctx.charge(ctx.cost.hash_us + ctx.cost.route_us);
                    if let Some(filters) = test_filters {
                        // Outer partitioning: test the destination site's
                        // filter at the source before spending network/disk on
                        // the tuple.
                        if let Some(f) = &filters[i] {
                            ctx.charge(ctx.cost.filter_test_us);
                            if !f.test(val) {
                                ctx.ledger.counts.filter_drops += 1;
                                #[cfg(feature = "metrics")]
                                gamma_metrics::counter_add(
                                    "filter_drops",
                                    ctx.node as u16,
                                    "sortmerge",
                                    1,
                                );
                                continue;
                            }
                        }
                    }
                    ctx.send(disk_nodes[i], TAG_PART, rec);
                }
            },
        );
    }
    consumers.settle(machine, &mut ledgers, sink);
    let (files, back) = consumers.close_parts(machine, &mut ledgers);
    if build_filters {
        for (slot, f) in filters.iter_mut().zip(back) {
            *slot = f;
        }
    }
    let table_bytes = machine.cfg.cost.split_table_bytes(jt.entries());
    let mut sched = dispatch_overhead(machine, &mut ledgers, &disk_nodes, table_bytes);
    if !build_filters {
        // The aggregate filter packet was broadcast to the scanning nodes
        // before the outer partitioning began.
        if filters.iter().any(Option::is_some) {
            let bytes = machine.cfg.cost.filter_packet_bytes;
            for &n in &disk_nodes {
                machine.fabric.scheduler_control(&mut ledgers[n], n, bytes);
            }
            sched += SimTime::from_us(machine.cfg.cost.scheduler_dispatch_us);
        }
    }
    phases.push(PhaseRecord::new(label, ledgers, sched));
    files
}

/// Fully sort every node's temp fragment (run formation plus however many
/// merge passes the memory budget requires — the source of the "upward
/// steps" in the paper's sort-merge curves). Each node's sort is
/// independent, so under the `parallel` feature the whole phase runs as
/// one wave of node-local workers.
fn sort_phase(
    machine: &mut Machine,
    phases: &mut Vec<PhaseRecord>,
    temp: &[FileId],
    attr: crate::tuple::Attr,
    mem_per_node: u64,
    label: &str,
) -> Vec<FileId> {
    let cfg = SortConfig {
        mem_bytes: mem_per_node.max(machine.cfg.cost.disk.page_bytes as u64 * 2),
        page_bytes: machine.cfg.cost.disk.page_bytes,
    };
    let disk_nodes = machine.disk_nodes();
    let mut ledgers = machine.ledgers();
    let key = move |rec: &[u8]| attr.get(rec);
    let mut states: Vec<FileId> = disk_nodes.iter().map(|&n| temp[n]).collect();
    let runs = {
        let key = &key;
        run_step(
            machine,
            &mut ledgers,
            "sort",
            &disk_nodes,
            &mut states,
            |ctx, f| {
                #[cfg(feature = "trace")]
                gamma_trace::emit(
                    ctx.node as u16,
                    ctx.ledger.total_demand().as_us(),
                    gamma_trace::EventKind::SpanBegin { name: "sort" },
                );
                let (vol, pool) = ctx.state.vp();
                let (sorted, _stats) =
                    external_sort(vol, pool, *f, key, cfg, &ctx.cost.sort, ctx.ledger);
                #[cfg(feature = "trace")]
                gamma_trace::emit(
                    ctx.node as u16,
                    ctx.ledger.total_demand().as_us(),
                    gamma_trace::EventKind::SpanEnd { name: "sort" },
                );
                sorted
            },
        )
    };
    // Free the unsorted temp files.
    for &node in &disk_nodes {
        exec::delete_file(machine, node, temp[node]);
    }
    let sched = dispatch_overhead(machine, &mut ledgers, &disk_nodes, 0);
    phases.push(PhaseRecord::new(label, ledgers, sched));
    runs
}

/// Stream a merge join over one node's sorted runs, collecting outputs.
/// Returns `(result tuples, merge comparisons)`.
fn merge_streams(
    vol: &Volume,
    pool: &mut BufferPool,
    ledger: &mut Usage,
    r_sorted: FileId,
    s_sorted: FileId,
    r_attr: crate::tuple::Attr,
    s_attr: crate::tuple::Attr,
) -> (TupleBatch, u64) {
    let mut out = TupleBatch::new();
    let mut compares = 0u64;
    let r_key = move |rec: &[u8]| r_attr.get(rec);
    let s_key = move |rec: &[u8]| s_attr.get(rec);
    let mut rm = RunMerger::open(vol, vec![r_sorted], &r_key);
    let mut sm = RunMerger::open(vol, vec![s_sorted], &s_key);

    let mut group: Vec<&[u8]> = Vec::new();
    let mut r_next = rm.next_ref(pool, ledger);
    let mut s_cur = sm.next_ref(pool, ledger);
    while let (Some(r), Some(s)) = (r_next, s_cur) {
        let rk = r_attr.get(r);
        let sk = s_attr.get(s);
        compares += 1;
        if rk < sk {
            r_next = rm.next_ref(pool, ledger);
        } else if rk > sk {
            s_cur = sm.next_ref(pool, ledger);
        } else {
            // Collect the group of equal inner keys, then emit the cross
            // product with every matching outer tuple (this is the
            // "backup" that keeps sort-merge on the disk nodes).
            group.clear();
            group.push(r);
            loop {
                r_next = rm.next_ref(pool, ledger);
                match r_next {
                    Some(r2) if r_attr.get(r2) == rk => group.push(r2),
                    _ => break,
                }
            }
            while let Some(s2) = s_cur {
                if s_attr.get(s2) != rk {
                    break;
                }
                compares += 1;
                for g in &group {
                    out.push_concat(g, s2);
                }
                s_cur = sm.next_ref(pool, ledger);
            }
        }
    }
    compares += rm.comparisons() + sm.comparisons();
    (out, compares)
}

/// Execute a parallel sort-merge join.
pub fn run(machine: &mut Machine, rz: &Resolved) -> DriverOutput {
    let disk_nodes = machine.disk_nodes();
    let d = disk_nodes.len();
    let mem_per_node = rz.capacity_per_site; // resolver set this to M / D
    let mut phases = Vec::new();
    let mut sink = ResultSink::new(machine);

    let mut filters: Vec<Option<BitFilter>> = (0..d)
        .map(|i| {
            rz.filter_bits
                .map(|b| BitFilter::new(b, SM_SALT.wrapping_add(i as u64)))
        })
        .collect();

    // Phase 1: redistribute R (building filters at the destinations).
    let r_temp = partition(
        machine,
        &mut phases,
        &mut sink,
        &rz.r_fragments,
        rz.r_attr,
        rz.r_pred,
        &mut filters,
        true,
        "partition R",
    );
    // Phase 2: sort R locally.
    let r_runs = sort_phase(
        machine,
        &mut phases,
        &r_temp,
        rz.r_attr,
        mem_per_node,
        "sort R",
    );

    // Phase 3: redistribute S, filtering at the sources.
    let s_temp = partition(
        machine,
        &mut phases,
        &mut sink,
        &rz.s_fragments,
        rz.s_attr,
        rz.s_pred,
        &mut filters,
        false,
        "partition S",
    );
    // Phase 4: sort S locally.
    let s_runs = sort_phase(
        machine,
        &mut phases,
        &s_temp,
        rz.s_attr,
        mem_per_node,
        "sort S",
    );

    // Phase 5: local merge join in parallel at every disk site.
    let mut ledgers = machine.ledgers();
    let mut states: Vec<(FileId, FileId)> = disk_nodes
        .iter()
        .enumerate()
        .map(|(i, _)| (r_runs[i], s_runs[i]))
        .collect();
    run_step(
        machine,
        &mut ledgers,
        "merge join",
        &disk_nodes,
        &mut states,
        |ctx, &mut (rr, sr)| {
            #[cfg(feature = "trace")]
            gamma_trace::emit(
                ctx.node as u16,
                ctx.ledger.total_demand().as_us(),
                gamma_trace::EventKind::SpanBegin { name: "merge" },
            );
            let (outputs, compares) = {
                let (vol, pool) = ctx.state.vp();
                merge_streams(vol, pool, ctx.ledger, rr, sr, rz.r_attr, rz.s_attr)
            };
            ctx.charge(ctx.cost.merge_compare_us * compares);
            ctx.ledger.counts.comparisons += compares;
            #[cfg(feature = "metrics")]
            gamma_metrics::counter_add("comparisons", ctx.node as u16, "merge", compares);
            let mut route = ResultRoute::new(ctx.node, d);
            for rec in outputs.iter() {
                ctx.charge(ctx.cost.compose_us);
                ctx.ledger.counts.tuples_out += 1;
                #[cfg(feature = "metrics")]
                gamma_metrics::counter_add("op_tuples_out", ctx.node as u16, "merge", 1);
                ctx.send(route.advance(), RESULT_TAG, rec);
            }
            #[cfg(feature = "trace")]
            gamma_trace::emit(
                ctx.node as u16,
                ctx.ledger.total_demand().as_us(),
                gamma_trace::EventKind::SpanEnd { name: "merge" },
            );
        },
    );
    sink.flush(machine, &mut ledgers);
    for (i, &node) in disk_nodes.iter().enumerate() {
        exec::delete_file(machine, node, r_runs[i]);
        exec::delete_file(machine, node, s_runs[i]);
    }
    let sched = dispatch_overhead(machine, &mut ledgers, &disk_nodes, 0);
    let result = sink.finish(machine, &mut ledgers);
    phases.push(PhaseRecord::new("merge join", ledgers, sched));

    DriverOutput {
        phases,
        result,
        buckets: 1,
        overflow_passes: 0,
        bnl_fallback: false,
    }
}
