//! Parallel sort-merge join (§3.1).
//!
//! Both relations are redistributed across the disk nodes through the same
//! D-entry split table (so only co-located fragments can join), each local
//! fragment is sorted with the WiSS external sort, and a local merge join
//! computes the result in parallel at every disk site. Join processors are
//! always the processors with disks — the paper's implementation cannot
//! use diskless nodes (duplicate outer values force the inner scan to back
//! up, which needs the sorted file local).
//!
//! Bit filters are built at each disk site while the inner relation is
//! partitioned into its temp file, then applied at the *source* while the
//! outer relation is partitioned: a filtered tuple is never transmitted,
//! stored, sorted or merged — which is why sort-merge gains the most from
//! filtering (Table 4).
//!
//! As in the paper's implementation ("each of the local files is sorted in
//! parallel… a local merge join performed in parallel across the disk sites
//! will fully compute the join"), each relation is sorted to completion
//! before the merge join starts. The merge join itself streams the two
//! sorted files lazily, so a highly skewed inner relation ends the merge
//! early without reading the tail of the outer relation's *sorted* file
//! (§4.4's NU anomaly) — the sorting cost, however, is fully paid.

use gamma_des::SimTime;
use gamma_wiss::sort::{external_sort, RunMerger};
use gamma_wiss::{FileId, HeapWriter, SortConfig};

use crate::bitfilter::BitFilter;
use crate::hash::{hash_u32, JOIN_SEED};
use crate::hashjoin::{delete_file, dispatch_overhead};
use crate::machine::{Ledgers, Machine, NodeId, ResultSink};
use crate::report::{DriverOutput, PhaseRecord};
use crate::split::JoiningSplitTable;
use crate::tuple::compose;

use super::common::{scan_fragment, RangePred, Resolved};

/// Filter-salt namespace for sort-merge.
const SM_SALT: u64 = 0x53;

/// Redistribute one relation into per-node temp files (phase 1 / 3).
#[allow(clippy::too_many_arguments)]
fn partition(
    machine: &mut Machine,
    phases: &mut Vec<PhaseRecord>,
    fragments: &[FileId],
    attr: crate::tuple::Attr,
    pred: Option<RangePred>,
    filters: &mut [Option<BitFilter>],
    build_filters: bool,
    label: &str,
) -> Vec<FileId> {
    let cost = machine.cfg.cost.clone();
    let disk_nodes = machine.disk_nodes();
    let jt = JoiningSplitTable::new(disk_nodes.clone());
    let page = cost.disk.page_bytes;
    let mut writers: Vec<Option<HeapWriter>> = disk_nodes
        .iter()
        .map(|&n| {
            Some(HeapWriter::create(
                machine.volumes[n].as_mut().unwrap(),
                page,
            ))
        })
        .collect();
    let mut ledgers = machine.ledgers();
    for &node in &disk_nodes {
        let recs = scan_fragment(machine, &mut ledgers, node, fragments[node], pred);
        for rec in recs {
            let val = attr.get(&rec);
            cost.charge(&mut ledgers[node], cost.hash_us + cost.route_us);
            let i = jt.site_index(hash_u32(JOIN_SEED, val));
            let dst = disk_nodes[i];
            if !build_filters {
                // Outer partitioning: test the destination site's filter at
                // the source before spending network/disk on the tuple.
                if let Some(f) = &filters[i] {
                    cost.charge(&mut ledgers[node], cost.filter_test_us);
                    if !f.test(val) {
                        ledgers[node].counts.filter_drops += 1;
                        continue;
                    }
                }
            }
            machine
                .fabric
                .send_tuple(&mut ledgers, node, dst, rec.len() as u64);
            if build_filters {
                if let Some(f) = &mut filters[i] {
                    cost.charge(&mut ledgers[dst], cost.filter_set_us);
                    f.set(val);
                }
            }
            cost.charge(&mut ledgers[dst], cost.store_tuple_us);
            writers[i].as_mut().unwrap().push(
                machine.volumes[dst].as_mut().unwrap(),
                machine.pools[dst].as_mut().unwrap(),
                &mut ledgers[dst],
                &rec,
            );
        }
    }
    machine.fabric.flush(&mut ledgers);
    let files: Vec<FileId> = writers
        .into_iter()
        .enumerate()
        .map(|(i, w)| {
            let n = disk_nodes[i];
            w.unwrap().finish(
                machine.volumes[n].as_mut().unwrap(),
                machine.pools[n].as_mut().unwrap(),
                &mut ledgers[n],
            )
        })
        .collect();
    let table_bytes = cost.split_table_bytes(jt.entries());
    let mut sched = dispatch_overhead(machine, &mut ledgers, &disk_nodes, table_bytes);
    if !build_filters {
        // The aggregate filter packet was broadcast to the scanning nodes
        // before the outer partitioning began.
        if filters.iter().any(Option::is_some) {
            for &n in &disk_nodes {
                machine
                    .fabric
                    .scheduler_control(&mut ledgers[n], n, cost.filter_packet_bytes);
            }
            sched += SimTime::from_us(cost.scheduler_dispatch_us);
        }
    }
    phases.push(PhaseRecord::new(label, ledgers, sched));
    files
}

/// Fully sort every node's temp fragment (run formation plus however many
/// merge passes the memory budget requires — the source of the "upward
/// steps" in the paper's sort-merge curves).
fn sort_phase(
    machine: &mut Machine,
    phases: &mut Vec<PhaseRecord>,
    temp: &[FileId],
    attr: crate::tuple::Attr,
    mem_per_node: u64,
    label: &str,
) -> Vec<FileId> {
    let cost = machine.cfg.cost.clone();
    let cfg = SortConfig {
        mem_bytes: mem_per_node.max(cost.disk.page_bytes as u64 * 2),
        page_bytes: cost.disk.page_bytes,
    };
    let disk_nodes = machine.disk_nodes();
    let mut ledgers = machine.ledgers();
    let mut runs = Vec::with_capacity(disk_nodes.len());
    let key = move |rec: &[u8]| attr.get(rec);
    for &node in &disk_nodes {
        #[cfg(feature = "trace")]
        gamma_trace::emit(
            node as u16,
            ledgers[node].total_demand().as_us(),
            gamma_trace::EventKind::SpanBegin { name: "sort" },
        );
        let vol = machine.volumes[node].as_mut().unwrap();
        let pool = machine.pools[node].as_mut().unwrap();
        let (f, _stats) = external_sort(
            vol,
            pool,
            temp[node],
            &key,
            cfg,
            &cost.sort,
            &mut ledgers[node],
        );
        runs.push(f);
        #[cfg(feature = "trace")]
        gamma_trace::emit(
            node as u16,
            ledgers[node].total_demand().as_us(),
            gamma_trace::EventKind::SpanEnd { name: "sort" },
        );
    }
    // Free the unsorted temp files.
    for &node in &disk_nodes {
        delete_file(machine, node, temp[node]);
    }
    let sched = dispatch_overhead(machine, &mut ledgers, &disk_nodes, 0);
    phases.push(PhaseRecord::new(label, ledgers, sched));
    runs
}

/// Stream a merge join over one node's sorted runs, collecting outputs.
/// Returns `(result tuples, merge comparisons)`.
fn merge_join_node(
    machine: &mut Machine,
    ledgers: &mut Ledgers,
    node: NodeId,
    r_sorted: FileId,
    s_sorted: FileId,
    r_attr: crate::tuple::Attr,
    s_attr: crate::tuple::Attr,
) -> (Vec<Vec<u8>>, u64) {
    let mut out = Vec::new();
    let mut compares = 0u64;
    {
        let vol = machine.volumes[node].as_ref().unwrap();
        let pool = machine.pools[node].as_mut().unwrap();
        let ledger = &mut ledgers[node];
        let r_key = move |rec: &[u8]| r_attr.get(rec);
        let s_key = move |rec: &[u8]| s_attr.get(rec);
        let mut rm = RunMerger::open(vol, vec![r_sorted], &r_key);
        let mut sm = RunMerger::open(vol, vec![s_sorted], &s_key);

        let mut r_next = rm.next(pool, ledger);
        let mut s_cur = sm.next(pool, ledger);
        while let (Some(r), Some(s)) = (&r_next, &s_cur) {
            let rk = r_attr.get(r);
            let sk = s_attr.get(s);
            compares += 1;
            if rk < sk {
                r_next = rm.next(pool, ledger);
            } else if rk > sk {
                s_cur = sm.next(pool, ledger);
            } else {
                // Collect the group of equal inner keys, then emit the
                // cross product with every matching outer tuple (this is
                // the "backup" that keeps sort-merge on the disk nodes).
                let mut group = vec![r_next.take().unwrap()];
                loop {
                    r_next = rm.next(pool, ledger);
                    match &r_next {
                        Some(r2) if r_attr.get(r2) == rk => {
                            group.push(r_next.take().unwrap());
                        }
                        _ => break,
                    }
                }
                while let Some(s2) = &s_cur {
                    if s_attr.get(s2) != rk {
                        break;
                    }
                    compares += 1;
                    for g in &group {
                        out.push(compose(g, s2));
                    }
                    s_cur = sm.next(pool, ledger);
                }
            }
        }
        compares += rm.comparisons() + sm.comparisons();
    }
    (out, compares)
}

/// Execute a parallel sort-merge join.
pub fn run(machine: &mut Machine, rz: &Resolved) -> DriverOutput {
    let cost = machine.cfg.cost.clone();
    let disk_nodes = machine.disk_nodes();
    let d = disk_nodes.len();
    let mem_per_node = rz.capacity_per_site; // resolver set this to M / D
    let mut phases = Vec::new();
    let mut sink = ResultSink::new(machine);

    let mut filters: Vec<Option<BitFilter>> = (0..d)
        .map(|i| {
            rz.filter_bits
                .map(|b| BitFilter::new(b, SM_SALT.wrapping_add(i as u64)))
        })
        .collect();

    // Phase 1: redistribute R (building filters at the destinations).
    let r_temp = partition(
        machine,
        &mut phases,
        &rz.r_fragments,
        rz.r_attr,
        rz.r_pred,
        &mut filters,
        true,
        "partition R",
    );
    // Phase 2: sort R locally.
    let r_runs = sort_phase(
        machine,
        &mut phases,
        &r_temp,
        rz.r_attr,
        mem_per_node,
        "sort R",
    );

    // Phase 3: redistribute S, filtering at the sources.
    let s_temp = partition(
        machine,
        &mut phases,
        &rz.s_fragments,
        rz.s_attr,
        rz.s_pred,
        &mut filters,
        false,
        "partition S",
    );
    // Phase 4: sort S locally.
    let s_runs = sort_phase(
        machine,
        &mut phases,
        &s_temp,
        rz.s_attr,
        mem_per_node,
        "sort S",
    );

    // Phase 5: local merge join in parallel at every disk site.
    let mut ledgers = machine.ledgers();
    let mut run_files: Vec<(NodeId, FileId)> = Vec::new();
    for (&node, (rr, sr)) in disk_nodes.iter().zip(r_runs.into_iter().zip(s_runs)) {
        run_files.push((node, rr));
        run_files.push((node, sr));
        #[cfg(feature = "trace")]
        gamma_trace::emit(
            node as u16,
            ledgers[node].total_demand().as_us(),
            gamma_trace::EventKind::SpanBegin { name: "merge" },
        );
        let (outputs, compares) =
            merge_join_node(machine, &mut ledgers, node, rr, sr, rz.r_attr, rz.s_attr);
        cost.charge(&mut ledgers[node], cost.merge_compare_us * compares);
        ledgers[node].counts.comparisons += compares;
        for rec in outputs {
            cost.charge(&mut ledgers[node], cost.compose_us);
            sink.push(machine, &mut ledgers, node, &rec);
        }
        #[cfg(feature = "trace")]
        gamma_trace::emit(
            node as u16,
            ledgers[node].total_demand().as_us(),
            gamma_trace::EventKind::SpanEnd { name: "merge" },
        );
    }
    machine.fabric.flush(&mut ledgers);
    for (node, f) in run_files {
        delete_file(machine, node, f);
    }
    let sched = dispatch_overhead(machine, &mut ledgers, &disk_nodes, 0);
    let result = sink.finish(machine, &mut ledgers);
    phases.push(PhaseRecord::new("merge join", ledgers, sched));

    DriverOutput {
        phases,
        result,
        buckets: 1,
        overflow_passes: 0,
        bnl_fallback: false,
    }
}
