//! Parallel Grace hash-join (§3.3).
//!
//! Bucket-forming is completely separated from bucket-joining: both source
//! relations are hashed into `N` logical buckets, each bucket horizontally
//! partitioned across every disk node through the bucket-major partitioning
//! split table of Appendix A. Both relations are therefore written back to
//! disk in full before any joining starts — the reason Grace's curve is
//! nearly flat in memory and why extra buckets cost only scheduling
//! overhead. Each bucket is then joined Grace-style: build hash tables at
//! the join sites, probe, with per-bucket bit filters.

use gamma_wiss::{FileId, HeapWriter};

use crate::bitfilter::BitFilter;
use crate::hash::{hash_u32, JOIN_SEED};
use crate::hashjoin::{
    broadcast_filters, delete_file, dispatch_overhead, resolve_overflows, OverflowEnv, SiteSet,
};
use crate::machine::{Ledgers, Machine, NodeId, ResultSink};
use crate::report::{DriverOutput, PhaseRecord};
use crate::split::{JoiningSplitTable, PartitioningSplitTable, Route};

use super::common::{scan_fragment, Resolved};

/// Filter-salt namespace for Grace.
const GRACE_SALT: u64 = 0x6A;

/// Bucket files: `files[disk_node][bucket-1]`.
struct BucketFiles {
    writers: Vec<Vec<Option<HeapWriter>>>,
}

impl BucketFiles {
    fn new(machine: &mut Machine, buckets: usize) -> Self {
        let page = machine.cfg.cost.disk.page_bytes;
        let writers = machine
            .disk_nodes()
            .into_iter()
            .map(|n| {
                (0..buckets)
                    .map(|_| {
                        Some(HeapWriter::create(
                            machine.volumes[n].as_mut().unwrap(),
                            page,
                        ))
                    })
                    .collect()
            })
            .collect();
        BucketFiles { writers }
    }

    fn push(
        &mut self,
        machine: &mut Machine,
        ledgers: &mut Ledgers,
        node: NodeId,
        bucket: usize,
        rec: &[u8],
    ) {
        let cost = machine.cfg.cost.clone();
        cost.charge(&mut ledgers[node], cost.store_tuple_us);
        self.writers[node][bucket - 1]
            .as_mut()
            .expect("bucket closed")
            .push(
                machine.volumes[node].as_mut().unwrap(),
                machine.pools[node].as_mut().unwrap(),
                &mut ledgers[node],
                rec,
            );
    }

    /// Close all writers; returns `files[disk_node][bucket-1]`.
    fn finish(self, machine: &mut Machine, ledgers: &mut Ledgers) -> Vec<Vec<FileId>> {
        self.writers
            .into_iter()
            .enumerate()
            .map(|(n, ws)| {
                ws.into_iter()
                    .map(|w| {
                        w.unwrap().finish(
                            machine.volumes[n].as_mut().unwrap(),
                            machine.pools[n].as_mut().unwrap(),
                            &mut ledgers[n],
                        )
                    })
                    .collect()
            })
            .collect()
    }
}

/// Per-bucket filters used when filtering extends to bucket-forming (the
/// §4.2/§5 proposal): `Build` sets a bit for every spooled inner tuple,
/// `Test` drops outer tuples whose bucket filter misses — before any spool
/// I/O is spent on them.
pub(super) enum FormFilters<'a> {
    /// Bucket-forming filters off.
    Off,
    /// Building from the inner relation.
    Build(&'a mut [BitFilter]),
    /// Testing the outer relation.
    Test(&'a [BitFilter]),
}

/// One packet-sized filter per bucket (indices 0..buckets map buckets
/// 1..=buckets).
pub(super) fn bucket_filters(machine: &Machine, buckets: usize, salt: u64) -> Vec<BitFilter> {
    let bits = machine.cfg.cost.filter_packet_bytes * 8;
    (0..buckets)
        .map(|b| BitFilter::new(bits, salt.wrapping_add(0xBF00 + b as u64)))
        .collect()
}

/// Bucket-form one relation (phase 1 for R, phase 2 for S). Returns the
/// bucket fragment files.
#[allow(clippy::too_many_arguments)]
fn bucket_form(
    machine: &mut Machine,
    phases: &mut Vec<PhaseRecord>,
    part: &PartitioningSplitTable,
    fragments: &[FileId],
    attr: crate::tuple::Attr,
    pred: Option<super::common::RangePred>,
    buckets: usize,
    label: &str,
    mut form_filters: FormFilters<'_>,
) -> Vec<Vec<FileId>> {
    let cost = machine.cfg.cost.clone();
    let disk_nodes = machine.disk_nodes();
    let mut files = BucketFiles::new(machine, buckets);
    let mut ledgers = machine.ledgers();
    if let FormFilters::Test(filters) = &form_filters {
        // The per-bucket filter packets were broadcast to the scanning
        // nodes after the inner relation's bucket-forming completed.
        for &n in &disk_nodes {
            machine.fabric.scheduler_control(
                &mut ledgers[n],
                n,
                cost.filter_packet_bytes * filters.len() as u64,
            );
        }
    }
    for &node in &disk_nodes {
        let recs = scan_fragment(machine, &mut ledgers, node, fragments[node], pred);
        for rec in recs {
            cost.charge(&mut ledgers[node], cost.hash_us + cost.route_us);
            let val = attr.get(&rec);
            let h = hash_u32(JOIN_SEED, val);
            match part.route(h) {
                Route::Spool { node: dst, bucket } => {
                    match &mut form_filters {
                        FormFilters::Build(filters) => {
                            cost.charge(&mut ledgers[node], cost.filter_set_us);
                            filters[bucket - 1].set(val);
                        }
                        FormFilters::Test(filters) => {
                            cost.charge(&mut ledgers[node], cost.filter_test_us);
                            if !filters[bucket - 1].test(val) {
                                ledgers[node].counts.filter_drops += 1;
                                continue;
                            }
                        }
                        FormFilters::Off => {}
                    }
                    machine
                        .fabric
                        .send_tuple(&mut ledgers, node, dst, rec.len() as u64);
                    files.push(machine, &mut ledgers, dst, bucket, &rec);
                }
                Route::Join { .. } => unreachable!("grace tables never route to join"),
            }
        }
    }
    machine.fabric.flush(&mut ledgers);
    let out = files.finish(machine, &mut ledgers);
    let table_bytes = cost.split_table_bytes(part.entries());
    let sched = dispatch_overhead(machine, &mut ledgers, &disk_nodes, table_bytes);
    phases.push(PhaseRecord::new(label, ledgers, sched));
    out
}

/// Join bucket `b` (1-based): build from the R fragments, probe with the S
/// fragments, resolve any overflow, free the bucket files. Shared with the
/// Hybrid driver for its buckets 2..N.
#[allow(clippy::too_many_arguments)]
pub(super) fn join_bucket(
    machine: &mut Machine,
    rz: &Resolved,
    phases: &mut Vec<PhaseRecord>,
    sink: &mut ResultSink,
    r_files: &[FileId],
    s_files: &[FileId],
    b: usize,
    salt: u64,
) -> (u32, bool) {
    let r_group: Vec<Vec<FileId>> = r_files.iter().map(|&f| vec![f]).collect();
    let s_group: Vec<Vec<FileId>> = s_files.iter().map(|&f| vec![f]).collect();
    join_bucket_group(
        machine,
        rz,
        phases,
        sink,
        &r_group,
        &s_group,
        &b.to_string(),
        salt.wrapping_add(b as u64),
    )
}

/// Join one *group* of buckets (bucket tuning combines several small
/// buckets into a memory-sized round): `r_group[node]` lists the R bucket
/// fragments at that node, likewise `s_group`.
#[allow(clippy::too_many_arguments)]
pub(super) fn join_bucket_group(
    machine: &mut Machine,
    rz: &Resolved,
    phases: &mut Vec<PhaseRecord>,
    sink: &mut ResultSink,
    r_group: &[Vec<FileId>],
    s_group: &[Vec<FileId>],
    label: &str,
    salt: u64,
) -> (u32, bool) {
    let cost = machine.cfg.cost.clone();
    let jt = JoiningSplitTable::new(rz.join_nodes.clone());
    let table_bytes = cost.split_table_bytes(jt.entries());
    let disk_nodes = machine.disk_nodes();
    let mut set = SiteSet::new(
        machine,
        &rz.join_nodes,
        rz.capacity_per_site,
        rz.r_tuple_bytes,
        0,
        rz.filter_bits,
        salt,
    );

    // A group label is "3" or "1..4"; the leading bucket number stands for
    // the group in trace events.
    #[cfg(feature = "trace")]
    let bucket_no: u16 = label
        .split("..")
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);

    // ---- build ----
    let mut ledgers = machine.ledgers();
    #[cfg(feature = "trace")]
    gamma_trace::emit(
        rz.join_nodes[0] as u16,
        0,
        gamma_trace::EventKind::BucketOpen { bucket: bucket_no },
    );
    for &node in &disk_nodes {
        let files = r_group[node].clone();
        for file in files {
            let recs = scan_fragment(machine, &mut ledgers, node, file, None);
            for rec in recs {
                let val = rz.r_attr.get(&rec);
                cost.charge(&mut ledgers[node], cost.hash_us + cost.route_us);
                let i = jt.site_index(hash_u32(JOIN_SEED, val));
                machine
                    .fabric
                    .send_tuple(&mut ledgers, node, rz.join_nodes[i], rec.len() as u64);
                set.deliver_build(machine, &mut ledgers, i, val, rec);
            }
        }
    }
    machine.fabric.flush(&mut ledgers);
    let mut sched = dispatch_overhead(machine, &mut ledgers, &disk_nodes, table_bytes);
    sched += dispatch_overhead(machine, &mut ledgers, &rz.join_nodes, table_bytes);
    phases.push(PhaseRecord::new(
        format!("build bucket {label}"),
        ledgers,
        sched,
    ));

    // ---- probe ----
    let mut ledgers = machine.ledgers();
    broadcast_filters(machine, &mut ledgers, &set);
    for &node in &disk_nodes {
        let files = s_group[node].clone();
        for file in files {
            let recs = scan_fragment(machine, &mut ledgers, node, file, None);
            for rec in recs {
                let val = rz.s_attr.get(&rec);
                cost.charge(&mut ledgers[node], cost.hash_us + cost.route_us);
                let i = jt.site_index(hash_u32(JOIN_SEED, val));
                // Filter before the overflow check: the site's filter covers
                // every inner tuple that arrived there (bits are set on
                // arrival, before residency is decided), so eliminating an
                // overflow-bound outer tuple here is safe and saves its spool
                // I/O and every later re-read (§4.2).
                if set.filter_drops(machine, &mut ledgers, node, i, val) {
                    // dropped at the source
                } else if set.outer_diverts(i, val) {
                    set.spool_outer(machine, &mut ledgers, node, i, &rec);
                } else {
                    machine.fabric.send_tuple(
                        &mut ledgers,
                        node,
                        rz.join_nodes[i],
                        rec.len() as u64,
                    );
                    set.deliver_probe(machine, &mut ledgers, i, val, &rec, sink);
                }
            }
        }
    }
    machine.fabric.flush(&mut ledgers);
    let pairs = set.take_overflows(machine, &mut ledgers);
    let sched = dispatch_overhead(machine, &mut ledgers, &disk_nodes, table_bytes);
    #[cfg(feature = "trace")]
    gamma_trace::emit(
        rz.join_nodes[0] as u16,
        ledgers[rz.join_nodes[0]].total_demand().as_us(),
        gamma_trace::EventKind::BucketClose { bucket: bucket_no },
    );
    phases.push(PhaseRecord::new(
        format!("probe bucket {label}"),
        ledgers,
        sched,
    ));

    // ---- overflow (possible under skew; Grace normally sizes buckets to
    // avoid it) ----
    let env = OverflowEnv {
        join_nodes: &rz.join_nodes,
        capacity_per_site: rz.capacity_per_site,
        tuple_bytes: rz.r_tuple_bytes,
        r_attr: rz.r_attr,
        s_attr: rz.s_attr,
        filter_bits: rz.filter_bits,
        filter_salt: salt.wrapping_add(0x77),
    };
    let stats = resolve_overflows(
        machine,
        &env,
        pairs,
        1,
        sink,
        phases,
        &format!("bucket {label} "),
    );

    for &node in &disk_nodes {
        for &f in &r_group[node] {
            delete_file(machine, node, f);
        }
        for &f in &s_group[node] {
            delete_file(machine, node, f);
        }
    }
    (stats.passes, stats.bnl_fallback)
}

/// Bucket tuning \[KITS83\]: combine consecutive small buckets into groups
/// whose *measured* inner size fits the aggregate join memory. Returns the
/// groups as lists of 1-based bucket numbers.
pub(super) fn tune_buckets(
    machine: &Machine,
    rz: &Resolved,
    r_files: &[Vec<FileId>],
    buckets: usize,
) -> Vec<Vec<usize>> {
    // Pack to ~80% of the aggregate table capacity: hash-distribution
    // variance across sites must still fit each site's table.
    let memory = rz.capacity_per_site * rz.join_nodes.len() as u64 * 80 / 100;
    // Measured R bytes per bucket across all fragments.
    let size_of = |b: usize| -> u64 {
        (0..machine.cfg.disk_nodes)
            .map(|n| {
                machine.volumes[n]
                    .as_ref()
                    .unwrap()
                    .file_records(r_files[n][b - 1]) as u64
                    * rz.r_tuple_bytes
            })
            .sum()
    };
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut cur: Vec<usize> = Vec::new();
    let mut cur_bytes = 0u64;
    for b in 1..=buckets {
        let sz = size_of(b);
        if !cur.is_empty() && cur_bytes + sz > memory {
            groups.push(std::mem::take(&mut cur));
            cur_bytes = 0;
        }
        cur.push(b);
        cur_bytes += sz;
    }
    if !cur.is_empty() {
        groups.push(cur);
    }
    groups
}

/// Execute a Grace hash-join.
pub fn run(machine: &mut Machine, rz: &Resolved) -> DriverOutput {
    let buckets = rz.buckets;
    let disk_nodes = machine.disk_nodes();
    let part = PartitioningSplitTable::grace(&disk_nodes, buckets);
    let mut phases = Vec::new();
    let mut sink = ResultSink::new(machine);

    // Phases 1+2: bucket-form both relations (everything goes to disk).
    // With the §4.2/§5 extension on, per-bucket filters built from R kill
    // non-joining S tuples before they are ever spooled.
    let mut form = rz
        .filter_bucket_forming
        .then(|| bucket_filters(machine, buckets, GRACE_SALT));
    let r_files = bucket_form(
        machine,
        &mut phases,
        &part,
        &rz.r_fragments,
        rz.r_attr,
        rz.r_pred,
        buckets,
        "bucket-form R",
        match &mut form {
            Some(f) => FormFilters::Build(f),
            None => FormFilters::Off,
        },
    );
    let s_files = bucket_form(
        machine,
        &mut phases,
        &part,
        &rz.s_fragments,
        rz.s_attr,
        rz.s_pred,
        buckets,
        "bucket-form S",
        match &form {
            Some(f) => FormFilters::Test(f),
            None => FormFilters::Off,
        },
    );

    // Phase 3: join the buckets consecutively — grouped by measured size
    // when bucket tuning is on, one bucket per round otherwise.
    let groups: Vec<Vec<usize>> = if rz.bucket_tuning {
        tune_buckets(machine, rz, &r_files, buckets)
    } else {
        (1..=buckets).map(|b| vec![b]).collect()
    };
    let mut overflow_passes = 0;
    let mut bnl = false;
    for group in &groups {
        let r_g: Vec<Vec<FileId>> = (0..disk_nodes.len())
            .map(|n| group.iter().map(|&b| r_files[n][b - 1]).collect())
            .collect();
        let s_g: Vec<Vec<FileId>> = (0..disk_nodes.len())
            .map(|n| group.iter().map(|&b| s_files[n][b - 1]).collect())
            .collect();
        let label = if group.len() == 1 {
            group[0].to_string()
        } else {
            format!("{}..{}", group[0], group[group.len() - 1])
        };
        let (p, f) = join_bucket_group(
            machine,
            rz,
            &mut phases,
            &mut sink,
            &r_g,
            &s_g,
            &label,
            GRACE_SALT.wrapping_add(group[0] as u64),
        );
        overflow_passes += p;
        bnl |= f;
    }

    let last = phases.last_mut().expect("phases exist");
    let result = sink.finish(machine, &mut last.ledgers);
    DriverOutput {
        phases,
        result,
        buckets,
        overflow_passes,
        bnl_fallback: bnl,
    }
}
