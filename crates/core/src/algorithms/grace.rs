//! Parallel Grace hash-join (§3.3).
//!
//! Bucket-forming is completely separated from bucket-joining: both source
//! relations are hashed into `N` logical buckets, each bucket horizontally
//! partitioned across every disk node through the bucket-major partitioning
//! split table of Appendix A. Both relations are therefore written back to
//! disk in full before any joining starts — the reason Grace's curve is
//! nearly flat in memory and why extra buckets cost only scheduling
//! overhead. Each bucket is then joined Grace-style: build hash tables at
//! the join sites, probe, with per-bucket bit filters.

use gamma_wiss::FileId;

use crate::batch::TupleBatch;
use crate::bitfilter::BitFilter;
use crate::exec::control::{broadcast_filters, dispatch_overhead};
use crate::exec::hash::{
    resolve_overflows, resolve_overflows_robust, restore_spills, tag, take_overflows, Consumers,
    OverflowEnv, TAG_BUCKET, TAG_BUILD, TAG_PROBE, TAG_SPOOL_S,
};
use crate::exec::{self, run_step, scan};
use crate::hash::{hash_u32, JOIN_SEED};
use crate::machine::{Machine, ResultSink};
use crate::report::{DriverOutput, PhaseRecord};
use crate::split::{JoiningSplitTable, PartitioningSplitTable, RefineCfg, Route};

use super::common::Resolved;

/// Filter-salt namespace for Grace.
const GRACE_SALT: u64 = 0x6A;

/// Per-bucket filters used when filtering extends to bucket-forming (the
/// §4.2/§5 proposal): `Build` sets a bit for every spooled inner tuple,
/// `Test` drops outer tuples whose bucket filter misses — before any spool
/// I/O is spent on them.
pub(super) enum FormFilters<'a> {
    /// Bucket-forming filters off.
    Off,
    /// Building from the inner relation.
    Build(&'a mut [BitFilter]),
    /// Testing the outer relation.
    Test(&'a [BitFilter]),
}

/// One packet-sized filter per bucket (indices 0..buckets map buckets
/// 1..=buckets).
pub(super) fn bucket_filters(machine: &Machine, buckets: usize, salt: u64) -> Vec<BitFilter> {
    let bits = machine.cfg.cost.filter_packet_bytes * 8;
    (0..buckets)
        .map(|b| BitFilter::new(bits, salt.wrapping_add(0xBF00 + b as u64)))
        .collect()
}

/// Bucket-form one relation (phase 1 for R, phase 2 for S). Returns the
/// bucket fragment files, `files[disk_node][bucket-1]`.
#[allow(clippy::too_many_arguments)]
fn bucket_form(
    machine: &mut Machine,
    phases: &mut Vec<PhaseRecord>,
    sink: &mut ResultSink,
    part: &mut PartitioningSplitTable,
    fragments: &[FileId],
    attr: crate::tuple::Attr,
    pred: Option<super::common::RangePred>,
    buckets: usize,
    label: &str,
    mut form_filters: FormFilters<'_>,
    refine: bool,
) -> Vec<Vec<FileId>> {
    let disk_nodes = machine.disk_nodes();
    let mut consumers = Consumers::new(machine);
    consumers.open_buckets(machine, 1, buckets);
    let mut ledgers = machine.ledgers();
    let test_filters: Option<&[BitFilter]> = match &form_filters {
        FormFilters::Test(f) => Some(f),
        _ => None,
    };
    if let Some(filters) = test_filters {
        // The per-bucket filter packets were broadcast to the scanning
        // nodes after the inner relation's bucket-forming completed.
        let bytes = machine.cfg.cost.filter_packet_bytes * filters.len() as u64;
        for &n in &disk_nodes {
            machine.fabric.scheduler_control(&mut ledgers[n], n, bytes);
        }
    }
    // Building producers each fill a private filter shard; the shards are
    // OR-folded below (commutative, so worker scheduling cannot matter).
    let shard_proto: Option<Vec<BitFilter>> = match &form_filters {
        FormFilters::Build(f) => Some(f.to_vec()),
        _ => None,
    };
    if refine {
        // ---- Wave A: sample. Scan and hash every tuple, build a
        // per-split-table-entry histogram, and hold the records on the scan
        // node so wave B can route them without a second disk pass. ----
        let e = part.entries();
        type SampleState = (FileId, TupleBatch, Vec<(u32, u64)>, Vec<u64>);
        // Held tuples + their (value, hash) pairs + this node's filter shards.
        type RouteState = (TupleBatch, Vec<(u32, u64)>, Option<Vec<BitFilter>>);
        let mut sample_states: Vec<SampleState> = disk_nodes
            .iter()
            .map(|&n| (fragments[n], TupleBatch::new(), Vec::new(), vec![0u64; e]))
            .collect();
        run_step(
            machine,
            &mut ledgers,
            "sample",
            &disk_nodes,
            &mut sample_states,
            |ctx, (file, recs, hashed, hist)| {
                *recs = scan::scan_fragment(ctx, *file, pred);
                *hashed = ctx.par_map_batch(recs, |rec| {
                    let val = attr.get(rec);
                    (val, hash_u32(JOIN_SEED, val))
                });
                for (_, h) in hashed.iter() {
                    ctx.charge(ctx.cost.hash_us + ctx.cost.histogram_update_us);
                    hist[(*h % e as u64) as usize] += 1;
                }
            },
        );
        let mut hist = vec![0u64; e];
        for (_, _, _, local) in &sample_states {
            for (m, v) in hist.iter_mut().zip(local) {
                *m += v;
            }
        }
        if let Some(refined) = part.refine(&hist, &RefineCfg::default()) {
            // The scheduler re-broadcasts the larger refined table to every
            // producer before any tuple moves.
            let bytes = machine.cfg.cost.split_table_bytes(refined.entries());
            for &n in &disk_nodes {
                machine.fabric.scheduler_control(&mut ledgers[n], n, bytes);
            }
            *part = refined;
        }
        // ---- Wave B: route the held records through the (possibly
        // refined) table. Hashes were computed in wave A. ----
        let mut route_states: Vec<RouteState> = sample_states
            .into_iter()
            .map(|(_, recs, hashed, _)| (recs, hashed, shard_proto.clone()))
            .collect();
        {
            let part = &*part;
            run_step(
                machine,
                &mut ledgers,
                "bucket-form",
                &disk_nodes,
                &mut route_states,
                |ctx, (recs, hashed, shard)| {
                    let batch = std::mem::take(recs);
                    for (rec, (val, h)) in batch.iter().zip(hashed.iter()) {
                        ctx.charge(ctx.cost.route_us);
                        match part.route(*h) {
                            Route::Spool { node: dst, bucket } => {
                                if let Some(shard) = shard {
                                    ctx.charge(ctx.cost.filter_set_us);
                                    shard[bucket - 1].set(*val);
                                } else if let Some(filters) = test_filters {
                                    ctx.charge(ctx.cost.filter_test_us);
                                    if !filters[bucket - 1].test(*val) {
                                        ctx.ledger.counts.filter_drops += 1;
                                        #[cfg(feature = "metrics")]
                                        gamma_metrics::counter_add(
                                            "filter_drops",
                                            ctx.node as u16,
                                            "forming",
                                            1,
                                        );
                                        continue;
                                    }
                                }
                                ctx.send(dst, tag(TAG_BUCKET, bucket), rec);
                            }
                            Route::Join { .. } => {
                                unreachable!("grace tables never route to join")
                            }
                        }
                    }
                },
            );
        }
        if let FormFilters::Build(main) = &mut form_filters {
            for (_, _, shard) in &route_states {
                for (m, s) in main.iter_mut().zip(shard.as_ref().expect("build shard")) {
                    m.or_with(s);
                }
            }
        }
    } else {
        let mut states: Vec<(FileId, Option<Vec<BitFilter>>)> = disk_nodes
            .iter()
            .map(|&n| (fragments[n], shard_proto.clone()))
            .collect();
        {
            let part = &*part;
            run_step(
                machine,
                &mut ledgers,
                "bucket-form",
                &disk_nodes,
                &mut states,
                |ctx, (file, shard)| {
                    let recs = scan::scan_fragment(ctx, *file, pred);
                    // Pure per-tuple routing, chunked on the pool; charges,
                    // filter updates and sends replay in record order below.
                    let routed = ctx.par_map_batch(&recs, |rec| {
                        let val = attr.get(rec);
                        (val, part.route(hash_u32(JOIN_SEED, val)))
                    });
                    for (rec, (val, route)) in recs.iter().zip(routed) {
                        ctx.charge(ctx.cost.hash_us + ctx.cost.route_us);
                        match route {
                            Route::Spool { node: dst, bucket } => {
                                if let Some(shard) = shard {
                                    ctx.charge(ctx.cost.filter_set_us);
                                    shard[bucket - 1].set(val);
                                } else if let Some(filters) = test_filters {
                                    ctx.charge(ctx.cost.filter_test_us);
                                    if !filters[bucket - 1].test(val) {
                                        ctx.ledger.counts.filter_drops += 1;
                                        #[cfg(feature = "metrics")]
                                        gamma_metrics::counter_add(
                                            "filter_drops",
                                            ctx.node as u16,
                                            "forming",
                                            1,
                                        );
                                        continue;
                                    }
                                }
                                ctx.send(dst, tag(TAG_BUCKET, bucket), rec);
                            }
                            Route::Join { .. } => {
                                unreachable!("grace tables never route to join")
                            }
                        }
                    }
                },
            );
        }
        if let FormFilters::Build(main) = &mut form_filters {
            for (_, shard) in &states {
                for (m, s) in main.iter_mut().zip(shard.as_ref().expect("build shard")) {
                    m.or_with(s);
                }
            }
        }
    }
    consumers.settle(machine, &mut ledgers, sink);
    let out = consumers.close_buckets(machine, &mut ledgers);
    let table_bytes = machine.cfg.cost.split_table_bytes(part.entries());
    let sched = dispatch_overhead(machine, &mut ledgers, &disk_nodes, table_bytes);
    phases.push(PhaseRecord::new(label, ledgers, sched));
    out
}

/// Join bucket `b` (1-based): build from the R fragments, probe with the S
/// fragments, resolve any overflow, free the bucket files. Shared with the
/// Hybrid driver for its buckets 2..N.
#[allow(clippy::too_many_arguments)]
pub(super) fn join_bucket(
    machine: &mut Machine,
    rz: &Resolved,
    phases: &mut Vec<PhaseRecord>,
    sink: &mut ResultSink,
    r_files: &[FileId],
    s_files: &[FileId],
    b: usize,
    salt: u64,
) -> (u32, bool) {
    let r_group: Vec<Vec<FileId>> = r_files.iter().map(|&f| vec![f]).collect();
    let s_group: Vec<Vec<FileId>> = s_files.iter().map(|&f| vec![f]).collect();
    join_bucket_group(
        machine,
        rz,
        phases,
        sink,
        &r_group,
        &s_group,
        &b.to_string(),
        salt.wrapping_add(b as u64),
    )
}

/// Join one *group* of buckets (bucket tuning combines several small
/// buckets into a memory-sized round): `r_group[node]` lists the R bucket
/// fragments at that node, likewise `s_group`.
#[allow(clippy::too_many_arguments)]
pub(super) fn join_bucket_group(
    machine: &mut Machine,
    rz: &Resolved,
    phases: &mut Vec<PhaseRecord>,
    sink: &mut ResultSink,
    r_group: &[Vec<FileId>],
    s_group: &[Vec<FileId>],
    label: &str,
    salt: u64,
) -> (u32, bool) {
    let jt = JoiningSplitTable::new(rz.join_nodes.clone());
    let table_bytes = machine.cfg.cost.split_table_bytes(jt.entries());
    let disk_nodes = machine.disk_nodes();
    let mut consumers = Consumers::new(machine);
    let sites = consumers.install_sites(
        machine,
        &rz.join_nodes,
        rz.capacity_per_site,
        rz.r_tuple_bytes,
        0,
        rz.filter_bits,
        salt,
        rz.r_attr,
        rz.s_attr,
    );

    // A group label is "3" or "1..4"; the leading bucket number stands for
    // the group in trace events.
    #[cfg(feature = "trace")]
    let bucket_no: u16 = label
        .split("..")
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);

    // ---- build ----
    let mut ledgers = machine.ledgers();
    #[cfg(feature = "trace")]
    gamma_trace::emit(
        rz.join_nodes[0] as u16,
        0,
        gamma_trace::EventKind::BucketOpen { bucket: bucket_no },
    );
    let mut r_states: Vec<Vec<FileId>> = disk_nodes.iter().map(|&n| r_group[n].clone()).collect();
    {
        let jt = &jt;
        run_step(
            machine,
            &mut ledgers,
            "build bucket",
            &disk_nodes,
            &mut r_states,
            |ctx, files| {
                for &file in files.iter() {
                    let recs = scan::scan_fragment(ctx, file, None);
                    let routed = ctx.par_map_batch(&recs, |rec| {
                        jt.site_index(hash_u32(JOIN_SEED, rz.r_attr.get(rec)))
                    });
                    for (rec, i) in recs.iter().zip(routed) {
                        ctx.charge(ctx.cost.hash_us + ctx.cost.route_us);
                        ctx.send(rz.join_nodes[i], tag(TAG_BUILD, i), rec);
                    }
                }
            },
        );
    }
    consumers.settle(machine, &mut ledgers, sink);
    if rz.dynamic_spill {
        // The build side has settled: read each overflowed site's R' spool
        // back, raise its table cutoff as far as the freed slack allows,
        // and re-admit the restorable band. Only the residue stays spilled.
        restore_spills(machine, &mut ledgers, &mut consumers, &sites, sink);
    }
    let mut sched = dispatch_overhead(machine, &mut ledgers, &disk_nodes, table_bytes);
    sched += dispatch_overhead(machine, &mut ledgers, &rz.join_nodes, table_bytes);
    phases.push(PhaseRecord::new(
        format!("build bucket {label}"),
        ledgers,
        sched,
    ));

    // ---- probe ----
    let mut ledgers = machine.ledgers();
    broadcast_filters(machine, &mut ledgers, &sites);
    let snap = consumers.probe_snapshot(&sites);
    let mut s_states: Vec<Vec<FileId>> = disk_nodes.iter().map(|&n| s_group[n].clone()).collect();
    {
        let jt = &jt;
        let sites = &sites;
        let snap = &snap;
        run_step(
            machine,
            &mut ledgers,
            "probe bucket",
            &disk_nodes,
            &mut s_states,
            |ctx, files| {
                for &file in files.iter() {
                    let recs = scan::scan_fragment(ctx, file, None);
                    let routed = ctx.par_map_batch(&recs, |rec| {
                        let val = rz.s_attr.get(rec);
                        (val, jt.site_index(hash_u32(JOIN_SEED, val)))
                    });
                    for (rec, (val, i)) in recs.iter().zip(routed) {
                        ctx.charge(ctx.cost.hash_us + ctx.cost.route_us);
                        // Filter before the overflow check: the site's filter
                        // covers every inner tuple that arrived there (bits
                        // are set on arrival, before residency is decided), so
                        // eliminating an overflow-bound outer tuple here is
                        // safe and saves its spool I/O and every later re-read
                        // (§4.2).
                        if snap.filter_drops(ctx, i, val) {
                            // dropped at the source
                        } else if snap.outer_diverts(i, val) {
                            ctx.send(sites.home(i), tag(TAG_SPOOL_S, i), rec);
                        } else {
                            ctx.send(rz.join_nodes[i], tag(TAG_PROBE, i), rec);
                        }
                    }
                }
            },
        );
    }
    consumers.settle(machine, &mut ledgers, sink);
    let pairs = take_overflows(machine, &mut ledgers, &mut consumers, &sites);
    let sched = dispatch_overhead(machine, &mut ledgers, &disk_nodes, table_bytes);
    #[cfg(feature = "trace")]
    gamma_trace::emit(
        rz.join_nodes[0] as u16,
        ledgers[rz.join_nodes[0]].total_demand().as_us(),
        gamma_trace::EventKind::BucketClose { bucket: bucket_no },
    );
    phases.push(PhaseRecord::new(
        format!("probe bucket {label}"),
        ledgers,
        sched,
    ));

    // ---- overflow (possible under skew; Grace normally sizes buckets to
    // avoid it) ----
    let env = OverflowEnv {
        join_nodes: &rz.join_nodes,
        capacity_per_site: rz.capacity_per_site,
        tuple_bytes: rz.r_tuple_bytes,
        r_attr: rz.r_attr,
        s_attr: rz.s_attr,
        filter_bits: rz.filter_bits,
        filter_salt: salt.wrapping_add(0x77),
    };
    let stats = if rz.dynamic_spill {
        resolve_overflows_robust(
            machine,
            &env,
            pairs,
            sink,
            phases,
            &format!("bucket {label} "),
        )
    } else {
        resolve_overflows(
            machine,
            &env,
            pairs,
            1,
            sink,
            phases,
            &format!("bucket {label} "),
        )
    };

    for &node in &disk_nodes {
        for &f in &r_group[node] {
            exec::delete_file(machine, node, f);
        }
        for &f in &s_group[node] {
            exec::delete_file(machine, node, f);
        }
    }
    (stats.passes, stats.bnl_fallback)
}

/// Bucket tuning \[KITS83\]: combine consecutive small buckets into groups
/// whose *measured* inner size fits the aggregate join memory. Returns the
/// groups as lists of 1-based bucket numbers.
pub(super) fn tune_buckets(
    machine: &Machine,
    rz: &Resolved,
    r_files: &[Vec<FileId>],
    buckets: usize,
) -> Vec<Vec<usize>> {
    // Pack to ~80% of the aggregate table capacity: hash-distribution
    // variance across sites must still fit each site's table.
    let memory = rz.capacity_per_site * rz.join_nodes.len() as u64 * 80 / 100;
    // Measured R bytes per bucket across all fragments.
    let size_of = |b: usize| -> u64 {
        (0..machine.cfg.disk_nodes)
            .map(|n| {
                machine.nodes[n].vol().file_records(r_files[n][b - 1]) as u64 * rz.r_tuple_bytes
            })
            .sum()
    };
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut cur: Vec<usize> = Vec::new();
    let mut cur_bytes = 0u64;
    for b in 1..=buckets {
        let sz = size_of(b);
        if !cur.is_empty() && cur_bytes + sz > memory {
            groups.push(std::mem::take(&mut cur));
            cur_bytes = 0;
        }
        cur.push(b);
        cur_bytes += sz;
    }
    if !cur.is_empty() {
        groups.push(cur);
    }
    groups
}

/// Execute a Grace hash-join.
pub fn run(machine: &mut Machine, rz: &Resolved) -> DriverOutput {
    let buckets = rz.buckets;
    let disk_nodes = machine.disk_nodes();
    let mut part = PartitioningSplitTable::grace(&disk_nodes, buckets);
    let mut phases = Vec::new();
    let mut sink = ResultSink::new(machine);

    // Phases 1+2: bucket-form both relations (everything goes to disk).
    // With the §4.2/§5 extension on, per-bucket filters built from R kill
    // non-joining S tuples before they are ever spooled.
    let mut form = rz
        .filter_bucket_forming
        .then(|| bucket_filters(machine, buckets, GRACE_SALT));
    // Refinement samples only the inner relation's distribution; the S
    // pass then routes through the same (possibly refined) table so
    // matching tuples stay co-located.
    let r_files = bucket_form(
        machine,
        &mut phases,
        &mut sink,
        &mut part,
        &rz.r_fragments,
        rz.r_attr,
        rz.r_pred,
        buckets,
        "bucket-form R",
        match &mut form {
            Some(f) => FormFilters::Build(f),
            None => FormFilters::Off,
        },
        rz.skew_refinement,
    );
    let s_files = bucket_form(
        machine,
        &mut phases,
        &mut sink,
        &mut part,
        &rz.s_fragments,
        rz.s_attr,
        rz.s_pred,
        buckets,
        "bucket-form S",
        match &form {
            Some(f) => FormFilters::Test(f),
            None => FormFilters::Off,
        },
        false,
    );

    // Phase 3: join the buckets consecutively — grouped by measured size
    // when bucket tuning is on, one bucket per round otherwise.
    let groups: Vec<Vec<usize>> = if rz.bucket_tuning {
        tune_buckets(machine, rz, &r_files, buckets)
    } else {
        (1..=buckets).map(|b| vec![b]).collect()
    };
    let mut overflow_passes = 0;
    let mut bnl = false;
    for group in &groups {
        let r_g: Vec<Vec<FileId>> = (0..disk_nodes.len())
            .map(|n| group.iter().map(|&b| r_files[n][b - 1]).collect())
            .collect();
        let s_g: Vec<Vec<FileId>> = (0..disk_nodes.len())
            .map(|n| group.iter().map(|&b| s_files[n][b - 1]).collect())
            .collect();
        let label = if group.len() == 1 {
            group[0].to_string()
        } else {
            format!("{}..{}", group[0], group[group.len() - 1])
        };
        let (p, f) = join_bucket_group(
            machine,
            rz,
            &mut phases,
            &mut sink,
            &r_g,
            &s_g,
            &label,
            GRACE_SALT.wrapping_add(group[0] as u64),
        );
        overflow_passes += p;
        bnl |= f;
    }

    let last = phases.last_mut().expect("phases exist");
    let result = sink.finish(machine, &mut last.ledgers);
    // The store's final page flushes landed after the phase sealed;
    // refresh the queue-wait annotation so the recorded waits cover the
    // final request log (replay drains the same log when timing the phase).
    for u in last.ledgers.iter_mut() {
        u.annotate_queue_waits();
    }
    DriverOutput {
        phases,
        result,
        buckets,
        overflow_passes,
        bnl_fallback: bnl,
    }
}
