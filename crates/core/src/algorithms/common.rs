//! Shared driver plumbing: the resolved execution plan.

use gamma_wiss::FileId;

use crate::machine::NodeId;
use crate::tuple::Attr;

/// An inclusive range predicate on an integer attribute — the selection
/// shape of the Wisconsin benchmark queries (`joinAselB` etc.).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangePred {
    /// Attribute the predicate applies to.
    pub attr: Attr,
    /// Lower bound, inclusive.
    pub lo: u32,
    /// Upper bound, inclusive.
    pub hi: u32,
}

impl RangePred {
    /// Evaluate against a tuple.
    #[inline]
    pub fn eval(&self, tuple: &[u8]) -> bool {
        let v = self.attr.get(tuple);
        self.lo <= v && v <= self.hi
    }
}

/// Everything a driver needs, resolved from the user-facing `JoinSpec` by
/// `query::run_join`.
#[derive(Debug, Clone)]
pub struct Resolved {
    /// Join processors (disk nodes for "local", diskless for "remote").
    pub join_nodes: Vec<NodeId>,
    /// Bucket count for Grace/Hybrid (1 for Simple/Sort-Merge).
    pub buckets: usize,
    /// Hash-table bytes per join site (sort/merge bytes per node for
    /// sort-merge).
    pub capacity_per_site: u64,
    /// Inner-relation fragments, indexed by disk node.
    pub r_fragments: Vec<FileId>,
    /// Outer-relation fragments, indexed by disk node.
    pub s_fragments: Vec<FileId>,
    /// Inner join attribute.
    pub r_attr: Attr,
    /// Outer join attribute.
    pub s_attr: Attr,
    /// Inner tuple width in bytes.
    pub r_tuple_bytes: u64,
    /// Outer tuple width in bytes.
    pub s_tuple_bytes: u64,
    /// Bits per site when bit filtering is on.
    pub filter_bits: Option<u64>,
    /// Extend filtering to the Grace/Hybrid bucket-forming phases — the
    /// improvement §4.2/§5 propose but Gamma had not implemented: one
    /// packet-sized filter per bucket is built while R is bucket-formed
    /// and applied while S is, so filtered tuples are never spooled.
    pub filter_bucket_forming: bool,
    /// Grace bucket tuning: `buckets` counts the small buckets; the driver
    /// combines them into memory-sized join rounds by measured size.
    pub bucket_tuning: bool,
    /// Optional selection on the inner relation, applied during its scan.
    pub r_pred: Option<RangePred>,
    /// Optional selection on the outer relation.
    pub s_pred: Option<RangePred>,
    /// Skew-aware split-table refinement: sample the inner relation's hash
    /// distribution during partitioning and split overloaded split-table
    /// entries across sites before any tuple moves.
    pub skew_refinement: bool,
    /// Robust dynamic overflow handling: restore spilled build tuples into
    /// table slack after the build settles, and join residual spill pairs
    /// locally instead of re-spraying the whole overflow globally.
    pub dynamic_spill: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::{Field, Schema};

    #[test]
    fn range_pred_is_inclusive() {
        let s = Schema::new(vec![Field::Int("k".into())]);
        let attr = s.int_attr("k");
        let p = RangePred {
            attr,
            lo: 5,
            hi: 10,
        };
        let mk = |v: u32| v.to_le_bytes().to_vec();
        assert!(!p.eval(&mk(4)));
        assert!(p.eval(&mk(5)));
        assert!(p.eval(&mk(10)));
        assert!(!p.eval(&mk(11)));
    }
}
