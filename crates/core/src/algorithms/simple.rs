//! Parallel Simple hash-join (§3.2).
//!
//! The inner relation streams through a joining split table straight into
//! in-memory hash tables at the join sites; overflow is handled by the
//! histogram clearing heuristic, with overflow partitions joined by
//! recursive passes under fresh hash functions. Until recently this was
//! the only join algorithm Gamma employed.

use crate::exec::control::{broadcast_filters, dispatch_overhead};
use crate::exec::hash::{
    resolve_overflows, resolve_overflows_robust, restore_spills, tag, take_overflows, Consumers,
    OverflowEnv, TAG_BUILD, TAG_PROBE, TAG_SPOOL_S,
};
use crate::exec::{run_step, scan};
use crate::hash::{hash_u32, JOIN_SEED};
use crate::machine::{Machine, ResultSink};
use crate::report::{DriverOutput, PhaseRecord};
use crate::split::JoiningSplitTable;

use super::common::Resolved;

/// Filter-salt namespace for Simple hash-join.
const SIMPLE_SALT: u64 = 0x51;

/// Execute a Simple hash-join.
pub fn run(machine: &mut Machine, rz: &Resolved) -> DriverOutput {
    let jt = JoiningSplitTable::new(rz.join_nodes.clone());
    let table_bytes = machine.cfg.cost.split_table_bytes(jt.entries());
    let mut phases = Vec::new();
    let mut sink = ResultSink::new(machine);
    let disk_nodes = machine.disk_nodes();

    let mut consumers = Consumers::new(machine);
    let sites = consumers.install_sites(
        machine,
        &rz.join_nodes,
        rz.capacity_per_site,
        rz.r_tuple_bytes,
        0,
        rz.filter_bits,
        SIMPLE_SALT,
        rz.r_attr,
        rz.s_attr,
    );

    // ---- Phase 1: route R into the hash tables (first pass uses the
    // load-time hash function, so HPJA tuples short-circuit). ----
    let mut ledgers = machine.ledgers();
    let mut r_frags = rz.r_fragments.clone();
    {
        let jt = &jt;
        run_step(
            machine,
            &mut ledgers,
            "build R",
            &disk_nodes,
            &mut r_frags,
            |ctx, f| {
                let recs = scan::scan_fragment(ctx, *f, rz.r_pred);
                // Pure per-tuple routing, chunked on the pool; charges and
                // sends replay in record order below.
                let routed = ctx.par_map_batch(&recs, |rec| {
                    jt.site_index(hash_u32(JOIN_SEED, rz.r_attr.get(rec)))
                });
                for (rec, i) in recs.iter().zip(routed) {
                    ctx.charge(ctx.cost.hash_us + ctx.cost.route_us);
                    ctx.send(rz.join_nodes[i], tag(TAG_BUILD, i), rec);
                }
            },
        );
    }
    consumers.settle(machine, &mut ledgers, &mut sink);
    if rz.dynamic_spill {
        // The build side has settled: read each overflowed site's R' spool
        // back, raise its table cutoff as far as the freed slack allows,
        // and re-admit the restorable band. Only the residue stays spilled.
        restore_spills(machine, &mut ledgers, &mut consumers, &sites, &mut sink);
    }
    let mut sched = dispatch_overhead(machine, &mut ledgers, &disk_nodes, table_bytes);
    sched += dispatch_overhead(machine, &mut ledgers, &rz.join_nodes, table_bytes);
    phases.push(PhaseRecord::new("build R", ledgers, sched));

    // ---- Phase 2: route S; probe or spool to the overflow files via the
    // h'-augmented split table. ----
    let mut ledgers = machine.ledgers();
    broadcast_filters(machine, &mut ledgers, &sites);
    let snap = consumers.probe_snapshot(&sites);
    let mut s_frags = rz.s_fragments.clone();
    {
        let jt = &jt;
        let sites = &sites;
        let snap = &snap;
        run_step(
            machine,
            &mut ledgers,
            "probe S",
            &disk_nodes,
            &mut s_frags,
            |ctx, f| {
                let recs = scan::scan_fragment(ctx, *f, rz.s_pred);
                let routed = ctx.par_map_batch(&recs, |rec| {
                    let val = rz.s_attr.get(rec);
                    (val, jt.site_index(hash_u32(JOIN_SEED, val)))
                });
                for (rec, (val, i)) in recs.iter().zip(routed) {
                    ctx.charge(ctx.cost.hash_us + ctx.cost.route_us);
                    // Filter before the overflow check: the site's filter
                    // covers every inner tuple that arrived there (bits are
                    // set on arrival, before residency is decided), so
                    // eliminating an overflow-bound outer tuple here is safe
                    // and saves its spool I/O and every later re-read (§4.2).
                    if snap.filter_drops(ctx, i, val) {
                        // dropped at the source
                    } else if snap.outer_diverts(i, val) {
                        ctx.send(sites.home(i), tag(TAG_SPOOL_S, i), rec);
                    } else {
                        ctx.send(rz.join_nodes[i], tag(TAG_PROBE, i), rec);
                    }
                }
            },
        );
    }
    consumers.settle(machine, &mut ledgers, &mut sink);
    let pairs = take_overflows(machine, &mut ledgers, &mut consumers, &sites);
    let sched = dispatch_overhead(machine, &mut ledgers, &disk_nodes, table_bytes);
    phases.push(PhaseRecord::new("probe S", ledgers, sched));

    // ---- Recursive overflow passes with fresh hash functions. ----
    let env = OverflowEnv {
        join_nodes: &rz.join_nodes,
        capacity_per_site: rz.capacity_per_site,
        tuple_bytes: rz.r_tuple_bytes,
        r_attr: rz.r_attr,
        s_attr: rz.s_attr,
        filter_bits: rz.filter_bits,
        filter_salt: SIMPLE_SALT,
    };
    let stats = if rz.dynamic_spill {
        resolve_overflows_robust(machine, &env, pairs, &mut sink, &mut phases, "simple ")
    } else {
        resolve_overflows(machine, &env, pairs, 1, &mut sink, &mut phases, "simple ")
    };

    let last = phases.last_mut().expect("at least two phases");
    let result = sink.finish(machine, &mut last.ledgers);
    // The store's final page flushes landed after the phase sealed;
    // refresh the queue-wait annotation so the recorded waits cover the
    // final request log (replay drains the same log when timing the phase).
    for u in last.ledgers.iter_mut() {
        u.annotate_queue_waits();
    }

    DriverOutput {
        phases,
        result,
        buckets: 1,
        overflow_passes: stats.passes,
        bnl_fallback: stats.bnl_fallback,
    }
}
