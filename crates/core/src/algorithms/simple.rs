//! Parallel Simple hash-join (§3.2).
//!
//! The inner relation streams through a joining split table straight into
//! in-memory hash tables at the join sites; overflow is handled by the
//! histogram clearing heuristic, with overflow partitions joined by
//! recursive passes under fresh hash functions. Until recently this was
//! the only join algorithm Gamma employed.

use crate::hash::{hash_u32, JOIN_SEED};
use crate::hashjoin::{
    broadcast_filters, dispatch_overhead, resolve_overflows, OverflowEnv, SiteSet,
};
use crate::machine::{Machine, ResultSink};
use crate::report::{DriverOutput, PhaseRecord};
use crate::split::JoiningSplitTable;

use super::common::{scan_fragment, Resolved};

/// Filter-salt namespace for Simple hash-join.
const SIMPLE_SALT: u64 = 0x51;

/// Execute a Simple hash-join.
pub fn run(machine: &mut Machine, rz: &Resolved) -> DriverOutput {
    let cost = machine.cfg.cost.clone();
    let jt = JoiningSplitTable::new(rz.join_nodes.clone());
    let table_bytes = cost.split_table_bytes(jt.entries());
    let mut phases = Vec::new();
    let mut sink = ResultSink::new(machine);

    let mut set = SiteSet::new(
        machine,
        &rz.join_nodes,
        rz.capacity_per_site,
        rz.r_tuple_bytes,
        0,
        rz.filter_bits,
        SIMPLE_SALT,
    );

    // ---- Phase 1: route R into the hash tables (first pass uses the
    // load-time hash function, so HPJA tuples short-circuit). ----
    let mut ledgers = machine.ledgers();
    let disk_nodes = machine.disk_nodes();
    for &node in &disk_nodes {
        let recs = scan_fragment(machine, &mut ledgers, node, rz.r_fragments[node], rz.r_pred);
        for rec in recs {
            let val = rz.r_attr.get(&rec);
            cost.charge(&mut ledgers[node], cost.hash_us + cost.route_us);
            let i = jt.site_index(hash_u32(JOIN_SEED, val));
            machine
                .fabric
                .send_tuple(&mut ledgers, node, rz.join_nodes[i], rec.len() as u64);
            set.deliver_build(machine, &mut ledgers, i, val, rec);
        }
    }
    machine.fabric.flush(&mut ledgers);
    let mut sched = dispatch_overhead(machine, &mut ledgers, &disk_nodes, table_bytes);
    sched += dispatch_overhead(machine, &mut ledgers, &rz.join_nodes, table_bytes);
    phases.push(PhaseRecord::new("build R", ledgers, sched));

    // ---- Phase 2: route S; probe or spool to the overflow files via the
    // h'-augmented split table. ----
    let mut ledgers = machine.ledgers();
    broadcast_filters(machine, &mut ledgers, &set);
    for &node in &disk_nodes {
        let recs = scan_fragment(machine, &mut ledgers, node, rz.s_fragments[node], rz.s_pred);
        for rec in recs {
            let val = rz.s_attr.get(&rec);
            cost.charge(&mut ledgers[node], cost.hash_us + cost.route_us);
            let i = jt.site_index(hash_u32(JOIN_SEED, val));
            // Filter before the overflow check: the site's filter covers
            // every inner tuple that arrived there (bits are set on
            // arrival, before residency is decided), so eliminating an
            // overflow-bound outer tuple here is safe and saves its spool
            // I/O and every later re-read (§4.2).
            if set.filter_drops(machine, &mut ledgers, node, i, val) {
                // dropped at the source
            } else if set.outer_diverts(i, val) {
                set.spool_outer(machine, &mut ledgers, node, i, &rec);
            } else {
                machine
                    .fabric
                    .send_tuple(&mut ledgers, node, rz.join_nodes[i], rec.len() as u64);
                set.deliver_probe(machine, &mut ledgers, i, val, &rec, &mut sink);
            }
        }
    }
    machine.fabric.flush(&mut ledgers);
    let pairs = set.take_overflows(machine, &mut ledgers);
    let sched = dispatch_overhead(machine, &mut ledgers, &disk_nodes, table_bytes);
    phases.push(PhaseRecord::new("probe S", ledgers, sched));

    // ---- Recursive overflow passes with fresh hash functions. ----
    let env = OverflowEnv {
        join_nodes: &rz.join_nodes,
        capacity_per_site: rz.capacity_per_site,
        tuple_bytes: rz.r_tuple_bytes,
        r_attr: rz.r_attr,
        s_attr: rz.s_attr,
        filter_bits: rz.filter_bits,
        filter_salt: SIMPLE_SALT,
    };
    let stats = resolve_overflows(machine, &env, pairs, 1, &mut sink, &mut phases, "simple ");

    let last = phases.last_mut().expect("at least two phases");
    let result = sink.finish(machine, &mut last.ledgers);

    DriverOutput {
        phases,
        result,
        buckets: 1,
        overflow_passes: stats.passes,
        bnl_fallback: stats.bnl_fallback,
    }
}
