//! The four parallel join algorithms.
//!
//! Each driver executes its algorithm for real over the machine's stored
//! relations and returns the ordered phase ledgers plus the result
//! description. The drivers share the [`crate::hashjoin`] build/probe
//! machinery (Simple hash is the common overflow-resolution method, §3.2)
//! and the helpers in [`common`].

pub mod common;
pub mod grace;
pub mod hybrid;
pub mod simple;
pub mod sort_merge;

pub use common::Resolved;
