//! The four parallel join algorithms.
//!
//! Each driver executes its algorithm for real over the machine's stored
//! relations and returns the ordered phase ledgers plus the result
//! description. The drivers are short compositions of [`crate::exec`]
//! stages: scans feed the Exchange mailboxes, consumer waves absorb the
//! build/probe/spool traffic (Simple hash is the common overflow-resolution
//! method, §3.2), and the helpers in [`common`] carry the resolved plan.

pub mod common;
pub mod grace;
pub mod hybrid;
pub mod simple;
pub mod sort_merge;

pub use common::Resolved;
