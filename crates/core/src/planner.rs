//! Query plans: trees of operators, executed bottom-up with one coherent
//! virtual-time account — Gamma's §2.2 execution framework in miniature,
//! plus a §5-shaped optimizer.
//!
//! A [`Plan`] composes scans, selections, projections, joins and group-by
//! aggregates. [`execute`] materializes each stage as a stored relation
//! (results are distributed round-robin to the disk sites, §2.2), feeds it
//! to its parent and frees it afterwards. When the join algorithm is left
//! to the optimizer, [`choose_algorithm`] applies the paper's conclusions:
//! Hybrid hash everywhere, *except* when the inner relation's join
//! attribute looks highly skewed while memory is limited — then the
//! conservative sort-merge is chosen.

use gamma_des::SimTime;

use crate::algorithms::common::RangePred;
use crate::machine::{Machine, RelationId};
use crate::operators::{self, AggFn};
use crate::query::{run_join_materialized, Algorithm, JoinSite, JoinSpec};

/// A relational query plan.
#[derive(Debug, Clone)]
pub enum Plan {
    /// Leaf: a stored relation.
    Scan(RelationId),
    /// Filter by an inclusive range on a named integer attribute.
    Select {
        /// Input subtree.
        input: Box<Plan>,
        /// Attribute name (resolved against the input's schema).
        attr: String,
        /// Lower bound, inclusive.
        lo: u32,
        /// Upper bound, inclusive.
        hi: u32,
    },
    /// Keep only the named fields.
    Project {
        /// Input subtree.
        input: Box<Plan>,
        /// Fields to keep, in order.
        fields: Vec<String>,
    },
    /// Equi-join two subtrees.
    Join {
        /// Building side (the optimizer may swap if it is larger).
        inner: Box<Plan>,
        /// Probing side.
        outer: Box<Plan>,
        /// Join attribute on the inner input.
        inner_attr: String,
        /// Join attribute on the outer input.
        outer_attr: String,
        /// Fix the algorithm, or let the optimizer choose.
        algorithm: Option<Algorithm>,
    },
    /// Hash group-by aggregation.
    Aggregate {
        /// Input subtree.
        input: Box<Plan>,
        /// Grouping attribute name.
        group_by: String,
        /// Aggregated attribute name.
        attr: String,
        /// Aggregate function.
        f: AggFn,
    },
}

/// Execution-wide knobs.
#[derive(Debug, Clone)]
pub struct PlanConfig {
    /// Aggregate join memory per join stage.
    pub memory_bytes: u64,
    /// Where joins (and aggregates) run.
    pub site: JoinSite,
    /// Bit-vector filtering for joins.
    pub bit_filter: bool,
}

/// One executed stage.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Human-readable stage description.
    pub name: String,
    /// Stage response time.
    pub response: SimTime,
    /// Output cardinality.
    pub tuples: u64,
}

/// The whole plan's outcome.
#[derive(Debug)]
pub struct PlanReport {
    /// Materialized output relation (owned by the caller now).
    pub output: RelationId,
    /// Output cardinality.
    pub tuples: u64,
    /// Per-stage breakdown, leaves first.
    pub stages: Vec<StageReport>,
    /// Sum of stage response times (stages run one after another, as
    /// Gamma's scheduler serialized the operators of deep trees).
    pub response: SimTime,
}

/// Crude optimizer statistics for one integer attribute, gathered from a
/// one-page-per-fragment sample — enough to detect the §4.4 kind of skew.
#[derive(Debug, Clone, Copy)]
pub struct ColumnStats {
    /// Tuples sampled.
    pub sampled: u64,
    /// Distinct values in the sample.
    pub distinct: u64,
    /// Fraction of sampled tuples carrying the modal value.
    pub top_frequency: f64,
}

impl ColumnStats {
    /// A heuristic skew verdict: many duplicates in a small sample.
    pub fn looks_skewed(&self) -> bool {
        self.sampled >= 16
            && ((self.distinct as f64) < 0.6 * self.sampled as f64 || self.top_frequency > 0.1)
    }
}

/// Sample one page per fragment and summarize the attribute.
pub fn analyze(machine: &Machine, rel: RelationId, attr_name: &str) -> ColumnStats {
    use std::collections::HashMap;
    let r = machine.relation(rel);
    let attr = r.schema.int_attr(attr_name);
    let mut freq: HashMap<u32, u64> = HashMap::new();
    let mut sampled = 0u64;
    for (n, &f) in r.fragments.iter().enumerate() {
        let vol = machine.nodes[n].vol();
        if vol.file_pages(f) == 0 {
            continue;
        }
        for rec in vol.page(f, 0).records() {
            sampled += 1;
            *freq.entry(attr.get(rec)).or_default() += 1;
        }
    }
    let distinct = freq.len() as u64;
    let top = freq.values().copied().max().unwrap_or(0);
    ColumnStats {
        sampled,
        distinct,
        top_frequency: if sampled == 0 {
            0.0
        } else {
            top as f64 / sampled as f64
        },
    }
}

/// The paper's §5 decision rule: Hybrid hash unless the inner relation's
/// join attribute is highly skewed *and* memory is limited, in which case
/// sort-merge (local only) is the safe choice.
pub fn choose_algorithm(
    machine: &Machine,
    inner: RelationId,
    inner_attr: &str,
    memory_bytes: u64,
    site: JoinSite,
) -> Algorithm {
    let stats = analyze(machine, inner, inner_attr);
    let inner_bytes = machine.relation(inner).data_bytes.max(1);
    let ratio = memory_bytes as f64 / inner_bytes as f64;
    if stats.looks_skewed() && ratio < 0.34 && site == JoinSite::Local {
        Algorithm::SortMerge
    } else {
        Algorithm::HybridHash
    }
}

/// Execute a plan bottom-up. Intermediate relations are freed; the final
/// output relation is returned to the caller (drop it when done).
pub fn execute(machine: &mut Machine, plan: &Plan, cfg: &PlanConfig) -> PlanReport {
    let mut stages = Vec::new();
    let (output, owned) = run(machine, plan, cfg, &mut stages);
    let tuples = machine.relation(output).tuples;
    let response = stages.iter().map(|s| s.response).sum();
    // If the root is a bare scan we must not hand ownership of a base
    // relation to the caller as "output to drop"; materialize a copy
    // never happens in practice (plans end in an operator), so just flag
    // ownership through `owned` — non-owned outputs are base relations.
    let _ = owned;
    PlanReport {
        output,
        tuples,
        stages,
        response,
    }
}

/// Returns (relation, owned-by-plan?).
fn run(
    machine: &mut Machine,
    plan: &Plan,
    cfg: &PlanConfig,
    stages: &mut Vec<StageReport>,
) -> (RelationId, bool) {
    match plan {
        Plan::Scan(rel) => (*rel, false),
        Plan::Select {
            input,
            attr,
            lo,
            hi,
        } => {
            let (src, owned) = run(machine, input, cfg, stages);
            let a = machine.relation(src).schema.int_attr(attr);
            let pred = RangePred {
                attr: a,
                lo: *lo,
                hi: *hi,
            };
            let (out, rep) = operators::select(machine, src, pred, "σ");
            stages.push(StageReport {
                name: format!("select {attr} in [{lo}, {hi}]"),
                response: rep.response,
                tuples: rep.tuples_out,
            });
            if owned {
                machine.drop_relation(src);
            }
            (out, true)
        }
        Plan::Project { input, fields } => {
            let (src, owned) = run(machine, input, cfg, stages);
            let names: Vec<&str> = fields.iter().map(String::as_str).collect();
            let (out, rep) = operators::project(machine, src, &names, "π");
            stages.push(StageReport {
                name: format!("project {fields:?}"),
                response: rep.response,
                tuples: rep.tuples_out,
            });
            if owned {
                machine.drop_relation(src);
            }
            (out, true)
        }
        Plan::Join {
            inner,
            outer,
            inner_attr,
            outer_attr,
            algorithm,
        } => {
            let (mut r, mut r_owned) = run(machine, inner, cfg, stages);
            let (mut s, mut s_owned) = run(machine, outer, cfg, stages);
            let mut r_attr_name = inner_attr.clone();
            let mut s_attr_name = outer_attr.clone();
            // The smaller relation is always the building relation (§3).
            if machine.relation(r).data_bytes > machine.relation(s).data_bytes {
                std::mem::swap(&mut r, &mut s);
                std::mem::swap(&mut r_owned, &mut s_owned);
                std::mem::swap(&mut r_attr_name, &mut s_attr_name);
            }
            let alg = algorithm.unwrap_or_else(|| {
                choose_algorithm(machine, r, &r_attr_name, cfg.memory_bytes, cfg.site)
            });
            let r_attr = machine.relation(r).schema.int_attr(&r_attr_name);
            let s_attr = machine.relation(s).schema.int_attr(&s_attr_name);
            let mut spec = JoinSpec::new(alg, r, s, r_attr, s_attr, cfg.memory_bytes);
            spec.site = if alg == Algorithm::SortMerge {
                JoinSite::Local
            } else {
                cfg.site
            };
            spec.bit_filter = cfg.bit_filter;
            let (out, report) = run_join_materialized(machine, &spec, "⋈");
            stages.push(StageReport {
                name: format!("{} join on {r_attr_name}={s_attr_name}", alg.name()),
                response: report.response,
                tuples: report.result_tuples,
            });
            if r_owned {
                machine.drop_relation(r);
            }
            if s_owned {
                machine.drop_relation(s);
            }
            (out, true)
        }
        Plan::Aggregate {
            input,
            group_by,
            attr,
            f,
        } => {
            let (src, owned) = run(machine, input, cfg, stages);
            let schema = machine.relation(src).schema.clone();
            let g = schema.int_attr(group_by);
            let a = schema.int_attr(attr);
            let agg_nodes = match cfg.site {
                JoinSite::Local => machine.disk_nodes(),
                JoinSite::Remote | JoinSite::Mixed => {
                    let d = machine.diskless_nodes();
                    if d.is_empty() {
                        machine.disk_nodes()
                    } else {
                        d
                    }
                }
            };
            let (out, rep) = operators::aggregate_group(machine, src, g, a, *f, agg_nodes, "γ");
            stages.push(StageReport {
                name: format!("{f:?} of {attr} group by {group_by}"),
                response: rep.response,
                tuples: rep.tuples_out,
            });
            if owned {
                machine.drop_relation(src);
            }
            (out, true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Declustering, MachineConfig};
    use crate::tuple::{Field, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::Int("k".into()),
            Field::Int("g".into()),
            Field::Str("pad".into(), 24),
        ])
    }

    fn load(m: &mut Machine, name: &str, n: u32, skew: bool) -> RelationId {
        let s = schema();
        let k = s.int_attr("k");
        let g = s.int_attr("g");
        let tuples: Vec<Vec<u8>> = (0..n)
            .map(|i| {
                let mut t = vec![0u8; s.tuple_bytes()];
                k.put(&mut t, if skew { i % 7 } else { i });
                g.put(&mut t, i % 5);
                t
            })
            .collect();
        m.load_relation(name, s, Declustering::Hashed { attr: k }, tuples)
    }

    fn cfg(mem: u64) -> PlanConfig {
        PlanConfig {
            memory_bytes: mem,
            site: JoinSite::Local,
            bit_filter: false,
        }
    }

    #[test]
    fn select_join_aggregate_pipeline() {
        let mut m = Machine::new(MachineConfig::local_8());
        let a = load(&mut m, "a", 1_000, false);
        let b = load(&mut m, "b", 1_000, false);
        let plan = Plan::Aggregate {
            input: Box::new(Plan::Join {
                inner: Box::new(Plan::Select {
                    input: Box::new(Plan::Scan(b)),
                    attr: "k".into(),
                    lo: 0,
                    hi: 99,
                }),
                outer: Box::new(Plan::Scan(a)),
                inner_attr: "k".into(),
                outer_attr: "k".into(),
                algorithm: Some(Algorithm::HybridHash),
            }),
            group_by: "l.g".into(),
            attr: "l.g".into(),
            f: AggFn::Count,
        };
        let report = execute(&mut m, &plan, &cfg(1 << 20));
        assert_eq!(report.stages.len(), 3);
        assert_eq!(report.stages[0].tuples, 100, "selection output");
        assert_eq!(report.stages[1].tuples, 100, "join output");
        assert_eq!(report.tuples, 5, "five groups");
        assert!(report.response >= report.stages[2].response);
        m.drop_relation(report.output);
    }

    #[test]
    fn executor_swaps_to_smaller_inner() {
        let mut m = Machine::new(MachineConfig::local_8());
        let big = load(&mut m, "big", 2_000, false);
        let small = load(&mut m, "small", 100, false);
        // Declared inner is the big one; the executor must swap.
        let plan = Plan::Join {
            inner: Box::new(Plan::Scan(big)),
            outer: Box::new(Plan::Scan(small)),
            inner_attr: "k".into(),
            outer_attr: "k".into(),
            algorithm: Some(Algorithm::HybridHash),
        };
        let report = execute(&mut m, &plan, &cfg(1 << 20));
        assert_eq!(report.tuples, 100);
        m.drop_relation(report.output);
    }

    #[test]
    fn optimizer_follows_paper_conclusions() {
        let mut m = Machine::new(MachineConfig::local_8());
        let uniform = load(&mut m, "u", 2_000, false);
        let skewed = load(&mut m, "n", 2_000, true);
        let bytes = m.relation(uniform).data_bytes;
        // Plenty of memory: hybrid either way.
        assert_eq!(
            choose_algorithm(&m, uniform, "k", bytes, JoinSite::Local),
            Algorithm::HybridHash
        );
        assert_eq!(
            choose_algorithm(&m, skewed, "k", bytes, JoinSite::Local),
            Algorithm::HybridHash
        );
        // Tight memory: skewed inner flips to sort-merge.
        assert_eq!(
            choose_algorithm(&m, uniform, "k", bytes / 6, JoinSite::Local),
            Algorithm::HybridHash
        );
        assert_eq!(
            choose_algorithm(&m, skewed, "k", bytes / 6, JoinSite::Local),
            Algorithm::SortMerge
        );
        // Remote sites cannot run sort-merge, so the optimizer never picks it.
        assert_eq!(
            choose_algorithm(&m, skewed, "k", bytes / 6, JoinSite::Remote),
            Algorithm::HybridHash
        );
    }

    #[test]
    fn analyze_detects_duplicates() {
        let mut m = Machine::new(MachineConfig::local_8());
        let uniform = load(&mut m, "u", 2_000, false);
        let skewed = load(&mut m, "n", 2_000, true);
        let su = analyze(&m, uniform, "k");
        let sn = analyze(&m, skewed, "k");
        assert!(!su.looks_skewed(), "{su:?}");
        assert!(sn.looks_skewed(), "{sn:?}");
        assert!(sn.top_frequency > su.top_frequency);
    }

    #[test]
    fn intermediates_are_freed() {
        let mut m = Machine::new(MachineConfig::local_8());
        let a = load(&mut m, "a", 500, false);
        let b = load(&mut m, "b", 500, false);
        let pages_before: usize = m
            .nodes
            .iter()
            .filter_map(|n| n.volume.as_ref())
            .map(|v| v.total_pages())
            .sum();
        let plan = Plan::Project {
            input: Box::new(Plan::Join {
                inner: Box::new(Plan::Scan(b)),
                outer: Box::new(Plan::Scan(a)),
                inner_attr: "k".into(),
                outer_attr: "k".into(),
                algorithm: Some(Algorithm::GraceHash),
            }),
            fields: vec!["l.k".into(), "r.g".into()],
        };
        let report = execute(&mut m, &plan, &cfg(4 << 10));
        m.drop_relation(report.output);
        let pages_after: usize = m
            .nodes
            .iter()
            .filter_map(|n| n.volume.as_ref())
            .map(|v| v.total_pages())
            .sum();
        assert_eq!(pages_before, pages_after, "no storage leaked");
    }
}
