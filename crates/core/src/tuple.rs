//! Schemas and tuples.
//!
//! Gamma compiled predicates to machine code over fixed-layout records; we
//! keep the same flavour: a [`Schema`] is an ordered list of fixed-width
//! fields, a tuple is a `Vec<u8>` laid out per the schema, and an [`Attr`]
//! is a resolved accessor (byte offset) for a 4-byte integer attribute —
//! the only attribute kind the paper ever joins or partitions on.

/// A field of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Field {
    /// 4-byte little-endian unsigned integer.
    Int(String),
    /// Fixed-width string (padded), e.g. the Wisconsin 52-byte strings.
    Str(String, usize),
}

impl Field {
    /// Field name.
    pub fn name(&self) -> &str {
        match self {
            Field::Int(n) => n,
            Field::Str(n, _) => n,
        }
    }

    /// Width in bytes.
    pub fn width(&self) -> usize {
        match self {
            Field::Int(_) => 4,
            Field::Str(_, w) => *w,
        }
    }
}

/// An ordered, fixed-layout record schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
    width: usize,
}

impl Schema {
    /// Build a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        let width = fields.iter().map(Field::width).sum();
        Schema { fields, width }
    }

    /// Total tuple width in bytes.
    pub fn tuple_bytes(&self) -> usize {
        self.width
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Resolve an integer attribute by name.
    ///
    /// # Panics
    /// Panics if the attribute does not exist or is not an integer — schema
    /// errors are programming errors in this engine, not runtime conditions.
    pub fn int_attr(&self, name: &str) -> Attr {
        let mut off = 0;
        for f in &self.fields {
            if f.name() == name {
                match f {
                    Field::Int(_) => return Attr { offset: off },
                    Field::Str(..) => panic!("attribute {name} is not an integer"),
                }
            }
            off += f.width();
        }
        panic!("no attribute named {name}");
    }

    /// Byte range of a field by name (offset, width).
    ///
    /// # Panics
    /// Panics if the field does not exist.
    pub fn field_range(&self, name: &str) -> (usize, usize) {
        let mut off = 0;
        for f in &self.fields {
            if f.name() == name {
                return (off, f.width());
            }
            off += f.width();
        }
        panic!("no attribute named {name}");
    }

    /// A schema keeping only the named fields, in the given order (the
    /// projection operator's output schema).
    pub fn project(&self, names: &[&str]) -> Schema {
        let fields = names
            .iter()
            .map(|n| {
                self.fields
                    .iter()
                    .find(|f| f.name() == *n)
                    .unwrap_or_else(|| panic!("no attribute named {n}"))
                    .clone()
            })
            .collect();
        Schema::new(fields)
    }

    /// Resolve the named fields to byte ranges once, so a batch of
    /// projections pays the name lookups a single time (see
    /// [`project_ranges_into`]).
    pub fn projection(&self, names: &[&str]) -> Vec<(usize, usize)> {
        names.iter().map(|n| self.field_range(n)).collect()
    }

    /// Project one tuple onto the named fields.
    pub fn project_tuple(&self, names: &[&str], tuple: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        project_ranges_into(&self.projection(names), tuple, &mut out);
        out
    }

    /// Concatenation of two schemas (the composed join output schema).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = Vec::with_capacity(self.fields.len() + other.fields.len());
        for f in &self.fields {
            fields.push(match f {
                Field::Int(n) => Field::Int(format!("l.{n}")),
                Field::Str(n, w) => Field::Str(format!("l.{n}"), *w),
            });
        }
        for f in &other.fields {
            fields.push(match f {
                Field::Int(n) => Field::Int(format!("r.{n}")),
                Field::Str(n, w) => Field::Str(format!("r.{n}"), *w),
            });
        }
        Schema::new(fields)
    }
}

/// A resolved 4-byte integer attribute accessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attr {
    /// Byte offset of the attribute within a tuple.
    pub offset: usize,
}

impl Attr {
    /// Read the attribute from a tuple.
    #[inline]
    pub fn get(&self, tuple: &[u8]) -> u32 {
        u32::from_le_bytes(
            tuple[self.offset..self.offset + 4]
                .try_into()
                .expect("attribute within tuple bounds"),
        )
    }

    /// Write the attribute into a tuple under construction.
    #[inline]
    pub fn put(&self, tuple: &mut [u8], v: u32) {
        tuple[self.offset..self.offset + 4].copy_from_slice(&v.to_le_bytes());
    }
}

/// Project a tuple onto pre-resolved field ranges (from
/// [`Schema::projection`]), writing into a caller-owned buffer that is
/// cleared and refilled — reuse it across a batch to project with zero
/// per-tuple allocation and zero per-tuple name lookups.
#[inline]
pub fn project_ranges_into(ranges: &[(usize, usize)], tuple: &[u8], out: &mut Vec<u8>) {
    out.clear();
    for &(off, w) in ranges {
        out.extend_from_slice(&tuple[off..off + w]);
    }
}

/// Compose a result tuple by concatenating an outer and inner tuple —
/// Gamma's join operators emitted the concatenation of the matching pair.
#[inline]
pub fn compose(left: &[u8], right: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(left.len() + right.len());
    compose_into(left, right, &mut out);
    out
}

/// [`compose`] into a caller-owned buffer (cleared and refilled) — reuse it
/// across a batch so composition never allocates per result tuple.
#[inline]
pub fn compose_into(left: &[u8], right: &[u8], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(left.len() + right.len());
    out.extend_from_slice(left);
    out.extend_from_slice(right);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::Int("unique1".into()),
            Field::Int("unique2".into()),
            Field::Str("stringu1".into(), 52),
            Field::Int("normal".into()),
        ])
    }

    #[test]
    fn widths_and_offsets() {
        let s = schema();
        assert_eq!(s.tuple_bytes(), 4 + 4 + 52 + 4);
        assert_eq!(s.int_attr("unique1").offset, 0);
        assert_eq!(s.int_attr("unique2").offset, 4);
        assert_eq!(s.int_attr("normal").offset, 60);
    }

    #[test]
    fn attr_roundtrip() {
        let s = schema();
        let mut t = vec![0u8; s.tuple_bytes()];
        let a = s.int_attr("normal");
        a.put(&mut t, 0xDEADBEEF);
        assert_eq!(a.get(&t), 0xDEADBEEF);
        assert_eq!(s.int_attr("unique1").get(&t), 0);
    }

    #[test]
    #[should_panic(expected = "no attribute named")]
    fn unknown_attr_panics() {
        schema().int_attr("nope");
    }

    #[test]
    #[should_panic(expected = "not an integer")]
    fn string_attr_as_int_panics() {
        schema().int_attr("stringu1");
    }

    #[test]
    fn join_schema_concatenates() {
        let s = schema();
        let j = s.join(&s);
        assert_eq!(j.tuple_bytes(), 2 * s.tuple_bytes());
        assert_eq!(j.int_attr("l.unique1").offset, 0);
        assert_eq!(j.int_attr("r.unique1").offset, s.tuple_bytes());
    }

    #[test]
    fn compose_concatenates_bytes() {
        let out = compose(&[1, 2, 3], &[4, 5]);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn into_variants_reuse_the_buffer() {
        let mut buf = Vec::new();
        compose_into(&[1, 2], &[3], &mut buf);
        assert_eq!(buf, vec![1, 2, 3]);
        compose_into(&[9], &[8, 7], &mut buf);
        assert_eq!(buf, vec![9, 8, 7]);
        let s = schema();
        let ranges = s.projection(&["normal", "unique1"]);
        let mut t = vec![0u8; s.tuple_bytes()];
        s.int_attr("unique1").put(&mut t, 11);
        s.int_attr("normal").put(&mut t, 22);
        project_ranges_into(&ranges, &t, &mut buf);
        assert_eq!(buf, s.project_tuple(&["normal", "unique1"], &t));
    }
}
