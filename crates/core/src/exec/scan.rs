//! The `Scan` stage: read a stored fragment, apply an optional selection.
//!
//! Every operator that reads a declustered relation — the four join
//! drivers' build/probe/partition producers and the sequential operators in
//! [`crate::operators`] — funnels through [`scan_fragment`], so scan cost
//! accounting (page reads, per-tuple CPU, the `scan` trace span) lives in
//! exactly one place.
//!
//! Selections are chunk-parallel: predicate evaluation is pure per record,
//! so the keep mask is precomputed on the machine's worker pool
//! ([`pool::map_chunks`]) while page-read and per-tuple charges replay
//! sequentially in record order — the scan's ledger, counts and trace
//! bytes never depend on the pool size.

use gamma_des::Usage;
use gamma_wiss::{FileId, HeapScan};

use crate::algorithms::common::RangePred;
use crate::batch::TupleBatch;
use crate::cost::CostModel;
use crate::exec::{pool, StepCtx};
use crate::machine::{Ledgers, Machine, NodeId, NodeState};

/// Scan one stored fragment from a step worker: charges page reads and
/// per-tuple scan CPU, applies the optional selection, and returns the
/// surviving records as one arena-backed [`TupleBatch`] (two allocations
/// per fragment, not one per tuple).
pub fn scan_fragment(ctx: &mut StepCtx<'_>, file: FileId, pred: Option<RangePred>) -> TupleBatch {
    scan_fragment_inner(ctx.cost, ctx.state, ctx.ledger, ctx.pool, file, pred)
}

fn scan_fragment_inner(
    cost: &CostModel,
    state: &mut NodeState,
    usage: &mut Usage,
    pool: Option<&pool::WorkerPool>,
    file: FileId,
    pred: Option<RangePred>,
) -> TupleBatch {
    let node = state.id;
    #[cfg(feature = "trace")]
    gamma_trace::emit(
        node as u16,
        usage.total_demand().as_us(),
        gamma_trace::EventKind::SpanBegin { name: "scan" },
    );
    #[cfg(all(not(feature = "trace"), not(feature = "metrics")))]
    let _ = node;
    let mut batch = {
        let (vol, bp) = state.vp();
        let mut scan = HeapScan::open(vol, file);
        let mut batch = TupleBatch::with_capacity(vol.file_records(file), 64);
        while let Some(rec) = scan.next_ref(bp, usage) {
            batch.push(rec);
        }
        batch
    };
    // Pure per-record work, chunked; effects replayed in record order below.
    let keep: Option<Vec<bool>> =
        pred.map(|p| pool::map_chunks(pool, batch.ranges(), |&r| p.eval(batch.slice(r))));
    #[cfg(feature = "metrics")]
    let scanned = batch.len() as u64;
    for _ in 0..batch.len() {
        cost.charge(usage, cost.scan_tuple_us);
        usage.counts.tuples_in += 1;
    }
    if let Some(mask) = keep {
        batch.retain_indices(|k| mask[k]);
    }
    #[cfg(feature = "metrics")]
    if scanned > 0 {
        gamma_metrics::counter_add("op_tuples_in", node as u16, "scan", scanned);
    }
    #[cfg(feature = "trace")]
    gamma_trace::emit(
        node as u16,
        usage.total_demand().as_us(),
        gamma_trace::EventKind::SpanEnd { name: "scan" },
    );
    batch
}

/// Main-thread convenience for sequential operators: scan at `node` using
/// the machine's state and the phase ledgers.
pub fn scan_fragment_at(
    machine: &mut Machine,
    ledgers: &mut Ledgers,
    node: NodeId,
    file: FileId,
    pred: Option<RangePred>,
) -> TupleBatch {
    let Machine {
        cfg, nodes, exec, ..
    } = machine;
    scan_fragment_inner(
        &cfg.cost,
        &mut nodes[node],
        &mut ledgers[node],
        exec.pool.as_deref(),
        file,
        pred,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Declustering, MachineConfig};
    use crate::tuple::{Field, Schema};

    #[test]
    fn scan_fragment_applies_selection_and_charges() {
        let mut m = Machine::new(MachineConfig::local_8());
        let s = Schema::new(vec![Field::Int("k".into()), Field::Str("p".into(), 28)]);
        let attr = s.int_attr("k");
        let tuples: Vec<Vec<u8>> = (0..400u32)
            .map(|k| {
                let mut t = vec![0u8; 32];
                attr.put(&mut t, k);
                t
            })
            .collect();
        let id = m.load_relation("t", s, Declustering::RoundRobin, tuples);
        let f0 = m.relation(id).fragments[0];
        let mut ledgers = m.ledgers();
        let pred = RangePred {
            attr,
            lo: 0,
            hi: 99,
        };
        let got = scan_fragment_at(&mut m, &mut ledgers, 0, f0, Some(pred));
        // Node 0 holds k ∈ {0, 8, 16, ...}; of its 50 tuples, those < 100
        // are 0..96 step 8 = 13 tuples.
        assert_eq!(got.len(), 13);
        assert_eq!(ledgers[0].counts.tuples_in, 50);
        assert!(ledgers[0].counts.pages_read > 0);
        assert!(ledgers[0].cpu > gamma_des::SimTime::ZERO);
    }
}
