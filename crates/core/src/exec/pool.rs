//! # Persistent worker pool
//!
//! The executor's threads are spawned **once** — when the pool is built —
//! and reused for every subsequent step, wave, phase, query and sweep
//! point. A step submits its per-node bundles as a *scope*: an ordered
//! batch of jobs whose results come back in submission order, so callers
//! can merge ledgers, trace events and metrics deterministically no
//! matter which worker ran which job, or in what order they finished.
//!
//! ## Scheduling
//!
//! Each scope keeps its jobs as a shared counter (`next`/`done`) plus one
//! erased runner closure; workers pick jobs by claiming the next index.
//! The pool's global queue holds *tickets* — handles to scopes with work
//! left. The submitting thread never blocks idle: after enqueuing
//! tickets it runs its own scope's jobs until the scope is dry, then
//! waits only for jobs other workers are still finishing. Because a
//! nested scope's owner drains its own queue itself, nesting (a sweep
//! point running steps, a step chunking tuple batches) can never
//! deadlock the pool: blocking waits only ever cover jobs already
//! *running* on some thread, and leaf jobs terminate.
//!
//! ## Determinism
//!
//! The pool itself guarantees only *ordered results*; byte-identical
//! artifacts are the contract of the callers ([`run_step`] replays trace
//! and metrics in participant order, [`StepCtx::par_map`] restricts
//! chunked work to pure computation). `pool_size = 1` spawns no threads
//! at all — every caller detects `workers() == 0` and takes its plain
//! serial path, so the degenerate pool *is* the serial executor.
//!
//! [`run_step`]: super::run_step
//! [`StepCtx::par_map`]: super::StepCtx::par_map

use std::any::Any;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Host-side pool profiling, compiled in under the `hostprof` feature.
///
/// Process-global wall-clock counters over every [`WorkerPool`] in the
/// process: per-worker busy/idle time, per-stage job-latency histograms,
/// and ticket-queue contention counters. These are *host* measurements —
/// they never touch the simulated timeline, and the default build carries
/// zero instrumentation (every hook site is `#[cfg]`-gated out). Because
/// counters are process-global wall time, concurrent batches attribute
/// their overlap to whichever stage is being observed; treat per-stage
/// numbers as inclusive when batches nest (`map_chunks` inside a sweep
/// point).
#[cfg(feature = "hostprof")]
pub mod hostprof {
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;
    use std::time::Duration;

    /// Power-of-two latency buckets: bucket `b` counts jobs whose wall
    /// latency in nanoseconds was in `[2^b, 2^(b+1))` (bucket 0 also
    /// holds zero).
    pub const HIST_BUCKETS: usize = 32;

    /// Per-stage job-latency histogram (log₂ nanosecond buckets).
    #[derive(Clone, Debug, Default, PartialEq, Eq)]
    pub struct StageHist {
        pub buckets: [u64; HIST_BUCKETS],
        pub count: u64,
        pub sum_ns: u64,
    }

    impl StageHist {
        /// Mean job latency in microseconds (0 when empty).
        pub fn mean_us(&self) -> f64 {
            if self.count == 0 {
                return 0.0;
            }
            self.sum_ns as f64 / self.count as f64 / 1_000.0
        }

        /// Upper bound (ns) of the highest non-empty bucket.
        pub fn max_bucket_ns(&self) -> u64 {
            match self.buckets.iter().rposition(|&c| c > 0) {
                Some(b) => 1u64 << (b as u32 + 1),
                None => 0,
            }
        }
    }

    /// One worker thread's lifetime clocks.
    #[derive(Clone, Debug, Default, PartialEq, Eq)]
    pub struct WorkerSample {
        /// Wall time spent serving tickets (running jobs).
        pub busy_ns: u64,
        /// Wall time spent waiting for tickets.
        pub idle_ns: u64,
        /// Tickets this worker popped.
        pub tickets: u64,
    }

    /// A point-in-time copy of every hostprof counter.
    #[derive(Clone, Debug, Default)]
    pub struct HostProfile {
        /// Jobs executed (on workers and helping owners alike).
        pub jobs: u64,
        /// Σ wall latency of all jobs, ns.
        pub job_ns: u64,
        /// Wall time submitting threads spent helping run their batches.
        pub owner_busy_ns: u64,
        /// Tickets pushed to the pool queue.
        pub tickets_enqueued: u64,
        /// Tickets popped whose scope had no unclaimed job left.
        pub stale_tickets: u64,
        /// Times a worker went to sleep on the work condvar.
        pub cv_sleeps: u64,
        /// Per-worker clocks, in spawn order (process-wide).
        pub workers: Vec<WorkerSample>,
        /// Per-stage latency histograms, sorted by stage label.
        pub stages: Vec<(String, StageHist)>,
    }

    static JOBS: AtomicU64 = AtomicU64::new(0);
    static JOB_NS: AtomicU64 = AtomicU64::new(0);
    static OWNER_BUSY_NS: AtomicU64 = AtomicU64::new(0);
    static TICKETS_ENQUEUED: AtomicU64 = AtomicU64::new(0);
    static STALE_TICKETS: AtomicU64 = AtomicU64::new(0);
    static CV_SLEEPS: AtomicU64 = AtomicU64::new(0);
    static WORKERS: Mutex<Vec<WorkerSample>> = Mutex::new(Vec::new());
    static STAGES: Mutex<BTreeMap<String, StageHist>> = Mutex::new(BTreeMap::new());

    fn saturating_ns(d: Duration) -> u64 {
        u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
    }

    pub(super) fn register_worker() -> usize {
        let mut w = WORKERS.lock().unwrap();
        w.push(WorkerSample::default());
        w.len() - 1
    }

    pub(super) fn on_worker_idle(wid: usize, idle: Duration) {
        WORKERS.lock().unwrap()[wid].idle_ns += saturating_ns(idle);
    }

    pub(super) fn on_worker_ticket(wid: usize, busy: Duration, ran_any: bool) {
        let mut w = WORKERS.lock().unwrap();
        w[wid].busy_ns += saturating_ns(busy);
        w[wid].tickets += 1;
        drop(w);
        if !ran_any {
            STALE_TICKETS.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(super) fn on_cv_sleep() {
        CV_SLEEPS.fetch_add(1, Ordering::Relaxed);
    }

    pub(super) fn on_tickets_enqueued(n: u64) {
        TICKETS_ENQUEUED.fetch_add(n, Ordering::Relaxed);
    }

    pub(super) fn on_owner_busy(busy: Duration) {
        OWNER_BUSY_NS.fetch_add(saturating_ns(busy), Ordering::Relaxed);
    }

    pub(super) fn observe_job(stage: &str, latency: Duration) {
        let ns = saturating_ns(latency);
        JOBS.fetch_add(1, Ordering::Relaxed);
        JOB_NS.fetch_add(ns, Ordering::Relaxed);
        let bucket = if ns == 0 {
            0
        } else {
            (63 - ns.leading_zeros() as usize).min(HIST_BUCKETS - 1)
        };
        let mut stages = STAGES.lock().unwrap();
        let hist = match stages.get_mut(stage) {
            Some(h) => h,
            None => stages.entry(stage.to_string()).or_default(),
        };
        hist.buckets[bucket] += 1;
        hist.count += 1;
        hist.sum_ns += ns;
    }

    /// Cheap totals for per-measurement deltas: `(jobs, Σ job ns)`.
    pub fn totals() -> (u64, u64) {
        (JOBS.load(Ordering::Relaxed), JOB_NS.load(Ordering::Relaxed))
    }

    /// Copy every counter.
    pub fn snapshot() -> HostProfile {
        HostProfile {
            jobs: JOBS.load(Ordering::Relaxed),
            job_ns: JOB_NS.load(Ordering::Relaxed),
            owner_busy_ns: OWNER_BUSY_NS.load(Ordering::Relaxed),
            tickets_enqueued: TICKETS_ENQUEUED.load(Ordering::Relaxed),
            stale_tickets: STALE_TICKETS.load(Ordering::Relaxed),
            cv_sleeps: CV_SLEEPS.load(Ordering::Relaxed),
            workers: WORKERS.lock().unwrap().clone(),
            stages: STAGES
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Zero every counter (worker slots are kept, their clocks cleared).
    pub fn reset() {
        JOBS.store(0, Ordering::Relaxed);
        JOB_NS.store(0, Ordering::Relaxed);
        OWNER_BUSY_NS.store(0, Ordering::Relaxed);
        TICKETS_ENQUEUED.store(0, Ordering::Relaxed);
        STALE_TICKETS.store(0, Ordering::Relaxed);
        CV_SLEEPS.store(0, Ordering::Relaxed);
        for w in WORKERS.lock().unwrap().iter_mut() {
            *w = WorkerSample::default();
        }
        STAGES.lock().unwrap().clear();
    }

    /// Human-readable report of the current counters.
    pub fn report() -> String {
        let p = snapshot();
        let mut out = String::new();
        out.push_str(&format!(
            "hostprof: {} jobs ({:.3} ms total), owner busy {:.3} ms, tickets {} (stale {}), cv sleeps {}\n",
            p.jobs,
            p.job_ns as f64 / 1e6,
            p.owner_busy_ns as f64 / 1e6,
            p.tickets_enqueued,
            p.stale_tickets,
            p.cv_sleeps,
        ));
        for (i, w) in p.workers.iter().enumerate() {
            out.push_str(&format!(
                "  worker {i}: busy {:.3} ms, idle {:.3} ms, {} tickets\n",
                w.busy_ns as f64 / 1e6,
                w.idle_ns as f64 / 1e6,
                w.tickets
            ));
        }
        for (stage, h) in &p.stages {
            out.push_str(&format!(
                "  stage {stage:?}: {} jobs, mean {:.1} us, max bucket < {} ns\n",
                h.count,
                h.mean_us(),
                h.max_bucket_ns()
            ));
        }
        out
    }
}

/// Lifetime-erased job runner: invoked with the index of the job to run.
/// See the `SAFETY` discussion in [`WorkerPool::try_run_ordered`].
type Runner = Box<dyn Fn(usize) + Send + Sync + 'static>;

/// One ordered batch of jobs sharing a runner.
struct ScopeCore {
    state: Mutex<ScopeState>,
    done_cv: Condvar,
    runner: Runner,
}

struct ScopeState {
    /// Next unclaimed job index.
    next: usize,
    /// Jobs that finished running (claimed and returned).
    done: usize,
    total: usize,
}

impl ScopeCore {
    /// Claim and run one job of this scope. Returns `false` when no
    /// unclaimed job is left (the scope may still have jobs *running* on
    /// other threads).
    fn run_one(&self) -> bool {
        let i = {
            let mut s = self.state.lock().unwrap();
            if s.next >= s.total {
                return false;
            }
            let i = s.next;
            s.next += 1;
            i
        };
        (self.runner)(i);
        let mut s = self.state.lock().unwrap();
        s.done += 1;
        if s.done == s.total {
            self.done_cv.notify_all();
        }
        true
    }

    /// Block until every job has finished running.
    fn wait_done(&self) {
        let mut s = self.state.lock().unwrap();
        while s.done < s.total {
            s = self.done_cv.wait(s).unwrap();
        }
    }
}

struct PoolQueue {
    tickets: VecDeque<Arc<ScopeCore>>,
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    work_cv: Condvar,
}

/// A panicked job: its submission index and the original panic payload.
pub struct JobPanic {
    /// Submission-order index of the job that panicked.
    pub index: usize,
    /// The payload `panic!` was invoked with.
    pub payload: Box<dyn Any + Send>,
}

/// Total worker threads ever spawned by pools in this process — the pool
/// reuse tests pin this down: once a run has started, it must not move.
static THREADS_SPAWNED: AtomicU64 = AtomicU64::new(0);

/// Total worker threads ever spawned by any [`WorkerPool`] in this
/// process (monotone; never decremented on shutdown).
pub fn threads_spawned() -> u64 {
    THREADS_SPAWNED.load(Ordering::SeqCst)
}

/// A persistent pool of worker threads executing ordered job batches.
///
/// A pool of size `n` runs up to `n` jobs concurrently: `n - 1` dedicated
/// worker threads plus the submitting thread, which always helps run its
/// own batch. Size 1 therefore spawns no threads and executes everything
/// inline, in submission order — exactly the serial executor.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
}

impl WorkerPool {
    /// Build a pool of `size` concurrent lanes (clamped to at least 1).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                tickets: VecDeque::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
        });
        let workers = (0..size - 1)
            .map(|w| {
                let shared = Arc::clone(&shared);
                THREADS_SPAWNED.fetch_add(1, Ordering::SeqCst);
                std::thread::Builder::new()
                    .name(format!("gamma-pool-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            workers,
            size,
        }
    }

    /// Concurrent lanes (worker threads + the submitting thread).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Dedicated worker threads. `0` means the pool is degenerate and
    /// callers should use their serial path.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Run `f(i, items[i])` for every item, concurrently, returning the
    /// results **in submission order**. If any job panicked, returns every
    /// captured panic (also in submission order) instead.
    ///
    /// The submitting thread participates: it runs unclaimed jobs of this
    /// batch until none remain, then waits for in-flight ones. Jobs may
    /// themselves submit nested batches to the same pool.
    pub fn try_run_ordered<T, R, F>(&self, items: Vec<T>, f: F) -> Result<Vec<R>, Vec<JobPanic>>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.try_run_labeled("batch", items, f)
    }

    /// [`try_run_ordered`](Self::try_run_ordered) with a stage label for
    /// the `hostprof` per-stage latency histograms (ignored otherwise).
    fn try_run_labeled<T, R, F>(
        &self,
        label: &str,
        items: Vec<T>,
        f: F,
    ) -> Result<Vec<R>, Vec<JobPanic>>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        #[cfg(not(feature = "hostprof"))]
        let _ = label;
        let n = items.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let cells: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let slots: Vec<Mutex<Option<std::thread::Result<R>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        {
            let run = |i: usize| {
                let item = cells[i].lock().unwrap().take().expect("job claimed once");
                #[cfg(feature = "hostprof")]
                let job_start = std::time::Instant::now();
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, item)));
                #[cfg(feature = "hostprof")]
                hostprof::observe_job(label, job_start.elapsed());
                *slots[i].lock().unwrap() = Some(out);
            };
            let boxed: Box<dyn Fn(usize) + Send + Sync + '_> = Box::new(run);
            // SAFETY: the runner captures only references into this stack
            // frame (`cells`, `slots`, `f`). We erase its lifetime so
            // tickets can sit in the pool's 'static queue, and uphold the
            // borrow manually: `wait_done` below blocks until every job
            // has *finished running*, so no thread touches the runner's
            // captures after this block. Stale tickets popped later see
            // `next >= total` and return without calling the runner;
            // dropping the erased box late is sound because reference
            // captures have no drop glue.
            let runner: Runner = unsafe {
                std::mem::transmute::<Box<dyn Fn(usize) + Send + Sync + '_>, Runner>(boxed)
            };
            let core = Arc::new(ScopeCore {
                state: Mutex::new(ScopeState {
                    next: 0,
                    done: 0,
                    total: n,
                }),
                done_cv: Condvar::new(),
                runner,
            });
            if !self.workers.is_empty() {
                let tickets = self.workers.len().min(n);
                let mut q = self.shared.queue.lock().unwrap();
                for _ in 0..tickets {
                    q.tickets.push_back(Arc::clone(&core));
                }
                drop(q);
                self.shared.work_cv.notify_all();
                #[cfg(feature = "hostprof")]
                hostprof::on_tickets_enqueued(tickets as u64);
            }
            #[cfg(feature = "hostprof")]
            let owner_start = std::time::Instant::now();
            while core.run_one() {}
            #[cfg(feature = "hostprof")]
            hostprof::on_owner_busy(owner_start.elapsed());
            core.wait_done();
        }
        let mut oks = Vec::with_capacity(n);
        let mut panics = Vec::new();
        for (index, slot) in slots.into_iter().enumerate() {
            match slot.into_inner().unwrap().expect("every job ran") {
                Ok(r) => oks.push(r),
                Err(payload) => panics.push(JobPanic { index, payload }),
            }
        }
        if panics.is_empty() {
            Ok(oks)
        } else {
            Err(panics)
        }
    }

    /// [`try_run_ordered`](Self::try_run_ordered), re-raising the first
    /// (submission-order) panic as `` `{what}` job #i panicked: ... ``.
    pub fn run_ordered<T, R, F>(&self, what: &str, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        match self.try_run_labeled(what, items, f) {
            Ok(out) => out,
            Err(panics) => {
                let first = &panics[0];
                panic!(
                    "`{what}` job #{} panicked: {}",
                    first.index,
                    panic_message(first.payload.as_ref())
                );
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    #[cfg(feature = "hostprof")]
    let wid = hostprof::register_worker();
    loop {
        #[cfg(feature = "hostprof")]
        let idle_start = std::time::Instant::now();
        let ticket = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(t) = q.tickets.pop_front() {
                    break Some(t);
                }
                if q.shutdown {
                    break None;
                }
                #[cfg(feature = "hostprof")]
                hostprof::on_cv_sleep();
                q = shared.work_cv.wait(q).unwrap();
            }
        };
        #[cfg(feature = "hostprof")]
        hostprof::on_worker_idle(wid, idle_start.elapsed());
        match ticket {
            // Serve the claimed scope until it has no unclaimed jobs left,
            // then go back to the queue.
            Some(t) => {
                #[cfg(feature = "hostprof")]
                let busy_start = std::time::Instant::now();
                #[cfg(feature = "hostprof")]
                let mut ran_any = false;
                while t.run_one() {
                    #[cfg(feature = "hostprof")]
                    {
                        ran_any = true;
                    }
                }
                #[cfg(feature = "hostprof")]
                hostprof::on_worker_ticket(wid, busy_start.elapsed(), ran_any);
            }
            None => return,
        }
    }
}

/// Chunked **pure** map over a slice, in input order: inline when `pool`
/// is absent, degenerate, or the batch is too small to split; otherwise
/// fixed tuple-range chunks dispatched as one ordered batch. Because `f`
/// is pure and results are reassembled in input order, the output — and
/// therefore every artifact derived from it — is identical for every
/// pool size, including none.
pub fn map_chunks<T, R>(
    pool: Option<&WorkerPool>,
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    // Fixed granularity: affects scheduling only, never results.
    const CHUNK_TUPLES: usize = 512;
    match pool {
        Some(pool) if pool.workers() > 0 && items.len() > CHUNK_TUPLES => {
            let chunks: Vec<&[T]> = items.chunks(CHUNK_TUPLES).collect();
            let out =
                pool.run_ordered("chunk", chunks, |_, c| c.iter().map(&f).collect::<Vec<R>>());
            out.into_iter().flatten().collect()
        }
        _ => items.iter().map(f).collect(),
    }
}

/// Best-effort text of a panic payload (`&str` and `String` payloads; the
/// overwhelmingly common cases from `panic!`/`assert!`).
pub fn panic_message(payload: &(dyn Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// Pool size from the environment: `GAMMA_POOL` when set to a positive
/// integer, otherwise this host's `available_parallelism`.
pub fn configured_size() -> usize {
    match std::env::var("GAMMA_POOL") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => panic!("GAMMA_POOL must be a positive integer, got {v:?}"),
        },
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// The process-wide shared pool, built on first use at
/// [`configured_size`]. Every machine, sweep and bench binary shares it,
/// so its workers are spawned once per process and reused across waves,
/// phases, queries and sweep points.
pub fn default_pool() -> &'static Arc<WorkerPool> {
    static DEFAULT: OnceLock<Arc<WorkerPool>> = OnceLock::new();
    DEFAULT.get_or_init(|| Arc::new(WorkerPool::new(configured_size())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_results_for_any_pool_size() {
        for size in [1, 2, 3, 8] {
            let pool = WorkerPool::new(size);
            let items: Vec<u64> = (0..97).collect();
            let out = pool.run_ordered("square", items, |i, x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(out, (0..97u64).map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn nested_batches_do_not_deadlock() {
        let pool = WorkerPool::new(3);
        let outer = pool.run_ordered("outer", (0..8u64).collect(), |_, x| {
            let inner = pool.run_ordered("inner", (0..16u64).collect(), |_, y| x * 100 + y);
            inner.iter().sum::<u64>()
        });
        for (x, got) in outer.into_iter().enumerate() {
            let want: u64 = (0..16u64).map(|y| x as u64 * 100 + y).sum();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn panics_surface_in_submission_order() {
        let pool = WorkerPool::new(2);
        let err = pool
            .try_run_ordered((0..10u32).collect(), |_, x| {
                if x % 4 == 1 {
                    panic!("job {x} exploded");
                }
                x
            })
            .expect_err("some jobs panicked");
        assert_eq!(err.iter().map(|p| p.index).collect::<Vec<_>>(), [1, 5, 9]);
        assert_eq!(panic_message(err[0].payload.as_ref()), "job 1 exploded");
    }

    #[test]
    fn degenerate_pool_spawns_no_threads() {
        let before = threads_spawned();
        let pool = WorkerPool::new(1);
        assert_eq!(pool.workers(), 0);
        let out = pool.run_ordered("inline", vec![1, 2, 3], |_, x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
        assert_eq!(threads_spawned(), before);
    }

    #[cfg(feature = "hostprof")]
    #[test]
    fn hostprof_counts_jobs_and_stages() {
        let before = hostprof::totals();
        let pool = WorkerPool::new(2);
        let out = pool.run_ordered("hostprof-test-stage", (0..40u64).collect(), |_, x| x + 1);
        assert_eq!(out.len(), 40);
        let after = hostprof::totals();
        assert!(
            after.0 >= before.0 + 40,
            "40 jobs must be counted: {before:?} -> {after:?}"
        );
        let snap = hostprof::snapshot();
        let stage = snap
            .stages
            .iter()
            .find(|(s, _)| s == "hostprof-test-stage")
            .expect("stage histogram recorded");
        assert!(stage.1.count >= 40);
        assert_eq!(stage.1.buckets.iter().sum::<u64>(), stage.1.count);
        assert!(!hostprof::report().is_empty());
    }

    #[test]
    fn workers_are_reused_across_batches() {
        let pool = WorkerPool::new(4);
        let after_build = threads_spawned();
        for round in 0..10u64 {
            let out = pool.run_ordered("round", (0..32u64).collect(), |_, x| x + round);
            assert_eq!(out[0], round);
        }
        assert_eq!(threads_spawned(), after_build, "no spawn after pool build");
    }
}
