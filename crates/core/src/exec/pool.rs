//! # Persistent worker pool
//!
//! The executor's threads are spawned **once** — when the pool is built —
//! and reused for every subsequent step, wave, phase, query and sweep
//! point. A step submits its per-node bundles as a *scope*: an ordered
//! batch of jobs whose results come back in submission order, so callers
//! can merge ledgers, trace events and metrics deterministically no
//! matter which worker ran which job, or in what order they finished.
//!
//! ## Scheduling
//!
//! Each scope keeps its jobs as a shared counter (`next`/`done`) plus one
//! erased runner closure; workers pick jobs by claiming the next index.
//! The pool's global queue holds *tickets* — handles to scopes with work
//! left. The submitting thread never blocks idle: after enqueuing
//! tickets it runs its own scope's jobs until the scope is dry, then
//! waits only for jobs other workers are still finishing. Because a
//! nested scope's owner drains its own queue itself, nesting (a sweep
//! point running steps, a step chunking tuple batches) can never
//! deadlock the pool: blocking waits only ever cover jobs already
//! *running* on some thread, and leaf jobs terminate.
//!
//! ## Determinism
//!
//! The pool itself guarantees only *ordered results*; byte-identical
//! artifacts are the contract of the callers ([`run_step`] replays trace
//! and metrics in participant order, [`StepCtx::par_map`] restricts
//! chunked work to pure computation). `pool_size = 1` spawns no threads
//! at all — every caller detects `workers() == 0` and takes its plain
//! serial path, so the degenerate pool *is* the serial executor.
//!
//! [`run_step`]: super::run_step
//! [`StepCtx::par_map`]: super::StepCtx::par_map

use std::any::Any;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Lifetime-erased job runner: invoked with the index of the job to run.
/// See the `SAFETY` discussion in [`WorkerPool::try_run_ordered`].
type Runner = Box<dyn Fn(usize) + Send + Sync + 'static>;

/// One ordered batch of jobs sharing a runner.
struct ScopeCore {
    state: Mutex<ScopeState>,
    done_cv: Condvar,
    runner: Runner,
}

struct ScopeState {
    /// Next unclaimed job index.
    next: usize,
    /// Jobs that finished running (claimed and returned).
    done: usize,
    total: usize,
}

impl ScopeCore {
    /// Claim and run one job of this scope. Returns `false` when no
    /// unclaimed job is left (the scope may still have jobs *running* on
    /// other threads).
    fn run_one(&self) -> bool {
        let i = {
            let mut s = self.state.lock().unwrap();
            if s.next >= s.total {
                return false;
            }
            let i = s.next;
            s.next += 1;
            i
        };
        (self.runner)(i);
        let mut s = self.state.lock().unwrap();
        s.done += 1;
        if s.done == s.total {
            self.done_cv.notify_all();
        }
        true
    }

    /// Block until every job has finished running.
    fn wait_done(&self) {
        let mut s = self.state.lock().unwrap();
        while s.done < s.total {
            s = self.done_cv.wait(s).unwrap();
        }
    }
}

struct PoolQueue {
    tickets: VecDeque<Arc<ScopeCore>>,
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    work_cv: Condvar,
}

/// A panicked job: its submission index and the original panic payload.
pub struct JobPanic {
    /// Submission-order index of the job that panicked.
    pub index: usize,
    /// The payload `panic!` was invoked with.
    pub payload: Box<dyn Any + Send>,
}

/// Total worker threads ever spawned by pools in this process — the pool
/// reuse tests pin this down: once a run has started, it must not move.
static THREADS_SPAWNED: AtomicU64 = AtomicU64::new(0);

/// Total worker threads ever spawned by any [`WorkerPool`] in this
/// process (monotone; never decremented on shutdown).
pub fn threads_spawned() -> u64 {
    THREADS_SPAWNED.load(Ordering::SeqCst)
}

/// A persistent pool of worker threads executing ordered job batches.
///
/// A pool of size `n` runs up to `n` jobs concurrently: `n - 1` dedicated
/// worker threads plus the submitting thread, which always helps run its
/// own batch. Size 1 therefore spawns no threads and executes everything
/// inline, in submission order — exactly the serial executor.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
}

impl WorkerPool {
    /// Build a pool of `size` concurrent lanes (clamped to at least 1).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                tickets: VecDeque::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
        });
        let workers = (0..size - 1)
            .map(|w| {
                let shared = Arc::clone(&shared);
                THREADS_SPAWNED.fetch_add(1, Ordering::SeqCst);
                std::thread::Builder::new()
                    .name(format!("gamma-pool-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            workers,
            size,
        }
    }

    /// Concurrent lanes (worker threads + the submitting thread).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Dedicated worker threads. `0` means the pool is degenerate and
    /// callers should use their serial path.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Run `f(i, items[i])` for every item, concurrently, returning the
    /// results **in submission order**. If any job panicked, returns every
    /// captured panic (also in submission order) instead.
    ///
    /// The submitting thread participates: it runs unclaimed jobs of this
    /// batch until none remain, then waits for in-flight ones. Jobs may
    /// themselves submit nested batches to the same pool.
    pub fn try_run_ordered<T, R, F>(&self, items: Vec<T>, f: F) -> Result<Vec<R>, Vec<JobPanic>>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let cells: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let slots: Vec<Mutex<Option<std::thread::Result<R>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        {
            let run = |i: usize| {
                let item = cells[i].lock().unwrap().take().expect("job claimed once");
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, item)));
                *slots[i].lock().unwrap() = Some(out);
            };
            let boxed: Box<dyn Fn(usize) + Send + Sync + '_> = Box::new(run);
            // SAFETY: the runner captures only references into this stack
            // frame (`cells`, `slots`, `f`). We erase its lifetime so
            // tickets can sit in the pool's 'static queue, and uphold the
            // borrow manually: `wait_done` below blocks until every job
            // has *finished running*, so no thread touches the runner's
            // captures after this block. Stale tickets popped later see
            // `next >= total` and return without calling the runner;
            // dropping the erased box late is sound because reference
            // captures have no drop glue.
            let runner: Runner = unsafe {
                std::mem::transmute::<Box<dyn Fn(usize) + Send + Sync + '_>, Runner>(boxed)
            };
            let core = Arc::new(ScopeCore {
                state: Mutex::new(ScopeState {
                    next: 0,
                    done: 0,
                    total: n,
                }),
                done_cv: Condvar::new(),
                runner,
            });
            if !self.workers.is_empty() {
                let tickets = self.workers.len().min(n);
                let mut q = self.shared.queue.lock().unwrap();
                for _ in 0..tickets {
                    q.tickets.push_back(Arc::clone(&core));
                }
                drop(q);
                self.shared.work_cv.notify_all();
            }
            while core.run_one() {}
            core.wait_done();
        }
        let mut oks = Vec::with_capacity(n);
        let mut panics = Vec::new();
        for (index, slot) in slots.into_iter().enumerate() {
            match slot.into_inner().unwrap().expect("every job ran") {
                Ok(r) => oks.push(r),
                Err(payload) => panics.push(JobPanic { index, payload }),
            }
        }
        if panics.is_empty() {
            Ok(oks)
        } else {
            Err(panics)
        }
    }

    /// [`try_run_ordered`](Self::try_run_ordered), re-raising the first
    /// (submission-order) panic as `` `{what}` job #i panicked: ... ``.
    pub fn run_ordered<T, R, F>(&self, what: &str, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        match self.try_run_ordered(items, f) {
            Ok(out) => out,
            Err(panics) => {
                let first = &panics[0];
                panic!(
                    "`{what}` job #{} panicked: {}",
                    first.index,
                    panic_message(first.payload.as_ref())
                );
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let ticket = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(t) = q.tickets.pop_front() {
                    break Some(t);
                }
                if q.shutdown {
                    break None;
                }
                q = shared.work_cv.wait(q).unwrap();
            }
        };
        match ticket {
            // Serve the claimed scope until it has no unclaimed jobs left,
            // then go back to the queue.
            Some(t) => while t.run_one() {},
            None => return,
        }
    }
}

/// Chunked **pure** map over a slice, in input order: inline when `pool`
/// is absent, degenerate, or the batch is too small to split; otherwise
/// fixed tuple-range chunks dispatched as one ordered batch. Because `f`
/// is pure and results are reassembled in input order, the output — and
/// therefore every artifact derived from it — is identical for every
/// pool size, including none.
pub fn map_chunks<T, R>(
    pool: Option<&WorkerPool>,
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    // Fixed granularity: affects scheduling only, never results.
    const CHUNK_TUPLES: usize = 512;
    match pool {
        Some(pool) if pool.workers() > 0 && items.len() > CHUNK_TUPLES => {
            let chunks: Vec<&[T]> = items.chunks(CHUNK_TUPLES).collect();
            let out =
                pool.run_ordered("chunk", chunks, |_, c| c.iter().map(&f).collect::<Vec<R>>());
            out.into_iter().flatten().collect()
        }
        _ => items.iter().map(f).collect(),
    }
}

/// Best-effort text of a panic payload (`&str` and `String` payloads; the
/// overwhelmingly common cases from `panic!`/`assert!`).
pub fn panic_message(payload: &(dyn Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// Pool size from the environment: `GAMMA_POOL` when set to a positive
/// integer, otherwise this host's `available_parallelism`.
pub fn configured_size() -> usize {
    match std::env::var("GAMMA_POOL") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => panic!("GAMMA_POOL must be a positive integer, got {v:?}"),
        },
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// The process-wide shared pool, built on first use at
/// [`configured_size`]. Every machine, sweep and bench binary shares it,
/// so its workers are spawned once per process and reused across waves,
/// phases, queries and sweep points.
pub fn default_pool() -> &'static Arc<WorkerPool> {
    static DEFAULT: OnceLock<Arc<WorkerPool>> = OnceLock::new();
    DEFAULT.get_or_init(|| Arc::new(WorkerPool::new(configured_size())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_results_for_any_pool_size() {
        for size in [1, 2, 3, 8] {
            let pool = WorkerPool::new(size);
            let items: Vec<u64> = (0..97).collect();
            let out = pool.run_ordered("square", items, |i, x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(out, (0..97u64).map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn nested_batches_do_not_deadlock() {
        let pool = WorkerPool::new(3);
        let outer = pool.run_ordered("outer", (0..8u64).collect(), |_, x| {
            let inner = pool.run_ordered("inner", (0..16u64).collect(), |_, y| x * 100 + y);
            inner.iter().sum::<u64>()
        });
        for (x, got) in outer.into_iter().enumerate() {
            let want: u64 = (0..16u64).map(|y| x as u64 * 100 + y).sum();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn panics_surface_in_submission_order() {
        let pool = WorkerPool::new(2);
        let err = pool
            .try_run_ordered((0..10u32).collect(), |_, x| {
                if x % 4 == 1 {
                    panic!("job {x} exploded");
                }
                x
            })
            .expect_err("some jobs panicked");
        assert_eq!(err.iter().map(|p| p.index).collect::<Vec<_>>(), [1, 5, 9]);
        assert_eq!(panic_message(err[0].payload.as_ref()), "job 1 exploded");
    }

    #[test]
    fn degenerate_pool_spawns_no_threads() {
        let before = threads_spawned();
        let pool = WorkerPool::new(1);
        assert_eq!(pool.workers(), 0);
        let out = pool.run_ordered("inline", vec![1, 2, 3], |_, x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
        assert_eq!(threads_spawned(), before);
    }

    #[test]
    fn workers_are_reused_across_batches() {
        let pool = WorkerPool::new(4);
        let after_build = threads_spawned();
        for round in 0..10u64 {
            let out = pool.run_ordered("round", (0..32u64).collect(), |_, x| x + round);
            assert_eq!(out[0], round);
        }
        assert_eq!(threads_spawned(), after_build, "no spawn after pool build");
    }
}
