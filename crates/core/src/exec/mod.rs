//! # Per-node executor and shared stage library
//!
//! Every driver phase is a sequence of **steps**. A step gives each
//! participating node's operator instance exclusive access to that node's
//! local state — volume, buffer pool, phase ledger, exchange endpoints —
//! and runs them all to completion before the next step starts:
//!
//! * a *producer* step scans local fragments and sends tuples through the
//!   [`Exchange`](gamma_net::Exchange) (split-table routing, spooling,
//!   result traffic),
//! * an *absorb* step drains each node's inbox and applies the delivered
//!   messages (hash-table inserts/probes, spool stores, result stores).
//!
//! Because a worker only ever touches its own node's state and its own
//! outbox, the steps of one wave are independent: each step dispatches
//! the per-node closures onto the machine's persistent [`pool`] (workers
//! spawned once, reused across waves, phases and queries) and joins them
//! at the step boundary. Determinism is preserved by construction —
//!
//! * virtual-time charges accumulate into per-node ledgers that only the
//!   node's own worker writes; phase totals are sums, independent of
//!   scheduling,
//! * the exchange routes sealed packets source-major, so consumers drain
//!   identical message sequences regardless of producer interleaving,
//! * trace events emitted by a worker are captured in a thread-local sink
//!   and re-emitted into the main sink in node order at the join point,
//!   reproducing the serial emission order byte for byte,
//! * intra-node chunking ([`StepCtx::par_map`]) fans out only *pure*
//!   per-tuple computation; every effect (charge, send, trace event) is
//!   replayed sequentially in input order by the node's own worker.
//!
//! Which executor runs is a per-machine [`ExecConfig`] — there is no
//! process-global switch, so tests comparing serial and pooled runs in
//! one process cannot cross-talk.
//!
//! The stage library lives in the submodules: [`scan`] (fragment scans),
//! [`hash`] (split/build/probe/spill consumers and overflow resolution),
//! [`control`] (scheduler dispatch and filter broadcast accounting).

pub mod control;
pub mod hash;
pub mod pool;
pub mod scan;

use std::sync::Arc;

use gamma_des::Usage;
use gamma_net::{Drained, Inbox, Outbox};
use gamma_wiss::{FileId, HeapScan, HeapWriter};

use crate::batch::TupleBatch;
use crate::cost::CostModel;
use crate::machine::{Ledgers, Machine, NodeId, NodeState};

/// Per-run executor configuration, carried by each
/// [`Machine`](crate::machine::Machine).
#[derive(Clone, Default)]
pub struct ExecConfig {
    /// Worker pool running step fan-out and intra-node chunking. `None` —
    /// or a pool with zero dedicated workers (size 1) — is the serial
    /// reference executor.
    pub pool: Option<Arc<pool::WorkerPool>>,
}

impl ExecConfig {
    /// The serial reference executor: no pool, no threads.
    pub fn serial() -> Self {
        ExecConfig { pool: None }
    }

    /// Run on `pool` (size 1 degenerates to the serial path).
    pub fn pooled(pool: Arc<pool::WorkerPool>) -> Self {
        ExecConfig { pool: Some(pool) }
    }

    /// The build's default: the shared process-wide pool with the
    /// `parallel` feature (sized by [`pool::configured_size`]), serial
    /// otherwise.
    pub fn auto() -> Self {
        #[cfg(feature = "parallel")]
        {
            ExecConfig::pooled(Arc::clone(pool::default_pool()))
        }
        #[cfg(not(feature = "parallel"))]
        {
            ExecConfig::serial()
        }
    }

    /// Concurrent lanes this configuration runs steps on (1 = serial).
    pub fn lanes(&self) -> usize {
        self.pool.as_ref().map_or(1, |p| p.size())
    }
}

/// Everything one node's operator instance may touch during a step.
pub struct StepCtx<'a> {
    /// The node this worker runs on.
    pub node: NodeId,
    /// Cost model (shared, read-only).
    pub cost: &'a CostModel,
    /// The node's local state (volume, buffer pool).
    pub state: &'a mut NodeState,
    /// The node's ledger slot for the current phase.
    pub ledger: &'a mut Usage,
    outbox: &'a mut Outbox,
    inbox: Option<Inbox>,
    pool: Option<&'a pool::WorkerPool>,
}

impl StepCtx<'_> {
    /// Charge CPU microseconds to this node's ledger.
    #[inline]
    pub fn charge(&mut self, us: u64) {
        self.cost.charge(self.ledger, us);
    }

    /// Send one tuple to `dst` on stream `tag` through this node's outbox.
    /// The payload is copied straight into the pending packet frame.
    #[inline]
    pub fn send(&mut self, dst: NodeId, tag: u32, payload: &[u8]) {
        self.outbox.send(self.ledger, dst, tag, payload);
    }

    /// Send one tuple whose payload is the concatenation `a ++ b`
    /// (composed result tuples), framed without materializing the join.
    #[inline]
    pub fn send2(&mut self, dst: NodeId, tag: u32, a: &[u8], b: &[u8]) {
        self.outbox.send2(self.ledger, dst, tag, a, b);
    }

    /// Drain every message delivered to this node before the step started,
    /// charging the receive side of each remote packet. The returned batch
    /// owns the packet buffers; iterate it for borrowed [`gamma_net::Msg`]
    /// views while `self` stays mutable.
    pub fn drain(&mut self) -> Drained {
        match self.inbox.as_mut() {
            Some(i) => i.drain(self.ledger, &self.cost.ring),
            None => Drained::default(),
        }
    }

    /// Read every record of a local heap file into one contiguous
    /// [`TupleBatch`] through this node's buffer pool, charging page reads.
    pub fn read_batch(&mut self, file: FileId) -> TupleBatch {
        let (vol, pool) = self.state.vp();
        read_file_batch(vol, pool, self.ledger, file)
    }

    /// Map a **pure** function over `items` in fixed tuple-range chunks on
    /// the machine's worker pool (inline when serial, or when the batch is
    /// too small to be worth splitting). Results come back in input order,
    /// so the caller replays every effect — ledger charges, sends, trace
    /// and metrics events — sequentially in input order, and chunking can
    /// never change an artifact byte.
    ///
    /// `f` must be pure: it runs outside this node's ledger context,
    /// possibly on another worker thread, so it must not charge, send, or
    /// emit trace/metrics events.
    pub fn par_map<T, R>(&self, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R>
    where
        T: Sync,
        R: Send,
    {
        pool::map_chunks(self.pool, items, f)
    }

    /// [`StepCtx::par_map`] over the records of a [`TupleBatch`]: maps a
    /// **pure** `f` over each record slice in input order (same purity
    /// contract and chunking as `par_map`).
    pub fn par_map_batch<R: Send>(
        &self,
        batch: &TupleBatch,
        f: impl Fn(&[u8]) -> R + Sync,
    ) -> Vec<R> {
        pool::map_chunks(self.pool, batch.ranges(), |&r| f(batch.slice(r)))
    }

    /// End-of-step bookkeeping: the operator must have drained its inbox,
    /// and partially filled outgoing packets are sealed so the next step's
    /// routing delivers them.
    fn finish(self) {
        assert!(
            self.inbox.as_ref().is_none_or(|i| i.is_empty()),
            "node {} finished a step with undrained messages",
            self.node
        );
        self.outbox.seal(self.ledger);
    }
}

/// Split `slice` into disjoint `&mut` element references at the given
/// strictly ascending indices.
fn disjoint_muts<'a, T>(mut slice: &'a mut [T], idxs: &[usize]) -> Vec<&'a mut T> {
    let mut out = Vec::with_capacity(idxs.len());
    let mut consumed = 0usize;
    for &i in idxs {
        debug_assert!(i >= consumed, "indices must be strictly ascending");
        let (_, rest) = slice.split_at_mut(i - consumed);
        let (item, rest) = rest.split_first_mut().expect("index in bounds");
        out.push(item);
        slice = rest;
        consumed = i + 1;
    }
    out
}

/// One worker's inputs for a step.
struct Bundle<'a, S> {
    node: NodeId,
    state: &'a mut NodeState,
    ledger: &'a mut Usage,
    outbox: &'a mut Outbox,
    inbox: Inbox,
    step_state: &'a mut S,
}

/// Run one step: deliver routed packets, then run `f` once per
/// participant with exclusive access to that node's state, ledger and
/// exchange endpoints. `participants` must be strictly ascending;
/// `states` supplies one per-node operator state per participant, and the
/// per-node return values come back in participant order. `stage` names
/// the step in worker panic reports.
///
/// Serially the participants run in ascending node order; when the
/// machine's [`ExecConfig`] carries a pool with dedicated workers, each
/// participant's closure is dispatched onto the pool and the step joins
/// them all before returning — producing byte-identical ledgers, counts
/// and trace output.
pub fn run_step<S, R, F>(
    machine: &mut Machine,
    ledgers: &mut Ledgers,
    stage: &'static str,
    participants: &[NodeId],
    states: &mut [S],
    f: F,
) -> Vec<R>
where
    S: Send,
    R: Send,
    F: Fn(&mut StepCtx<'_>, &mut S) -> R + Sync,
{
    assert_eq!(
        states.len(),
        participants.len(),
        "one state per participant"
    );
    debug_assert!(participants.windows(2).all(|w| w[0] < w[1]));
    machine.exchange.route();
    let Machine {
        cfg,
        nodes,
        exchange,
        exec,
        ..
    } = machine;
    let cost = &cfg.cost;
    let pool: Option<&pool::WorkerPool> = exec.pool.as_deref().filter(|p| p.workers() > 0);
    let inboxes: Vec<Inbox> = participants
        .iter()
        .map(|&n| exchange.take_inbox(n))
        .collect();
    let node_refs = disjoint_muts(nodes.as_mut_slice(), participants);
    let outbox_refs = disjoint_muts(exchange.outboxes_mut(), participants);
    let ledger_refs = disjoint_muts(ledgers.as_mut_slice(), participants);
    let bundles: Vec<Bundle<'_, S>> = participants
        .iter()
        .zip(node_refs)
        .zip(outbox_refs)
        .zip(ledger_refs)
        .zip(inboxes)
        .zip(states.iter_mut())
        .map(
            |(((((&node, state), outbox), ledger), inbox), step_state)| Bundle {
                node,
                state,
                ledger,
                outbox,
                inbox,
                step_state,
            },
        )
        .collect();
    if let Some(pool) = pool {
        if bundles.len() > 1 {
            return run_bundles_pooled(pool, cost, stage, bundles, &f);
        }
    }
    bundles
        .into_iter()
        .map(|b| run_bundle(cost, pool, b, &f))
        .collect()
}

fn run_bundle<S, R>(
    cost: &CostModel,
    pool: Option<&pool::WorkerPool>,
    b: Bundle<'_, S>,
    f: &(impl Fn(&mut StepCtx<'_>, &mut S) -> R + Sync),
) -> R {
    let mut ctx = StepCtx {
        node: b.node,
        cost,
        state: b.state,
        ledger: b.ledger,
        outbox: b.outbox,
        inbox: Some(b.inbox),
        pool,
    };
    let r = f(&mut ctx, b.step_state);
    ctx.finish();
    r
}

fn run_bundles_pooled<S, R>(
    pool: &pool::WorkerPool,
    cost: &CostModel,
    stage: &'static str,
    bundles: Vec<Bundle<'_, S>>,
    f: &(impl Fn(&mut StepCtx<'_>, &mut S) -> R + Sync),
) -> Vec<R>
where
    S: Send,
    R: Send,
{
    #[cfg(feature = "trace")]
    let tracing = gamma_trace::is_active();
    // Workers record metrics into private registries attributed to the
    // main thread's current phase; the join point merges them. Every
    // merge op is commutative (counter add / gauge max / histogram add),
    // so the merged registry is identical to serial emission.
    #[cfg(feature = "metrics")]
    let metering = gamma_metrics::current_phase();
    let participant_nodes: Vec<NodeId> = bundles.iter().map(|b| b.node).collect();
    let outs = pool.try_run_ordered(bundles, |_, b| {
        // The thread running this bundle may be a pool worker or the
        // submitting thread itself (the owner helps drain its batch), so
        // save whatever sink was installed, collect this bundle's events
        // privately, and restore on the way out — even across a panic, so
        // an unwinding bundle cannot leak its private sink into the
        // owner's thread-local slot. The join point below replays events
        // in participant order, reproducing serial emission byte for
        // byte.
        #[cfg(feature = "trace")]
        let prev_sink = if tracing {
            gamma_trace::install(gamma_trace::TraceSink::unbounded())
        } else {
            None
        };
        #[cfg(feature = "metrics")]
        let prev_registry = match metering {
            Some(phase) => gamma_metrics::install(gamma_metrics::Registry::at_phase(phase)),
            None => None,
        };
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_bundle(cost, Some(pool), b, f)
        }));
        #[cfg(feature = "trace")]
        let events: Vec<(u16, u64, gamma_trace::EventKind)> = if tracing {
            let own = gamma_trace::take()
                .map(|s| s.events().map(|e| (e.node, e.offset_us, e.kind)).collect())
                .unwrap_or_default();
            if let Some(prev) = prev_sink {
                gamma_trace::install(prev);
            }
            own
        } else {
            Vec::new()
        };
        #[cfg(not(feature = "trace"))]
        let events: Vec<()> = Vec::new();
        #[cfg(feature = "metrics")]
        let registry = if metering.is_some() {
            let own = gamma_metrics::take();
            if let Some(prev) = prev_registry {
                gamma_metrics::install(prev);
            }
            own
        } else {
            None
        };
        #[cfg(not(feature = "metrics"))]
        let registry = ();
        match r {
            Ok(v) => (v, events, registry),
            // Re-raise into the pool's catch with thread-locals restored;
            // the join point below adds stage/node context.
            Err(payload) => std::panic::resume_unwind(payload),
        }
    });
    let outs = match outs {
        Ok(outs) => outs,
        Err(panics) => {
            let first = &panics[0];
            panic!(
                "step `{stage}` panicked at node {}: {}",
                participant_nodes[first.index],
                pool::panic_message(first.payload.as_ref())
            );
        }
    };
    let mut results = Vec::with_capacity(outs.len());
    for (r, events, registry) in outs {
        #[cfg(feature = "trace")]
        for (node, offset_us, kind) in events {
            gamma_trace::emit(node, offset_us, kind);
        }
        #[cfg(not(feature = "trace"))]
        drop(events);
        #[cfg(feature = "metrics")]
        if let Some(worker) = registry {
            gamma_metrics::with(|reg| reg.merge(worker));
        }
        #[cfg(not(feature = "metrics"))]
        let () = registry;
        results.push(r);
    }
    results
}

/// Scan a heap file into one contiguous [`TupleBatch`], charging page
/// reads (shared by [`StepCtx::read_batch`] and the free helper below).
fn read_file_batch(
    vol: &gamma_wiss::Volume,
    pool: &mut gamma_wiss::BufferPool,
    usage: &mut Usage,
    file: FileId,
) -> TupleBatch {
    let mut scan = HeapScan::open(vol, file);
    let mut batch = TupleBatch::with_capacity(vol.file_records(file), 64);
    while let Some(rec) = scan.next_ref(pool, usage) {
        batch.push(rec);
    }
    batch
}

/// Read every record of a heap file at `node` into a [`TupleBatch`]
/// (main-thread convenience for sequential operators; workers use
/// [`StepCtx::read_batch`]).
pub fn read_batch(
    machine: &mut Machine,
    ledgers: &mut Ledgers,
    node: NodeId,
    file: FileId,
) -> TupleBatch {
    let (vol, pool) = machine.nodes[node].vp();
    read_file_batch(vol, pool, &mut ledgers[node], file)
}

/// Delete a temporary file at `node` and evict its cached pages.
pub fn delete_file(machine: &mut Machine, node: NodeId, file: FileId) {
    let (vol, pool) = machine.nodes[node].vp();
    vol.delete_file(file);
    pool.evict_file(file);
}

/// Create-and-close an empty heap file at `node` (the empty half of an
/// overflow pair).
pub fn empty_file(machine: &mut Machine, ledgers: &mut Ledgers, node: NodeId) -> FileId {
    let page = machine.cfg.cost.disk.page_bytes;
    let w = HeapWriter::create(machine.nodes[node].vol_mut(), page);
    let (vol, pool) = machine.nodes[node].vp();
    w.finish(vol, pool, &mut ledgers[node])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;

    #[test]
    fn disjoint_muts_picks_the_right_elements() {
        let mut v = vec![10, 20, 30, 40, 50];
        let picked = disjoint_muts(v.as_mut_slice(), &[0, 2, 4]);
        assert_eq!(picked.iter().map(|r| **r).collect::<Vec<_>>(), [10, 30, 50]);
        for r in picked {
            *r += 1;
        }
        assert_eq!(v, vec![11, 20, 31, 40, 51]);
    }

    #[test]
    fn run_step_delivers_messages_across_steps() {
        let mut m = Machine::new(MachineConfig::local_8());
        let mut ledgers = m.ledgers();
        let participants: Vec<NodeId> = (0..8).collect();
        // Step 1: every node sends one tuple to node (n+1) % 8.
        let mut unit = vec![(); 8];
        run_step(
            &mut m,
            &mut ledgers,
            "send",
            &participants,
            &mut unit,
            |ctx, _| {
                let dst = (ctx.node + 1) % 8;
                ctx.send(dst, 7, &[ctx.node as u8; 64]);
            },
        );
        assert!(!m.exchange.is_drained());
        // Step 2: every node drains exactly one message from its neighbour.
        let got = run_step(
            &mut m,
            &mut ledgers,
            "drain",
            &participants,
            &mut unit,
            |ctx, _| {
                let drained = ctx.drain();
                assert_eq!(drained.len(), 1);
                let msg = drained.iter().next().unwrap();
                (msg.src, msg.payload[0])
            },
        );
        for (n, &(src, byte)) in got.iter().enumerate() {
            assert_eq!(src, (n + 8 - 1) % 8);
            assert_eq!(byte as usize, src);
        }
        assert!(m.exchange.is_drained());
    }

    #[test]
    #[should_panic(expected = "undrained")]
    fn undrained_step_is_detected() {
        let mut m = Machine::new(MachineConfig::local_8());
        let mut ledgers = m.ledgers();
        let participants: Vec<NodeId> = (0..8).collect();
        let mut unit = vec![(); 8];
        run_step(
            &mut m,
            &mut ledgers,
            "send",
            &participants,
            &mut unit,
            |ctx, _| {
                ctx.send((ctx.node + 1) % 8, 7, &[0u8; 2048]);
            },
        );
        // Nobody drains: the next step must notice.
        run_step(
            &mut m,
            &mut ledgers,
            "noop",
            &participants,
            &mut unit,
            |_, _| (),
        );
    }
}
