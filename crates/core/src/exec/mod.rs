//! # Per-node executor and shared stage library
//!
//! Every driver phase is a sequence of **steps**. A step gives each
//! participating node's operator instance exclusive access to that node's
//! local state — volume, buffer pool, phase ledger, exchange endpoints —
//! and runs them all to completion before the next step starts:
//!
//! * a *producer* step scans local fragments and sends tuples through the
//!   [`Exchange`](gamma_net::Exchange) (split-table routing, spooling,
//!   result traffic),
//! * an *absorb* step drains each node's inbox and applies the delivered
//!   messages (hash-table inserts/probes, spool stores, result stores).
//!
//! Because a worker only ever touches its own node's state and its own
//! outbox, the steps of one wave are independent: with the `parallel`
//! feature each step fans the per-node closures out to OS threads and
//! joins them at the step boundary. Determinism is preserved by
//! construction —
//!
//! * virtual-time charges accumulate into per-node ledgers that only the
//!   node's own worker writes; phase totals are sums, independent of
//!   scheduling,
//! * the exchange routes sealed packets source-major, so consumers drain
//!   identical message sequences regardless of producer interleaving,
//! * trace events emitted by a worker are captured in a thread-local sink
//!   and re-emitted into the main sink in node order at the join point,
//!   reproducing the serial emission order byte for byte.
//!
//! The stage library lives in the submodules: [`scan`] (fragment scans),
//! [`hash`] (split/build/probe/spill consumers and overflow resolution),
//! [`control`] (scheduler dispatch and filter broadcast accounting).

pub mod control;
pub mod hash;
pub mod scan;

use gamma_des::Usage;
use gamma_net::{Inbox, Msg, Outbox};
use gamma_wiss::{FileId, HeapScan, HeapWriter};

use crate::cost::CostModel;
use crate::machine::{Ledgers, Machine, NodeId, NodeState};

/// Runtime switch for the threaded executor (only meaningful with the
/// `parallel` feature; the serial path is always available and is the
/// reference implementation).
#[cfg(feature = "parallel")]
static PARALLEL: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(true);

/// Enable or disable the threaded executor at runtime. Tests flip this to
/// compare the two paths inside one process.
#[cfg(feature = "parallel")]
pub fn set_parallel(on: bool) {
    PARALLEL.store(on, std::sync::atomic::Ordering::SeqCst);
}

/// True when steps fan out to per-node worker threads.
#[cfg(feature = "parallel")]
pub fn parallel_enabled() -> bool {
    PARALLEL.load(std::sync::atomic::Ordering::SeqCst)
}

/// Without the `parallel` feature every step runs serially.
#[cfg(not(feature = "parallel"))]
pub fn parallel_enabled() -> bool {
    false
}

/// Everything one node's operator instance may touch during a step.
pub struct StepCtx<'a> {
    /// The node this worker runs on.
    pub node: NodeId,
    /// Cost model (shared, read-only).
    pub cost: &'a CostModel,
    /// The node's local state (volume, buffer pool).
    pub state: &'a mut NodeState,
    /// The node's ledger slot for the current phase.
    pub ledger: &'a mut Usage,
    outbox: &'a mut Outbox,
    inbox: Option<Inbox>,
}

impl StepCtx<'_> {
    /// Charge CPU microseconds to this node's ledger.
    #[inline]
    pub fn charge(&mut self, us: u64) {
        self.cost.charge(self.ledger, us);
    }

    /// Send one tuple to `dst` on stream `tag` through this node's outbox.
    #[inline]
    pub fn send(&mut self, dst: NodeId, tag: u32, payload: Vec<u8>) {
        self.outbox.send(self.ledger, dst, tag, payload);
    }

    /// Drain every message delivered to this node before the step started,
    /// charging the receive side of each remote packet.
    pub fn drain(&mut self) -> Vec<Msg> {
        match self.inbox.as_mut() {
            Some(i) => i.drain(self.ledger, &self.cost.ring),
            None => Vec::new(),
        }
    }

    /// Read every record of a local heap file through this node's buffer
    /// pool, charging page reads.
    pub fn read_records(&mut self, file: FileId) -> Vec<Vec<u8>> {
        let (vol, pool) = self.state.vp();
        HeapScan::open(vol, file).collect_all(pool, self.ledger)
    }

    /// End-of-step bookkeeping: the operator must have drained its inbox,
    /// and partially filled outgoing packets are sealed so the next step's
    /// routing delivers them.
    fn finish(self) {
        assert!(
            self.inbox.as_ref().is_none_or(|i| i.is_empty()),
            "node {} finished a step with undrained messages",
            self.node
        );
        self.outbox.seal(self.ledger);
    }
}

/// Split `slice` into disjoint `&mut` element references at the given
/// strictly ascending indices.
fn disjoint_muts<'a, T>(mut slice: &'a mut [T], idxs: &[usize]) -> Vec<&'a mut T> {
    let mut out = Vec::with_capacity(idxs.len());
    let mut consumed = 0usize;
    for &i in idxs {
        debug_assert!(i >= consumed, "indices must be strictly ascending");
        let (_, rest) = slice.split_at_mut(i - consumed);
        let (item, rest) = rest.split_first_mut().expect("index in bounds");
        out.push(item);
        slice = rest;
        consumed = i + 1;
    }
    out
}

/// One worker's inputs for a step.
struct Bundle<'a, S> {
    node: NodeId,
    state: &'a mut NodeState,
    ledger: &'a mut Usage,
    outbox: &'a mut Outbox,
    inbox: Inbox,
    step_state: &'a mut S,
}

/// Run one step: deliver routed packets, then run `f` once per
/// participant with exclusive access to that node's state, ledger and
/// exchange endpoints. `participants` must be strictly ascending;
/// `states` supplies one per-node operator state per participant, and the
/// per-node return values come back in participant order.
///
/// Serially the participants run in ascending node order; with the
/// `parallel` feature (and [`parallel_enabled`]) each participant runs on
/// its own OS thread and the step joins them all before returning —
/// producing byte-identical ledgers, counts and trace output.
pub fn run_step<S, R, F>(
    machine: &mut Machine,
    ledgers: &mut Ledgers,
    participants: &[NodeId],
    states: &mut [S],
    f: F,
) -> Vec<R>
where
    S: Send,
    R: Send,
    F: Fn(&mut StepCtx<'_>, &mut S) -> R + Sync,
{
    assert_eq!(
        states.len(),
        participants.len(),
        "one state per participant"
    );
    debug_assert!(participants.windows(2).all(|w| w[0] < w[1]));
    machine.exchange.route();
    let Machine {
        cfg,
        nodes,
        exchange,
        ..
    } = machine;
    let cost = &cfg.cost;
    let inboxes: Vec<Inbox> = participants
        .iter()
        .map(|&n| exchange.take_inbox(n))
        .collect();
    let node_refs = disjoint_muts(nodes.as_mut_slice(), participants);
    let outbox_refs = disjoint_muts(exchange.outboxes_mut(), participants);
    let ledger_refs = disjoint_muts(ledgers.as_mut_slice(), participants);
    let bundles: Vec<Bundle<'_, S>> = participants
        .iter()
        .zip(node_refs)
        .zip(outbox_refs)
        .zip(ledger_refs)
        .zip(inboxes)
        .zip(states.iter_mut())
        .map(
            |(((((&node, state), outbox), ledger), inbox), step_state)| Bundle {
                node,
                state,
                ledger,
                outbox,
                inbox,
                step_state,
            },
        )
        .collect();
    #[cfg(feature = "parallel")]
    if parallel_enabled() && bundles.len() > 1 {
        return run_bundles_parallel(cost, bundles, &f);
    }
    bundles
        .into_iter()
        .map(|b| run_bundle(cost, b, &f))
        .collect()
}

fn run_bundle<S, R>(
    cost: &CostModel,
    b: Bundle<'_, S>,
    f: &(impl Fn(&mut StepCtx<'_>, &mut S) -> R + Sync),
) -> R {
    let mut ctx = StepCtx {
        node: b.node,
        cost,
        state: b.state,
        ledger: b.ledger,
        outbox: b.outbox,
        inbox: Some(b.inbox),
    };
    let r = f(&mut ctx, b.step_state);
    ctx.finish();
    r
}

#[cfg(feature = "parallel")]
fn run_bundles_parallel<S, R>(
    cost: &CostModel,
    bundles: Vec<Bundle<'_, S>>,
    f: &(impl Fn(&mut StepCtx<'_>, &mut S) -> R + Sync),
) -> Vec<R>
where
    S: Send,
    R: Send,
{
    #[cfg(feature = "trace")]
    let tracing = gamma_trace::is_active();
    // Workers record metrics into private registries attributed to the
    // main thread's current phase; the join point merges them. Every
    // merge op is commutative (counter add / gauge max / histogram add),
    // so the merged registry is identical to serial emission.
    #[cfg(feature = "metrics")]
    let metering = gamma_metrics::current_phase();
    let outs = std::thread::scope(|scope| {
        let handles: Vec<_> = bundles
            .into_iter()
            .map(|b| {
                scope.spawn(move || {
                    // Each worker collects its trace events privately; the
                    // join point below replays them in node order so the
                    // merged stream is identical to a serial run.
                    #[cfg(feature = "trace")]
                    if tracing {
                        gamma_trace::install(gamma_trace::TraceSink::unbounded());
                    }
                    #[cfg(feature = "metrics")]
                    if let Some(phase) = metering {
                        gamma_metrics::install(gamma_metrics::Registry::at_phase(phase));
                    }
                    let r = run_bundle(cost, b, f);
                    #[cfg(feature = "trace")]
                    let events: Vec<(u16, u64, gamma_trace::EventKind)> = if tracing {
                        gamma_trace::take()
                            .map(|s| s.events().map(|e| (e.node, e.offset_us, e.kind)).collect())
                            .unwrap_or_default()
                    } else {
                        Vec::new()
                    };
                    #[cfg(not(feature = "trace"))]
                    let events: Vec<()> = Vec::new();
                    #[cfg(feature = "metrics")]
                    let registry = metering.and_then(|_| gamma_metrics::take());
                    #[cfg(not(feature = "metrics"))]
                    let registry = ();
                    (r, events, registry)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                // Re-raise worker panics with their original payload so
                // executor assertions read the same as in serial mode.
                h.join().unwrap_or_else(|e| std::panic::resume_unwind(e))
            })
            .collect::<Vec<_>>()
    });
    let mut results = Vec::with_capacity(outs.len());
    for (r, events, registry) in outs {
        #[cfg(feature = "trace")]
        for (node, offset_us, kind) in events {
            gamma_trace::emit(node, offset_us, kind);
        }
        #[cfg(not(feature = "trace"))]
        drop(events);
        #[cfg(feature = "metrics")]
        if let Some(worker) = registry {
            gamma_metrics::with(|reg| reg.merge(worker));
        }
        #[cfg(not(feature = "metrics"))]
        let () = registry;
        results.push(r);
    }
    results
}

/// Read every record of a heap file at `node` (main-thread convenience for
/// sequential operators; workers use [`StepCtx::read_records`]).
pub fn read_records(
    machine: &mut Machine,
    ledgers: &mut Ledgers,
    node: NodeId,
    file: FileId,
) -> Vec<Vec<u8>> {
    let (vol, pool) = machine.nodes[node].vp();
    HeapScan::open(vol, file).collect_all(pool, &mut ledgers[node])
}

/// Delete a temporary file at `node` and evict its cached pages.
pub fn delete_file(machine: &mut Machine, node: NodeId, file: FileId) {
    let (vol, pool) = machine.nodes[node].vp();
    vol.delete_file(file);
    pool.evict_file(file);
}

/// Create-and-close an empty heap file at `node` (the empty half of an
/// overflow pair).
pub fn empty_file(machine: &mut Machine, ledgers: &mut Ledgers, node: NodeId) -> FileId {
    let page = machine.cfg.cost.disk.page_bytes;
    let w = HeapWriter::create(machine.nodes[node].vol_mut(), page);
    let (vol, pool) = machine.nodes[node].vp();
    w.finish(vol, pool, &mut ledgers[node])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;

    #[test]
    fn disjoint_muts_picks_the_right_elements() {
        let mut v = vec![10, 20, 30, 40, 50];
        let picked = disjoint_muts(v.as_mut_slice(), &[0, 2, 4]);
        assert_eq!(picked.iter().map(|r| **r).collect::<Vec<_>>(), [10, 30, 50]);
        for r in picked {
            *r += 1;
        }
        assert_eq!(v, vec![11, 20, 31, 40, 51]);
    }

    #[test]
    fn run_step_delivers_messages_across_steps() {
        let mut m = Machine::new(MachineConfig::local_8());
        let mut ledgers = m.ledgers();
        let participants: Vec<NodeId> = (0..8).collect();
        // Step 1: every node sends one tuple to node (n+1) % 8.
        let mut unit = vec![(); 8];
        run_step(&mut m, &mut ledgers, &participants, &mut unit, |ctx, _| {
            let dst = (ctx.node + 1) % 8;
            ctx.send(dst, 7, vec![ctx.node as u8; 64]);
        });
        assert!(!m.exchange.is_drained());
        // Step 2: every node drains exactly one message from its neighbour.
        let got = run_step(&mut m, &mut ledgers, &participants, &mut unit, |ctx, _| {
            let msgs = ctx.drain();
            assert_eq!(msgs.len(), 1);
            (msgs[0].src, msgs[0].payload[0])
        });
        for (n, &(src, byte)) in got.iter().enumerate() {
            assert_eq!(src, (n + 8 - 1) % 8);
            assert_eq!(byte as usize, src);
        }
        assert!(m.exchange.is_drained());
    }

    #[test]
    #[should_panic(expected = "undrained")]
    fn undrained_step_is_detected() {
        let mut m = Machine::new(MachineConfig::local_8());
        let mut ledgers = m.ledgers();
        let participants: Vec<NodeId> = (0..8).collect();
        let mut unit = vec![(); 8];
        run_step(&mut m, &mut ledgers, &participants, &mut unit, |ctx, _| {
            ctx.send((ctx.node + 1) % 8, 7, vec![0u8; 2048]);
        });
        // Nobody drains: the next step must notice.
        run_step(&mut m, &mut ledgers, &participants, &mut unit, |_, _| ());
    }
}
