//! Consumer-side join stages and Simple-hash overflow resolution.
//!
//! Every hash-based join funnels through a set of per-node [`JoinNode`]
//! consumer states driven by the executor: one [`JoinHashTable`] per join
//! process (the `Build`/`Probe` stages), plus each node's overflow spools,
//! bucket-forming writers (`BucketSpill`), sort-merge partition sinks, and
//! result store operator. Producers route tuples to these consumers as
//! tagged exchange messages; an *absorb* step drains each node's inbox and
//! applies the messages.
//!
//! Key behaviours implemented exactly as the paper describes:
//!
//! * overflow files `R'_i` / `S'_i` of join site *i* live **whole on one
//!   disk** (the disk paired with the site), different sites on different
//!   disks;
//! * the *outer* relation's tuples destined for an overflowed range are
//!   diverted at the **source** (the split table is augmented with the `h'`
//!   cutoffs via [`ProbeSnapshot`]) and spooled directly to `S'`, never
//!   visiting the join site;
//! * recursive passes re-split the aggregate overflow partitions across
//!   *all* join sites **with a fresh hash function**, which is what turns
//!   HPJA joins into non-HPJA joins during overflow processing (§4.1);
//! * bit filters are applied only to tuples that will actually probe this
//!   pass — overflow-bound tuples are filtered by the next pass's filters,
//!   preserving the no-false-negative guarantee;
//! * a block-nested-loops fallback guards against pathological inputs on
//!   which hash partitioning cannot make progress (every tuple carrying
//!   the same join value).

use std::collections::BTreeMap;

use gamma_des::SimTime;
use gamma_net::Msg;
use gamma_wiss::{FileId, HeapWriter};

use crate::bitfilter::BitFilter;
use crate::exec::{self, control, run_step, StepCtx};
use crate::hash::{hash_u32, overflow_seed, respread_seed};
use crate::hash_table::{JoinHashTable, MatchSet, Offer};
use crate::machine::{Ledgers, Machine, NodeId, ResultRoute, ResultSink, RESULT_TAG};
use crate::tuple::{compose_into, Attr};

/// Stream tag of inner tuples headed for a join site's build stage; the low
/// bits carry the site index.
pub const TAG_BUILD: u32 = 0x42 << 24;
/// Outer tuples headed for a join site's probe stage.
pub const TAG_PROBE: u32 = 0x50 << 24;
/// Inner tuples spooled to a site's `R'` overflow file.
pub const TAG_SPOOL_R: u32 = 0x72 << 24;
/// Outer tuples diverted at the source to a site's `S'` overflow file.
pub const TAG_SPOOL_S: u32 = 0x73 << 24;
/// Tuples headed for a sort-merge partition sink (destination implies the
/// site, so the low bits are unused).
pub const TAG_PART: u32 = 0x70 << 24;
/// Tuples headed for a Grace/Hybrid bucket-forming writer; the low bits
/// carry the 1-based bucket number.
pub const TAG_BUCKET: u32 = 0x62 << 24;

/// Mask selecting a tag's kind byte.
pub const TAG_KIND: u32 = 0xFF00_0000;
/// Mask selecting a tag's 24-bit argument payload (site or bucket index).
pub const TAG_ARG: u32 = 0x00FF_FFFF;

/// Compose a stream tag from a kind constant and its site/bucket argument.
/// Panics with context when the argument would overflow the 24-bit payload
/// (an unchecked `TAG_X | arg as u32` would silently corrupt the kind byte
/// and misroute the stream).
#[inline]
pub fn tag(kind: u32, arg: usize) -> u32 {
    assert_eq!(
        kind & TAG_ARG,
        0,
        "tag kind {kind:#010x} has payload bits set"
    );
    assert!(
        arg as u64 <= TAG_ARG as u64,
        "tag argument {arg} (kind {:#04x}) overflows the 24-bit payload",
        kind >> 24
    );
    kind | arg as u32
}

#[inline]
fn tag_arg(tag: u32) -> usize {
    (tag & TAG_ARG) as usize
}

/// A spool/bucket/partition file under construction at one node.
struct SpoolFile {
    writer: HeapWriter,
    count: u64,
}

/// One join process: the site's hash table, bit filter and overflow home.
struct SiteCore {
    index: usize,
    table: JoinHashTable,
    filter: Option<BitFilter>,
    overflow_home: NodeId,
    r_attr: Attr,
    s_attr: Attr,
}

/// The pure outcome of probing one outer tuple against a frozen site
/// table: the chain-compare count and the matching arena ranges. The
/// composed `R ‖ S` result is framed straight into the outbox at replay
/// time ([`StepCtx::send2`]) — it is never materialized on the heap.
struct ProbeOut {
    compares: u64,
    matches: MatchSet,
}

impl SiteCore {
    /// Probe one outer tuple against this site without touching any
    /// mutable state — safe to run on any worker, in any order.
    fn probe_pure(&self, tuple: &[u8]) -> ProbeOut {
        let val = self.s_attr.get(tuple);
        let (matches, compares) = self.table.probe_ranges(val);
        ProbeOut { compares, matches }
    }
}

/// A sort-merge partition sink at one disk node: incoming tuples are
/// appended to the node's temp file; in filter-building mode the site's
/// bit filter is set as they arrive.
struct PartSink {
    writer: HeapWriter,
    filter: Option<BitFilter>,
    attr: Attr,
}

/// Everything one node's consumer side may be running: at most one join
/// site, overflow spools it is home to, bucket-forming writers, a
/// sort-merge partition sink, and the node's result store operator.
pub struct JoinNode {
    site: Option<SiteCore>,
    spools: BTreeMap<u32, SpoolFile>,
    buckets: BTreeMap<u32, SpoolFile>,
    part: Option<PartSink>,
    store: Option<HeapWriter>,
    stored: u64,
    check: u64,
    route: ResultRoute,
}

impl JoinNode {
    /// Drain this node's inbox and apply every delivered message. The
    /// drained batch owns the packet buffers; every payload is handled as
    /// a borrowed slice, so consuming a message allocates only where the
    /// tuple genuinely moves somewhere (a table arena, a heap page, an
    /// outgoing packet frame).
    fn absorb_step(&mut self, ctx: &mut StepCtx<'_>) {
        let drained = ctx.drain();
        let msgs = drained.msgs();
        let probes = self.precomputed_probes(ctx, &msgs);
        for (m, pre) in msgs.iter().zip(probes) {
            match m.tag & TAG_KIND {
                TAG_BUILD => self.on_build(ctx, tag_arg(m.tag), m.payload),
                TAG_PROBE => self.on_probe(ctx, tag_arg(m.tag), m.payload, pre),
                TAG_SPOOL_R | TAG_SPOOL_S => self.on_spool(ctx, m.tag, m.payload),
                TAG_BUCKET => self.on_bucket(ctx, m.tag, m.payload),
                TAG_PART => self.on_part(ctx, m.payload),
                RESULT_TAG => self.on_result(ctx, m.payload),
                other => panic!("node {} got unknown stream tag {other:#x}", ctx.node),
            }
        }
    }

    /// Chunk this batch's probe work across the pool: when the batch holds
    /// no build traffic the site's table is frozen for the whole drain, so
    /// each probe's chain walk and match composition are pure functions of
    /// the payload and can be precomputed in tuple-range chunks
    /// ([`StepCtx::par_map`]). The replay in [`Self::absorb_step`] then
    /// applies charges, counts, trace events and result sends in arrival
    /// order — byte-identical to probing inline. Batches that interleave
    /// builds (which mutate the table) precompute nothing.
    fn precomputed_probes(&self, ctx: &StepCtx<'_>, msgs: &[Msg<'_>]) -> Vec<Option<ProbeOut>> {
        let mutates = msgs.iter().any(|m| m.tag & TAG_KIND == TAG_BUILD);
        let site = match &self.site {
            Some(site) if !mutates => site,
            _ => return msgs.iter().map(|_| None).collect(),
        };
        ctx.par_map(msgs, |m| {
            (m.tag & TAG_KIND == TAG_PROBE).then(|| site.probe_pure(m.payload))
        })
    }

    /// Build stage: insert one inner tuple, handling hash-table overflow —
    /// evictions and diversions are spooled to `R'_i` at the site's home.
    fn on_build(&mut self, ctx: &mut StepCtx<'_>, i: usize, tuple: &[u8]) {
        let site = self.site.as_mut().expect("build tuple at a join site");
        debug_assert_eq!(site.index, i, "build tuple routed to the wrong site");
        let val = site.r_attr.get(tuple);
        ctx.ledger.counts.tuples_in += 1;
        ctx.charge(ctx.cost.build_insert_us + ctx.cost.histogram_update_us);
        if let Some(f) = &mut site.filter {
            ctx.charge(ctx.cost.filter_set_us);
            f.set(val);
        }
        ctx.ledger.counts.hash_inserts += 1;
        #[cfg(feature = "metrics")]
        {
            gamma_metrics::counter_add("op_tuples_in", ctx.node as u16, "build", 1);
            gamma_metrics::counter_add("hash_inserts", ctx.node as u16, "build", 1);
        }
        #[cfg(feature = "trace")]
        gamma_trace::emit(
            ctx.node as u16,
            ctx.ledger.total_demand().as_us(),
            gamma_trace::EventKind::HashInsert,
        );
        let home = site.overflow_home;
        let spool_tag = tag(TAG_SPOOL_R, i);
        match site.table.offer(val, tuple, ctx.cost.overflow_clear_pct) {
            Offer::Stored => {}
            Offer::Diverted => ctx.send(home, spool_tag, tuple),
            Offer::Overflowed {
                evicted,
                diverted,
                scanned,
            } => {
                // The heuristic examines every resident tuple to find the
                // ones above the new cutoff (§4.1).
                ctx.charge(ctx.cost.clear_scan_us * scanned);
                #[cfg(feature = "trace")]
                gamma_trace::emit(
                    ctx.node as u16,
                    ctx.ledger.total_demand().as_us(),
                    gamma_trace::EventKind::BucketSpill { bucket: i as u16 },
                );
                for (_, range) in evicted {
                    ctx.charge(ctx.cost.evict_tuple_us);
                    ctx.ledger.counts.overflow_evictions += 1;
                    #[cfg(feature = "metrics")]
                    gamma_metrics::counter_add("overflow_evictions", ctx.node as u16, "build", 1);
                    ctx.send(home, spool_tag, site.table.slice(range));
                }
                if diverted {
                    ctx.send(home, spool_tag, tuple);
                }
            }
        }
    }

    /// Probe stage: matches are composed `R ‖ S` and dealt to the store
    /// operators as result messages — framed straight into the outgoing
    /// packet ([`StepCtx::send2`]), never materialized. `pre` carries the
    /// chunk-precomputed pure outcome when [`Self::precomputed_probes`]
    /// ran; the outcome is identical either way, the charges and sends
    /// happen here in arrival order regardless.
    fn on_probe(&mut self, ctx: &mut StepCtx<'_>, i: usize, tuple: &[u8], pre: Option<ProbeOut>) {
        let site = self.site.as_ref().expect("probe tuple at a join site");
        debug_assert_eq!(site.index, i, "probe tuple routed to the wrong site");
        let ProbeOut { compares, matches } = pre.unwrap_or_else(|| site.probe_pure(tuple));
        ctx.ledger.counts.tuples_in += 1;
        ctx.ledger.counts.hash_probes += 1;
        ctx.charge(ctx.cost.probe_us + ctx.cost.chain_compare_us * compares);
        ctx.ledger.counts.comparisons += compares;
        #[cfg(feature = "metrics")]
        {
            gamma_metrics::counter_add("op_tuples_in", ctx.node as u16, "probe", 1);
            gamma_metrics::counter_add("hash_probes", ctx.node as u16, "probe", 1);
            gamma_metrics::counter_add("comparisons", ctx.node as u16, "probe", compares);
            gamma_metrics::observe("probe_chain_compares", ctx.node as u16, "probe", compares);
        }
        #[cfg(feature = "trace")]
        gamma_trace::emit(
            ctx.node as u16,
            ctx.ledger.total_demand().as_us(),
            gamma_trace::EventKind::HashProbe {
                matched: !matches.is_empty(),
            },
        );
        for range in matches.iter() {
            ctx.charge(ctx.cost.compose_us);
            ctx.ledger.counts.tuples_out += 1;
            #[cfg(feature = "metrics")]
            gamma_metrics::counter_add("op_tuples_out", ctx.node as u16, "probe", 1);
            let dst = self.route.advance();
            ctx.send2(dst, RESULT_TAG, site.table.slice(range), tuple);
        }
    }

    /// Overflow-spool store: append to this home's `R'`/`S'` file for the
    /// sending site (created on first arrival).
    fn on_spool(&mut self, ctx: &mut StepCtx<'_>, tag: u32, rec: &[u8]) {
        let page = ctx.cost.disk.page_bytes;
        let sf = self.spools.entry(tag).or_insert_with(|| SpoolFile {
            writer: HeapWriter::create(ctx.state.vol_mut(), page),
            count: 0,
        });
        ctx.charge(ctx.cost.store_tuple_us);
        let (vol, pool) = ctx.state.vp();
        sf.writer.push(vol, pool, ctx.ledger, rec);
        sf.count += 1;
    }

    /// Bucket-forming store: append to this node's writer for the bucket.
    fn on_bucket(&mut self, ctx: &mut StepCtx<'_>, tag: u32, rec: &[u8]) {
        let sf = self
            .buckets
            .get_mut(&tag)
            .expect("bucket writer open at this node");
        ctx.charge(ctx.cost.store_tuple_us);
        let (vol, pool) = ctx.state.vp();
        sf.writer.push(vol, pool, ctx.ledger, rec);
        sf.count += 1;
    }

    /// Sort-merge partition store: set the filter bit (build side), append
    /// to the node's temp file.
    fn on_part(&mut self, ctx: &mut StepCtx<'_>, rec: &[u8]) {
        let p = self.part.as_mut().expect("partition sink open");
        if let Some(f) = &mut p.filter {
            ctx.charge(ctx.cost.filter_set_us);
            f.set(p.attr.get(rec));
        }
        ctx.charge(ctx.cost.store_tuple_us);
        let (vol, pool) = ctx.state.vp();
        p.writer.push(vol, pool, ctx.ledger, rec);
    }

    /// Result store operator: append one delivered result tuple.
    fn on_result(&mut self, ctx: &mut StepCtx<'_>, rec: &[u8]) {
        let w = self.store.as_mut().expect("store operator open");
        let sum = ResultSink::store_at(ctx.cost, ctx.state, ctx.ledger, w, rec);
        self.check = self.check.wrapping_add(sum);
        self.stored += 1;
    }
}

/// Main-thread description of one build/probe round's sites: which nodes
/// run join processes, each site's overflow home, and whether bit filters
/// are on. The per-site state itself lives in the [`Consumers`].
pub struct JoinSites {
    nodes: Vec<NodeId>,
    homes: Vec<NodeId>,
    filters_on: bool,
}

impl JoinSites {
    /// Join processors, in site-index order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no sites are installed.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Disk node hosting site `i`'s overflow files.
    pub fn home(&self, i: usize) -> NodeId {
        self.homes[i]
    }

    /// Whether the sites build bit filters.
    pub fn filters_on(&self) -> bool {
        self.filters_on
    }
}

/// Producer-side snapshot of the sites after the build round: the `h'`
/// cutoffs augmenting the split table and a copy of each site's filter.
/// Scanning workers consult it without touching any site's state.
pub struct ProbeSnapshot {
    cutoffs: Vec<Option<u64>>,
    seeds: Vec<u64>,
    filters: Vec<Option<BitFilter>>,
}

impl ProbeSnapshot {
    /// Does site `i`'s augmented split-table entry divert this outer value
    /// to the overflow file?
    pub fn outer_diverts(&self, i: usize, val: u32) -> bool {
        match self.cutoffs[i] {
            Some(c) => hash_u32(self.seeds[i], val) >= c,
            None => false,
        }
    }

    /// Would site `i`'s bit filter drop this outer value? Charges the test
    /// at the scanning node.
    pub fn filter_drops(&self, ctx: &mut StepCtx<'_>, i: usize, val: u32) -> bool {
        match &self.filters[i] {
            Some(f) => {
                ctx.charge(ctx.cost.filter_test_us);
                if f.test(val) {
                    false
                } else {
                    ctx.ledger.counts.filter_drops += 1;
                    #[cfg(feature = "metrics")]
                    gamma_metrics::counter_add("filter_drops", ctx.node as u16, "probe", 1);
                    true
                }
            }
            None => false,
        }
    }

    /// Saturation of site `i`'s filter, if filtering (diagnostics).
    pub fn filter_saturation(&self, i: usize) -> Option<f64> {
        self.filters[i].as_ref().map(|f| f.saturation())
    }
}

/// The consumer states of every node, driven by absorb steps.
pub struct Consumers {
    nodes: Vec<JoinNode>,
    all: Vec<NodeId>,
}

impl Consumers {
    /// Fresh consumer states (no sites, no open files) for every node.
    pub fn new(machine: &Machine) -> Self {
        let d = machine.cfg.disk_nodes;
        let total = machine.nodes();
        Consumers {
            nodes: (0..total)
                .map(|n| JoinNode {
                    site: None,
                    spools: BTreeMap::new(),
                    buckets: BTreeMap::new(),
                    part: None,
                    store: None,
                    stored: 0,
                    check: 0,
                    route: ResultRoute::new(n, d),
                })
                .collect(),
            all: (0..total).collect(),
        }
    }

    /// Install one join process per `join_nodes` entry: a hash table of
    /// `capacity_per_site` bytes seeded for `pass`, an optional bit filter
    /// salted by `filter_salt`, and an overflow home on a disk node.
    #[allow(clippy::too_many_arguments)]
    pub fn install_sites(
        &mut self,
        machine: &Machine,
        join_nodes: &[NodeId],
        capacity_per_site: u64,
        expected_tuple_bytes: u64,
        pass: u32,
        filter_bits: Option<u64>,
        filter_salt: u64,
        r_attr: Attr,
        s_attr: Attr,
    ) -> JoinSites {
        let disk = machine.cfg.disk_nodes;
        let mut homes = Vec::with_capacity(join_nodes.len());
        for (i, &node) in join_nodes.iter().enumerate() {
            let home = if node < disk { node } else { i % disk };
            homes.push(home);
            let prev = self.nodes[node].site.replace(SiteCore {
                index: i,
                table: JoinHashTable::new(
                    capacity_per_site,
                    expected_tuple_bytes,
                    overflow_seed(pass, i),
                ),
                filter: filter_bits.map(|b| BitFilter::new(b, filter_salt.wrapping_add(i as u64))),
                overflow_home: home,
                r_attr,
                s_attr,
            });
            assert!(prev.is_none(), "node {node} already runs a join site");
        }
        JoinSites {
            nodes: join_nodes.to_vec(),
            homes,
            filters_on: filter_bits.is_some(),
        }
    }

    /// Snapshot the sites' overflow cutoffs and filters for the probing
    /// producers.
    pub fn probe_snapshot(&self, sites: &JoinSites) -> ProbeSnapshot {
        let mut cutoffs = Vec::with_capacity(sites.len());
        let mut seeds = Vec::with_capacity(sites.len());
        let mut filters = Vec::with_capacity(sites.len());
        for &node in &sites.nodes {
            let site = self.nodes[node].site.as_ref().expect("site installed");
            cutoffs.push(site.table.cutoff());
            seeds.push(site.table.hprime_seed());
            // Filter saturation in parts-per-thousand: the build side is
            // complete here, so this is the selectivity the probe side will
            // see (paper §4.2's bit-vector filtering effectiveness).
            #[cfg(feature = "metrics")]
            if let Some(f) = &site.filter {
                gamma_metrics::gauge_max(
                    "filter_saturation_pm",
                    node as u16,
                    "probe",
                    (f.saturation() * 1000.0) as u64,
                );
            }
            filters.push(site.filter.clone());
        }
        ProbeSnapshot {
            cutoffs,
            seeds,
            filters,
        }
    }

    /// Open one bucket-forming writer per (disk node, bucket) for buckets
    /// `first..=last`.
    pub fn open_buckets(&mut self, machine: &mut Machine, first: usize, last: usize) {
        let page = machine.cfg.cost.disk.page_bytes;
        for n in machine.disk_nodes() {
            for b in first..=last {
                let w = HeapWriter::create(machine.nodes[n].vol_mut(), page);
                let prev = self.nodes[n].buckets.insert(
                    tag(TAG_BUCKET, b),
                    SpoolFile {
                        writer: w,
                        count: 0,
                    },
                );
                assert!(prev.is_none(), "bucket {b} already forming at node {n}");
            }
        }
    }

    /// Close every bucket-forming writer, returning `files[disk_node]` in
    /// ascending bucket order (empty buckets still yield a file, as the
    /// drivers expect).
    pub fn close_buckets(
        &mut self,
        machine: &mut Machine,
        ledgers: &mut Ledgers,
    ) -> Vec<Vec<FileId>> {
        let mut out = Vec::with_capacity(machine.cfg.disk_nodes);
        for n in machine.disk_nodes() {
            let buckets = std::mem::take(&mut self.nodes[n].buckets);
            let mut files = Vec::with_capacity(buckets.len());
            for (_, sf) in buckets {
                // Per-bucket fragment sizes — the distribution the bucket
                // analyzer's uniformity assumption is about.
                #[cfg(feature = "metrics")]
                gamma_metrics::observe("bucket_tuples", n as u16, "forming", sf.count);
                let (vol, pool) = machine.nodes[n].vp();
                files.push(sf.writer.finish(vol, pool, &mut ledgers[n]));
            }
            out.push(files);
        }
        out
    }

    /// Open one sort-merge partition sink per disk node. `filters[i]`,
    /// when building, is moved into disk node `i`'s sink and set as tuples
    /// arrive; collect them back with [`Consumers::close_parts`].
    pub fn open_parts(
        &mut self,
        machine: &mut Machine,
        mut filters: Vec<Option<BitFilter>>,
        attr: Attr,
    ) {
        let page = machine.cfg.cost.disk.page_bytes;
        for n in machine.disk_nodes() {
            let w = HeapWriter::create(machine.nodes[n].vol_mut(), page);
            let prev = self.nodes[n].part.replace(PartSink {
                writer: w,
                filter: filters.get_mut(n).and_then(Option::take),
                attr,
            });
            assert!(prev.is_none(), "partition sink already open at node {n}");
        }
    }

    /// Close every partition sink, returning the temp file per disk node
    /// and any filters built.
    pub fn close_parts(
        &mut self,
        machine: &mut Machine,
        ledgers: &mut Ledgers,
    ) -> (Vec<FileId>, Vec<Option<BitFilter>>) {
        let mut files = Vec::with_capacity(machine.cfg.disk_nodes);
        let mut filters = Vec::with_capacity(machine.cfg.disk_nodes);
        for n in machine.disk_nodes() {
            let p = self.nodes[n].part.take().expect("partition sink open");
            let (vol, pool) = machine.nodes[n].vp();
            files.push(p.writer.finish(vol, pool, &mut ledgers[n]));
            filters.push(p.filter);
        }
        (files, filters)
    }

    /// One absorb step: run every node's consumer over its drained inbox,
    /// then fold stored-result tallies back into the sink.
    pub fn absorb(&mut self, machine: &mut Machine, ledgers: &mut Ledgers, sink: &mut ResultSink) {
        let d = sink.disk_nodes();
        for n in 0..d {
            self.nodes[n].store = Some(sink.take_writer(n));
        }
        run_step(
            machine,
            ledgers,
            "absorb",
            &self.all,
            &mut self.nodes,
            |ctx, jn| jn.absorb_step(ctx),
        );
        for n in 0..d {
            sink.put_writer(n, self.nodes[n].store.take().expect("store writer"));
        }
        for jn in &mut self.nodes {
            sink.absorb(
                std::mem::take(&mut jn.stored),
                std::mem::take(&mut jn.check),
            );
        }
    }

    /// Absorb until the exchange is quiet: two steps suffice, because the
    /// only messages an absorb step *sends* are overflow spools and result
    /// tuples, and the consumers of those send nothing.
    pub fn settle(&mut self, machine: &mut Machine, ledgers: &mut Ledgers, sink: &mut ResultSink) {
        self.absorb(machine, ledgers, sink);
        self.absorb(machine, ledgers, sink);
        debug_assert!(
            machine.exchange.is_drained(),
            "phase sealed with in-flight exchange traffic"
        );
    }
}

/// Overflow partition pair left behind by a pass.
#[derive(Debug, Clone)]
pub struct OverflowPair {
    /// `(node, file, tuples)` of the `R'` fragment.
    pub r: (NodeId, FileId, u64),
    /// `(node, file, tuples)` of the `S'` fragment.
    pub s: (NodeId, FileId, u64),
}

/// Tear down the sites and close their spool files, returning the overflow
/// pairs that need a recursive pass. Sites that never overflowed return
/// nothing; a missing half becomes an empty file.
pub fn take_overflows(
    machine: &mut Machine,
    ledgers: &mut Ledgers,
    consumers: &mut Consumers,
    sites: &JoinSites,
) -> Vec<OverflowPair> {
    fn fin(
        machine: &mut Machine,
        ledgers: &mut Ledgers,
        home: NodeId,
        sf: Option<SpoolFile>,
    ) -> (NodeId, FileId, u64) {
        match sf {
            Some(sf) => {
                let (vol, pool) = machine.nodes[home].vp();
                let f = sf.writer.finish(vol, pool, &mut ledgers[home]);
                (home, f, sf.count)
            }
            None => (home, exec::empty_file(machine, ledgers, home), 0),
        }
    }
    let mut pairs = Vec::new();
    for i in 0..sites.len() {
        consumers.nodes[sites.nodes[i]].site = None;
        let home = sites.homes[i];
        let r = consumers.nodes[home].spools.remove(&tag(TAG_SPOOL_R, i));
        let s = consumers.nodes[home].spools.remove(&tag(TAG_SPOOL_S, i));
        if r.is_none() && s.is_none() {
            continue;
        }
        let r = fin(machine, ledgers, home, r);
        let s = fin(machine, ledgers, home, s);
        pairs.push(OverflowPair { r, s });
    }
    pairs
}

/// Outcome of one dynamic restore pass ([`restore_spills`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct RestoreStats {
    /// Spilled inner tuples read back and re-admitted to site tables.
    pub restored_tuples: u64,
    /// Spilled inner tuples that stayed spilled (rewritten to fresh spools).
    pub respooled_tuples: u64,
    /// Overflowed sites the pass planned a restore for.
    pub sites_touched: usize,
}

/// One site's restore work, staged at its overflow home node.
struct RestoreJob {
    site: usize,
    site_node: NodeId,
    file: FileId,
    slack: u64,
    floor_cell: usize,
    seed: u64,
    overhead: u64,
    r_attr: Attr,
}

/// Incremental restore (the dynamic spill/restore path): after the build
/// round settles, each overflowed site's `R'` spool is read back at its
/// home, a per-`h'`-cell byte histogram is taken, and the cutoff is raised
/// cell-by-cell as far as the site's remaining slack allows — re-admitting
/// that range to the table and rewriting only the residue to a fresh spool.
/// The all-or-nothing alternative (what the legacy path does) leaves the
/// whole spilled range for a full recursive respray even when the clearing
/// heuristic overshot by one histogram cell; this pass makes the spilled
/// fraction track actual memory pressure, which is what removes the
/// memory-ratio cliff.
///
/// Must run after the build side has fully settled and before the probe
/// snapshot is taken, so the raised cutoffs divert strictly fewer outer
/// tuples. The resident-set invariant (residents = offered tuples with
/// `h' <` cutoff) is preserved because every spilled tuple in the raised
/// range is re-sent through the normal build stage before the raise is
/// observable by any producer.
pub fn restore_spills(
    machine: &mut Machine,
    ledgers: &mut Ledgers,
    consumers: &mut Consumers,
    sites: &JoinSites,
    sink: &mut ResultSink,
) -> RestoreStats {
    let mut by_home: BTreeMap<NodeId, Vec<RestoreJob>> = BTreeMap::new();
    for i in 0..sites.len() {
        let home = sites.homes[i];
        let Some(sf) = consumers.nodes[home].spools.remove(&tag(TAG_SPOOL_R, i)) else {
            continue;
        };
        let site_node = sites.nodes[i];
        let site = consumers.nodes[site_node].site.as_ref().expect("site");
        let floor_cell = site
            .table
            .cutoff_cell()
            .expect("a spooled site must have a cutoff");
        let job = RestoreJob {
            site: i,
            site_node,
            file: {
                let (vol, pool) = machine.nodes[home].vp();
                sf.writer.finish(vol, pool, &mut ledgers[home])
            },
            slack: site.table.slack_bytes(),
            floor_cell,
            seed: site.table.hprime_seed(),
            overhead: site.table.entry_footprint(0),
            r_attr: site.r_attr,
        };
        by_home.entry(home).or_default().push(job);
    }
    let mut stats = RestoreStats::default();
    if by_home.is_empty() {
        return stats;
    }
    let homes: Vec<NodeId> = by_home.keys().copied().collect();
    type Planned = (usize, Option<u64>, u64, u64);
    let mut states: Vec<(Vec<RestoreJob>, Vec<Planned>)> = by_home
        .into_values()
        .map(|jobs| (jobs, Vec::new()))
        .collect();
    run_step(
        machine,
        ledgers,
        "restore spills",
        &homes,
        &mut states,
        |ctx, (jobs, out)| {
            for job in jobs.iter() {
                let recs = ctx.read_batch(job.file);
                let cells = ctx.par_map_batch(&recs, |rec| {
                    crate::hash_table::hprime_cell_of(job.seed, job.r_attr.get(rec))
                });
                // Plan: spilled bytes per h' cell, then raise the cutoff
                // cell-by-cell while the restored range fits the slack.
                let mut per_cell = vec![0u64; JoinHashTable::CELLS];
                for (rec, &cell) in recs.iter().zip(&cells) {
                    ctx.charge(ctx.cost.hash_us + ctx.cost.histogram_update_us);
                    per_cell[cell] += rec.len() as u64 + job.overhead;
                }
                let mut cell = job.floor_cell;
                let mut budget = job.slack;
                while cell < JoinHashTable::CELLS && per_cell[cell] <= budget {
                    budget -= per_cell[cell];
                    cell += 1;
                }
                let new_cutoff =
                    (cell < JoinHashTable::CELLS).then(|| JoinHashTable::cell_cutoff(cell));
                let (mut restored, mut respooled) = (0u64, 0u64);
                let (mut restored_b, mut respooled_b) = (0u64, 0u64);
                for (rec, c) in recs.iter().zip(cells) {
                    ctx.charge(ctx.cost.route_us);
                    if c < cell {
                        restored += 1;
                        restored_b += rec.len() as u64;
                        ctx.send(job.site_node, tag(TAG_BUILD, job.site), rec);
                    } else {
                        respooled += 1;
                        respooled_b += rec.len() as u64;
                        ctx.send(ctx.node, tag(TAG_SPOOL_R, job.site), rec);
                    }
                }
                let page = ctx.cost.disk.page_bytes as u64;
                let pr = restored_b.div_ceil(page);
                let ps = respooled_b.div_ceil(page);
                ctx.ledger.counts.pages_restored += pr;
                ctx.ledger.counts.pages_spilled += ps;
                #[cfg(feature = "metrics")]
                {
                    gamma_metrics::counter_add("pages_restored", ctx.node as u16, "restore", pr);
                    gamma_metrics::counter_add("pages_spilled", ctx.node as u16, "restore", ps);
                }
                out.push((job.site, new_cutoff, restored, respooled));
            }
        },
    );
    // Raise the cutoffs before absorbing: the re-sent build tuples must be
    // admitted (they fit the slack by construction).
    for (jobs, outs) in &states {
        for &(site, new_cutoff, restored, respooled) in outs {
            let node = sites.nodes[site];
            let core = consumers.nodes[node].site.as_mut().expect("site");
            core.table.raise_cutoff(new_cutoff);
            stats.restored_tuples += restored;
            stats.respooled_tuples += respooled;
            stats.sites_touched += 1;
        }
        for job in jobs {
            let home = sites.homes[job.site];
            exec::delete_file(machine, home, job.file);
        }
    }
    consumers.settle(machine, ledgers, sink);
    stats
}

/// Outcome of [`resolve_overflows`].
#[derive(Debug, Clone, Copy, Default)]
pub struct OverflowStats {
    /// Recursive Simple-hash passes executed.
    pub passes: u32,
    /// Whether the block-nested-loops fallback fired.
    pub bnl_fallback: bool,
}

/// Parameters shared by every recursive overflow pass.
pub struct OverflowEnv<'a> {
    /// Join processors.
    pub join_nodes: &'a [NodeId],
    /// Per-site hash-table capacity in bytes.
    pub capacity_per_site: u64,
    /// Expected tuple width (hash-table sizing).
    pub tuple_bytes: u64,
    /// Inner-relation join attribute (within spooled `R'` tuples).
    pub r_attr: Attr,
    /// Outer-relation join attribute (within spooled `S'` tuples).
    pub s_attr: Attr,
    /// Bits per site for bit filters (None = filtering off).
    pub filter_bits: Option<u64>,
    /// Salt namespace for this sub-join's filters.
    pub filter_salt: u64,
}

/// Group one side of the overflow pairs by home node for a producer step:
/// participants (ascending) and each home's files in pair order.
fn group_files(
    pairs: &[OverflowPair],
    pick: impl Fn(&OverflowPair) -> (NodeId, FileId, u64),
) -> (Vec<NodeId>, Vec<Vec<FileId>>) {
    let mut map: BTreeMap<NodeId, Vec<FileId>> = BTreeMap::new();
    for p in pairs {
        let (n, f, _) = pick(p);
        map.entry(n).or_default().push(f);
    }
    (
        map.keys().copied().collect(),
        map.values().cloned().collect(),
    )
}

/// Recursively join the overflow partitions produced by a pass, exactly as
/// §3.2 describes: read the aggregate `R'`, re-split across all join sites
/// with a fresh hash function, build; read `S'`, re-split, probe; repeat
/// until no site overflows. Appends one `(build, probe)` phase pair per
/// pass to `phases`.
pub fn resolve_overflows(
    machine: &mut Machine,
    env: &OverflowEnv<'_>,
    mut pairs: Vec<OverflowPair>,
    first_pass: u32,
    sink: &mut ResultSink,
    phases: &mut Vec<crate::report::PhaseRecord>,
    phase_prefix: &str,
) -> OverflowStats {
    let mut stats = OverflowStats::default();
    let mut pass = first_pass;
    while !pairs.is_empty() {
        let input_r: u64 = pairs.iter().map(|p| p.r.2).sum();
        stats.passes += 1;
        let seed = respread_seed(pass);
        let j = env.join_nodes.len() as u64;
        let join_nodes = env.join_nodes;
        let r_attr = env.r_attr;
        let s_attr = env.s_attr;
        let mut consumers = Consumers::new(machine);
        let sites = consumers.install_sites(
            machine,
            env.join_nodes,
            env.capacity_per_site,
            env.tuple_bytes,
            pass,
            env.filter_bits,
            env.filter_salt.wrapping_add(0x1000 + pass as u64),
            r_attr,
            s_attr,
        );

        // ---- build pass over the aggregate R' ----
        let mut ledgers = machine.ledgers();
        let (homes, mut r_files) = group_files(&pairs, |p| p.r);
        run_step(
            machine,
            &mut ledgers,
            "overflow build R'",
            &homes,
            &mut r_files,
            |ctx, files| {
                for &file in files.iter() {
                    let recs = ctx.read_batch(file);
                    let routed = ctx
                        .par_map_batch(&recs, |rec| (hash_u32(seed, r_attr.get(rec)) % j) as usize);
                    for (rec, i) in recs.iter().zip(routed) {
                        ctx.charge(ctx.cost.scan_tuple_us + ctx.cost.hash_us + ctx.cost.route_us);
                        ctx.send(join_nodes[i], tag(TAG_BUILD, i), rec);
                    }
                }
            },
        );
        consumers.settle(machine, &mut ledgers, sink);
        let sched = control::dispatch_overhead(machine, &mut ledgers, env.join_nodes, 0);
        phases.push(crate::report::PhaseRecord::new(
            format!("{phase_prefix}overflow-build p{pass}"),
            ledgers,
            sched,
        ));

        // ---- probe pass over the aggregate S' ----
        let mut ledgers = machine.ledgers();
        control::broadcast_filters(machine, &mut ledgers, &sites);
        let snap = consumers.probe_snapshot(&sites);
        let (homes, mut s_files) = group_files(&pairs, |p| p.s);
        {
            let sites = &sites;
            let snap = &snap;
            run_step(
                machine,
                &mut ledgers,
                "overflow probe S'",
                &homes,
                &mut s_files,
                |ctx, files| {
                    for &file in files.iter() {
                        let recs = ctx.read_batch(file);
                        let routed = ctx.par_map_batch(&recs, |rec| {
                            let val = s_attr.get(rec);
                            (val, (hash_u32(seed, val) % j) as usize)
                        });
                        for (rec, (val, i)) in recs.iter().zip(routed) {
                            ctx.charge(
                                ctx.cost.scan_tuple_us + ctx.cost.hash_us + ctx.cost.route_us,
                            );
                            // Filter before the overflow check — safe because
                            // filter bits are set for every arriving inner
                            // tuple (§4.2).
                            if snap.filter_drops(ctx, i, val) {
                                // dropped at the source
                            } else if snap.outer_diverts(i, val) {
                                ctx.send(sites.home(i), tag(TAG_SPOOL_S, i), rec);
                            } else {
                                ctx.send(join_nodes[i], tag(TAG_PROBE, i), rec);
                            }
                        }
                    }
                },
            );
        }
        consumers.settle(machine, &mut ledgers, sink);
        let next = take_overflows(machine, &mut ledgers, &mut consumers, &sites);

        // Free the consumed overflow files.
        for p in &pairs {
            exec::delete_file(machine, p.r.0, p.r.1);
            exec::delete_file(machine, p.s.0, p.s.1);
        }
        let sched = control::dispatch_overhead(machine, &mut ledgers, env.join_nodes, 0);
        phases.push(crate::report::PhaseRecord::new(
            format!("{phase_prefix}overflow-probe p{pass}"),
            ledgers,
            sched,
        ));

        let next_r: u64 = next.iter().map(|p| p.r.2).sum();
        if !next.is_empty() && next_r >= input_r {
            // Hash partitioning is not separating the data (e.g. one value
            // dominates): fall back to block-nested-loops.
            stats.bnl_fallback = true;
            let mut ledgers = machine.ledgers();
            block_nested_loops(machine, env, &next, sink, &mut ledgers);
            sink.flush(machine, &mut ledgers);
            for p in &next {
                exec::delete_file(machine, p.r.0, p.r.1);
                exec::delete_file(machine, p.s.0, p.s.1);
            }
            phases.push(crate::report::PhaseRecord::new(
                format!("{phase_prefix}overflow-bnl p{pass}"),
                ledgers,
                SimTime::ZERO,
            ));
            return stats;
        }
        pairs = next;
        pass += 1;
        assert!(pass < 64, "overflow recursion ran away");
    }
    stats
}

/// Robust variant of [`resolve_overflows`] for the dynamic spill/restore
/// path: join each `(R'_i, S'_i)` pair **in place** at its home node first.
/// After a restore pass the spilled residue is a narrow `h'` sub-range that
/// usually fits one full-capacity site table, so the pair joins locally
/// with zero repartitioning network traffic — only pairs whose `R'` alone
/// still overflows escalate to the classic global respray. Because a
/// localized round is not a respray, it does **not** count against
/// `OverflowStats::passes` (the Figure 7 "optimistic" pass counter); only
/// escalated classic passes do.
///
/// Pairs sharing a home node are processed in successive rounds (one site
/// per node per round); each round appends one `spill-join` phase.
pub fn resolve_overflows_robust(
    machine: &mut Machine,
    env: &OverflowEnv<'_>,
    mut pairs: Vec<OverflowPair>,
    sink: &mut ResultSink,
    phases: &mut Vec<crate::report::PhaseRecord>,
    phase_prefix: &str,
) -> OverflowStats {
    let mut escalated = Vec::new();
    let mut round = 0u32;
    while !pairs.is_empty() {
        // One pair per home node this round; the rest wait their turn.
        let mut this_round: BTreeMap<NodeId, OverflowPair> = BTreeMap::new();
        let mut waiting = Vec::new();
        for p in pairs {
            match this_round.entry(p.r.0) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(p);
                }
                std::collections::btree_map::Entry::Occupied(_) => waiting.push(p),
            }
        }
        pairs = waiting;
        let homes: Vec<NodeId> = this_round.keys().copied().collect();
        let mut consumers = Consumers::new(machine);
        let sites = consumers.install_sites(
            machine,
            &homes,
            env.capacity_per_site,
            env.tuple_bytes,
            0x4000 + round,
            env.filter_bits,
            env.filter_salt.wrapping_add(0x2000 + round as u64),
            env.r_attr,
            env.s_attr,
        );
        let mut ledgers = machine.ledgers();
        let mut states: Vec<(usize, OverflowPair)> = this_round.into_values().enumerate().collect();
        run_step(
            machine,
            &mut ledgers,
            "spill-join build",
            &homes,
            &mut states,
            |ctx, (k, p)| {
                let recs = ctx.read_batch(p.r.1);
                for rec in recs.iter() {
                    ctx.charge(ctx.cost.scan_tuple_us);
                    ctx.send(ctx.node, tag(TAG_BUILD, *k), rec);
                }
            },
        );
        consumers.settle(machine, &mut ledgers, sink);
        control::broadcast_filters(machine, &mut ledgers, &sites);
        let snap = consumers.probe_snapshot(&sites);
        {
            let snap = &snap;
            let sites = &sites;
            let s_attr = env.s_attr;
            run_step(
                machine,
                &mut ledgers,
                "spill-join probe",
                &homes,
                &mut states,
                |ctx, (k, p)| {
                    let recs = ctx.read_batch(p.s.1);
                    for rec in recs.iter() {
                        ctx.charge(ctx.cost.scan_tuple_us);
                        let val = s_attr.get(rec);
                        if snap.filter_drops(ctx, *k, val) {
                            // dropped at the source
                        } else if snap.outer_diverts(*k, val) {
                            ctx.send(sites.home(*k), tag(TAG_SPOOL_S, *k), rec);
                        } else {
                            ctx.send(ctx.node, tag(TAG_PROBE, *k), rec);
                        }
                    }
                },
            );
        }
        consumers.settle(machine, &mut ledgers, sink);
        escalated.extend(take_overflows(
            machine,
            &mut ledgers,
            &mut consumers,
            &sites,
        ));
        for (_, p) in &states {
            exec::delete_file(machine, p.r.0, p.r.1);
            exec::delete_file(machine, p.s.0, p.s.1);
        }
        let sched = control::dispatch_overhead(machine, &mut ledgers, &homes, 0);
        phases.push(crate::report::PhaseRecord::new(
            format!("{phase_prefix}spill-join r{round}"),
            ledgers,
            sched,
        ));
        round += 1;
        assert!(round < 1024, "spill-join rounds ran away");
    }
    if escalated.is_empty() {
        return OverflowStats::default();
    }
    resolve_overflows(machine, env, escalated, 1, sink, phases, phase_prefix)
}

/// Block-nested-loops fallback: join each `(R', S')` pair by staging `R'`
/// in memory-sized blocks and scanning `S'` once per block.
fn block_nested_loops(
    machine: &mut Machine,
    env: &OverflowEnv<'_>,
    pairs: &[OverflowPair],
    sink: &mut ResultSink,
    ledgers: &mut Ledgers,
) {
    let cost = machine.cfg.cost.clone();
    let disk = machine.cfg.disk_nodes;
    let block_bytes = env.capacity_per_site.max(env.tuple_bytes);
    let mut out = Vec::new();
    for p in pairs {
        let (r_node, r_file, _) = p.r;
        let (s_node, s_file, _) = p.s;
        let mut route = ResultRoute::new(s_node, disk);
        let r_recs = exec::read_batch(machine, ledgers, r_node, r_file);
        for block in r_recs
            .ranges()
            .chunks((block_bytes / env.tuple_bytes.max(1)).max(1) as usize)
        {
            let s_recs = exec::read_batch(machine, ledgers, s_node, s_file);
            for s_rec in s_recs.iter() {
                cost.charge(&mut ledgers[s_node], cost.scan_tuple_us);
                let sv = env.s_attr.get(s_rec);
                for &rr in block {
                    let r_rec = r_recs.slice(rr);
                    cost.charge(&mut ledgers[s_node], cost.chain_compare_us);
                    if env.r_attr.get(r_rec) == sv {
                        cost.charge(&mut ledgers[s_node], cost.compose_us);
                        compose_into(r_rec, s_rec, &mut out);
                        sink.push(machine, ledgers, &mut route, s_node, &out);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::JOIN_SEED;
    use crate::machine::{Declustering, MachineConfig, ResultInfo};
    use crate::tuple::{Field, Schema};

    fn schema() -> Schema {
        Schema::new(vec![Field::Int("k".into()), Field::Str("pad".into(), 44)])
    }

    fn mk(schema: &Schema, k: u32) -> Vec<u8> {
        let mut t = vec![0u8; schema.tuple_bytes()];
        schema.int_attr("k").put(&mut t, k);
        t
    }

    /// Drive a full simple-hash style join through the executor stages.
    fn run_simple(
        n_r: u32,
        n_s: u32,
        capacity_per_site: u64,
        skew_all_same: bool,
    ) -> (ResultInfo, OverflowStats) {
        run_simple_mode(n_r, n_s, capacity_per_site, skew_all_same, false).0
    }

    /// As [`run_simple`], optionally through the dynamic spill/restore path
    /// (restore after build, localized spill-joins instead of the global
    /// respray). Also returns the restore stats.
    fn run_simple_mode(
        n_r: u32,
        n_s: u32,
        capacity_per_site: u64,
        skew_all_same: bool,
        robust: bool,
    ) -> ((ResultInfo, OverflowStats), RestoreStats) {
        let mut m = Machine::new(MachineConfig::local_8());
        let s = schema();
        let attr = s.int_attr("k");
        let r: Vec<Vec<u8>> = (0..n_r)
            .map(|k| mk(&s, if skew_all_same { 7 } else { k }))
            .collect();
        let sout: Vec<Vec<u8>> = (0..n_s).map(|k| mk(&s, k % n_r.max(1))).collect();
        let rid = m.load_relation("r", s.clone(), Declustering::RoundRobin, r);
        let sid = m.load_relation("s", s.clone(), Declustering::RoundRobin, sout);

        let join_nodes = m.disk_nodes();
        let mut consumers = Consumers::new(&m);
        let sites = consumers.install_sites(
            &m,
            &join_nodes,
            capacity_per_site,
            48,
            0,
            None,
            0,
            attr,
            attr,
        );
        let mut sink = ResultSink::new(&mut m);
        let mut phases = Vec::new();
        let j = join_nodes.len() as u64;
        let participants = m.disk_nodes();

        let mut ledgers = m.ledgers();
        let mut frags = m.relation(rid).fragments.clone();
        {
            let join_nodes = &join_nodes;
            run_step(
                &mut m,
                &mut ledgers,
                "build",
                &participants,
                &mut frags,
                |ctx, f| {
                    let recs = ctx.read_batch(*f);
                    for rec in recs.iter() {
                        let val = attr.get(rec);
                        let i = (hash_u32(JOIN_SEED, val) % j) as usize;
                        ctx.send(join_nodes[i], tag(TAG_BUILD, i), rec);
                    }
                },
            );
        }
        consumers.settle(&mut m, &mut ledgers, &mut sink);
        let restore = if robust {
            restore_spills(&mut m, &mut ledgers, &mut consumers, &sites, &mut sink)
        } else {
            RestoreStats::default()
        };

        let mut ledgers = m.ledgers();
        let snap = consumers.probe_snapshot(&sites);
        let mut frags = m.relation(sid).fragments.clone();
        {
            let join_nodes = &join_nodes;
            let sites = &sites;
            let snap = &snap;
            run_step(
                &mut m,
                &mut ledgers,
                "probe",
                &participants,
                &mut frags,
                |ctx, f| {
                    let recs = ctx.read_batch(*f);
                    for rec in recs.iter() {
                        let val = attr.get(rec);
                        let i = (hash_u32(JOIN_SEED, val) % j) as usize;
                        if snap.outer_diverts(i, val) {
                            ctx.send(sites.home(i), tag(TAG_SPOOL_S, i), rec);
                        } else {
                            ctx.send(join_nodes[i], tag(TAG_PROBE, i), rec);
                        }
                    }
                },
            );
        }
        consumers.settle(&mut m, &mut ledgers, &mut sink);
        let pairs = take_overflows(&mut m, &mut ledgers, &mut consumers, &sites);
        let env = OverflowEnv {
            join_nodes: &join_nodes,
            capacity_per_site,
            tuple_bytes: 48,
            r_attr: attr,
            s_attr: attr,
            filter_bits: None,
            filter_salt: 0,
        };
        let stats = if robust {
            resolve_overflows_robust(&mut m, &env, pairs, &mut sink, &mut phases, "t:")
        } else {
            resolve_overflows(&mut m, &env, pairs, 1, &mut sink, &mut phases, "t:")
        };
        let mut ledgers = m.ledgers();
        let info = sink.finish(&mut m, &mut ledgers);
        ((info, stats), restore)
    }

    #[test]
    fn in_memory_join_is_exact() {
        // Everything fits: every S tuple finds exactly one R match.
        let (info, stats) = run_simple(500, 2000, 1 << 20, false);
        assert_eq!(info.tuples, 2000);
        assert_eq!(stats.passes, 0);
    }

    #[test]
    fn overflow_join_is_still_exact() {
        // Tiny tables force multiple overflow passes; result unchanged.
        let (full, _) = run_simple(500, 2000, 1 << 20, false);
        let (tight, stats) = run_simple(500, 2000, 1_500, false);
        assert_eq!(tight.tuples, 2000);
        assert_eq!(tight.checksum, full.checksum, "same result multiset");
        assert!(stats.passes >= 1, "must have recursed");
        assert!(!stats.bnl_fallback);
    }

    #[test]
    fn pathological_skew_falls_back_to_bnl() {
        // Every R tuple has value 7; hashing cannot separate them.
        let (info, stats) = run_simple(400, 400, 3_000, true);
        // S values are k % 400; only k = 7 matches, × 400 R duplicates.
        assert_eq!(info.tuples, 400);
        assert!(stats.bnl_fallback);
    }

    #[test]
    fn filters_never_lose_results() {
        let mut m = Machine::new(MachineConfig::local_8());
        let s = schema();
        let attr = s.int_attr("k");
        let join_nodes = m.disk_nodes();
        let mut consumers = Consumers::new(&m);
        let sites =
            consumers.install_sites(&m, &join_nodes, 1 << 20, 48, 0, Some(1973), 42, attr, attr);
        let mut sink = ResultSink::new(&mut m);
        let mut ledgers = m.ledgers();
        let participants = [0usize];
        {
            let join_nodes = &join_nodes;
            run_step(
                &mut m,
                &mut ledgers,
                "build",
                &participants,
                &mut [()],
                |ctx, _| {
                    for k in 0..300u32 {
                        let rec = mk(&schema(), k);
                        let i = (hash_u32(JOIN_SEED, k) % 8) as usize;
                        ctx.send(join_nodes[i], tag(TAG_BUILD, i), &rec);
                    }
                },
            );
        }
        consumers.settle(&mut m, &mut ledgers, &mut sink);
        let snap = consumers.probe_snapshot(&sites);
        let (kept, dropped) = {
            let join_nodes = &join_nodes;
            let snap = &snap;
            run_step(
                &mut m,
                &mut ledgers,
                "probe",
                &participants,
                &mut [()],
                |ctx, _| {
                    let mut kept = 0u32;
                    let mut dropped = 0u32;
                    for k in 0..3000u32 {
                        let rec = mk(&schema(), k);
                        let i = (hash_u32(JOIN_SEED, k) % 8) as usize;
                        if snap.filter_drops(ctx, i, k) {
                            dropped += 1;
                            assert!(k >= 300, "a joining tuple was filtered!");
                        } else {
                            kept += 1;
                            ctx.send(join_nodes[i], tag(TAG_PROBE, i), &rec);
                        }
                    }
                    (kept, dropped)
                },
            )[0]
        };
        consumers.settle(&mut m, &mut ledgers, &mut sink);
        assert!(dropped > 1500, "filter should drop most non-joining tuples");
        assert!(kept >= 300);
        let info = sink.finish(&mut m, &mut ledgers);
        assert_eq!(info.tuples, 300, "all real matches survive filtering");
    }

    #[test]
    fn tag_round_trips_its_argument() {
        assert_eq!(tag(TAG_BUILD, 0), TAG_BUILD);
        assert_eq!(tag_arg(tag(TAG_BUCKET, 413)), 413);
        assert_eq!(tag(TAG_SPOOL_S, TAG_ARG as usize) & TAG_KIND, TAG_SPOOL_S);
    }

    #[test]
    #[should_panic(expected = "overflows the 24-bit payload")]
    fn tag_argument_overflow_panics() {
        let _ = tag(TAG_BUCKET, 1 << 24);
    }

    #[test]
    fn dynamic_restore_and_local_spill_join_is_exact() {
        let ((full, _), _) = run_simple_mode(500, 2000, 1 << 20, false, true);
        assert_eq!(full.tuples, 2000);
        // Moderate pressure (~15 % short): restore claws most of the spill
        // back and the residue joins locally — no classic respray pass.
        let ((tight, stats), restore) = run_simple_mode(500, 2000, 3_000, false, true);
        assert_eq!(tight.tuples, 2000, "robust path must not lose matches");
        assert_eq!(tight.checksum, full.checksum, "same result multiset");
        assert!(
            restore.restored_tuples > 0,
            "restore must re-admit part of the spill: {restore:?}"
        );
        assert_eq!(stats.passes, 0, "no classic pass should be needed");
        assert!(!stats.bnl_fallback);
        // Extreme pressure (capacity below one site's share): localized
        // joins escalate as needed but the result is still exact.
        let ((tiny, _), _) = run_simple_mode(500, 2000, 1_500, false, true);
        assert_eq!(tiny.tuples, 2000);
        assert_eq!(tiny.checksum, full.checksum);
    }

    #[test]
    fn robust_path_matches_legacy_result_on_pathological_skew() {
        let ((legacy, lstats), _) = run_simple_mode(400, 400, 3_000, true, false);
        let ((robust, rstats), _) = run_simple_mode(400, 400, 3_000, true, true);
        assert!(lstats.bnl_fallback);
        assert_eq!(robust.tuples, legacy.tuples);
        assert_eq!(robust.checksum, legacy.checksum);
        // One dominating value cannot be separated by any partitioning: the
        // robust path must escalate and end in the same BNL fallback.
        assert!(rstats.bnl_fallback);
    }

    #[test]
    fn remote_sites_spool_overflow_to_disk_nodes() {
        let m = Machine::new(MachineConfig::remote_8_plus_8());
        let s = schema();
        let attr = s.int_attr("k");
        let join_nodes = m.diskless_nodes();
        let mut consumers = Consumers::new(&m);
        let sites = consumers.install_sites(&m, &join_nodes, 1024, 48, 0, None, 0, attr, attr);
        for i in 0..sites.len() {
            assert!(sites.home(i) < 8, "overflow must live on a disk node");
        }
    }
}
