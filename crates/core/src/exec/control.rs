//! Control-plane stages: scheduler dispatch and bit-filter broadcast.
//!
//! These stay on the main thread and keep using the [`Fabric`] — they model
//! the Gamma scheduler process talking to operator processes, which is
//! serialized by construction (the paper charges dispatch time to the
//! query's response serially, Section 2.2).
//!
//! [`Fabric`]: gamma_net::Fabric

use gamma_des::SimTime;

use crate::exec::hash::JoinSites;
use crate::machine::{Ledgers, Machine, NodeId};

/// Charge operator-start control messages for a phase: the scheduler sends
/// each participant one message carrying `table_bytes` of split table.
/// Returns the scheduler's serialized dispatch time (added to response).
pub fn dispatch_overhead(
    machine: &mut Machine,
    ledgers: &mut Ledgers,
    participants: &[NodeId],
    table_bytes: u64,
) -> SimTime {
    let cost = machine.cfg.cost.clone();
    let mut t = SimTime::ZERO;
    for &n in participants {
        let bytes = cost.operator_start_bytes + table_bytes;
        machine.fabric.scheduler_control(&mut ledgers[n], n, bytes);
        t += machine
            .fabric
            .scheduler_dispatch_cost(SimTime::from_us(cost.scheduler_dispatch_us), bytes);
    }
    t
}

/// Broadcast the sites' bit filters to every disk (scanning) node: Gamma
/// shipped the aggregate packet-sized filter back to the producers so
/// non-joining outer tuples die at the source. No-op when filtering is off.
pub fn broadcast_filters(machine: &mut Machine, ledgers: &mut Ledgers, sites: &JoinSites) {
    if !sites.filters_on() {
        return;
    }
    let bytes = machine.cfg.cost.filter_packet_bytes;
    let send_cpu = machine.cfg.cost.ring.send_cpu_per_packet;
    // Each site contributes its slice of the aggregate filter packet...
    for &node in sites.nodes() {
        ledgers[node].cpu(send_cpu);
        ledgers[node].counts.packets_sent += 1;
        #[cfg(feature = "metrics")]
        gamma_metrics::counter_add("packets_sent", node as u16, "filter", 1);
        #[cfg(feature = "trace")]
        gamma_trace::emit(
            node as u16,
            ledgers[node].total_demand().as_us(),
            gamma_trace::EventKind::PacketSend {
                dst: u16::MAX, // aggregate broadcast to the scanning nodes
                bytes: bytes as u32,
            },
        );
    }
    // ...and each disk node receives the aggregate packet.
    for n in machine.disk_nodes() {
        machine.fabric.scheduler_control(&mut ledgers[n], n, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;

    #[test]
    fn dispatch_overhead_grows_with_split_table() {
        let mut m = Machine::new(MachineConfig::local_8());
        let nodes = m.disk_nodes();
        let mut l1 = m.ledgers();
        let small = dispatch_overhead(&mut m, &mut l1, &nodes, 512);
        let mut l2 = m.ledgers();
        let big = dispatch_overhead(&mut m, &mut l2, &nodes, 5_000);
        assert!(
            big > small,
            "multi-packet split tables cost more to dispatch"
        );
        assert_eq!(l1[0].counts.control_msgs, 1);
    }
}
