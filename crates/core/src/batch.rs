//! Arena-backed tuple batches — the zero-copy data plane's staging type.
//!
//! The simulator's per-tuple unit of work used to be an owned `Vec<u8>`,
//! which put one heap allocation (and one free) on the hot path of every
//! scanned, routed, spooled, and restored tuple. A [`TupleBatch`] stages a
//! whole fragment in two allocations: one contiguous byte buffer holding
//! every record back to back, plus a `(start, len)` range table. Records
//! are viewed as borrowed slices (`&[u8]` — the natural `TupleRef`), so
//! downstream consumers (split routing, `Outbox::send`, hash-table
//! insertion, spool writers) copy each tuple at most once, into their own
//! arena or frame buffer.
//!
//! None of this is visible to the virtual-cost model: ledgers charge per
//! logical tuple and per payload byte, and both are unchanged by how the
//! host stores the bytes in between.

/// A batch of variable-length records in one contiguous buffer.
#[derive(Debug, Clone, Default)]
pub struct TupleBatch {
    data: Vec<u8>,
    /// `(start, len)` of each record within `data`.
    ranges: Vec<(u32, u32)>,
}

impl TupleBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch with room for `tuples` records of ~`bytes_per` bytes.
    pub fn with_capacity(tuples: usize, bytes_per: usize) -> Self {
        TupleBatch {
            data: Vec::with_capacity(tuples * bytes_per),
            ranges: Vec::with_capacity(tuples),
        }
    }

    /// Append one record (copies its bytes into the arena).
    pub fn push(&mut self, rec: &[u8]) {
        self.ranges.push((self.data.len() as u32, rec.len() as u32));
        self.data.extend_from_slice(rec);
    }

    /// Number of records in the batch.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True when the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Total payload bytes staged.
    pub fn bytes(&self) -> usize {
        self.data.len()
    }

    /// Borrow record `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> &[u8] {
        let (start, len) = self.ranges[i];
        &self.data[start as usize..(start + len) as usize]
    }

    /// The `(start, len)` range table — one entry per record. Handy for
    /// chunked fan-out (`par_map` over ranges, resolve via [`Self::slice`]).
    pub fn ranges(&self) -> &[(u32, u32)] {
        &self.ranges
    }

    /// Resolve a range from [`Self::ranges`] back to its record bytes.
    pub fn slice(&self, (start, len): (u32, u32)) -> &[u8] {
        &self.data[start as usize..(start + len) as usize]
    }

    /// Iterate the records in insertion order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[u8]> + Clone {
        self.ranges
            .iter()
            .map(|&(start, len)| &self.data[start as usize..(start + len) as usize])
    }

    /// Append one record formed by concatenating `a ++ b` (a composed join
    /// output) without materializing the concatenation first.
    pub fn push_concat(&mut self, a: &[u8], b: &[u8]) {
        self.ranges
            .push((self.data.len() as u32, (a.len() + b.len()) as u32));
        self.data.extend_from_slice(a);
        self.data.extend_from_slice(b);
    }

    /// Drop every record but keep the allocations for reuse.
    pub fn clear(&mut self) {
        self.data.clear();
        self.ranges.clear();
    }

    /// Keep only the records whose index satisfies `keep`, compacting the
    /// arena in place (stable order, no new allocation).
    pub fn retain_indices(&mut self, keep: impl Fn(usize) -> bool) {
        let mut write = 0usize;
        let mut out = 0usize;
        for i in 0..self.ranges.len() {
            if !keep(i) {
                continue;
            }
            let (start, len) = self.ranges[i];
            let (start, len) = (start as usize, len as usize);
            if start != write {
                self.data.copy_within(start..start + len, write);
            }
            self.ranges[out] = (write as u32, len as u32);
            write += len;
            out += 1;
        }
        self.ranges.truncate(out);
        self.data.truncate(write);
    }
}

impl<'a> IntoIterator for &'a TupleBatch {
    type Item = &'a [u8];
    type IntoIter = Box<dyn Iterator<Item = &'a [u8]> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(
            self.ranges
                .iter()
                .map(|&(start, len)| &self.data[start as usize..(start + len) as usize]),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_iter_roundtrip() {
        let mut b = TupleBatch::new();
        assert!(b.is_empty());
        b.push(&[1, 2, 3]);
        b.push(&[]);
        b.push(&[4]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.bytes(), 4);
        assert_eq!(b.get(0), &[1, 2, 3]);
        assert_eq!(b.get(1), &[] as &[u8]);
        assert_eq!(b.get(2), &[4]);
        let all: Vec<&[u8]> = b.iter().collect();
        assert_eq!(all, vec![&[1, 2, 3][..], &[][..], &[4][..]]);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut b = TupleBatch::with_capacity(4, 8);
        b.push(&[7; 8]);
        let cap = b.data.capacity();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.data.capacity(), cap);
    }

    #[test]
    fn retain_compacts_in_place() {
        let mut b = TupleBatch::new();
        for i in 0..5u8 {
            b.push(&[i, i, i]);
        }
        b.retain_indices(|i| i % 2 == 0);
        assert_eq!(b.len(), 3);
        assert_eq!(b.get(0), &[0, 0, 0]);
        assert_eq!(b.get(1), &[2, 2, 2]);
        assert_eq!(b.get(2), &[4, 4, 4]);
        assert_eq!(b.bytes(), 9);
    }
}
