//! # gamma-core — four parallel join algorithms on a simulated Gamma machine
//!
//! This crate is the reproduction's primary contribution: parallel versions
//! of the **Sort-Merge**, **Simple hash**, **Grace hash** and **Hybrid
//! hash** join algorithms, implemented exactly as Schneider & DeWitt
//! describe them running inside the Gamma database machine (SIGMOD 1989),
//! executing on real tuples over the `gamma-wiss` storage substrate and the
//! `gamma-net` interconnect, with response times produced by the
//! `gamma-des` virtual-time model.
//!
//! Layout:
//!
//! * [`mod@tuple`] — schemas and fixed-width tuple accessors,
//! * [`hash`] — the seeded randomizing hash function used for declustering,
//!   split-table routing, overflow resolution and bit filters,
//! * [`cost`] — the calibrated VAX-11/750-era cost model,
//! * [`machine`] — machine configuration (disk/diskless nodes), volumes,
//!   buffer pools, fabric and the relation catalog,
//! * [`split`] — partitioning/joining split tables built per Appendix A and
//!   the optimizer *bucket analyzer*,
//! * [`bitfilter`] — packet-sized bit-vector filters \[BABB79, VALD84\],
//! * [`hash_table`] — the memory-capped join hash table with the
//!   histogram-guided 10 % clearing heuristic of Section 4.1,
//! * [`exec`] — the per-node executor (serial or thread-parallel behind
//!   the `parallel` feature) and the shared stage library: `Scan`,
//!   split/build/probe consumers, overflow spooling and resolution,
//!   bucket forming, scheduler dispatch and filter broadcast,
//! * [`algorithms`] — the four join drivers, each a short composition of
//!   executor stages,
//! * [`operators`] — the rest of Gamma's operator set: selection
//!   (sequential and B+-tree-indexed), projection, scalar and group-by
//!   aggregation,
//! * [`planner`] — operator trees, the sampling column analyzer and the
//!   §5-rule optimizer,
//! * [`query`] — [`query::JoinSpec`] / [`query::run_join`], the public
//!   entry point, plus the DES replay that turns phase ledgers into a
//!   response time,
//! * [`report`] — per-phase and per-query instrumentation,
//! * [`throughput`] — operational-analysis bounds on multiuser throughput
//!   from a single measured query. The multiuser regime itself is no
//!   longer left to future work: the `gamma-sched` crate serves many
//!   concurrent joins over one machine (admission control, shared device
//!   queues) and measures the saturation knee these bounds predict.

pub mod algorithms;
pub mod batch;
pub mod bitfilter;
pub mod cost;
pub mod exec;
pub mod hash;
pub mod hash_table;
pub mod machine;
pub mod operators;
pub mod planner;
pub mod query;
pub mod report;
pub mod split;
pub mod throughput;
pub mod tuple;

pub use batch::TupleBatch;
pub use cost::CostModel;
pub use exec::{pool::WorkerPool, ExecConfig};
pub use machine::{Machine, MachineConfig, NodeId, RelationId, StoredRelation};
pub use query::{run_join, run_join_with_phases, Algorithm, JoinSite, JoinSpec, OverflowPolicy};
pub use report::{JoinReport, PhaseRecord};
pub use tuple::{Attr, Schema};
