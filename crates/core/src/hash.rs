//! The randomizing hash function.
//!
//! One seeded 64-bit finalizer serves every hashing role in the system:
//! declustering at load time, split-table routing, the `h'` overflow
//! functions of the Simple-hash algorithm, and bit-filter bits. Distinct
//! *seeds* give the independent functions the paper requires — in
//! particular, Simple hash "changes the hash function after each overflow"
//! simply by bumping the seed, which is what converts HPJA joins into
//! non-HPJA joins during overflow processing (§4.1).
//!
//! The HPJA short-circuiting analysis of Appendix A needs the *same*
//! function (same seed) for loading and later partitioning, because
//! `h(v) mod D == (h(v) mod N·D) mod D` whenever `D | N·D`. The engine uses
//! [`JOIN_SEED`] for every first-pass routing decision to preserve exactly
//! that alignment.

/// Seed used for load-time declustering and first-pass join routing.
pub const JOIN_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// Seed base for bit-filter hashing (independent of routing).
pub const FILTER_SEED: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// Seeded randomizing function: splitmix64-style finalizer, well mixed and
/// extremely cheap to compute on the host (its *simulated* cost is charged
/// separately by the cost model).
#[inline]
pub fn hash_u32(seed: u64, v: u32) -> u64 {
    let mut x = (v as u64).wrapping_add(seed);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derive the `h'` seed for overflow pass `pass` at join site `site`.
/// Every (pass, site) pair gets an independent function, as §3.2 requires
/// ("each join site that overflows has its own locally defined h'").
#[inline]
pub fn overflow_seed(pass: u32, site: usize) -> u64 {
    JOIN_SEED
        .wrapping_mul(0x100_0000_01B3)
        .wrapping_add(((pass as u64) << 32) | (site as u64 + 1))
}

/// Seed for re-splitting the aggregate overflow partitions on pass `pass`.
#[inline]
pub fn respread_seed(pass: u32) -> u64 {
    JOIN_SEED ^ (0xA076_1D64_78BD_642F_u64.wrapping_mul(pass as u64 + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_u32(1, 42), hash_u32(1, 42));
        assert_ne!(hash_u32(1, 42), hash_u32(2, 42));
        assert_ne!(hash_u32(1, 42), hash_u32(1, 43));
    }

    #[test]
    fn spreads_sequential_keys() {
        // unique1 is a permutation of 0..100_000; its hashes mod 8 must be
        // close to uniform or every experiment's load balance is wrong.
        let mut buckets = [0u32; 8];
        for v in 0..100_000u32 {
            buckets[(hash_u32(JOIN_SEED, v) % 8) as usize] += 1;
        }
        for &b in &buckets {
            assert!((11_000..14_000).contains(&b), "skewed bucket: {buckets:?}");
        }
    }

    #[test]
    fn mod_alignment_for_hpja() {
        // (h mod N*D) mod D == h mod D — the Appendix A alignment law.
        for v in 0..10_000u32 {
            let h = hash_u32(JOIN_SEED, v);
            for n in 1..6u64 {
                assert_eq!((h % (n * 8)) % 8, h % 8);
            }
        }
    }

    #[test]
    fn overflow_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for pass in 0..8 {
            for site in 0..16 {
                assert!(seen.insert(overflow_seed(pass, site)));
            }
        }
        assert_ne!(respread_seed(0), respread_seed(1));
        assert_ne!(respread_seed(0), JOIN_SEED);
    }

    #[test]
    fn avalanche_rough_check() {
        // Flipping one input bit should flip ~half the output bits.
        let mut total = 0u32;
        let n = 1000;
        for v in 0..n {
            let a = hash_u32(JOIN_SEED, v);
            let b = hash_u32(JOIN_SEED, v ^ 1);
            total += (a ^ b).count_ones();
        }
        let avg = total as f64 / n as f64;
        assert!((24.0..40.0).contains(&avg), "poor avalanche: {avg}");
    }
}
