//! Relational operators beyond the join: selection (sequential and
//! B+-tree-indexed), projection, and aggregation.
//!
//! Section 2.2 of the paper describes Gamma's operator framework: scans and
//! selections run at the processors with disks, while "join, projection,
//! and aggregate operations" may run on diskless processors; operators
//! consume and produce tuple streams routed by split tables, and result
//! relations are distributed round-robin to store operators at the disk
//! sites. The operators here follow that framework and reuse the same
//! ledger/phase/replay machinery as the joins, so a composed query plan
//! (select → join → aggregate) gets one coherent virtual-time account.

use gamma_des::{SimTime, Usage};
use gamma_wiss::btree::BPlusTree;

use crate::algorithms::common::RangePred;
use crate::exec::control::dispatch_overhead;
use crate::exec::scan::scan_fragment_at;
use crate::exec::{self};
use crate::hash::{hash_u32, JOIN_SEED};
use crate::machine::{Declustering, Machine, NodeId, RelationId, ResultRoute, ResultSink};
use crate::query::replay_phases;
use crate::report::{PhaseRecord, PhaseSummary};
use crate::split::JoiningSplitTable;
use crate::tuple::{project_ranges_into, Attr, Field, Schema};

/// Timed result of a non-join operator.
#[derive(Debug, Clone)]
pub struct OpReport {
    /// End-to-end response time.
    pub response: SimTime,
    /// Phase breakdown.
    pub phases: Vec<PhaseSummary>,
    /// Tuples produced.
    pub tuples_out: u64,
    /// Aggregate resource usage.
    pub total: Usage,
}

fn finish_op(machine: &Machine, phases: Vec<PhaseRecord>, tuples_out: u64) -> OpReport {
    let (response, summaries) = replay_phases(machine, &phases);
    let total = phases
        .iter()
        .flat_map(|p| p.ledgers.iter().cloned())
        .fold(Usage::ZERO, |a, b| a + b);
    OpReport {
        response,
        phases: summaries,
        tuples_out,
        total,
    }
}

/// Sequential parallel selection: every disk node scans its fragment,
/// applies the predicate, and streams survivors round-robin to the store
/// operators. Returns the materialized result relation.
pub fn select(
    machine: &mut Machine,
    rel: RelationId,
    pred: RangePred,
    store_as: &str,
) -> (RelationId, OpReport) {
    let fragments = machine.relation(rel).fragments.clone();
    let schema = machine.relation(rel).schema.clone();
    let disk_nodes = machine.disk_nodes();
    let mut sink = ResultSink::new(machine);
    let mut route = ResultRoute::new(0, disk_nodes.len());
    let mut ledgers = machine.ledgers();
    for &node in &disk_nodes {
        let recs = scan_fragment_at(machine, &mut ledgers, node, fragments[node], Some(pred));
        for rec in recs.iter() {
            sink.push(machine, &mut ledgers, &mut route, node, rec);
        }
    }
    sink.flush(machine, &mut ledgers);
    let info = sink.finish(machine, &mut ledgers);
    let sched = dispatch_overhead(machine, &mut ledgers, &disk_nodes, 0);
    let phases = vec![PhaseRecord::new("select", ledgers, sched)];
    let id = machine.register_relation(store_as, schema, Declustering::RoundRobin, info.files);
    (id, finish_op(machine, phases, info.tuples))
}

/// Parallel projection onto the named fields.
pub fn project(
    machine: &mut Machine,
    rel: RelationId,
    fields: &[&str],
    store_as: &str,
) -> (RelationId, OpReport) {
    let cost = machine.cfg.cost.clone();
    let fragments = machine.relation(rel).fragments.clone();
    let schema = machine.relation(rel).schema.clone();
    let out_schema = schema.project(fields);
    let disk_nodes = machine.disk_nodes();
    let mut sink = ResultSink::new(machine);
    let mut route = ResultRoute::new(0, disk_nodes.len());
    let mut ledgers = machine.ledgers();
    // Resolve field names to byte ranges once; reuse one output buffer for
    // the whole relation instead of allocating per projected tuple.
    let ranges = schema.projection(fields);
    let mut out = Vec::new();
    for &node in &disk_nodes {
        let recs = scan_fragment_at(machine, &mut ledgers, node, fragments[node], None);
        for rec in recs.iter() {
            cost.charge(&mut ledgers[node], cost.compose_us);
            project_ranges_into(&ranges, rec, &mut out);
            sink.push(machine, &mut ledgers, &mut route, node, &out);
        }
    }
    sink.flush(machine, &mut ledgers);
    let info = sink.finish(machine, &mut ledgers);
    let sched = dispatch_overhead(machine, &mut ledgers, &disk_nodes, 0);
    let phases = vec![PhaseRecord::new("project", ledgers, sched)];
    let id = machine.register_relation(store_as, out_schema, Declustering::RoundRobin, info.files);
    (id, finish_op(machine, phases, info.tuples))
}

/// Aggregate functions over a 4-byte integer attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// Row count (the attribute is ignored).
    Count,
    /// Sum of the attribute.
    Sum,
    /// Minimum of the attribute.
    Min,
    /// Maximum of the attribute.
    Max,
}

impl AggFn {
    fn init(&self) -> u64 {
        match self {
            AggFn::Count | AggFn::Sum => 0,
            AggFn::Min => u64::MAX,
            AggFn::Max => 0,
        }
    }

    fn update(&self, acc: u64, v: u32) -> u64 {
        match self {
            AggFn::Count => acc + 1,
            AggFn::Sum => acc + v as u64,
            AggFn::Min => acc.min(v as u64),
            AggFn::Max => acc.max(v as u64),
        }
    }

    fn merge(&self, a: u64, b: u64) -> u64 {
        match self {
            AggFn::Count | AggFn::Sum => a + b,
            AggFn::Min => a.min(b),
            AggFn::Max => a.max(b),
        }
    }
}

/// Scalar aggregate: each disk node computes a partial over its fragment
/// and sends one partial-result control message to the scheduler, which
/// combines them.
pub fn aggregate_scalar(
    machine: &mut Machine,
    rel: RelationId,
    attr: Attr,
    f: AggFn,
    pred: Option<RangePred>,
) -> (u64, OpReport) {
    let cost = machine.cfg.cost.clone();
    let fragments = machine.relation(rel).fragments.clone();
    let disk_nodes = machine.disk_nodes();
    let mut ledgers = machine.ledgers();
    let mut acc = f.init();
    for &node in &disk_nodes {
        let recs = scan_fragment_at(machine, &mut ledgers, node, fragments[node], pred);
        for rec in recs.iter() {
            cost.charge(&mut ledgers[node], cost.agg_update_us);
            acc = f.merge(acc, f.update(f.init(), attr.get(rec)));
        }
        // Partial result back to the scheduler: one control message.
        machine
            .fabric
            .scheduler_control(&mut ledgers[node], node, 64);
    }
    machine.fabric.flush(&mut ledgers);
    let sched = dispatch_overhead(machine, &mut ledgers, &disk_nodes, 0);
    let phases = vec![PhaseRecord::new("aggregate (scalar)", ledgers, sched)];
    let report = finish_op(machine, phases, 1);
    (acc, report)
}

/// Hash group-by aggregation, the Gamma way: local partial aggregation at
/// each disk node, repartition of the partial groups through a joining
/// split table to the aggregation processors (`agg_nodes` — diskless nodes
/// are the natural choice, §2.1), final merge, result stored round-robin.
///
/// Output schema: `(group: Int, value: Int)` (values are truncated to u32
/// as the Wisconsin attributes always fit).
pub fn aggregate_group(
    machine: &mut Machine,
    rel: RelationId,
    group_attr: Attr,
    agg_attr: Attr,
    f: AggFn,
    agg_nodes: Vec<NodeId>,
    store_as: &str,
) -> (RelationId, OpReport) {
    use std::collections::HashMap;
    assert!(!agg_nodes.is_empty(), "need aggregation processors");
    let cost = machine.cfg.cost.clone();
    let fragments = machine.relation(rel).fragments.clone();
    let disk_nodes = machine.disk_nodes();
    let jt = JoiningSplitTable::new(agg_nodes.clone());
    let table_bytes = cost.split_table_bytes(jt.entries());
    let mut phases = Vec::new();

    // ---- Phase 1: local partial aggregation ----
    let mut partials: Vec<HashMap<u32, u64>> = vec![HashMap::new(); disk_nodes.len()];
    let mut ledgers = machine.ledgers();
    for &node in &disk_nodes {
        let recs = scan_fragment_at(machine, &mut ledgers, node, fragments[node], None);
        for rec in recs.iter() {
            cost.charge(&mut ledgers[node], cost.hash_us + cost.agg_update_us);
            let g = group_attr.get(rec);
            let v = agg_attr.get(rec);
            let slot = partials[node].entry(g).or_insert_with(|| f.init());
            *slot = f.update(*slot, v);
        }
    }
    machine.fabric.flush(&mut ledgers);
    let sched = dispatch_overhead(machine, &mut ledgers, &disk_nodes, 0);
    phases.push(PhaseRecord::new(
        "aggregate: local partials",
        ledgers,
        sched,
    ));

    // ---- Phase 2: repartition partials, merge, store ----
    let mut merged: Vec<HashMap<u32, u64>> = vec![HashMap::new(); agg_nodes.len()];
    let mut ledgers = machine.ledgers();
    for (node, part) in partials.into_iter().enumerate() {
        // Deterministic send order: HashMap iteration must not leak into
        // the fabric's packet accounting.
        let mut part: Vec<(u32, u64)> = part.into_iter().collect();
        part.sort_unstable();
        for (g, v) in part {
            cost.charge(&mut ledgers[node], cost.hash_us + cost.route_us);
            let i = jt.site_index(hash_u32(JOIN_SEED, g));
            machine
                .fabric
                .send_tuple(&mut ledgers, node, agg_nodes[i], 8);
            let dst = agg_nodes[i];
            cost.charge(&mut ledgers[dst], cost.agg_update_us);
            let slot = merged[i].entry(g).or_insert_with(|| f.init());
            *slot = f.merge(*slot, v);
        }
    }
    machine.fabric.flush(&mut ledgers);
    let mut sink = ResultSink::new(machine);
    let mut route = ResultRoute::new(0, disk_nodes.len());
    let out_schema = Schema::new(vec![Field::Int("group".into()), Field::Int("value".into())]);
    let mut groups: u64 = 0;
    for (i, m) in merged.into_iter().enumerate() {
        let node = agg_nodes[i];
        // Deterministic output order within a site.
        let mut rows: Vec<(u32, u64)> = m.into_iter().collect();
        rows.sort_unstable();
        for (g, v) in rows {
            groups += 1;
            cost.charge(&mut ledgers[node], cost.compose_us);
            let mut rec = vec![0u8; 8];
            rec[0..4].copy_from_slice(&g.to_le_bytes());
            rec[4..8].copy_from_slice(&(v as u32).to_le_bytes());
            sink.push(machine, &mut ledgers, &mut route, node, &rec);
        }
    }
    sink.flush(machine, &mut ledgers);
    let info = sink.finish(machine, &mut ledgers);
    let mut sched = dispatch_overhead(machine, &mut ledgers, &disk_nodes, table_bytes);
    sched += dispatch_overhead(machine, &mut ledgers, &agg_nodes, table_bytes);
    phases.push(PhaseRecord::new("aggregate: merge + store", ledgers, sched));

    let id = machine.register_relation(store_as, out_schema, Declustering::RoundRobin, info.files);
    (id, finish_op(machine, phases, groups))
}

/// Delete every tuple matching `pred`, rewriting each fragment in place
/// (read, filter, write — update operations run only at the disk nodes,
/// §2.1). Returns the number of tuples deleted.
pub fn delete_where(machine: &mut Machine, rel: RelationId, pred: RangePred) -> (u64, OpReport) {
    rewrite(machine, rel, "delete", move |rec, _cost| {
        if pred.eval(rec) {
            None
        } else {
            Some(rec.to_vec())
        }
    })
}

/// Set `attr` to `value` on every tuple matching `pred`. Returns the
/// number of tuples modified.
pub fn update_where(
    machine: &mut Machine,
    rel: RelationId,
    pred: RangePred,
    attr: Attr,
    value: u32,
) -> (u64, OpReport) {
    rewrite(machine, rel, "update", move |rec, _cost| {
        if pred.eval(rec) {
            let mut out = rec.to_vec();
            attr.put(&mut out, value);
            Some(out)
        } else {
            // Unchanged tuples are rewritten too (fragment files are
            // sequential); returning Some(original) keeps them.
            Some(rec.to_vec())
        }
    })
}

/// Shared rewrite machinery for update/delete: scan each fragment, map
/// every record (None = drop), write the surviving records to a fresh
/// fragment file, swap it into the catalog and free the old one. The
/// count returned is the number of records whose bytes changed or were
/// dropped.
fn rewrite(
    machine: &mut Machine,
    rel: RelationId,
    label: &str,
    f: impl Fn(&[u8], &crate::cost::CostModel) -> Option<Vec<u8>>,
) -> (u64, OpReport) {
    use gamma_wiss::HeapWriter;
    let cost = machine.cfg.cost.clone();
    let fragments = machine.relation(rel).fragments.clone();
    let disk_nodes = machine.disk_nodes();
    let page = cost.disk.page_bytes;
    let mut ledgers = machine.ledgers();
    let mut new_fragments = Vec::with_capacity(fragments.len());
    let mut touched = 0u64;
    let mut kept_tuples = 0u64;
    let mut kept_bytes = 0u64;
    for &node in &disk_nodes {
        let recs = scan_fragment_at(machine, &mut ledgers, node, fragments[node], None);
        let mut w = HeapWriter::create(machine.nodes[node].vol_mut(), page);
        for rec in recs.iter() {
            match f(rec, &cost) {
                Some(out) => {
                    if out != rec {
                        touched += 1;
                        cost.charge(&mut ledgers[node], cost.compose_us);
                    }
                    cost.charge(&mut ledgers[node], cost.store_tuple_us);
                    kept_tuples += 1;
                    kept_bytes += out.len() as u64;
                    let (vol, pool) = machine.nodes[node].vp();
                    w.push(vol, pool, &mut ledgers[node], &out);
                }
                None => touched += 1,
            }
        }
        let newf = {
            let (vol, pool) = machine.nodes[node].vp();
            w.finish(vol, pool, &mut ledgers[node])
        };
        exec::delete_file(machine, node, fragments[node]);
        new_fragments.push(newf);
    }
    {
        let r = machine.relation_mut(rel);
        r.fragments = new_fragments;
        r.tuples = kept_tuples;
        r.data_bytes = kept_bytes;
    }
    let sched = dispatch_overhead(machine, &mut ledgers, &disk_nodes, 0);
    let phases = vec![PhaseRecord::new(label, ledgers, sched)];
    let report = finish_op(machine, phases, kept_tuples);
    (touched, report)
}

/// A B+-tree index over one integer attribute of a stored relation: one
/// tree per disk node mapping attribute value → page index within the
/// node's fragment (WiSS's B+ indices, §2.2).
pub struct BTreeIndex {
    rel: RelationId,
    attr: Attr,
    per_node: Vec<BPlusTree<u32, u32>>,
}

/// Build an index by scanning the relation once.
pub fn build_index(machine: &mut Machine, rel: RelationId, attr: Attr) -> (BTreeIndex, OpReport) {
    let cost = machine.cfg.cost.clone();
    let fragments = machine.relation(rel).fragments.clone();
    let disk_nodes = machine.disk_nodes();
    let mut per_node = Vec::with_capacity(disk_nodes.len());
    let mut ledgers = machine.ledgers();
    for &node in &disk_nodes {
        let mut tree = BPlusTree::new();
        let file = fragments[node];
        let pages = machine.nodes[node].vol().file_pages(file);
        for p in 0..pages {
            machine.nodes[node]
                .pool
                .as_mut()
                .unwrap()
                .charge_read(file, p, &mut ledgers[node]);
            let page = machine.nodes[node].vol().page(file, p);
            for rec in page.records() {
                cost.charge(&mut ledgers[node], cost.build_insert_us);
                tree.insert(attr.get(rec), p as u32);
            }
        }
        // Writing the index back: roughly one page per 64-entry leaf.
        let leaves = (tree.len() as u64).div_ceil(64);
        for _ in 0..leaves {
            ledgers[node].disk(SimTime::from_us(cost.disk.seq_write_us));
            ledgers[node].counts.pages_written += 1;
            #[cfg(feature = "metrics")]
            gamma_metrics::counter_add("pages_written", node as u16, "index", 1);
            #[cfg(feature = "trace")]
            gamma_trace::emit(
                node as u16,
                ledgers[node].total_demand().as_us(),
                gamma_trace::EventKind::DiskWrite {
                    file: file as u32,
                    page: u32::MAX, // modeled index I/O, no real page
                },
            );
        }
        per_node.push(tree);
    }
    let sched = dispatch_overhead(machine, &mut ledgers, &disk_nodes, 0);
    let phases = vec![PhaseRecord::new("build index", ledgers, sched)];
    let report = finish_op(machine, phases, 0);
    (
        BTreeIndex {
            rel,
            attr,
            per_node,
        },
        report,
    )
}

/// Indexed selection: walk the index for the qualifying range, read only
/// the pages that hold candidates, re-check the predicate, and store the
/// survivors. Far cheaper than a sequential scan for selective predicates
/// — the reason Gamma ran indexed selections for the `joinAselB` family.
pub fn select_indexed(
    machine: &mut Machine,
    index: &BTreeIndex,
    pred: RangePred,
    store_as: &str,
) -> (RelationId, OpReport) {
    assert_eq!(
        index.attr.offset, pred.attr.offset,
        "predicate must be on the indexed attribute"
    );
    let cost = machine.cfg.cost.clone();
    let rel = index.rel;
    let fragments = machine.relation(rel).fragments.clone();
    let schema = machine.relation(rel).schema.clone();
    let disk_nodes = machine.disk_nodes();
    let mut sink = ResultSink::new(machine);
    let mut route = ResultRoute::new(0, disk_nodes.len());
    let mut ledgers = machine.ledgers();
    for &node in &disk_nodes {
        let tree = &index.per_node[node];
        // Charge the root-to-leaf descent.
        for _ in 0..tree.depth() {
            ledgers[node].disk(SimTime::from_us(cost.disk.rand_read_us));
            ledgers[node].counts.pages_read += 1;
            #[cfg(feature = "metrics")]
            gamma_metrics::counter_add("pages_read", node as u16, "index", 1);
            #[cfg(feature = "trace")]
            gamma_trace::emit(
                node as u16,
                ledgers[node].total_demand().as_us(),
                gamma_trace::EventKind::DiskRead {
                    file: fragments[node] as u32,
                    page: u32::MAX, // modeled index descent, no real page
                },
            );
        }
        let mut pages: Vec<u32> = tree
            .range(&pred.lo, &pred.hi)
            .into_iter()
            .map(|(_, &p)| p)
            .collect();
        pages.sort_unstable();
        pages.dedup();
        let file = fragments[node];
        let matches: Vec<Vec<u8>> = {
            let mut out = Vec::new();
            for &p in &pages {
                machine.nodes[node].pool.as_mut().unwrap().charge_read(
                    file,
                    p as usize,
                    &mut ledgers[node],
                );
                let page = machine.nodes[node].vol().page(file, p as usize);
                for rec in page.records() {
                    cost.charge(&mut ledgers[node], cost.scan_tuple_us);
                    if pred.eval(rec) {
                        out.push(rec.to_vec());
                    }
                }
            }
            out
        };
        for rec in matches {
            sink.push(machine, &mut ledgers, &mut route, node, &rec);
        }
    }
    sink.flush(machine, &mut ledgers);
    let info = sink.finish(machine, &mut ledgers);
    let sched = dispatch_overhead(machine, &mut ledgers, &disk_nodes, 0);
    let phases = vec![PhaseRecord::new("select (indexed)", ledgers, sched)];
    let id = machine.register_relation(store_as, schema, Declustering::RoundRobin, info.files);
    (id, finish_op(machine, phases, info.tuples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;

    fn machine_with_rel(n: u32) -> (Machine, RelationId, Schema) {
        let schema = Schema::new(vec![
            Field::Int("k".into()),
            Field::Int("v".into()),
            Field::Str("pad".into(), 24),
        ]);
        let mut m = Machine::new(MachineConfig::remote_8_plus_8());
        let tuples: Vec<Vec<u8>> = (0..n)
            .map(|k| {
                let mut t = vec![0u8; 32];
                schema.int_attr("k").put(&mut t, k);
                schema.int_attr("v").put(&mut t, k % 10);
                t
            })
            .collect();
        let id = m.load_relation("t", schema.clone(), Declustering::RoundRobin, tuples);
        (m, id, schema)
    }

    #[test]
    fn select_filters_and_stores() {
        let (mut m, rel, schema) = machine_with_rel(1_000);
        let pred = RangePred {
            attr: schema.int_attr("k"),
            lo: 100,
            hi: 299,
        };
        let (out, report) = select(&mut m, rel, pred, "sel");
        assert_eq!(report.tuples_out, 200);
        assert_eq!(m.relation(out).tuples, 200);
        assert!(report.response > SimTime::ZERO);
    }

    #[test]
    fn project_narrows_tuples() {
        let (mut m, rel, _schema) = machine_with_rel(500);
        let (out, report) = project(&mut m, rel, &["v", "k"], "proj");
        assert_eq!(report.tuples_out, 500);
        let r = m.relation(out);
        assert_eq!(r.schema.tuple_bytes(), 8);
        assert_eq!(r.data_bytes, 500 * 8);
        // First field is now v.
        assert_eq!(r.schema.int_attr("v").offset, 0);
    }

    #[test]
    fn scalar_aggregates() {
        let (mut m, rel, schema) = machine_with_rel(1_000);
        let k = schema.int_attr("k");
        let (count, _) = aggregate_scalar(&mut m, rel, k, AggFn::Count, None);
        assert_eq!(count, 1_000);
        let (sum, _) = aggregate_scalar(&mut m, rel, k, AggFn::Sum, None);
        assert_eq!(sum, (0..1_000u64).sum());
        let (min, _) = aggregate_scalar(&mut m, rel, k, AggFn::Min, None);
        assert_eq!(min, 0);
        let (max, _) = aggregate_scalar(&mut m, rel, k, AggFn::Max, None);
        assert_eq!(max, 999);
        let pred = RangePred {
            attr: k,
            lo: 10,
            hi: 19,
        };
        let (cnt, _) = aggregate_scalar(&mut m, rel, k, AggFn::Count, Some(pred));
        assert_eq!(cnt, 10);
    }

    #[test]
    fn group_by_on_diskless_nodes() {
        let (mut m, rel, schema) = machine_with_rel(1_000);
        let agg_nodes = m.diskless_nodes();
        let (out, report) = aggregate_group(
            &mut m,
            rel,
            schema.int_attr("v"),
            schema.int_attr("k"),
            AggFn::Count,
            agg_nodes,
            "counts",
        );
        assert_eq!(report.tuples_out, 10, "10 groups (k % 10)");
        let r = m.relation(out);
        assert_eq!(r.tuples, 10);
        // Sum the counts back: must equal the input cardinality.
        let total: u64 = (0..m.cfg.disk_nodes)
            .flat_map(|n| {
                let vol = m.nodes[n].vol();
                let f = r.fragments[n];
                (0..vol.file_pages(f))
                    .flat_map(move |p| vol.page(f, p).records().map(|rec| rec.to_vec()))
                    .collect::<Vec<_>>()
            })
            .map(|rec| u32::from_le_bytes(rec[4..8].try_into().unwrap()) as u64)
            .sum();
        assert_eq!(total, 1_000);
    }

    #[test]
    fn group_by_sum_matches_model() {
        let (mut m, rel, schema) = machine_with_rel(777);
        let agg_nodes = m.disk_nodes();
        let (out, _) = aggregate_group(
            &mut m,
            rel,
            schema.int_attr("v"),
            schema.int_attr("k"),
            AggFn::Sum,
            agg_nodes,
            "sums",
        );
        let mut model = std::collections::HashMap::<u32, u64>::new();
        for k in 0..777u32 {
            *model.entry(k % 10).or_default() += k as u64;
        }
        let r = m.relation(out);
        let mut got = std::collections::HashMap::<u32, u64>::new();
        for n in 0..m.cfg.disk_nodes {
            let vol = m.nodes[n].vol();
            let f = r.fragments[n];
            for p in 0..vol.file_pages(f) {
                for rec in vol.page(f, p).records() {
                    let g = u32::from_le_bytes(rec[0..4].try_into().unwrap());
                    let v = u32::from_le_bytes(rec[4..8].try_into().unwrap());
                    got.insert(g, v as u64);
                }
            }
        }
        assert_eq!(got, model);
    }

    #[test]
    fn indexed_selection_beats_sequential_io() {
        let (mut m, rel, schema) = machine_with_rel(20_000);
        let k = schema.int_attr("k");
        let (index, build) = build_index(&mut m, rel, k);
        assert!(build.total.counts.pages_read > 0);
        let pred = RangePred {
            attr: k,
            lo: 500,
            hi: 549,
        };
        m.clear_pools();
        let (out, idx_report) = select_indexed(&mut m, &index, pred, "idx_sel");
        assert_eq!(idx_report.tuples_out, 50);
        assert_eq!(m.relation(out).tuples, 50);
        m.clear_pools();
        let (out2, seq_report) = select(&mut m, rel, pred, "seq_sel");
        assert_eq!(seq_report.tuples_out, 50);
        assert_eq!(m.relation(out2).tuples, 50);
        assert!(
            idx_report.total.counts.pages_read < seq_report.total.counts.pages_read / 2,
            "index must slash page reads: {} vs {}",
            idx_report.total.counts.pages_read,
            seq_report.total.counts.pages_read
        );
        assert!(idx_report.response < seq_report.response);
    }

    #[test]
    fn delete_where_removes_and_rewrites() {
        let (mut m, rel, schema) = machine_with_rel(1_000);
        let k = schema.int_attr("k");
        let pred = RangePred {
            attr: k,
            lo: 0,
            hi: 249,
        };
        let (deleted, report) = delete_where(&mut m, rel, pred);
        assert_eq!(deleted, 250);
        assert_eq!(m.relation(rel).tuples, 750);
        assert!(report.total.counts.pages_written > 0);
        // The deleted keys are really gone from storage.
        let (count, _) = aggregate_scalar(&mut m, rel, k, AggFn::Count, Some(pred));
        assert_eq!(count, 0);
        let (count, _) = aggregate_scalar(&mut m, rel, k, AggFn::Count, None);
        assert_eq!(count, 750);
    }

    #[test]
    fn update_where_modifies_in_place() {
        let (mut m, rel, schema) = machine_with_rel(500);
        let k = schema.int_attr("k");
        let v = schema.int_attr("v");
        let pred = RangePred {
            attr: k,
            lo: 100,
            hi: 199,
        };
        let (touched, _) = update_where(&mut m, rel, pred, v, 777);
        assert_eq!(touched, 100);
        assert_eq!(m.relation(rel).tuples, 500, "no tuples lost");
        let sel = RangePred {
            attr: v,
            lo: 777,
            hi: 777,
        };
        let (count, _) = aggregate_scalar(&mut m, rel, v, AggFn::Count, Some(sel));
        assert_eq!(count, 100);
        // Untouched region intact.
        let (min, _) = aggregate_scalar(&mut m, rel, k, AggFn::Min, None);
        assert_eq!(min, 0);
    }

    #[test]
    fn delete_everything_leaves_empty_relation() {
        let (mut m, rel, schema) = machine_with_rel(200);
        let k = schema.int_attr("k");
        let pred = RangePred {
            attr: k,
            lo: 0,
            hi: u32::MAX,
        };
        let (deleted, _) = delete_where(&mut m, rel, pred);
        assert_eq!(deleted, 200);
        assert_eq!(m.relation(rel).tuples, 0);
        assert_eq!(m.relation(rel).data_bytes, 0);
    }

    #[test]
    #[should_panic(expected = "predicate must be on the indexed attribute")]
    fn index_attr_mismatch_panics() {
        let (mut m, rel, schema) = machine_with_rel(100);
        let (index, _) = build_index(&mut m, rel, schema.int_attr("k"));
        let pred = RangePred {
            attr: schema.int_attr("v"),
            lo: 0,
            hi: 1,
        };
        select_indexed(&mut m, &index, pred, "boom");
    }
}
