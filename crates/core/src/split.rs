//! Split tables and the optimizer bucket analyzer (Appendix A).
//!
//! Split tables are Gamma's data-partitioning mechanism. A producing
//! process applies the randomizing hash to the join attribute, takes it
//! `mod` the number of entries and routes the tuple to the entry's
//! destination. Three kinds appear in the paper:
//!
//! * the **loading split table** — `D` entries, one per disk node — used
//!   when a relation is declustered at load time with the `hashed` policy;
//! * the **joining split table** — `J` entries, one per join process;
//! * the **partitioning split table** — used by Grace and Hybrid during
//!   bucket-forming. Grace: `N·D` entries laid out bucket-major (all the
//!   disk nodes of bucket 1, then bucket 2, …). Hybrid: `J + D·(N−1)`
//!   entries — bucket 1 routes straight to the join processes, the
//!   remaining buckets to disk, in the same bucket-major layout.
//!
//! Because loading used `h(key) mod D` and the bucket-major layout makes
//! entry `i` of a Grace table map to node `i mod D`, an HPJA join routes
//! every tuple back to its own node — the short-circuiting the paper
//! measures. The same layout gives the pathological distributions of
//! Appendix A Tables 3/4 when `J ≠ D`, which the **bucket analyzer**
//! detects and repairs by adding buckets.

use crate::machine::NodeId;

/// One entry of a partitioning split table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitEntry {
    /// Destination processor.
    pub node: NodeId,
    /// 1-based bucket this entry belongs to.
    pub bucket: usize,
}

/// Where a routed tuple should go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Deliver to join process at `node` (bucket 1 of Hybrid, or any
    /// joining split table hit).
    Join { node: NodeId },
    /// Append to the fragment of `bucket` stored at disk node `node`.
    Spool { node: NodeId, bucket: usize },
}

/// A joining split table: one entry per join process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoiningSplitTable {
    /// Destination join processors, in entry order.
    pub dests: Vec<NodeId>,
}

impl JoiningSplitTable {
    /// Build from the join processor list.
    pub fn new(dests: Vec<NodeId>) -> Self {
        assert!(!dests.is_empty(), "joining split table cannot be empty");
        JoiningSplitTable { dests }
    }

    /// Number of entries.
    pub fn entries(&self) -> usize {
        self.dests.len()
    }

    /// Index of the join site for hash value `h` (this is also the site's
    /// position in the join-site list, used for per-site state).
    #[inline]
    pub fn site_index(&self, h: u64) -> usize {
        (h % self.dests.len() as u64) as usize
    }

    /// Destination node for hash value `h`.
    #[inline]
    pub fn route(&self, h: u64) -> NodeId {
        self.dests[self.site_index(h)]
    }
}

/// Configuration for skew-aware split-table refinement.
///
/// An entry is **hot** when its sampled tuple count exceeds
/// `overload_pct` percent of the mean per-entry count; refinement expands
/// the table `expand`-fold so each hot residue class splits into `expand`
/// sub-ranges that are spread round-robin across the table's destinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefineCfg {
    /// Hot threshold as a percentage of the mean per-entry load (200 =
    /// twice the mean).
    pub overload_pct: u64,
    /// Sub-ranges each hot entry is split into (the refined table has
    /// `entries × expand` entries).
    pub expand: usize,
}

impl Default for RefineCfg {
    fn default() -> Self {
        RefineCfg {
            overload_pct: 200,
            expand: 8,
        }
    }
}

/// A partitioning split table (Grace or Hybrid layout).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitioningSplitTable {
    entries: Vec<SplitEntry>,
    /// For each entry, `Some(site)` when the entry routes to bucket 1's
    /// join process `site` rather than to disk (Hybrid); `None` for spool
    /// entries (all of Grace).
    join_sites: Vec<Option<u32>>,
}

impl PartitioningSplitTable {
    /// Grace layout: `buckets × disk_nodes` entries, bucket-major.
    pub fn grace(disk_nodes: &[NodeId], buckets: usize) -> Self {
        assert!(buckets >= 1 && !disk_nodes.is_empty());
        let mut entries = Vec::with_capacity(buckets * disk_nodes.len());
        for b in 1..=buckets {
            for &node in disk_nodes {
                entries.push(SplitEntry { node, bucket: b });
            }
        }
        let join_sites = vec![None; entries.len()];
        PartitioningSplitTable {
            entries,
            join_sites,
        }
    }

    /// Hybrid layout: `join_nodes` entries for bucket 1 (destined for the
    /// join processes) followed by `disk_nodes × (buckets − 1)` bucket-major
    /// spool entries.
    pub fn hybrid(join_nodes: &[NodeId], disk_nodes: &[NodeId], buckets: usize) -> Self {
        assert!(buckets >= 1 && !join_nodes.is_empty() && !disk_nodes.is_empty());
        let mut entries = Vec::with_capacity(join_nodes.len() + disk_nodes.len() * (buckets - 1));
        let mut join_sites = Vec::with_capacity(entries.capacity());
        for (i, &node) in join_nodes.iter().enumerate() {
            entries.push(SplitEntry { node, bucket: 1 });
            join_sites.push(Some(i as u32));
        }
        for b in 2..=buckets {
            for &node in disk_nodes {
                entries.push(SplitEntry { node, bucket: b });
                join_sites.push(None);
            }
        }
        PartitioningSplitTable {
            entries,
            join_sites,
        }
    }

    /// Number of entries (determines the mod base and the table's size in
    /// control messages).
    pub fn entries(&self) -> usize {
        self.entries.len()
    }

    /// Number of buckets the table partitions into.
    pub fn buckets(&self) -> usize {
        self.entries.iter().map(|e| e.bucket).max().unwrap_or(1)
    }

    /// Route hash value `h`.
    #[inline]
    pub fn route(&self, h: u64) -> Route {
        let idx = (h % self.entries.len() as u64) as usize;
        let e = self.entries[idx];
        if self.join_sites[idx].is_some() {
            Route::Join { node: e.node }
        } else {
            Route::Spool {
                node: e.node,
                bucket: e.bucket,
            }
        }
    }

    /// The join-site index (within bucket 1's join process list) for an
    /// `h` that routed to [`Route::Join`].
    #[inline]
    pub fn join_site_index(&self, h: u64) -> usize {
        let idx = (h % self.entries.len() as u64) as usize;
        self.join_sites[idx].expect("join_site_index on a spool entry") as usize
    }

    /// Raw entries (tests, display).
    pub fn raw(&self) -> &[SplitEntry] {
        &self.entries
    }

    /// Per-entry join-site assignments parallel to [`raw`](Self::raw)
    /// (`Some(site)` for bucket-1 join entries, `None` for spool entries).
    pub fn raw_join_sites(&self) -> &[Option<u32>] {
        &self.join_sites
    }

    /// Skew-aware refinement: given a per-entry tuple-count histogram
    /// sampled during bucket-forming, split every hot residue class across
    /// the table's other destinations.
    ///
    /// The refined table has `entries × expand` entries; entry `j` covers
    /// the hash residues `h ≡ j (mod entries × expand)`, all of which
    /// belong to base residue class `j mod entries` — so non-hot classes
    /// keep their base destination bit-for-bit, while each hot class's
    /// `expand` sub-ranges are dealt round-robin across the base table's
    /// destination pool (join entries over the join-site pool, spool
    /// entries over the bucket-major spool pool). Tuples with equal keys
    /// still share a residue, so co-location of matches — the property
    /// partitioned hash join needs — is preserved by construction.
    ///
    /// Returns `None` when no entry is hot (the common, uniform case), so
    /// callers can skip the re-broadcast.
    pub fn refine(&self, hist: &[u64], cfg: &RefineCfg) -> Option<PartitioningSplitTable> {
        let e = self.entries.len();
        assert_eq!(hist.len(), e, "histogram must have one cell per entry");
        if cfg.expand < 2 {
            return None;
        }
        let total: u64 = hist.iter().sum();
        if total == 0 {
            return None;
        }
        // hot ⇔ count > mean × overload_pct / 100, in exact integer math:
        // count · E · 100 > total · overload_pct.
        let hot: Vec<bool> = hist
            .iter()
            .map(|&c| {
                (c as u128) * (e as u128) * 100 > (total as u128) * (cfg.overload_pct as u128)
            })
            .collect();
        if !hot.iter().any(|&h| h) {
            return None;
        }
        let join_pool: Vec<(NodeId, u32)> = self
            .entries
            .iter()
            .zip(&self.join_sites)
            .filter_map(|(en, js)| js.map(|s| (en.node, s)))
            .collect();
        let spool_pool: Vec<(NodeId, usize)> = self
            .entries
            .iter()
            .zip(&self.join_sites)
            .filter(|(_, js)| js.is_none())
            .map(|(en, _)| (en.node, en.bucket))
            .collect();
        let m = e * cfg.expand;
        let mut entries = Vec::with_capacity(m);
        let mut join_sites = Vec::with_capacity(m);
        let (mut rr_join, mut rr_spool) = (0usize, 0usize);
        for j in 0..m {
            let c = j % e;
            if !hot[c] {
                entries.push(self.entries[c]);
                join_sites.push(self.join_sites[c]);
            } else if self.join_sites[c].is_some() {
                let (node, site) = join_pool[rr_join % join_pool.len()];
                rr_join += 1;
                entries.push(SplitEntry { node, bucket: 1 });
                join_sites.push(Some(site));
            } else {
                let (node, bucket) = spool_pool[rr_spool % spool_pool.len()];
                rr_spool += 1;
                entries.push(SplitEntry { node, bucket });
                join_sites.push(None);
            }
        }
        Some(PartitioningSplitTable {
            entries,
            join_sites,
        })
    }
}

/// The Appendix A bucket analyzer, transcribed from the paper's C code.
///
/// Starting from `min_buckets`, increase the bucket count until splitting a
/// bucket's fragments `mod join_nodes` can reach every join node. With the
/// Grace layout, bucket fragments live at entry indices `b·D..(b+1)·D`, so
/// the reachability condition depends on `total_entries mod join_nodes`.
///
/// Returns the number of buckets to use.
pub fn bucket_analyzer(
    grace: bool,
    numdisks: usize,
    join_nodes: usize,
    min_buckets: usize,
) -> usize {
    assert!(numdisks > 0 && join_nodes > 0 && min_buckets >= 1);
    let mut numbuckets = min_buckets;
    loop {
        let total_split_entries = if grace {
            numbuckets * numdisks
        } else {
            join_nodes + (numbuckets - 1) * numdisks
        };

        // No problem can occur with one bucket and no more disks than
        // joining nodes (everything is joined in place).
        if numbuckets == 1 && numdisks <= join_nodes {
            return numbuckets;
        }

        let mut i = 1;
        while i <= total_split_entries {
            if (total_split_entries * i) % join_nodes == 0 {
                break;
            }
            i += 1;
        }

        if i * numdisks >= join_nodes {
            return numbuckets;
        }
        numbuckets += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grace_layout_matches_appendix_table_1() {
        // Three-bucket Grace join, two disk nodes (paper's Appendix A
        // Table 1): entries alternate node 1, node 2 within each bucket.
        let t = PartitioningSplitTable::grace(&[1, 2], 3);
        let want = [(1, 1), (2, 1), (1, 2), (2, 2), (1, 3), (2, 3)];
        assert_eq!(t.entries(), 6);
        for (i, &(node, bucket)) in want.iter().enumerate() {
            assert_eq!(t.raw()[i], SplitEntry { node, bucket });
        }
        assert_eq!(t.buckets(), 3);
    }

    #[test]
    fn hybrid_layout_matches_appendix_table_2() {
        // Three-bucket Hybrid join, disks {1,2}, diskless join nodes {3,4}.
        let t = PartitioningSplitTable::hybrid(&[3, 4], &[1, 2], 3);
        let want = [(3, 1), (4, 1), (1, 2), (2, 2), (1, 3), (2, 3)];
        assert_eq!(t.entries(), 6);
        for (i, &(node, bucket)) in want.iter().enumerate() {
            assert_eq!(t.raw()[i], SplitEntry { node, bucket });
        }
    }

    #[test]
    fn routing_follows_mod_indexing() {
        let t = PartitioningSplitTable::grace(&[10, 11, 12, 13], 3);
        // Section 4.1 Table 1: value 5 -> entry 5 -> bucket 2, disk index 1.
        match t.route(5) {
            Route::Spool { node, bucket } => {
                assert_eq!(node, 11);
                assert_eq!(bucket, 2);
            }
            _ => panic!("grace tables never route to join"),
        }
        // Value 12 wraps: 12 mod 12 = 0 -> bucket 1, first disk.
        match t.route(12) {
            Route::Spool { node, bucket } => {
                assert_eq!(node, 10);
                assert_eq!(bucket, 1);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn hybrid_bucket1_routes_to_join() {
        let t = PartitioningSplitTable::hybrid(&[3, 4], &[1, 2], 3);
        match t.route(0) {
            Route::Join { node } => assert_eq!(node, 3),
            _ => panic!("entry 0 is bucket 1"),
        }
        assert_eq!(t.join_site_index(1), 1);
        match t.route(2) {
            Route::Spool { node, bucket } => {
                assert_eq!((node, bucket), (1, 2));
            }
            _ => panic!("entry 2 spools"),
        }
    }

    #[test]
    fn hpja_shortcircuit_law_local_grace() {
        // Tuples stored at disk node d satisfy h mod D == d_index. With the
        // bucket-major layout, the partitioning table must route them back
        // to the same node, for every bucket count.
        let disks: Vec<NodeId> = (0..8).collect();
        for buckets in 1..12 {
            let t = PartitioningSplitTable::grace(&disks, buckets);
            for h in 0..10_000u64 {
                let home = (h % 8) as usize;
                match t.route(h) {
                    Route::Spool { node, .. } => assert_eq!(node, home),
                    _ => unreachable!(),
                }
            }
        }
    }

    #[test]
    fn grace_bucket_join_becomes_hpja() {
        // After bucket-forming, fragment i of every bucket lives at disk i
        // and re-splitting with mod J (J == D, local joins) maps it back to
        // node i — the paper's §4.1 "non-HPJA joins become HPJA" argument.
        let disks: Vec<NodeId> = (0..4).collect();
        let part = PartitioningSplitTable::grace(&disks, 3);
        let join = JoiningSplitTable::new(disks.clone());
        for h in 0..10_000u64 {
            if let Route::Spool { node, .. } = part.route(h) {
                assert_eq!(join.route(h), node);
            }
        }
    }

    #[test]
    fn joining_split_table_mod_routing() {
        let j = JoiningSplitTable::new(vec![5, 6, 7]);
        assert_eq!(j.route(0), 5);
        assert_eq!(j.route(1), 6);
        assert_eq!(j.route(2), 7);
        assert_eq!(j.route(3), 5);
        assert_eq!(j.site_index(10), 1);
    }

    #[test]
    fn bucket_analyzer_matches_paper_example() {
        // Appendix A worked example: Hybrid, 2 disk nodes, 4 join nodes,
        // starting at 3 buckets -> the analyzer settles on 4.
        assert_eq!(bucket_analyzer(false, 2, 4, 3), 4);
    }

    #[test]
    fn bucket_analyzer_leaves_symmetric_configs_alone() {
        // Local joins with J == D never need repair.
        for n in 1..10 {
            assert_eq!(bucket_analyzer(true, 8, 8, n), n);
            assert_eq!(bucket_analyzer(false, 8, 8, n), n);
        }
        // Remote with J == D is fine too.
        assert_eq!(bucket_analyzer(false, 8, 8, 5), 5);
    }

    #[test]
    fn bucket_analyzer_single_bucket_fast_path() {
        assert_eq!(bucket_analyzer(false, 2, 4, 1), 1);
        assert_eq!(bucket_analyzer(true, 4, 8, 1), 1);
    }

    /// Join nodes reachable when re-splitting each spooled bucket with the
    /// joining split table, keyed by bucket.
    fn per_bucket_coverage(
        part: &PartitioningSplitTable,
        jt: &JoiningSplitTable,
    ) -> std::collections::BTreeMap<usize, std::collections::HashSet<NodeId>> {
        let mut cov: std::collections::BTreeMap<usize, std::collections::HashSet<NodeId>> =
            Default::default();
        for h in 0..100_000u64 {
            if let Route::Spool { bucket, .. } = part.route(h) {
                cov.entry(bucket).or_default().insert(jt.route(h));
            }
        }
        cov
    }

    #[test]
    fn analyzer_result_actually_reaches_all_join_nodes() {
        // Semantic check of Appendix A Tables 3/4: with 3 buckets (total 8
        // entries, 4 join nodes) every spooled bucket can reach only half
        // the join sites; with the analyzer's 4 buckets (total 10 entries)
        // each bucket reaches all of them.
        let disks: Vec<NodeId> = vec![0, 1];
        let joins: Vec<NodeId> = vec![0, 1, 2, 3];
        let jt = JoiningSplitTable::new(joins.clone());

        let bad = PartitioningSplitTable::hybrid(&joins, &disks, 3);
        for (bucket, reached) in per_bucket_coverage(&bad, &jt) {
            assert!(
                reached.len() < joins.len(),
                "bucket {bucket} should be starved with 3 buckets, reached {reached:?}"
            );
        }

        let n = bucket_analyzer(false, 2, 4, 3);
        assert_eq!(n, 4);
        let good = PartitioningSplitTable::hybrid(&joins, &disks, n);
        for (bucket, reached) in per_bucket_coverage(&good, &jt) {
            assert_eq!(
                reached.len(),
                joins.len(),
                "bucket {bucket} must reach every join node with {n} buckets"
            );
        }
    }

    #[test]
    fn refine_returns_none_when_uniform() {
        let t = PartitioningSplitTable::hybrid(&[3, 4], &[1, 2], 3);
        let hist = vec![100u64; t.entries()];
        assert_eq!(t.refine(&hist, &RefineCfg::default()), None);
        assert_eq!(
            t.refine(&vec![0u64; t.entries()], &RefineCfg::default()),
            None
        );
    }

    #[test]
    fn refine_splits_a_hot_join_entry_across_all_sites() {
        let joins: Vec<NodeId> = vec![8, 9, 10, 11];
        let t = PartitioningSplitTable::hybrid(&joins, &[0, 1], 1);
        // Entry 2 holds 10× the mean load.
        let hist = vec![100, 100, 4000, 100];
        let r = t
            .refine(&hist, &RefineCfg::default())
            .expect("entry 2 is hot");
        assert_eq!(r.entries(), t.entries() * 8);
        let mut reached = std::collections::HashSet::new();
        for j in (0..r.entries()).filter(|j| j % t.entries() == 2) {
            // Every sub-slot of the hot class must stay a join entry…
            let h = j as u64;
            match r.route(h) {
                Route::Join { node } => {
                    assert!(joins.contains(&node));
                    assert_eq!(node, joins[r.join_site_index(h)]);
                    reached.insert(node);
                }
                _ => panic!("hot join class must stay in bucket 1"),
            }
        }
        // …and the eight sub-slots are spread over all four sites.
        assert_eq!(reached.len(), joins.len());
    }

    #[test]
    fn refine_preserves_cold_entries_bit_for_bit() {
        let t = PartitioningSplitTable::hybrid(&[3, 4], &[1, 2], 3);
        let hist = vec![10, 10, 10, 900, 10, 10];
        let r = t.refine(&hist, &RefineCfg::default()).unwrap();
        for h in 0..10_000u64 {
            let c = (h % t.entries() as u64) as usize;
            if c != 3 {
                assert_eq!(r.route(h), t.route(h), "cold class {c} must not move");
            }
        }
    }

    #[test]
    fn refine_spreads_a_hot_spool_entry_over_nodes_and_buckets() {
        let disks: Vec<NodeId> = vec![0, 1, 2, 3];
        let t = PartitioningSplitTable::grace(&disks, 3);
        let mut hist = vec![50u64; t.entries()];
        hist[5] = 5000;
        let r = t.refine(&hist, &RefineCfg::default()).unwrap();
        let mut nodes = std::collections::HashSet::new();
        let mut buckets = std::collections::HashSet::new();
        for j in (0..r.entries()).filter(|j| j % t.entries() == 5) {
            match r.route(j as u64) {
                Route::Spool { node, bucket } => {
                    nodes.insert(node);
                    buckets.insert(bucket);
                }
                _ => panic!("grace tables never route to join"),
            }
        }
        assert!(nodes.len() > 1, "hot range must span multiple nodes");
        assert!(buckets.len() > 1, "hot range must span multiple buckets");
    }

    #[test]
    fn refine_is_deterministic() {
        let t = PartitioningSplitTable::hybrid(&[3, 4, 5], &[0, 1], 4);
        let hist: Vec<u64> = (0..t.entries() as u64).map(|i| 1 + i * i * 7).collect();
        let a = t.refine(&hist, &RefineCfg::default());
        let b = t.refine(&hist, &RefineCfg::default());
        assert_eq!(a, b);
        assert!(a.is_some());
    }
}
