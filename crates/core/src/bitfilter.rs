//! Bit-vector filters \[BABB79, VALD84\].
//!
//! Each join site builds a filter over the inner relation's join attribute
//! while building its hash table (hash joins) or while storing its sorted
//! temp fragment (sort-merge). The aggregate filter — Gamma used a single
//! 2 KB packet shared by all sites — is then broadcast to the nodes
//! scanning the outer relation, which drop non-matching tuples *before*
//! routing them. One hash function sets one bit per value; skewed (normal)
//! attributes collide more when setting bits, leave more bits clear, and so
//! filter *better*, exactly the §4.4 observation.

use crate::hash::{hash_u32, FILTER_SEED};

/// A single site's bit filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitFilter {
    bits: Vec<u64>,
    nbits: u64,
    seed: u64,
}

impl BitFilter {
    /// An empty filter of `nbits` bits. `salt` decorrelates the filters of
    /// different buckets/passes (each bucket join builds fresh filters).
    pub fn new(nbits: u64, salt: u64) -> Self {
        assert!(nbits > 0, "a filter needs at least one bit");
        BitFilter {
            bits: vec![0u64; nbits.div_ceil(64) as usize],
            nbits,
            seed: FILTER_SEED ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    #[inline]
    fn bit_of(&self, v: u32) -> (usize, u64) {
        let h = hash_u32(self.seed, v) % self.nbits;
        ((h / 64) as usize, 1u64 << (h % 64))
    }

    /// Record an inner-relation value.
    #[inline]
    pub fn set(&mut self, v: u32) {
        let (w, m) = self.bit_of(v);
        self.bits[w] |= m;
    }

    /// Might `v` join? (No false negatives; false positives shrink with
    /// filter size and grow with distinct inner values.)
    #[inline]
    pub fn test(&self, v: u32) -> bool {
        let (w, m) = self.bit_of(v);
        self.bits[w] & m != 0
    }

    /// Number of usable bits.
    pub fn nbits(&self) -> u64 {
        self.nbits
    }

    /// Merge another filter built with the same size and salt (per-worker
    /// filter shards are OR-folded after a parallel step; OR is commutative
    /// so the merged filter is independent of worker scheduling).
    pub fn or_with(&mut self, other: &BitFilter) {
        assert_eq!(self.nbits, other.nbits, "filter shards must match");
        assert_eq!(self.seed, other.seed, "filter shards must share a salt");
        for (w, o) in self.bits.iter_mut().zip(&other.bits) {
            *w |= o;
        }
    }

    /// Fraction of bits set (filter saturation — the paper's explanation
    /// for why one packet-sized filter is nearly useless at 100 % memory
    /// and sharp at four buckets).
    pub fn saturation(&self) -> f64 {
        let set: u64 = self.bits.iter().map(|w| w.count_ones() as u64).sum();
        set as f64 / self.nbits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BitFilter::new(1973, 0);
        for v in (0..5000u32).step_by(7) {
            f.set(v);
        }
        for v in (0..5000u32).step_by(7) {
            assert!(f.test(v));
        }
    }

    #[test]
    fn filters_out_most_nonmembers_when_lightly_loaded() {
        let mut f = BitFilter::new(1973, 0);
        for v in 0..100u32 {
            f.set(v);
        }
        let passed = (100_000..200_000u32).filter(|&v| f.test(v)).count();
        // ~5% of bits set -> ~5% false positives.
        assert!(passed < 12_000, "false positive rate too high: {passed}");
    }

    #[test]
    fn saturates_with_many_distinct_values() {
        let mut f = BitFilter::new(1973, 0);
        for v in 0..1250u32 {
            f.set(v * 13 + 1);
        }
        // 1250 distinct values into 1973 bits: 1 - e^(-1250/1973) ≈ 0.47.
        let s = f.saturation();
        assert!((0.40..0.55).contains(&s), "saturation {s}");
    }

    #[test]
    fn duplicate_values_do_not_add_bits() {
        let mut f = BitFilter::new(1973, 0);
        for _ in 0..10_000 {
            f.set(42);
        }
        assert!(f.saturation() <= 1.0 / 1973.0 + 1e-9);
    }

    #[test]
    fn skewed_values_saturate_less_than_uniform() {
        // §4.4: normally distributed attributes collide when setting bits,
        // leaving the filter sharper. Model skew as many duplicates.
        let mut uniform = BitFilter::new(1973, 0);
        for v in 0..1250u32 {
            uniform.set(v);
        }
        let mut skewed = BitFilter::new(1973, 0);
        for v in 0..1250u32 {
            skewed.set(v % 300); // only 300 distinct values
        }
        assert!(skewed.saturation() < uniform.saturation());
    }

    #[test]
    fn salts_decorrelate_filters() {
        let mut a = BitFilter::new(1973, 1);
        let mut b = BitFilter::new(1973, 2);
        a.set(7);
        b.set(7);
        // Same value may map to different bits under different salts; check
        // over many values that the mappings differ somewhere.
        let mut differs = false;
        for v in 0..100u32 {
            let fa = {
                let mut f = BitFilter::new(1973, 1);
                f.set(v);
                f
            };
            if !{
                let mut f = BitFilter::new(1973, 2);
                f.set(v);
                f.bits == fa.bits
            } {
                differs = true;
                break;
            }
        }
        assert!(differs);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_bits_rejected() {
        BitFilter::new(0, 0);
    }
}
