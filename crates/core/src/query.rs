//! Public query interface: specify a join, run it, get a timed report.
//!
//! [`run_join`] resolves a [`JoinSpec`] against the machine (join sites,
//! bucket count via the memory ratio and the Appendix A bucket analyzer,
//! per-site memory), dispatches the algorithm driver — which executes the
//! join for real and returns per-phase ledgers — and then *replays* the
//! phase sequence through the `gamma-des` event queue: the scheduler
//! dispatches each phase's operator-start messages serially, the phase
//! runs in parallel under the overlapped-resource model, and the response
//! time is when the last completion event fires.

use gamma_des::{Sim, SimTime, Usage};

use crate::algorithms::common::{RangePred, Resolved};
use crate::algorithms::{grace, hybrid, simple, sort_merge};
use crate::machine::{Machine, RelationId};
use crate::report::{JoinReport, PhaseSummary};
use crate::split::bucket_analyzer;
use crate::tuple::Attr;

/// Which of the four parallel join algorithms to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Parallel sort-merge (§3.1).
    SortMerge,
    /// Simple hash-join (§3.2).
    SimpleHash,
    /// Grace hash-join (§3.3).
    GraceHash,
    /// Hybrid hash-join (§3.4).
    HybridHash,
}

impl Algorithm {
    /// All four, in the paper's presentation order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::SortMerge,
        Algorithm::SimpleHash,
        Algorithm::GraceHash,
        Algorithm::HybridHash,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::SortMerge => "sort-merge",
            Algorithm::SimpleHash => "simple",
            Algorithm::GraceHash => "grace",
            Algorithm::HybridHash => "hybrid",
        }
    }
}

/// Where join processes run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinSite {
    /// On the processors with disks (the paper's "local" configuration).
    Local,
    /// On the diskless processors (the paper's "remote" configuration).
    Remote,
    /// On every processor, with and without disks — the configuration §4.3
    /// mentions measuring "almost always 1/2 way between that of the
    /// 'local' and 'remote' configurations". This is also the shape that
    /// triggers the Appendix A split-table pathology (J ≠ D), which the
    /// bucket analyzer repairs by adding buckets.
    Mixed,
}

/// How Grace/Hybrid pick the bucket count at non-integral memory ratios
/// (the Figure 7 trade-off).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Always run with enough buckets that no hash table can overflow
    /// (`N = ceil(|R| / M)`).
    Pessimistic,
    /// Run with `N = floor(|R| / M)` buckets and count on the Simple-hash
    /// overflow mechanism to absorb the excess.
    Optimistic,
}

/// A join request.
#[derive(Debug, Clone)]
pub struct JoinSpec {
    /// Algorithm to execute.
    pub algorithm: Algorithm,
    /// Inner (building, smaller) relation.
    pub inner: RelationId,
    /// Outer (probing, larger) relation.
    pub outer: RelationId,
    /// Join attribute of the inner relation.
    pub inner_attr: Attr,
    /// Join attribute of the outer relation.
    pub outer_attr: Attr,
    /// Aggregate memory available across the joining processors, in bytes
    /// (the paper's x-axis is `memory / |inner|`).
    pub memory_bytes: u64,
    /// Local or remote join processing.
    pub site: JoinSite,
    /// Use bit-vector filters.
    pub bit_filter: bool,
    /// Also filter during Grace/Hybrid bucket-forming (the §4.2/§5
    /// extension; requires `bit_filter`).
    pub filter_bucket_forming: bool,
    /// Grace bucket tuning \[KITS83\], which §3.3 notes Gamma had not
    /// implemented: partition into many small buckets, then combine them
    /// at join time by their *measured* sizes so each join round fills
    /// memory. Robust to skewed bucket sizes.
    pub bucket_tuning: bool,
    /// Bucket policy at non-integral ratios.
    pub overflow_policy: OverflowPolicy,
    /// Buckets added on top of the computed count (the §4.4 "one additional
    /// bucket" Grace experiment). Ignored by Simple/Sort-Merge.
    pub extra_buckets: usize,
    /// Bypass bucket computation entirely (harness use).
    pub buckets_override: Option<usize>,
    /// Optional selection on the inner relation.
    pub inner_pred: Option<RangePred>,
    /// Optional selection on the outer relation.
    pub outer_pred: Option<RangePred>,
    /// Skew-aware split-table refinement: sample the inner relation's hash
    /// distribution while it is partitioned, split overloaded split-table
    /// entries across sites, and re-broadcast the refined table before any
    /// tuple moves. Off by default (the paper's static split tables).
    pub skew_refinement: bool,
    /// Robust dynamic overflow handling: restore spilled build tuples into
    /// hash-table slack once the build settles, and join residual spill
    /// partitions locally at their home nodes instead of re-spraying every
    /// overflow through a full extra pass. Off by default (the paper's
    /// all-or-nothing Simple-hash overflow machinery).
    pub dynamic_spill: bool,
}

impl JoinSpec {
    /// A spec with the paper's defaults: local joins, no filter,
    /// pessimistic buckets, no predicates.
    pub fn new(
        algorithm: Algorithm,
        inner: RelationId,
        outer: RelationId,
        inner_attr: Attr,
        outer_attr: Attr,
        memory_bytes: u64,
    ) -> Self {
        JoinSpec {
            algorithm,
            inner,
            outer,
            inner_attr,
            outer_attr,
            memory_bytes,
            site: JoinSite::Local,
            bit_filter: false,
            filter_bucket_forming: false,
            bucket_tuning: false,
            overflow_policy: OverflowPolicy::Pessimistic,
            extra_buckets: 0,
            buckets_override: None,
            inner_pred: None,
            outer_pred: None,
            skew_refinement: false,
            dynamic_spill: false,
        }
    }

    /// Builder: run at the given site.
    pub fn at(mut self, site: JoinSite) -> Self {
        self.site = site;
        self
    }

    /// Builder: toggle bit filtering.
    pub fn with_filter(mut self, on: bool) -> Self {
        self.bit_filter = on;
        self
    }

    /// Builder: set the overflow policy.
    pub fn with_policy(mut self, p: OverflowPolicy) -> Self {
        self.overflow_policy = p;
        self
    }

    /// Builder: toggle skew-aware split-table refinement.
    pub fn with_refinement(mut self, on: bool) -> Self {
        self.skew_refinement = on;
        self
    }

    /// Builder: toggle robust dynamic spill/restore overflow handling.
    pub fn with_dynamic_spill(mut self, on: bool) -> Self {
        self.dynamic_spill = on;
        self
    }
}

/// Compute the Grace/Hybrid bucket count for a memory budget.
pub fn bucket_count(
    spec: &JoinSpec,
    inner_bytes: u64,
    disk_nodes: usize,
    join_nodes: usize,
) -> usize {
    if let Some(n) = spec.buckets_override {
        return n.max(1);
    }
    let m = spec.memory_bytes.max(1);
    let base = match spec.overflow_policy {
        OverflowPolicy::Pessimistic => inner_bytes.div_ceil(m).max(1) as usize,
        OverflowPolicy::Optimistic => (inner_bytes / m).max(1) as usize,
    } + spec.extra_buckets;
    bucket_analyzer(
        spec.algorithm == Algorithm::GraceHash,
        disk_nodes,
        join_nodes,
        base,
    )
}

/// Replay a driver's phase sequence through the DES: the scheduler's
/// serialized dispatch overhead precedes each phase, the phase body runs
/// in parallel under the overlapped-resource model, and the response time
/// is the final completion event. Shared by the join entry point and the
/// relational operators in [`crate::operators`].
pub fn replay_phases(
    machine: &Machine,
    phases: &[crate::report::PhaseRecord],
) -> (SimTime, Vec<PhaseSummary>) {
    let bw = machine.cfg.cost.ring.bandwidth_bytes_per_sec;
    let model = machine.cfg.cost.timing;
    let mut sim: Sim<Vec<(usize, SimTime)>> = Sim::new(Vec::new());
    let mut t = SimTime::ZERO;
    let mut summaries = Vec::with_capacity(phases.len());
    for (i, ph) in phases.iter().enumerate() {
        t += ph.sched_overhead;
        let timing = ph.timing(bw, model);
        #[cfg(feature = "trace")]
        gamma_trace::with(|s| s.phase_replayed_next(t.as_us(), timing.duration.as_us()));
        // Mirror each node's now-final ledger into the registry as
        // per-phase `ledger_*` counters and device-request histograms
        // (these are what the reconciliation self-check compares against
        // the report totals), plus per-device utilisation and mean queue
        // depth now that replay has fixed the phase duration. Utilisation
        // can't exceed 100% (busy time never exceeds the phase duration);
        // queue depth is Little's-law mean in milli-requests
        // (Σ wait / duration). Replay is the earliest point where ledgers
        // are final: some drivers charge the result store's last page
        // flush to an already-sealed phase.
        #[cfg(feature = "metrics")]
        gamma_metrics::with(|reg| {
            let dur = timing.duration.as_us();
            let phase = i as u32;
            for (n, u) in ph.ledgers.iter().enumerate() {
                if u.total_demand() == SimTime::ZERO && u.counts == gamma_des::Counts::ZERO {
                    continue;
                }
                let node = n as u16;
                u.meter_device_requests(reg, node, phase);
                let mut put = |metric: &'static str, v: u64| {
                    if v > 0 {
                        reg.counter_add_at(metric, phase, node, "", v);
                    }
                };
                put("ledger_cpu_us", u.cpu.as_us());
                put("ledger_disk_us", u.disk.as_us());
                put("ledger_net_us", u.net.as_us());
                put("ledger_disk_wait_us", u.disk_wait.as_us());
                put("ledger_net_wait_us", u.net_wait.as_us());
                put("ledger_ring_bytes", u.ring_bytes);
                let c = &u.counts;
                put("ledger_pages_read", c.pages_read);
                put("ledger_pages_written", c.pages_written);
                put("ledger_packets_sent", c.packets_sent);
                put("ledger_packets_recv", c.packets_recv);
                put("ledger_msgs_shortcircuit", c.msgs_shortcircuit);
                put("ledger_tuples_in", c.tuples_in);
                put("ledger_tuples_out", c.tuples_out);
                put("ledger_hash_inserts", c.hash_inserts);
                put("ledger_hash_probes", c.hash_probes);
                put("ledger_comparisons", c.comparisons);
                put("ledger_filter_drops", c.filter_drops);
                put("ledger_control_msgs", c.control_msgs);
                put("ledger_overflow_evictions", c.overflow_evictions);
                put("ledger_pages_spilled", c.pages_spilled);
                put("ledger_pages_restored", c.pages_restored);
                if dur > 0 && u.total_demand() > SimTime::ZERO {
                    reg.gauge_max_at("cpu_util_pct", phase, node, "", u.cpu.as_us() * 100 / dur);
                    reg.gauge_max_at("disk_util_pct", phase, node, "", u.disk.as_us() * 100 / dur);
                    reg.gauge_max_at("net_util_pct", phase, node, "", u.net.as_us() * 100 / dur);
                    reg.gauge_max_at(
                        "disk_queue_depth_milli",
                        phase,
                        node,
                        "",
                        u.disk_wait.as_us() * 1000 / dur,
                    );
                    reg.gauge_max_at(
                        "net_queue_depth_milli",
                        phase,
                        node,
                        "",
                        u.net_wait.as_us() * 1000 / dur,
                    );
                }
            }
        });
        t += timing.duration;
        sim.schedule_at(t, move |s| s.state.push((i, s.now())));
        summaries.push(PhaseSummary {
            name: ph.name.clone(),
            sched_overhead: ph.sched_overhead,
            duration: timing.duration,
            total: ph.total(),
            critical_node: timing.critical_node,
            disk_wait: timing.disk_wait,
            net_wait: timing.net_wait,
        });
    }
    let response = sim.run_until_idle();
    assert_eq!(sim.state.len(), phases.len(), "replay lost a phase");
    (response, summaries)
}

/// Execute a join and produce its timed report.
///
/// # Panics
/// Panics if the spec asks for remote sort-merge (unsupported, as in the
/// paper), remote joins on a machine without diskless nodes, or dropped
/// relations.
pub fn run_join(machine: &mut Machine, spec: &JoinSpec) -> JoinReport {
    let mut sink = None;
    run_join_inner(machine, spec, None, &mut sink).0
}

/// Execute a join and also return the raw per-phase records alongside the
/// report. The gamma-sched engine uses these to re-time the same physical
/// work under cross-query device contention: the ledgers carry each node's
/// request logs (issue offsets + service times), which is exactly what the
/// shared FIFO servers need.
pub fn run_join_with_phases(
    machine: &mut Machine,
    spec: &JoinSpec,
) -> (JoinReport, Vec<crate::report::PhaseRecord>) {
    let mut sink = None;
    run_join_inner(machine, spec, None, &mut sink)
}

/// Execute a join and register its result as a stored relation named
/// `name`, returning the new relation id alongside the report. This is how
/// composed query plans (select → join → aggregate) chain operators.
pub fn run_join_materialized(
    machine: &mut Machine,
    spec: &JoinSpec,
    name: &str,
) -> (RelationId, JoinReport) {
    let mut materialized = None;
    let (report, _) = run_join_inner(machine, spec, Some(name), &mut materialized);
    (materialized.expect("materialization requested"), report)
}

fn run_join_inner(
    machine: &mut Machine,
    spec: &JoinSpec,
    materialize_as: Option<&str>,
    materialized: &mut Option<RelationId>,
) -> (JoinReport, Vec<crate::report::PhaseRecord>) {
    let join_nodes = match spec.site {
        JoinSite::Local => machine.disk_nodes(),
        JoinSite::Remote => {
            assert!(
                spec.algorithm != Algorithm::SortMerge,
                "our sort-merge implementation cannot utilize diskless processors (paper §3.1)"
            );
            let n = machine.diskless_nodes();
            assert!(
                !n.is_empty(),
                "remote join on a machine without diskless nodes"
            );
            n
        }
        JoinSite::Mixed => {
            assert!(
                spec.algorithm != Algorithm::SortMerge,
                "our sort-merge implementation cannot utilize diskless processors (paper §3.1)"
            );
            let mut n = machine.disk_nodes();
            n.extend(machine.diskless_nodes());
            n
        }
    };

    let inner = machine.relation(spec.inner);
    let outer = machine.relation(spec.outer);
    let inner_bytes = inner.data_bytes;
    let r_tuple_bytes = inner.schema.tuple_bytes() as u64;
    let s_tuple_bytes = outer.schema.tuple_bytes() as u64;
    let r_fragments = inner.fragments.clone();
    let s_fragments = outer.fragments.clone();

    let mut buckets = match spec.algorithm {
        Algorithm::GraceHash | Algorithm::HybridHash => {
            bucket_count(spec, inner_bytes, machine.cfg.disk_nodes, join_nodes.len())
        }
        _ => 1,
    };
    // Bucket tuning partitions into many small buckets ("the number of
    // buckets N is chosen to be very large", §3.3) and combines them by
    // measured size at join time.
    let tuning = spec.bucket_tuning && spec.algorithm == Algorithm::GraceHash;
    if tuning {
        buckets = crate::split::bucket_analyzer(
            true,
            machine.cfg.disk_nodes,
            join_nodes.len(),
            buckets * 4,
        );
    }

    // Per-site memory: hash-table bytes per join process, or sort/merge
    // space per disk node for sort-merge. The operators allocate headroom
    // above the optimizer's estimate (hash-distribution variance and
    // per-entry overhead), so integral-ratio runs never overflow (§4).
    let headroom = 100 + machine.cfg.cost.table_headroom_pct;
    let capacity_per_site = (spec.memory_bytes * headroom / 100 / join_nodes.len() as u64).max(1);
    let filter_bits = spec
        .bit_filter
        .then(|| machine.cfg.cost.filter_bits_per_site(join_nodes.len()));

    let rz = Resolved {
        join_nodes,
        buckets,
        capacity_per_site,
        r_fragments,
        s_fragments,
        r_attr: spec.inner_attr,
        s_attr: spec.outer_attr,
        r_tuple_bytes,
        s_tuple_bytes,
        filter_bits,
        filter_bucket_forming: spec.bit_filter && spec.filter_bucket_forming,
        bucket_tuning: tuning,
        r_pred: spec.inner_pred,
        s_pred: spec.outer_pred,
        skew_refinement: spec.skew_refinement,
        dynamic_spill: spec.dynamic_spill,
    };

    machine.clear_pools();
    let out = match spec.algorithm {
        Algorithm::SortMerge => sort_merge::run(machine, &rz),
        Algorithm::SimpleHash => simple::run(machine, &rz),
        Algorithm::GraceHash => grace::run(machine, &rz),
        Algorithm::HybridHash => hybrid::run(machine, &rz),
    };
    debug_assert!(machine.fabric.is_drained(), "driver left unflushed packets");
    debug_assert!(
        machine.exchange.is_drained(),
        "driver left undelivered exchange messages"
    );

    let (response, summaries) = replay_phases(machine, &out.phases);

    // ---- utilisation + totals ----
    let nodes = machine.nodes();
    let mut per_node_cpu = vec![SimTime::ZERO; nodes];
    let mut total = Usage::ZERO;
    for ph in &out.phases {
        for (n, u) in ph.ledgers.iter().enumerate() {
            per_node_cpu[n] += u.cpu;
            total += u.clone();
        }
    }
    let util = |ns: &[usize]| -> f64 {
        if ns.is_empty() || response == SimTime::ZERO {
            return 0.0;
        }
        let sum: f64 = ns.iter().map(|&n| per_node_cpu[n].as_secs()).sum();
        sum / ns.len() as f64 / response.as_secs()
    };
    let disk_util = util(&machine.disk_nodes());
    let join_util = match spec.site {
        JoinSite::Local => disk_util,
        JoinSite::Remote | JoinSite::Mixed => {
            let d = machine.diskless_nodes();
            if d.is_empty() {
                disk_util
            } else {
                util(&d)
            }
        }
    };

    if let Some(name) = materialize_as {
        let schema = machine
            .relation(spec.inner)
            .schema
            .join(&machine.relation(spec.outer).schema);
        let id = machine.register_relation(
            name,
            schema,
            crate::machine::Declustering::RoundRobin,
            out.result.files.clone(),
        );
        *materialized = Some(id);
    } else {
        // Free the result files (the harness reruns thousands of joins;
        // tests validate through cardinality + checksum).
        for (n, f) in out.result.files.iter().enumerate() {
            crate::exec::delete_file(machine, n, *f);
        }
    }

    let demand = crate::throughput::DemandProfile::from_phases(machine, &out.phases, response);
    let report = JoinReport {
        algorithm: spec.algorithm.name().to_string(),
        response,
        phases: summaries,
        result_tuples: out.result.tuples,
        result_checksum: out.result.checksum,
        buckets: out.buckets,
        overflow_passes: out.overflow_passes,
        bnl_fallback: out.bnl_fallback,
        disk_node_cpu_utilization: disk_util,
        join_node_cpu_utilization: join_util,
        total,
        demand,
    };
    (report, out.phases)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_count_tracks_memory_ratio() {
        let spec = |mem: u64| {
            JoinSpec::new(
                Algorithm::HybridHash,
                0,
                1,
                Attr { offset: 0 },
                Attr { offset: 0 },
                mem,
            )
        };
        let r = 2_080_000u64; // 10K tuples * 208B
        assert_eq!(bucket_count(&spec(r), r, 8, 8), 1);
        assert_eq!(bucket_count(&spec(r / 2), r, 8, 8), 2);
        assert_eq!(bucket_count(&spec(r / 5), r, 8, 8), 5);
        assert_eq!(bucket_count(&spec(r / 10), r, 8, 8), 10);
    }

    #[test]
    fn optimistic_policy_uses_floor() {
        let r = 1_000u64;
        let mut s = JoinSpec::new(
            Algorithm::HybridHash,
            0,
            1,
            Attr { offset: 0 },
            Attr { offset: 0 },
            700,
        );
        s.overflow_policy = OverflowPolicy::Optimistic;
        assert_eq!(
            bucket_count(&s, r, 8, 8),
            1,
            "0.7 ratio optimistic -> 1 bucket"
        );
        s.overflow_policy = OverflowPolicy::Pessimistic;
        assert_eq!(
            bucket_count(&s, r, 8, 8),
            2,
            "0.7 ratio pessimistic -> 2 buckets"
        );
    }

    #[test]
    fn override_and_extra_buckets() {
        let r = 1_000u64;
        let mut s = JoinSpec::new(
            Algorithm::GraceHash,
            0,
            1,
            Attr { offset: 0 },
            Attr { offset: 0 },
            250,
        );
        assert_eq!(bucket_count(&s, r, 8, 8), 4);
        s.extra_buckets = 1;
        assert_eq!(bucket_count(&s, r, 8, 8), 5);
        s.buckets_override = Some(2);
        assert_eq!(bucket_count(&s, r, 8, 8), 2);
    }

    #[test]
    fn algorithm_names() {
        assert_eq!(Algorithm::ALL.len(), 4);
        assert_eq!(Algorithm::HybridHash.name(), "hybrid");
    }
}
