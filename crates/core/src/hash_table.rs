//! The memory-capped join hash table with Simple-hash overflow clearing.
//!
//! Section 4.1 of the paper describes the mechanism in detail: tuples are
//! inserted into a chained hash table; a histogram over an auxiliary hash
//! (`h'`) of the join attribute is maintained; when the table exceeds its
//! memory allotment, a **cutoff** is chosen from the histogram so that
//! clearing every resident tuple whose `h'` lies above it frees ~10 % of
//! the table's memory. Subsequently arriving tuples above the cutoff are
//! *diverted* straight to the overflow file without entering the table. If
//! the table fills again the heuristic re-fires, lowering the cutoff — each
//! invocation increases the fraction of arrivals diverted, as the paper
//! notes.
//!
//! The table stores real tuples; probes return real matches and the chain
//! lengths actually walked (average 3.3 with the paper's normal attribute).
//!
//! Storage is a per-table **arena**: one contiguous byte buffer that every
//! stored tuple is copied into once, with chain entries holding `(start,
//! len)` ranges instead of owned `Vec<u8>`s. Offers take `&[u8]` and
//! evictions come back as [`TupleRange`]s resolved via
//! [`JoinHashTable::slice`], so the build/evict/restore paths move tuple
//! bytes without per-tuple heap allocations. Evicted ranges stay valid —
//! eviction unlinks the chain entry but leaves the bytes in the arena (the
//! garbage is bounded by the bytes spooled, which the overflow files hold
//! anyway). The memory *model* (`used_bytes` vs `capacity_bytes`) counts
//! live tuples only, exactly as before.

use crate::hash::hash_u32;

/// Number of histogram cells over the `h'` range (top 8 bits of the hash).
const HIST_CELLS: usize = 256;
const HIST_SHIFT: u32 = 56;

/// `(start, len)` of a stored tuple within its table's arena; resolve with
/// [`JoinHashTable::slice`].
pub type TupleRange = (u32, u32);

/// The matches of one probe. Up to two ranges live inline — on a key join
/// almost every probe finds zero or one match, so the common case performs
/// no heap allocation; heavier duplication spills to a `Vec`.
#[derive(Debug, Clone, Default)]
pub struct MatchSet {
    inline: [TupleRange; 2],
    n: u8,
    spill: Vec<TupleRange>,
}

impl MatchSet {
    /// Append one match range.
    pub fn push(&mut self, r: TupleRange) {
        if (self.n as usize) < self.inline.len() {
            self.inline[self.n as usize] = r;
            self.n += 1;
        } else {
            self.spill.push(r);
        }
    }

    /// Number of matches.
    pub fn len(&self) -> usize {
        self.n as usize + self.spill.len()
    }

    /// True when the probe missed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Iterate the match ranges in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = TupleRange> + '_ {
        self.inline[..self.n as usize]
            .iter()
            .copied()
            .chain(self.spill.iter().copied())
    }
}

/// `h'` histogram cell of `val` under `seed` — the same cell boundaries the
/// table's clearing heuristic uses, computable without the table (restore
/// planning runs at the overflow home node, not the join site).
#[inline]
pub fn hprime_cell_of(seed: u64, val: u32) -> usize {
    (hash_u32(seed, val) >> HIST_SHIFT) as usize
}

/// Outcome of offering a tuple to the table.
#[derive(Debug, PartialEq, Eq)]
pub enum Offer {
    /// Tuple is resident in the table.
    Stored,
    /// Tuple's `h'` is above the current cutoff; the caller (who still
    /// holds the slice it offered) must spool it to the overflow file.
    Diverted,
    /// The table overflowed: the clearing heuristic ran. `evicted` ranges
    /// must be spooled; the incoming tuple was stored unless its `h'` lies
    /// in the cleared range, in which case `diverted` is true and the
    /// caller must spool its own slice.
    Overflowed {
        /// Tuples cleared from the table, with their join-attribute values
        /// and arena ranges.
        evicted: Vec<(u32, TupleRange)>,
        /// Whether the incoming tuple, too, must be spooled.
        diverted: bool,
        /// Entries the clearing pass had to examine (the whole resident
        /// table — §4.1's "CPU overhead required to repeatedly search the
        /// hash table").
        scanned: u64,
    },
}

struct Entry {
    val: u32,
    hprime: u64,
    start: u32,
    len: u32,
}

/// A join hash table capped at `capacity_bytes`.
pub struct JoinHashTable {
    buckets: Vec<Vec<Entry>>,
    mask: u64,
    arena: Vec<u8>,
    capacity_bytes: u64,
    used_bytes: u64,
    entry_overhead: u64,
    hprime_seed: u64,
    /// Bytes resident per `h'` histogram cell.
    histogram: Vec<u64>,
    cutoff: Option<u64>,
    len: u64,
    clearings: u64,
}

impl JoinHashTable {
    /// A table with `capacity_bytes` of memory, chain buckets sized for
    /// `expected_tuple_bytes` records, and the site/pass-specific `h'`
    /// seed `hprime_seed`.
    pub fn new(capacity_bytes: u64, expected_tuple_bytes: u64, hprime_seed: u64) -> Self {
        let want = (capacity_bytes / expected_tuple_bytes.max(1)).max(16);
        let nbuckets = want.next_power_of_two().min(1 << 20) as usize;
        JoinHashTable {
            buckets: (0..nbuckets).map(|_| Vec::new()).collect(),
            mask: nbuckets as u64 - 1,
            arena: Vec::new(),
            capacity_bytes,
            used_bytes: 0,
            entry_overhead: 8,
            hprime_seed,
            histogram: vec![0; HIST_CELLS],
            cutoff: None,
            len: 0,
            clearings: 0,
        }
    }

    /// Number of resident tuples.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no tuples are resident.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes of memory in use (tuples + per-entry overhead).
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// The current `h'` cutoff, if the table has overflowed. Producers use
    /// this (via the augmented split table) to divert tuples straight to
    /// the overflow files.
    pub fn cutoff(&self) -> Option<u64> {
        self.cutoff
    }

    /// How many times the clearing heuristic has fired.
    pub fn clearings(&self) -> u64 {
        self.clearings
    }

    /// `h'` of a join-attribute value under this table's seed.
    #[inline]
    pub fn hprime(&self, val: u32) -> u64 {
        hash_u32(self.hprime_seed, val)
    }

    /// Seed of the `h'` function (snapshotted into augmented split tables
    /// so scanning producers evaluate `h'` without the table).
    pub fn hprime_seed(&self) -> u64 {
        self.hprime_seed
    }

    /// Resolve an arena range (from an eviction or probe) to tuple bytes.
    #[inline]
    pub fn slice(&self, (start, len): TupleRange) -> &[u8] {
        &self.arena[start as usize..(start + len) as usize]
    }

    fn entry_bytes(&self, tuple_len: usize) -> u64 {
        tuple_len as u64 + self.entry_overhead
    }

    fn store(&mut self, val: u32, hprime: u64, tuple: &[u8]) {
        let bytes = self.entry_bytes(tuple.len());
        self.histogram[(hprime >> HIST_SHIFT) as usize] += bytes;
        self.used_bytes += bytes;
        self.len += 1;
        let start = self.arena.len() as u32;
        self.arena.extend_from_slice(tuple);
        let b = (hprime & self.mask) as usize;
        self.buckets[b].push(Entry {
            val,
            hprime,
            start,
            len: tuple.len() as u32,
        });
    }

    /// Offer a tuple for staging. `clear_pct` is the percentage of capacity
    /// the heuristic tries to free on overflow (the paper's 10).
    pub fn offer(&mut self, val: u32, tuple: &[u8], clear_pct: u64) -> Offer {
        let hprime = self.hprime(val);
        if let Some(c) = self.cutoff {
            if hprime >= c {
                return Offer::Diverted;
            }
        }
        let bytes = self.entry_bytes(tuple.len());
        if self.used_bytes + bytes <= self.capacity_bytes {
            self.store(val, hprime, tuple);
            return Offer::Stored;
        }
        // Overflow: run the clearing heuristic, repeatedly if one clearing
        // is insufficient ("the hash table could again overflow if the
        // heuristic of clearing 10% turns out to be insufficient. In this
        // case an additional 10% of the tuples are removed" — §4.1). The
        // invariant that makes overflow processing correct is that the
        // resident set is exactly {h' < cutoff}: a tuple below the cutoff
        // is never diverted, so its matching outer tuples know to probe.
        let mut evicted = Vec::new();
        let mut scanned = 0u64;
        let target = (self.capacity_bytes * clear_pct.max(1)) / 100;
        loop {
            self.clearings += 1;
            scanned += self.len;
            let new_cutoff = self.pick_cutoff(target);
            self.clear_above(new_cutoff, &mut evicted);
            self.cutoff = Some(new_cutoff);
            if hprime >= new_cutoff {
                return Offer::Overflowed {
                    evicted,
                    diverted: true,
                    scanned,
                };
            }
            if self.used_bytes + bytes <= self.capacity_bytes {
                self.store(val, hprime, tuple);
                return Offer::Overflowed {
                    evicted,
                    diverted: false,
                    scanned,
                };
            }
            if new_cutoff == 0 {
                // The table is empty and the tuple still does not fit
                // (capacity below one tuple). With cutoff 0 every value
                // diverts, so the partition stays consistent.
                return Offer::Overflowed {
                    evicted,
                    diverted: true,
                    scanned,
                };
            }
        }
    }

    /// Choose the highest cutoff that frees at least `target` bytes,
    /// examining the histogram from the top cell downward (the paper's
    /// "writing all tuples with hash values above 90,000 will free up 10 %
    /// of memory").
    fn pick_cutoff(&self, target: u64) -> u64 {
        let ceiling = self
            .cutoff
            .map(|c| c >> HIST_SHIFT)
            .unwrap_or(HIST_CELLS as u64);
        let mut freed = 0u64;
        let mut cell = ceiling;
        while cell > 0 {
            cell -= 1;
            freed += self.histogram[cell as usize];
            if freed >= target {
                break;
            }
        }
        cell << HIST_SHIFT
    }

    /// Unlink every resident tuple with `h' >= cutoff`, appending their
    /// `(val, range)` pairs to `evicted`. The bytes stay put in the arena,
    /// so previously returned ranges remain valid.
    fn clear_above(&mut self, cutoff: u64, evicted: &mut Vec<(u32, TupleRange)>) {
        let before = evicted.len();
        for b in self.buckets.iter_mut() {
            let mut i = 0;
            while i < b.len() {
                if b[i].hprime >= cutoff {
                    let e = b.swap_remove(i);
                    evicted.push((e.val, (e.start, e.len)));
                } else {
                    i += 1;
                }
            }
        }
        for &(_, (_, len)) in &evicted[before..] {
            let bytes = len as u64 + self.entry_overhead;
            self.used_bytes -= bytes;
            self.len -= 1;
        }
        // The cutoff is cell-aligned, so every histogram cell at or above
        // the boundary is now empty.
        for cell in (cutoff >> HIST_SHIFT) as usize..HIST_CELLS {
            self.histogram[cell] = 0;
        }
    }

    /// Probe with an outer value: `(matching arena ranges, chain entries
    /// compared)`. Resolve ranges with [`JoinHashTable::slice`]; misses and
    /// low-duplication hits (the common case on key joins) allocate nothing.
    pub fn probe_ranges(&self, val: u32) -> (MatchSet, u64) {
        let hprime = self.hprime(val);
        let b = (hprime & self.mask) as usize;
        let chain = &self.buckets[b];
        let mut matches = MatchSet::default();
        for e in chain {
            if e.val == val {
                matches.push((e.start, e.len));
            }
        }
        (matches, chain.len() as u64)
    }

    /// Probe with an outer value: `(matching tuples, chain entries compared)`.
    pub fn probe(&self, val: u32) -> (Vec<&[u8]>, u64) {
        let (ranges, compares) = self.probe_ranges(val);
        (ranges.iter().map(|r| self.slice(r)).collect(), compares)
    }

    /// Unused capacity in bytes — how much spilled data a dynamic restore
    /// pass could re-admit without overflowing again.
    pub fn slack_bytes(&self) -> u64 {
        self.capacity_bytes.saturating_sub(self.used_bytes)
    }

    /// Bytes a stored tuple of `tuple_len` payload bytes occupies (payload
    /// plus per-entry overhead) — used by the restore pass to plan how much
    /// spilled data fits into [`slack_bytes`](Self::slack_bytes).
    pub fn entry_footprint(&self, tuple_len: usize) -> u64 {
        self.entry_bytes(tuple_len)
    }

    /// The `h'` histogram cell a value falls into (0..256). Restore planning
    /// aggregates spilled bytes per cell so a new cutoff can be chosen on
    /// the same cell boundaries the clearing heuristic uses.
    #[inline]
    pub fn hprime_cell(&self, val: u32) -> usize {
        (self.hprime(val) >> HIST_SHIFT) as usize
    }

    /// Histogram cell of the current cutoff, if the table overflowed (the
    /// resident set is exactly the cells below it).
    pub fn cutoff_cell(&self) -> Option<usize> {
        self.cutoff.map(|c| (c >> HIST_SHIFT) as usize)
    }

    /// Cell-aligned cutoff value for histogram cell `cell` (so
    /// `hprime_cell(v) < cell` ⇔ `hprime(v) < cell_cutoff(cell)`).
    #[inline]
    pub fn cell_cutoff(cell: usize) -> u64 {
        (cell as u64) << HIST_SHIFT
    }

    /// Number of `h'` histogram cells (cutoffs are aligned to cell
    /// boundaries; cell index [`HIST_CELLS`] means "no cutoff").
    pub const CELLS: usize = HIST_CELLS;

    /// Raise (or clear) the overflow cutoff after a dynamic restore pass
    /// re-admits spilled tuples. The resident-set invariant — residents are
    /// exactly the offered tuples with `h' <` cutoff — is preserved because
    /// the caller re-offers every spilled tuple in the raised range before
    /// any further probe. Raising only: lowering happens solely through the
    /// clearing heuristic in [`offer`](Self::offer).
    pub fn raise_cutoff(&mut self, new_cutoff: Option<u64>) {
        let old = self
            .cutoff
            .expect("raise_cutoff on a table that never overflowed");
        if let Some(c) = new_cutoff {
            debug_assert!(c >= old, "cutoff may only be raised ({c:#x} < {old:#x})");
        }
        self.cutoff = new_cutoff;
    }

    /// Iterate over resident tuples (for building bit filters).
    pub fn resident(&self) -> impl Iterator<Item = (u32, &[u8])> {
        self.buckets
            .iter()
            .flat_map(|b| b.iter().map(|e| (e.val, self.slice((e.start, e.len)))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(val: u32, len: usize) -> Vec<u8> {
        let mut t = vec![0u8; len.max(4)];
        t[0..4].copy_from_slice(&val.to_le_bytes());
        t
    }

    #[test]
    fn stores_and_probes() {
        let mut t = JoinHashTable::new(1 << 20, 208, 1);
        for v in 0..100 {
            assert_eq!(t.offer(v, &tuple(v, 208), 10), Offer::Stored);
        }
        let (m, compares) = t.probe(42);
        assert_eq!(m.len(), 1);
        assert!(compares >= 1);
        let (m, _) = t.probe(5000);
        assert!(m.is_empty());
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn duplicates_form_chains() {
        let mut t = JoinHashTable::new(1 << 20, 208, 1);
        for _ in 0..5 {
            t.offer(7, &tuple(7, 208), 10);
        }
        let (m, compares) = t.probe(7);
        assert_eq!(m.len(), 5);
        assert!(compares >= 5, "every chain entry is compared");
    }

    #[test]
    fn evicted_ranges_resolve_to_their_tuples() {
        let cap = 50_000u64;
        let mut t = JoinHashTable::new(cap, 208, 9);
        let mut v = 0u32;
        loop {
            match t.offer(v, &tuple(v, 208), 10) {
                Offer::Overflowed { evicted, .. } => {
                    assert!(!evicted.is_empty());
                    for (val, range) in evicted {
                        assert_eq!(t.slice(range), tuple(val, 208).as_slice());
                    }
                    break;
                }
                _ => v += 1,
            }
        }
    }

    #[test]
    fn overflow_frees_roughly_the_requested_fraction() {
        // 100 KB capacity, 208+8 bytes per entry -> ~463 resident.
        let cap = 100_000u64;
        let mut t = JoinHashTable::new(cap, 208, 99);
        let mut evicted_total = 0usize;
        let mut v = 0u32;
        loop {
            match t.offer(v, &tuple(v, 208), 10) {
                Offer::Stored => {}
                Offer::Diverted => {}
                Offer::Overflowed { evicted, .. } => {
                    evicted_total += evicted.len();
                    break;
                }
            }
            v += 1;
        }
        // Cleared at least ~10% of capacity worth of tuples but far from all.
        let evicted_bytes = evicted_total as u64 * 216;
        assert!(evicted_bytes >= cap / 10, "only freed {evicted_bytes}");
        assert!(evicted_bytes < cap / 2, "cleared too much: {evicted_bytes}");
        assert!(t.cutoff().is_some());
        assert_eq!(t.clearings(), 1);
    }

    #[test]
    fn arrivals_above_cutoff_divert() {
        let cap = 50_000u64;
        let mut t = JoinHashTable::new(cap, 208, 5);
        let mut v = 0u32;
        // Fill to first overflow.
        loop {
            if matches!(t.offer(v, &tuple(v, 208), 10), Offer::Overflowed { .. }) {
                break;
            }
            v += 1;
        }
        let cutoff = t.cutoff().unwrap();
        // Now any arrival hashing above the cutoff must divert.
        let mut diverted = 0;
        let mut stored = 0;
        for w in 1_000_000..1_002_000u32 {
            match t.offer(w, &tuple(w, 208), 10) {
                Offer::Diverted => diverted += 1,
                Offer::Stored => stored += 1,
                Offer::Overflowed { .. } => {}
            }
            if t.hprime(w) >= cutoff {
                // This one must not have been stored.
            }
        }
        assert!(diverted > 0, "some arrivals must divert");
        let _ = stored;
    }

    #[test]
    fn repeated_overflow_lowers_cutoff() {
        let cap = 50_000u64;
        let mut t = JoinHashTable::new(cap, 208, 5);
        let mut cutoffs = Vec::new();
        for v in 0..2_000u32 {
            if let Offer::Overflowed { .. } = t.offer(v, &tuple(v, 208), 10) {
                cutoffs.push(t.cutoff().unwrap());
            }
        }
        assert!(cutoffs.len() >= 2, "expected multiple clearings");
        for w in cutoffs.windows(2) {
            assert!(w[1] < w[0], "cutoff must be monotonically decreasing");
        }
    }

    #[test]
    fn resident_plus_evicted_is_everything() {
        let cap = 50_000u64;
        let mut t = JoinHashTable::new(cap, 208, 7);
        let mut spooled = Vec::new();
        let n = 1000u32;
        for v in 0..n {
            match t.offer(v, &tuple(v, 208), 10) {
                Offer::Stored => {}
                Offer::Diverted => spooled.push(tuple(v, 208)),
                Offer::Overflowed {
                    evicted, diverted, ..
                } => {
                    spooled.extend(evicted.iter().map(|&(_, r)| t.slice(r).to_vec()));
                    if diverted {
                        spooled.push(tuple(v, 208));
                    }
                }
            }
        }
        let mut all: Vec<u32> = t.resident().map(|(v, _)| v).collect();
        all.extend(
            spooled
                .iter()
                .map(|tu| u32::from_le_bytes(tu[0..4].try_into().unwrap())),
        );
        all.sort_unstable();
        assert_eq!(
            all,
            (0..n).collect::<Vec<_>>(),
            "no tuple lost or duplicated"
        );
    }

    #[test]
    fn memory_accounting_stays_within_capacity() {
        let cap = 30_000u64;
        let mut t = JoinHashTable::new(cap, 100, 3);
        for v in 0..5_000u32 {
            let _ = t.offer(v, &tuple(v, 100), 10);
            assert!(
                t.used_bytes() <= cap,
                "used {} > cap {}",
                t.used_bytes(),
                cap
            );
        }
    }

    #[test]
    fn all_identical_values_still_terminate() {
        // Pathological skew: every tuple has the same join value, so the
        // histogram is a single cell and clearing evicts everything.
        let cap = 10_000u64;
        let mut t = JoinHashTable::new(cap, 208, 3);
        let mut evicted_all = 0;
        for _ in 0..200 {
            match t.offer(7, &tuple(7, 208), 10) {
                Offer::Overflowed {
                    evicted, diverted, ..
                } => {
                    evicted_all += evicted.len() + usize::from(diverted);
                }
                Offer::Diverted => evicted_all += 1,
                Offer::Stored => {}
            }
        }
        assert!(evicted_all > 0);
        assert!(t.used_bytes() <= cap);
    }

    #[test]
    fn raising_the_cutoff_readmits_the_restored_range() {
        let cap = 50_000u64;
        let mut t = JoinHashTable::new(cap, 208, 5);
        let mut spooled = Vec::new();
        let mut v = 0u32;
        // Fill until the clearing heuristic fires once: it frees ~10 % of
        // capacity, so the table is left with real slack to restore into.
        loop {
            match t.offer(v, &tuple(v, 208), 10) {
                Offer::Stored => {}
                Offer::Diverted => spooled.push(tuple(v, 208)),
                Offer::Overflowed {
                    evicted, diverted, ..
                } => {
                    spooled.extend(evicted.iter().map(|&(_, r)| t.slice(r).to_vec()));
                    if diverted {
                        spooled.push(tuple(v, 208));
                    }
                    break;
                }
            }
            v += 1;
        }
        let old = t.cutoff().expect("the fill must overflow");
        assert!(!spooled.is_empty());
        // Plan a restore exactly the way the dynamic path does: pick the
        // highest cell boundary whose spilled bytes fit in the slack.
        let old_cell = (old >> HIST_SHIFT) as usize;
        let mut per_cell = vec![0u64; HIST_CELLS];
        for tu in &spooled {
            let v = u32::from_le_bytes(tu[0..4].try_into().unwrap());
            per_cell[t.hprime_cell(v)] += t.entry_footprint(tu.len());
        }
        let mut cell = old_cell;
        let mut bytes = 0u64;
        while cell < HIST_CELLS && bytes + per_cell[cell] <= t.slack_bytes() {
            bytes += per_cell[cell];
            cell += 1;
        }
        assert!(cell > old_cell, "slack must admit at least one cell");
        let new_cutoff = (cell < HIST_CELLS).then(|| JoinHashTable::cell_cutoff(cell));
        t.raise_cutoff(new_cutoff);
        let before = t.len();
        let mut restored = 0u64;
        for tu in &spooled {
            let v = u32::from_le_bytes(tu[0..4].try_into().unwrap());
            if t.hprime_cell(v) < cell {
                assert_eq!(t.offer(v, tu, 10), Offer::Stored);
                restored += 1;
            }
        }
        assert!(restored > 0, "the restored range must re-admit tuples");
        assert_eq!(t.len(), before + restored);
        assert!(t.used_bytes() <= cap);
        assert_eq!(t.cutoff(), new_cutoff);
    }

    #[test]
    fn hprime_seed_changes_function() {
        let a = JoinHashTable::new(1024, 208, 1);
        let b = JoinHashTable::new(1024, 208, 2);
        assert_ne!(a.hprime(42), b.hprime(42));
    }
}
