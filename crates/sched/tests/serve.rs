//! End-to-end serving tests over a real (scaled) Wisconsin workload.
//!
//! The load-bearing property: serving N=1 query reproduces the solo
//! `run_join` response *exactly* — the serve engine is a strict
//! generalization of the single-query replay, not an approximation.

use gamma_core::{Algorithm, Machine, MachineConfig};
use gamma_des::SimTime;
use gamma_sched::{serve, ServeConfig};
use gamma_wisconsin::{join_abprime, load_hashed, WisconsinGen};

fn workload() -> (Machine, gamma_core::JoinSpec) {
    let gen = WisconsinGen::new(1989);
    let a_rows = gen.relation(2_000, 0);
    let bprime_rows = gen.sample(&a_rows, 200, 1);
    let mut machine = Machine::new(MachineConfig::local_8());
    let a = load_hashed(&mut machine, "A", &a_rows, "unique1");
    let bprime = load_hashed(&mut machine, "Bprime", &bprime_rows, "unique1");
    let memory = machine.relation(bprime).data_bytes;
    let spec = join_abprime(
        Algorithm::HybridHash,
        bprime,
        a,
        "unique1",
        "unique1",
        memory,
    );
    (machine, spec)
}

fn cfg(queries: u32, mean_ms: u64, budget: usize) -> ServeConfig {
    ServeConfig {
        name: "serve-test".into(),
        case: 0,
        mean_interarrival: SimTime::from_ms(mean_ms),
        queries,
        pool_budget_pages: budget,
        backlog_window: None,
    }
}

#[test]
fn serving_one_query_reproduces_the_solo_response() {
    let (mut machine, spec) = workload();
    let result = serve(&mut machine, &spec, &cfg(1, 1, 10_000));
    assert_eq!(result.plan.solo_response, result.solo.response);
    assert_eq!(
        result.outcome.queries[0].response(),
        Some(result.solo.response),
        "N=1 serving must reproduce the single-query replay exactly"
    );
    assert_eq!(
        result.outcome.queries[0].admission_wait(),
        Some(SimTime::ZERO)
    );
}

#[test]
fn serving_is_deterministic() {
    let (mut m1, s1) = workload();
    let (mut m2, s2) = workload();
    let a = serve(&mut m1, &s1, &cfg(6, 2, 10_000));
    let b = serve(&mut m2, &s2, &cfg(6, 2, 10_000));
    assert_eq!(a.outcome.queries, b.outcome.queries);
    assert_eq!(a.outcome.makespan, b.outcome.makespan);
    assert_eq!(a.total_usage(), b.total_usage());
}

#[test]
fn concurrent_ledgers_reconcile_exactly() {
    let (mut machine, spec) = workload();
    let n = 5u32;
    let result = serve(&mut machine, &spec, &cfg(n, 1, 10_000));
    assert_eq!(result.outcome.completed(), n as usize);
    // Homogeneous stream: the serve total is exactly N times the solo
    // total, as integer ledger equality (physical work is identical and
    // independent of the timing interleave).
    let mut expected = gamma_des::Usage::default();
    for _ in 0..n {
        expected += result.solo.total.clone();
    }
    let got = result.total_usage();
    assert_eq!(got.cpu, expected.cpu);
    assert_eq!(got.disk, expected.disk);
    assert_eq!(got.net, expected.net);
    assert_eq!(got.ring_bytes, expected.ring_bytes);
    assert_eq!(got.counts, expected.counts);
}

#[test]
fn contention_never_beats_solo_response() {
    let (mut machine, spec) = workload();
    // Arrivals much faster than service: heavy contention.
    let result = serve(&mut machine, &spec, &cfg(8, 1, 10_000));
    let solo = result.solo.response;
    for (i, q) in result.outcome.queries.iter().enumerate() {
        let r = q.response().expect("all queries complete");
        assert!(
            r >= solo,
            "query {i} responded in {r}, faster than solo {solo}"
        );
    }
    // And at least one query actually queued behind another.
    assert!(
        result
            .outcome
            .queries
            .iter()
            .any(|q| q.response().unwrap() > solo),
        "an overloaded open-loop stream must show queueing delay"
    );
}

#[test]
fn tight_page_budget_serializes_admission() {
    let (mut m1, s1) = workload();
    let open = serve(&mut m1, &s1, &cfg(4, 1, 10_000));
    let peak = open.plan.max_peak_pages();
    assert!(peak > 0, "a hybrid join must touch the buffer pool");

    let (mut m2, s2) = workload();
    // Budget fits exactly one query's footprint: MPL = 1.
    let tight = serve(&mut m2, &s2, &cfg(4, 1, peak));
    let total_admission_wait: SimTime = tight
        .outcome
        .queries
        .iter()
        .map(|q| q.admission_wait().unwrap())
        .sum();
    assert!(
        total_admission_wait > SimTime::ZERO,
        "an MPL-1 budget must make later arrivals wait at admission"
    );
    // Admissions are serialized: each query is admitted exactly when its
    // predecessor finishes (or at its own arrival, whichever is later).
    for w in tight.outcome.queries.windows(2) {
        let prev_done = w[0].finished.unwrap();
        let expect = prev_done.max(w[1].arrival);
        assert_eq!(w[1].admitted, Some(expect));
    }
}
