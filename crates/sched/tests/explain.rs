//! EXPLAIN reconciliation and flight-recorder observer properties over a
//! real (scaled) Wisconsin workload.
//!
//! The load-bearing acceptance property: for every query in a serve run,
//! `admission_wait + Σ(phase dispatch wait/service + cpu/disk/net
//! service/queue wait)` equals the query's ledger-charged response as
//! integer equalities — across ≥2 algorithms and N≥4 concurrent queries.
//! And the flight recorder must be a pure observer: attaching it changes
//! nothing.

use gamma_core::{Algorithm, Machine, MachineConfig};
use gamma_des::SimTime;
use gamma_sched::{explain, serve, serve_recorded, ServeConfig};
use gamma_wisconsin::{join_abprime, load_hashed, WisconsinGen};

fn workload(alg: Algorithm, memory_ratio_pct: u64) -> (Machine, gamma_core::JoinSpec) {
    let gen = WisconsinGen::new(1989);
    let a_rows = gen.relation(2_000, 0);
    let bprime_rows = gen.sample(&a_rows, 200, 1);
    let mut machine = Machine::new(MachineConfig::local_8());
    let a = load_hashed(&mut machine, "A", &a_rows, "unique1");
    let bprime = load_hashed(&mut machine, "Bprime", &bprime_rows, "unique1");
    let memory = machine.relation(bprime).data_bytes * memory_ratio_pct / 100;
    let spec = join_abprime(alg, bprime, a, "unique1", "unique1", memory);
    (machine, spec)
}

fn cfg(queries: u32, mean_ms: u64) -> ServeConfig {
    ServeConfig {
        name: "explain-test".into(),
        case: 0,
        mean_interarrival: SimTime::from_ms(mean_ms),
        queries,
        pool_budget_pages: 10_000,
        backlog_window: None,
    }
}

#[test]
fn explain_reconciles_every_microsecond_across_algorithms() {
    // Two algorithms, six concurrent queries each, arrivals fast enough
    // to force real contention (dispatch queueing, CPU convoys, shared
    // device backlogs).
    for (alg, ratio) in [(Algorithm::HybridHash, 50), (Algorithm::GraceHash, 20)] {
        let (mut machine, spec) = workload(alg, ratio);
        let result = serve(&mut machine, &spec, &cfg(6, 1));
        assert_eq!(result.outcome.completed(), 6, "{alg:?}");
        assert!(
            result
                .outcome
                .queries
                .iter()
                .any(|q| q.response().unwrap() > result.solo.response),
            "{alg:?}: the stream must exhibit contention for the test to bite"
        );
        for (q, timing) in result.outcome.queries.iter().enumerate() {
            let explain = &result.outcome.explains[q];
            let response = timing.response().expect("completed");
            let admission = timing.admission_wait().expect("admitted");
            // Every phase accounts for its full span…
            assert_eq!(
                explain.phases.len(),
                result.plan.phases.len(),
                "{alg:?} q{q}: one breakdown per plan phase"
            );
            for (p, b) in explain.phases.iter().enumerate() {
                assert_eq!(
                    b.explained(),
                    b.span(),
                    "{alg:?} q{q} phase {p} ({}): explained components must sum to the span",
                    b.name
                );
            }
            // …and the phases telescope to the exact response.
            let explained: SimTime = admission + explain.explained_total();
            assert_eq!(
                explained,
                response,
                "{alg:?} q{q}: admission {admission} + phases {} != response {response}",
                explain.explained_total()
            );
        }
    }
}

#[test]
fn recorder_is_a_pure_observer_and_profile_reconciles() {
    let (mut m1, s1) = workload(Algorithm::HybridHash, 50);
    let plain = serve(&mut m1, &s1, &cfg(5, 1));
    let (mut m2, s2) = workload(Algorithm::HybridHash, 50);
    let (recorded, profile) = serve_recorded(&mut m2, &s2, &cfg(5, 1), 10_000);

    // Attaching the recorder must not perturb the timeline.
    assert_eq!(plain.outcome.queries, recorded.outcome.queries);
    assert_eq!(plain.outcome.makespan, recorded.outcome.makespan);
    assert_eq!(plain.outcome.explains, recorded.outcome.explains);

    // Busy series integrate to the engine's exact totals (no stall was
    // configured, so CPU busy spans are pure demand).
    let sum = |name: &str| -> u64 {
        profile
            .series
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing series {name}"))
            .values
            .iter()
            .map(|&v| u64::try_from(v).expect("busy values are non-negative"))
            .sum()
    };
    for n in 0..profile.nodes {
        assert_eq!(
            sum(&format!("node{n}.cpu_busy_us")),
            recorded.outcome.cpu_busy[n].as_us(),
            "node {n} cpu busy"
        );
        assert_eq!(
            sum(&format!("node{n}.disk_busy_us")),
            recorded.outcome.disk[n].service.as_us(),
            "node {n} disk busy"
        );
        assert_eq!(
            sum(&format!("node{n}.net_busy_us")),
            recorded.outcome.net[n].service.as_us(),
            "node {n} net busy"
        );
    }
    assert_eq!(
        sum("dispatch_busy_us"),
        recorded.outcome.dispatch.service.as_us()
    );
    assert_eq!(sum("ring_busy_us"), recorded.outcome.ring.service.as_us());

    // Occupancy gauges drain by the end of the run.
    for name in ["inflight_queries", "admission_backlog"] {
        let s = profile.series.iter().find(|s| s.name == name).unwrap();
        assert_eq!(*s.values.last().unwrap(), 0, "{name} must drain");
    }
}

#[test]
fn explain_render_is_deterministic_and_reconciled() {
    let (mut m1, s1) = workload(Algorithm::GraceHash, 20);
    let a = serve(&mut m1, &s1, &cfg(4, 1));
    let (mut m2, s2) = workload(Algorithm::GraceHash, 20);
    let b = serve(&mut m2, &s2, &cfg(4, 1));
    let ra = explain::render(&a.outcome, a.solo.response);
    let rb = explain::render(&b.outcome, b.solo.response);
    assert_eq!(ra, rb, "EXPLAIN text must be byte-identical across runs");
    assert!(ra.starts_with("EXPLAIN serve: 4 queries"));
    assert_eq!(ra.matches("reconciled:").count(), 4);
    assert!(!ra.contains("never completed"));
}
