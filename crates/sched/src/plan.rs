//! Plan extraction: turn one executed join into the timing skeleton the
//! serve engine interleaves.
//!
//! The simulator is *work first, time later*: `run_join_with_phases`
//! executes the join for real and hands back per-phase, per-node [`Usage`]
//! ledgers whose request logs record when (on the node's CPU-progress
//! clock) each disk/NI request was issued and how long it needs. A
//! [`QueryPlan`] is exactly that information, reshaped for the engine:
//!
//! * per phase, the serialized scheduler dispatch overhead;
//! * per participating node, the CPU demand and the *materialized* device
//!   request logs (the `queue_timing` synthetic-request fallback — an
//!   empty log with nonzero service total becomes one request at issue 0 —
//!   is applied here so the engine and the single-query replay agree
//!   exactly);
//! * the phase's shared-ring occupancy, computed with the same u128
//!   round-up arithmetic as `gamma_des::phase::compose`.
//!
//! The plan also captures the query's per-node buffer-pool peak (its
//! memory footprint, which admission control budgets against) and the
//! solo response time the single-query replay produced — the N=1
//! equivalence baseline.

use gamma_core::machine::Machine;
use gamma_core::{run_join_with_phases, JoinReport, JoinSpec, PhaseRecord};
use gamma_des::{Request, SimTime, Usage};

/// One node's work within one phase.
#[derive(Debug, Clone)]
pub struct NodePlan {
    /// Node id.
    pub node: usize,
    /// CPU demand for the phase (one non-preemptive convoy).
    pub cpu: SimTime,
    /// Disk-arm requests in issue order (synthetic fallback materialized).
    pub disk: Vec<Request>,
    /// NI requests in issue order (synthetic fallback materialized).
    pub net: Vec<Request>,
}

/// One phase of a query, as the engine schedules it.
#[derive(Debug, Clone)]
pub struct PhasePlan {
    /// Phase name (for diagnostics).
    pub name: String,
    /// Serialized scheduler dispatch time preceding the phase.
    pub sched_overhead: SimTime,
    /// Shared-ring occupancy for the whole phase (µs of exclusive ring
    /// use; zero when no bytes crossed the ring).
    pub ring: SimTime,
    /// Participating nodes (any node with CPU or device work), ascending.
    pub nodes: Vec<NodePlan>,
}

/// The timing skeleton of one query: everything the serve engine needs to
/// re-time the query's phases under cross-query contention.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Ordered phases.
    pub phases: Vec<PhasePlan>,
    /// Per-node buffer-pool peak page counts for one solo execution — the
    /// query's memory footprint, which admission control reserves.
    pub peak_pages: Vec<usize>,
    /// Solo (single-user) response time from the standard replay.
    pub solo_response: SimTime,
}

/// Materialize a device request log the way `Usage::queue_timing` does:
/// ledgers charged via bulk `Usage` addition have service totals but no
/// per-request log, and stand in as one request issued at phase start.
fn device_log(reqs: &[Request], total: SimTime) -> Vec<Request> {
    if reqs.is_empty() && total > SimTime::ZERO {
        vec![Request {
            issue: SimTime::ZERO,
            service: total,
        }]
    } else {
        reqs.to_vec()
    }
}

/// Shared-ring occupancy for a phase, mirroring `compose`'s arithmetic
/// exactly (u128 product, round up, never free when bytes moved).
fn ring_time(per_node: &[Usage], bandwidth_bytes_per_sec: u64) -> SimTime {
    assert!(
        bandwidth_bytes_per_sec > 0,
        "ring bandwidth must be positive"
    );
    let ring_bytes: u64 = per_node.iter().map(|u| u.ring_bytes).sum();
    if ring_bytes == 0 {
        return SimTime::ZERO;
    }
    let us = (u128::from(ring_bytes) * 1_000_000u128).div_ceil(u128::from(bandwidth_bytes_per_sec));
    SimTime::from_us(u64::try_from(us).unwrap_or(u64::MAX).max(1))
}

impl PhasePlan {
    /// Build one phase's plan from its sealed record.
    pub fn from_record(record: &PhaseRecord, ring_bandwidth_bytes_per_sec: u64) -> Self {
        let nodes = record
            .ledgers
            .iter()
            .enumerate()
            .filter_map(|(node, u)| {
                let disk = device_log(&u.reqs.disk, u.disk);
                let net = device_log(&u.reqs.net, u.net);
                if u.cpu == SimTime::ZERO && disk.is_empty() && net.is_empty() {
                    return None;
                }
                Some(NodePlan {
                    node,
                    cpu: u.cpu,
                    disk,
                    net,
                })
            })
            .collect();
        PhasePlan {
            name: record.name.clone(),
            sched_overhead: record.sched_overhead,
            ring: ring_time(&record.ledgers, ring_bandwidth_bytes_per_sec),
            nodes,
        }
    }
}

impl QueryPlan {
    /// Build a plan from an executed join's phase records.
    pub fn from_phases(
        records: &[PhaseRecord],
        peak_pages: Vec<usize>,
        solo_response: SimTime,
        ring_bandwidth_bytes_per_sec: u64,
    ) -> Self {
        QueryPlan {
            phases: records
                .iter()
                .map(|r| PhasePlan::from_record(r, ring_bandwidth_bytes_per_sec))
                .collect(),
            peak_pages,
            solo_response,
        }
    }

    /// The plan's worst per-node page footprint (admission needs at least
    /// this much budget per node to ever admit the query).
    pub fn max_peak_pages(&self) -> usize {
        self.peak_pages.iter().copied().max().unwrap_or(0)
    }
}

/// Execute `spec` once on `machine` and extract its plan alongside the
/// standard report. The buffer pools are cleared by `run_join` at entry,
/// so the post-run pool peaks are exactly this query's footprint.
pub fn extract(machine: &mut Machine, spec: &JoinSpec) -> (QueryPlan, JoinReport) {
    let (report, phases) = run_join_with_phases(machine, spec);
    let peaks = machine.pool_peaks();
    let bw = machine.cfg.cost.ring.bandwidth_bytes_per_sec;
    let plan = QueryPlan::from_phases(&phases, peaks, report.response, bw);
    (plan, report)
}
