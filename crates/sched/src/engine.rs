//! The serve engine: interleave many query plans over one machine's
//! shared device queues.
//!
//! The engine is a discrete-event simulation (on the stock
//! [`gamma_des::Sim`] kernel) whose events are query arrivals, per-query
//! phase launches, and completions. Contention is modelled with the
//! cross-phase [`SharedServer`] queues PR 3's per-phase drains promised:
//!
//! * one **dispatch** server — the Gamma scheduler process serializes
//!   phase launches, each costing that phase's `sched_overhead`;
//! * one **ring** server — a phase's aggregate ring occupancy reserves
//!   the shared interconnect FIFO;
//! * per node, a **CPU convoy clock** (`cpu_free`) — a node runs one
//!   phase's operator processes at a time, non-preemptively, exactly like
//!   the solo queued model;
//! * per node, a **disk** and a **NI** [`SharedServer`] whose backlogs
//!   persist *across phases and queries* — the cross-phase promotion that
//!   closes the ROADMAP limitation.
//!
//! ## Event flow
//!
//! An `Arrival(q)` enqueues the query at admission control: a FIFO with
//! head-of-line blocking that admits when, on every node, reserved pages
//! plus the query's solo buffer-pool peak fit the per-node budget.
//! Admission launches phase 0. A phase launch at time `t` computes the
//! phase's end synchronously: `start = dispatch.submit(t, overhead)`;
//! per participating node `cpu_start = max(start, cpu_free[node])`; each
//! logged device request arrives at `cpu_start + issue` (in issue order,
//! disk winning ties) at its node's shared server; the node finishes at
//! `max(cpu_end, last device completion)`; the phase ends at the max over
//! nodes, floored by `ring.submit(start, ring_occupancy)`. The next phase
//! (or the completion, which releases the admission reservation and
//! re-polls the queue) is scheduled at that end time.
//!
//! ## Back-pressure
//!
//! With `backlog_window = Some(w)`, a device request that waited `wait`
//! in queue stalls its node's CPU by `wait − w` (the operator blocks once
//! the device backlog exceeds the window), shifting every later request
//! of that convoy and extending the convoy's CPU occupancy. `None` (the
//! default) keeps devices fully asynchronous — and keeps an unloaded
//! serve byte-identical to the solo replay.
//!
//! ## Determinism and FIFO safety
//!
//! Everything is integer virtual time on a deterministic kernel, so a
//! serve is reproducible bit-for-bit. [`SharedServer::submit`] requires
//! non-decreasing arrivals; each use site satisfies it structurally:
//! the dispatch server is fed event times (monotone), the ring server is
//! fed dispatch completions (monotone because the dispatch clock only
//! moves forward), and a node's device servers are fed
//! `cpu_start + issue + stall` where `issue ≤ cpu demand` — so every
//! arrival of one convoy is ≤ the node's `cpu_free`, which is ≤ the next
//! convoy's `cpu_start`.

use std::collections::VecDeque;

use gamma_des::{SharedServer, Sim, SimTime};
use gamma_metrics::Histogram;
use gamma_prof::{Device, FlightProfile, FlightRecorder};

use crate::explain::{PhaseBreakdown, QueryExplain};
use crate::plan::QueryPlan;
use crate::report::{QueryTiming, ServeOutcome};

/// Engine knobs (the machine shape comes from the plans).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of nodes (device queues and page budgets are per node).
    pub nodes: usize,
    /// Per-node buffer-pool page budget admission reserves against.
    pub pool_budget_pages: usize,
    /// Mid-phase CPU back-pressure window; `None` = fully asynchronous
    /// devices (solo-equivalent).
    pub backlog_window: Option<SimTime>,
}

struct EngineState {
    plans: Vec<QueryPlan>,
    budget: usize,
    backlog_window: Option<SimTime>,
    dispatch: SharedServer,
    ring: SharedServer,
    cpu_free: Vec<SimTime>,
    cpu_busy: Vec<SimTime>,
    cpu_stall: Vec<SimTime>,
    disk: Vec<SharedServer>,
    net: Vec<SharedServer>,
    reserved: Vec<usize>,
    waiting: VecDeque<usize>,
    records: Vec<QueryTiming>,
    explains: Vec<QueryExplain>,
    disk_wait_hist: Histogram,
    net_wait_hist: Histogram,
    /// Flight recorder (present only under [`run_recorded`]); owned by the
    /// state so event closures stay capture-light.
    rec: Option<FlightRecorder>,
}

fn try_admit(sim: &mut Sim<EngineState>) {
    loop {
        let now = sim.now();
        let st = &mut sim.state;
        let Some(&q) = st.waiting.front() else { return };
        let peaks = &st.plans[q].peak_pages;
        let fits = st
            .reserved
            .iter()
            .enumerate()
            .all(|(n, &r)| r + peaks.get(n).copied().unwrap_or(0) <= st.budget);
        if !fits {
            // Head-of-line blocking: later arrivals wait behind the head
            // even if they would fit, preserving FIFO completion order
            // for homogeneous workloads.
            return;
        }
        st.waiting.pop_front();
        for (n, r) in st.reserved.iter_mut().enumerate() {
            *r += peaks.get(n).copied().unwrap_or(0);
        }
        st.records[q].admitted = Some(now);
        if let Some(rec) = st.rec.as_mut() {
            rec.query_admitted(now);
            for (n, &p) in st.plans[q].peak_pages.iter().enumerate() {
                if p > 0 {
                    rec.pool_pages(n, now, p as i64);
                }
            }
        }
        sim.schedule_at(now, move |s| run_phase(s, q, 0));
    }
}

fn run_phase(sim: &mut Sim<EngineState>, q: usize, p: usize) {
    let now = sim.now();
    if p >= sim.state.plans[q].phases.len() {
        complete(sim, q);
        return;
    }
    // Clone the phase plan so its request logs can be walked while the
    // shared servers (also in state) are mutated.
    let ph = sim.state.plans[q].phases[p].clone();
    let last = p + 1 == sim.state.plans[q].phases.len();
    let st = &mut sim.state;

    let dspan = st.dispatch.submit_span(now, ph.sched_overhead);
    let start = dspan.completion;
    if let Some(rec) = st.rec.as_mut() {
        rec.dispatch(dspan.arrival, dspan.start, dspan.completion);
    }
    let mut end = start;
    // Critical-path attribution for EXPLAIN: whichever determinant last
    // raised `end` (a device completion, a CPU convoy end, or the ring)
    // owns the phase body, split into its service and wait components.
    // Every candidate's components sum exactly to `candidate − start`, so
    // the recorded breakdown always satisfies
    // `end − launch = dispatch_wait + dispatch_service + Σ components`.
    let mut crit_cpu = SimTime::ZERO;
    let mut crit_disk = SimTime::ZERO;
    let mut crit_net = SimTime::ZERO;
    let mut crit_wait = SimTime::ZERO;
    for np in &ph.nodes {
        let cpu_start = start.max(st.cpu_free[np.node]);
        let cpu_head_wait = cpu_start - start;
        let mut stall = SimTime::ZERO;
        let (mut di, mut ni) = (0, 0);
        while di < np.disk.len() || ni < np.net.len() {
            let take_disk = match (np.disk.get(di), np.net.get(ni)) {
                (Some(d), Some(n)) => d.issue <= n.issue,
                (Some(_), None) => true,
                _ => false,
            };
            let r = if take_disk { np.disk[di] } else { np.net[ni] };
            let stall_before = stall;
            let arrival = cpu_start + r.issue + stall_before;
            let server = if take_disk {
                &mut st.disk[np.node]
            } else {
                &mut st.net[np.node]
            };
            let span = server.submit_span(arrival, r.service);
            let done = span.completion;
            let wait = span.wait();
            if let Some(rec) = st.rec.as_mut() {
                let dev = if take_disk { Device::Disk } else { Device::Net };
                rec.device(np.node, dev, span.arrival, span.start, span.completion);
            }
            let hist = if take_disk {
                &mut st.disk_wait_hist
            } else {
                &mut st.net_wait_hist
            };
            hist.observe(wait.as_us());
            if let Some(w) = st.backlog_window {
                if wait > w {
                    stall += wait - w;
                }
            }
            if done > end {
                end = done;
                // done − start = cpu_head_wait + issue + stall_before
                //              + wait + service.
                crit_cpu = r.issue;
                crit_disk = if take_disk { r.service } else { SimTime::ZERO };
                crit_net = if take_disk { SimTime::ZERO } else { r.service };
                crit_wait = cpu_head_wait + stall_before + wait;
            }
            if take_disk {
                di += 1;
            } else {
                ni += 1;
            }
        }
        let cpu_end = cpu_start + np.cpu + stall;
        st.cpu_free[np.node] = cpu_end;
        st.cpu_busy[np.node] += np.cpu;
        st.cpu_stall[np.node] += stall;
        if let Some(rec) = st.rec.as_mut() {
            rec.cpu_busy(np.node, cpu_start, cpu_end);
        }
        if cpu_end > end {
            end = cpu_end;
            // cpu_end − start = cpu_head_wait + cpu + stall.
            crit_cpu = np.cpu;
            crit_disk = SimTime::ZERO;
            crit_net = SimTime::ZERO;
            crit_wait = cpu_head_wait + stall;
        }
    }
    if ph.ring > SimTime::ZERO {
        let rspan = st.ring.submit_span(start, ph.ring);
        if let Some(rec) = st.rec.as_mut() {
            rec.ring(rspan.arrival, rspan.start, rspan.completion);
        }
        if rspan.completion > end {
            end = rspan.completion;
            // completion − start = ring wait + ring occupancy.
            crit_cpu = SimTime::ZERO;
            crit_disk = SimTime::ZERO;
            crit_net = ph.ring;
            crit_wait = rspan.wait();
        }
    }
    let breakdown = PhaseBreakdown {
        name: ph.name.clone(),
        launch: now,
        end,
        dispatch_wait: dspan.wait(),
        dispatch_service: ph.sched_overhead,
        cpu_service: crit_cpu,
        disk_service: crit_disk,
        net_service: crit_net,
        queue_wait: crit_wait,
    };
    debug_assert_eq!(
        breakdown.explained(),
        breakdown.span(),
        "EXPLAIN breakdown must account for every microsecond of {} q{q} p{p}",
        ph.name
    );
    st.explains[q].phases.push(breakdown);

    if last {
        sim.schedule_at(end, move |s| complete(s, q));
    } else {
        sim.schedule_at(end, move |s| run_phase(s, q, p + 1));
    }
}

fn complete(sim: &mut Sim<EngineState>, q: usize) {
    let now = sim.now();
    let st = &mut sim.state;
    st.records[q].finished = Some(now);
    debug_assert_eq!(
        st.records[q]
            .admitted
            .map(|a| a + st.explains[q].explained_total()),
        Some(now),
        "q{q}: explained phase spans must telescope to the completion time"
    );
    let peaks = &st.plans[q].peak_pages;
    for (n, r) in st.reserved.iter_mut().enumerate() {
        let p = peaks.get(n).copied().unwrap_or(0);
        debug_assert!(*r >= p, "admission reservation underflow");
        *r -= p;
    }
    if let Some(rec) = st.rec.as_mut() {
        rec.query_finished(now);
        for (n, &p) in st.plans[q].peak_pages.iter().enumerate() {
            if p > 0 {
                rec.pool_pages(n, now, -(p as i64));
            }
        }
    }
    try_admit(sim);
}

/// Interleave `plans` (query `q` arrives at `arrivals[q]`) over one
/// machine under `cfg`. Arrival times must be non-decreasing; every
/// plan's per-node peak must fit the budget (otherwise the head-of-line
/// queue could never drain).
pub fn run(plans: Vec<QueryPlan>, arrivals: &[SimTime], cfg: &EngineConfig) -> ServeOutcome {
    run_recorded(plans, arrivals, cfg, None).0
}

/// [`run`], plus a gamma-prof flight recorder sampling the run at a fixed
/// virtual-time tick. Returns the profile alongside the outcome; with
/// `tick_us = None` no recorder is attached and the profile is `None`.
///
/// The recorder only observes quantities the engine already computes from
/// [`SharedServer`] submissions — attaching it cannot perturb the
/// timeline, so the outcome is identical to [`run`]'s (the serve tests
/// pin this).
pub fn run_recorded(
    plans: Vec<QueryPlan>,
    arrivals: &[SimTime],
    cfg: &EngineConfig,
    tick_us: Option<u64>,
) -> (ServeOutcome, Option<FlightProfile>) {
    assert_eq!(plans.len(), arrivals.len(), "one arrival time per plan");
    assert!(
        arrivals.windows(2).all(|w| w[0] <= w[1]),
        "arrival times must be non-decreasing"
    );
    for (q, plan) in plans.iter().enumerate() {
        assert!(
            plan.max_peak_pages() <= cfg.pool_budget_pages,
            "query {q} needs {} pages on some node but the budget is {}",
            plan.max_peak_pages(),
            cfg.pool_budget_pages
        );
    }

    let records = arrivals
        .iter()
        .map(|&t| QueryTiming {
            arrival: t,
            admitted: None,
            finished: None,
        })
        .collect();
    let explains = vec![QueryExplain::default(); arrivals.len()];
    let state = EngineState {
        plans,
        budget: cfg.pool_budget_pages,
        backlog_window: cfg.backlog_window,
        dispatch: SharedServer::new(),
        ring: SharedServer::new(),
        cpu_free: vec![SimTime::ZERO; cfg.nodes],
        cpu_busy: vec![SimTime::ZERO; cfg.nodes],
        cpu_stall: vec![SimTime::ZERO; cfg.nodes],
        disk: vec![SharedServer::new(); cfg.nodes],
        net: vec![SharedServer::new(); cfg.nodes],
        reserved: vec![0; cfg.nodes],
        waiting: VecDeque::new(),
        records,
        explains,
        disk_wait_hist: Histogram::default(),
        net_wait_hist: Histogram::default(),
        rec: tick_us.map(|t| FlightRecorder::new(cfg.nodes, t)),
    };

    let mut sim = Sim::untraced(state);
    for (q, &t) in arrivals.iter().enumerate() {
        sim.schedule_at(t, move |s| {
            let now = s.now();
            s.state.waiting.push_back(q);
            if let Some(rec) = s.state.rec.as_mut() {
                rec.query_arrival(now);
            }
            try_admit(s);
        });
    }
    let makespan = sim.run_until_idle();

    let st = sim.state;
    let profile = st.rec.map(|rec| rec.profile(makespan));
    let outcome = ServeOutcome {
        queries: st.records,
        makespan,
        dispatch: st.dispatch.stats(),
        ring: st.ring.stats(),
        disk: st.disk.iter().map(SharedServer::stats).collect(),
        net: st.net.iter().map(SharedServer::stats).collect(),
        cpu_busy: st.cpu_busy,
        cpu_stall: st.cpu_stall,
        disk_wait_hist: st.disk_wait_hist,
        net_wait_hist: st.net_wait_hist,
        explains: st.explains,
    };
    (outcome, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{NodePlan, PhasePlan, QueryPlan};
    use gamma_des::Request;

    fn req(issue: u64, service: u64) -> Request {
        Request {
            issue: SimTime::from_us(issue),
            service: SimTime::from_us(service),
        }
    }

    fn one_phase_plan() -> QueryPlan {
        QueryPlan {
            phases: vec![PhasePlan {
                name: "scan".into(),
                sched_overhead: SimTime::from_us(10),
                ring: SimTime::from_us(40),
                nodes: vec![NodePlan {
                    node: 0,
                    cpu: SimTime::from_us(100),
                    disk: vec![req(0, 30), req(50, 30)],
                    net: vec![req(20, 5)],
                }],
            }],
            peak_pages: vec![4],
            solo_response: SimTime::from_us(110),
        }
    }

    fn cfg(nodes: usize, budget: usize) -> EngineConfig {
        EngineConfig {
            nodes,
            pool_budget_pages: budget,
            backlog_window: None,
        }
    }

    #[test]
    fn solo_query_matches_hand_computation() {
        // start = 0+10; disk: [10..40], [60+? issue 50 -> arr 60, done 90];
        // net: arr 30, done 35; cpu_end = 110; ring floor = 10+40 = 50.
        // end = max(110, 90, 35, 50) = 110; response = 110 - 0.
        let out = run(vec![one_phase_plan()], &[SimTime::ZERO], &cfg(1, 8));
        assert_eq!(out.queries[0].response(), Some(SimTime::from_us(110)));
        assert_eq!(out.queries[0].admission_wait(), Some(SimTime::ZERO));
        assert_eq!(out.makespan, SimTime::from_us(110));
        // No contention: every device request started at its arrival.
        assert_eq!(out.disk[0].wait, SimTime::ZERO);
        assert_eq!(out.net[0].wait, SimTime::ZERO);
    }

    #[test]
    fn admission_blocks_until_pages_free() {
        // Budget fits one query at a time; the second waits for the first
        // to complete even though it arrives earlier.
        let plans = vec![one_phase_plan(), one_phase_plan()];
        let out = run(plans, &[SimTime::ZERO, SimTime::from_us(5)], &cfg(1, 4));
        assert_eq!(out.queries[0].admitted, Some(SimTime::ZERO));
        // Admitted exactly when query 0 completes.
        assert_eq!(out.queries[1].admitted, out.queries[0].finished);
        assert_eq!(out.queries[1].admission_wait(), Some(SimTime::from_us(105)));
    }

    #[test]
    fn shared_devices_carry_backlog_between_queries() {
        // Two queries admitted together (budget 8): the dispatch server
        // serializes launches, the CPU convoys serialize on node 0, and
        // the disk backlog from query 0 delays query 1's first request.
        let plans = vec![one_phase_plan(), one_phase_plan()];
        let out = run(plans, &[SimTime::ZERO, SimTime::ZERO], &cfg(1, 8));
        // q0 as solo, but dispatch pushed q1's start to 20 and node 0's
        // CPU convoy to 110: cpu_start=110, disk reqs arrive 110,160 on a
        // disk free at 90 -> no disk wait, cpu_end = 210.
        assert_eq!(out.queries[0].finished, Some(SimTime::from_us(110)));
        assert_eq!(out.queries[1].finished, Some(SimTime::from_us(210)));
        // Ring saw both phases' occupancy back to back.
        assert_eq!(out.ring.service, SimTime::from_us(80));
        assert_eq!(out.dispatch.requests, 2);
    }

    #[test]
    fn backlog_window_stalls_the_convoy() {
        // One node, disk requests dense enough to queue: with a zero
        // window every microsecond of device wait stalls the CPU.
        let plan = QueryPlan {
            phases: vec![PhasePlan {
                name: "x".into(),
                sched_overhead: SimTime::ZERO,
                ring: SimTime::ZERO,
                nodes: vec![NodePlan {
                    node: 0,
                    cpu: SimTime::from_us(10),
                    disk: vec![req(0, 20), req(5, 20)],
                    net: vec![],
                }],
            }],
            peak_pages: vec![1],
            solo_response: SimTime::ZERO,
        };
        let free = run(
            vec![plan.clone()],
            &[SimTime::ZERO],
            &EngineConfig {
                nodes: 1,
                pool_budget_pages: 4,
                backlog_window: None,
            },
        );
        // req1 arrives at 5, disk free at 20 -> wait 15, done 40;
        // cpu_end = 10; end = 40.
        assert_eq!(free.makespan, SimTime::from_us(40));
        assert_eq!(free.cpu_stall[0], SimTime::ZERO);

        let pressed = run(
            vec![plan],
            &[SimTime::ZERO],
            &EngineConfig {
                nodes: 1,
                pool_budget_pages: 4,
                backlog_window: Some(SimTime::ZERO),
            },
        );
        // Same device timeline, but the 15 µs wait stalls the CPU:
        // cpu_end = 10 + 15 = 25; end still 40, stall recorded.
        assert_eq!(pressed.cpu_stall[0], SimTime::from_us(15));
        assert_eq!(pressed.makespan, SimTime::from_us(40));
    }

    #[test]
    fn fifo_admission_is_head_of_line() {
        // Query 1 is small and would fit while query 0's big sibling
        // runs, but FIFO admission holds it behind the head.
        let big = QueryPlan {
            peak_pages: vec![4],
            ..one_phase_plan()
        };
        let small = QueryPlan {
            peak_pages: vec![1],
            ..one_phase_plan()
        };
        let out = run(
            vec![big.clone(), big, small],
            &[SimTime::ZERO, SimTime::from_us(1), SimTime::from_us(2)],
            &cfg(1, 4),
        );
        let a1 = out.queries[1].admitted.unwrap();
        let a2 = out.queries[2].admitted.unwrap();
        assert!(a2 >= a1, "small query must not jump the FIFO: {a2} < {a1}");
    }

    #[test]
    #[should_panic(expected = "needs 5 pages")]
    fn oversized_query_is_rejected_up_front() {
        let plan = QueryPlan {
            peak_pages: vec![5],
            ..one_phase_plan()
        };
        run(vec![plan], &[SimTime::ZERO], &cfg(1, 4));
    }
}
