//! Per-query EXPLAIN: an exact-integer decomposition of each served
//! query's response time.
//!
//! The engine computes every phase end synchronously from shared-server
//! completions, so at the moment it schedules the next phase it knows
//! *why* the phase ended when it did: some determinant — a device
//! request's completion, a node's CPU convoy end, or the ring
//! reservation — set the max. The engine records that determinant's
//! critical path as a [`PhaseBreakdown`]; summed over phases and added to
//! the admission wait it reconstructs the query's ledger-charged response
//! **exactly**, as integer equalities (no estimates, no rounding):
//!
//! ```text
//! response = admission_wait
//!          + Σ_phase (dispatch_wait + dispatch_service
//!                     + cpu_service + disk_service + net_service
//!                     + queue_wait)
//! ```
//!
//! The engine debug-asserts the identity at every completion, and
//! `crates/sched/tests/explain.rs` enforces it release-mode across
//! algorithms and concurrency levels. [`render`] is the deterministic
//! text report behind `gamma-bench serve --explain`.

use gamma_des::SimTime;

use crate::report::ServeOutcome;

/// Why one phase of one query took as long as it did.
///
/// `end - launch` splits exactly into the six components below: the time
/// queued behind other launches at the serialized dispatch server, the
/// dispatch service itself, and then the critical path through whichever
/// determinant finished last — its CPU demand (for a device request, the
/// CPU progress before it was issued), its device service, and every
/// microsecond it spent waiting (CPU convoy, back-pressure stall, device
/// queue or ring queue).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Phase name (diagnostics only).
    pub name: String,
    /// When the engine launched the phase (previous phase's end, or the
    /// admission instant for phase 0).
    pub launch: SimTime,
    /// When the phase ended (max over its determinants).
    pub end: SimTime,
    /// Time queued at the serialized scheduler-dispatch server.
    pub dispatch_wait: SimTime,
    /// The phase's scheduler dispatch overhead.
    pub dispatch_service: SimTime,
    /// CPU service on the critical path.
    pub cpu_service: SimTime,
    /// Disk service on the critical path.
    pub disk_service: SimTime,
    /// Network (NI or ring) service on the critical path.
    pub net_service: SimTime,
    /// Every queueing component on the critical path: CPU-convoy wait,
    /// back-pressure stall, device-queue wait, ring wait.
    pub queue_wait: SimTime,
}

impl PhaseBreakdown {
    /// Wall span of the phase on the engine's clock.
    pub fn span(&self) -> SimTime {
        self.end - self.launch
    }

    /// Sum of all explained components; equals [`PhaseBreakdown::span`]
    /// exactly.
    pub fn explained(&self) -> SimTime {
        self.dispatch_wait
            + self.dispatch_service
            + self.cpu_service
            + self.disk_service
            + self.net_service
            + self.queue_wait
    }
}

/// The full decomposition of one query's serve-time response.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryExplain {
    /// One breakdown per executed phase, in phase order.
    pub phases: Vec<PhaseBreakdown>,
}

impl QueryExplain {
    /// Sum of every explained microsecond across phases (everything after
    /// admission).
    pub fn explained_total(&self) -> SimTime {
        self.phases.iter().map(PhaseBreakdown::explained).sum()
    }

    /// Total time attributed to queueing (including dispatch queueing).
    pub fn total_queue_wait(&self) -> SimTime {
        self.phases
            .iter()
            .map(|p| p.dispatch_wait + p.queue_wait)
            .sum()
    }
}

fn fmt_row(label: &str, b: &PhaseBreakdown) -> String {
    format!(
        "  {label:<12} span {:>9} = sched {:>6}+{:<6} cpu {:>9}  disk {:>9}  net {:>9}  wait {:>9}\n",
        b.span().as_us(),
        b.dispatch_wait.as_us(),
        b.dispatch_service.as_us(),
        b.cpu_service.as_us(),
        b.disk_service.as_us(),
        b.net_service.as_us(),
        b.queue_wait.as_us(),
    )
}

/// Render the per-query EXPLAIN report as deterministic text (integer
/// microseconds only — byte-identical across runs and executors).
///
/// `solo_response` is the template query's single-user response; the
/// per-query `delta` column is the contention cost relative to it.
pub fn render(outcome: &ServeOutcome, solo_response: SimTime) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "EXPLAIN serve: {} queries, makespan {} us, solo response {} us\n",
        outcome.queries.len(),
        outcome.makespan.as_us(),
        solo_response.as_us(),
    ));
    out.push_str(
        "per-phase columns: span = sched wait+service, then critical-path cpu/disk/net service and queue wait\n",
    );
    for (q, timing) in outcome.queries.iter().enumerate() {
        let explain = outcome.explains.get(q);
        match (timing.admitted, timing.finished, explain) {
            (Some(admitted), Some(finished), Some(explain)) => {
                let response = finished - timing.arrival;
                let admission = admitted - timing.arrival;
                let delta = response - solo_response;
                out.push_str(&format!(
                    "q{q:03}: arrival {:>9}  admission_wait {:>9}  response {:>9}  delta_vs_solo {:>9}\n",
                    timing.arrival.as_us(),
                    admission.as_us(),
                    response.as_us(),
                    delta.as_us(),
                ));
                for b in &explain.phases {
                    out.push_str(&fmt_row(&b.name, b));
                }
                let explained = admission + explain.explained_total();
                debug_assert_eq!(explained, response);
                out.push_str(&format!(
                    "  reconciled: admission {} + phases {} = response {} us\n",
                    admission.as_us(),
                    explain.explained_total().as_us(),
                    explained.as_us(),
                ));
            }
            _ => {
                out.push_str(&format!("q{q:03}: never completed\n"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimTime {
        SimTime::from_us(v)
    }

    #[test]
    fn breakdown_explains_its_span() {
        let b = PhaseBreakdown {
            name: "build".into(),
            launch: us(100),
            end: us(260),
            dispatch_wait: us(5),
            dispatch_service: us(10),
            cpu_service: us(80),
            disk_service: us(40),
            net_service: us(0),
            queue_wait: us(25),
        };
        assert_eq!(b.span(), us(160));
        assert_eq!(b.explained(), us(160));
        let q = QueryExplain {
            phases: vec![b.clone(), b],
        };
        assert_eq!(q.explained_total(), us(320));
        assert_eq!(q.total_queue_wait(), us(60));
    }
}
