//! Serve outcomes: per-query timings, device statistics and the exact
//! response-time percentiles the bench layer publishes.
//!
//! Response times in a loaded serve run to many virtual seconds — far
//! past the 2²⁰ µs cap of the power-of-two [`Histogram`] — so response
//! percentiles are computed **exactly** by nearest-rank over the sorted
//! response vector (`rank = ⌈count·q⌉`, 1-based), not from histogram
//! buckets. Device *wait* distributions, which do fit the bucket range,
//! are kept as histograms and surfaced with the bucket-upper-bound
//! percentile semantics documented in `gamma-metrics`.

use gamma_des::{QueueStats, SimTime};
use gamma_metrics::Histogram;

use crate::explain::QueryExplain;

/// Lifecycle timestamps of one served query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryTiming {
    /// Open-loop arrival time.
    pub arrival: SimTime,
    /// When admission control let it in (`None` if never admitted).
    pub admitted: Option<SimTime>,
    /// When its last phase ended (`None` if never finished).
    pub finished: Option<SimTime>,
}

impl QueryTiming {
    /// Response time: arrival → completion (includes admission wait).
    pub fn response(&self) -> Option<SimTime> {
        self.finished.map(|f| f - self.arrival)
    }

    /// Time spent queued at admission control.
    pub fn admission_wait(&self) -> Option<SimTime> {
        self.admitted.map(|a| a - self.arrival)
    }
}

/// Everything the engine measured over one serve run.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Per-query lifecycle timestamps, in arrival order.
    pub queries: Vec<QueryTiming>,
    /// Virtual time when the last event fired (last completion).
    pub makespan: SimTime,
    /// The serialized scheduler-dispatch server.
    pub dispatch: QueueStats,
    /// The shared interconnect ring server.
    pub ring: QueueStats,
    /// Per-node disk-arm servers.
    pub disk: Vec<QueueStats>,
    /// Per-node network-interface servers.
    pub net: Vec<QueueStats>,
    /// Per-node CPU demand actually executed.
    pub cpu_busy: Vec<SimTime>,
    /// Per-node CPU stall injected by the back-pressure window.
    pub cpu_stall: Vec<SimTime>,
    /// Distribution of individual disk-request queue waits (µs).
    pub disk_wait_hist: Histogram,
    /// Distribution of individual NI-request queue waits (µs).
    pub net_wait_hist: Histogram,
    /// Per-query EXPLAIN breakdowns, in arrival order (one entry per
    /// query; empty phase lists for queries that never ran).
    pub explains: Vec<QueryExplain>,
}

/// Nearest-rank percentile over an ascending-sorted slice: the smallest
/// element whose rank is ≥ ⌈n·num/den⌉. Exact — no bucketing.
pub fn exact_percentile(sorted: &[u64], num: u64, den: u64) -> Option<u64> {
    assert!(den > 0 && num > 0 && num <= den, "need 0 < num/den <= 1");
    if sorted.is_empty() {
        return None;
    }
    let rank = (sorted.len() as u128 * u128::from(num)).div_ceil(u128::from(den)) as usize;
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "slice not sorted");
    Some(sorted[rank - 1])
}

impl ServeOutcome {
    /// Number of queries that ran to completion.
    pub fn completed(&self) -> usize {
        self.queries.iter().filter(|q| q.finished.is_some()).count()
    }

    /// Completed-query throughput in queries/second of virtual time.
    pub fn throughput_qps(&self) -> f64 {
        if self.makespan == SimTime::ZERO {
            return 0.0;
        }
        self.completed() as f64 / self.makespan.as_secs()
    }

    /// Ascending response times (µs) of completed queries.
    pub fn sorted_responses_us(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .queries
            .iter()
            .filter_map(|q| q.response())
            .map(SimTime::as_us)
            .collect();
        v.sort_unstable();
        v
    }

    /// Exact response percentile (nearest-rank over completed queries).
    pub fn response_percentile(&self, num: u64, den: u64) -> Option<u64> {
        exact_percentile(&self.sorted_responses_us(), num, den)
    }

    /// Mean response time in µs over completed queries.
    pub fn mean_response_us(&self) -> Option<f64> {
        let v = self.sorted_responses_us();
        if v.is_empty() {
            return None;
        }
        Some(v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64)
    }

    /// A device's utilisation: busy time over the makespan.
    pub fn utilisation(&self, busy: SimTime) -> f64 {
        if self.makespan == SimTime::ZERO {
            return 0.0;
        }
        busy.as_secs() / self.makespan.as_secs()
    }

    /// Highest per-node device utilisation (CPU, disk or NI) — the
    /// measured bottleneck the analytical demand bound predicts.
    pub fn peak_device_utilisation(&self) -> f64 {
        let mut peak: f64 = self.utilisation(self.dispatch.service);
        for &b in &self.cpu_busy {
            peak = peak.max(self.utilisation(b));
        }
        for s in self.disk.iter().chain(self.net.iter()) {
            peak = peak.max(self.utilisation(s.service));
        }
        peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_percentile_nearest_rank() {
        let v = [10, 20, 30, 40];
        assert_eq!(exact_percentile(&v, 1, 2), Some(20)); // rank ceil(2) = 2
        assert_eq!(exact_percentile(&v, 99, 100), Some(40));
        assert_eq!(exact_percentile(&v, 1, 100), Some(10));
        assert_eq!(exact_percentile(&v, 1, 1), Some(40));
        assert_eq!(exact_percentile(&[], 1, 2), None);
    }

    #[test]
    fn exact_percentile_single_element() {
        assert_eq!(exact_percentile(&[7], 1, 2), Some(7));
        assert_eq!(exact_percentile(&[7], 999, 1000), Some(7));
    }

    #[test]
    #[should_panic(expected = "need 0 < num/den <= 1")]
    fn exact_percentile_rejects_improper_fraction() {
        exact_percentile(&[1], 3, 2);
    }

    #[test]
    fn timing_accessors() {
        let t = QueryTiming {
            arrival: SimTime::from_us(5),
            admitted: Some(SimTime::from_us(9)),
            finished: Some(SimTime::from_us(25)),
        };
        assert_eq!(t.response(), Some(SimTime::from_us(20)));
        assert_eq!(t.admission_wait(), Some(SimTime::from_us(4)));
        let unfinished = QueryTiming {
            arrival: SimTime::ZERO,
            admitted: None,
            finished: None,
        };
        assert_eq!(unfinished.response(), None);
    }
}
