//! Deterministic open-loop arrival process.
//!
//! Serving experiments sweep an offered load, so arrivals must be an
//! *open-loop* Poisson-like process (queries keep arriving regardless of
//! how far behind the machine is) and must be byte-reproducible across
//! runs, platforms and `--release`/debug builds. We therefore avoid any
//! RNG dependency and derive inter-arrival gaps from a splitmix64 stream,
//! seeded with the same FNV-1a-fold-the-name idiom the repo's property
//! tests use (`case_rng`): the experiment name hashes to a base seed, and
//! each swept rate point perturbs it with the Weyl constant.
//!
//! The exponential inverse-CDF uses `f64::ln`, which is an IEEE-exact
//! libm call on every platform we target; the result is rounded up to an
//! integer microsecond gap (min 1 µs) so all downstream arithmetic stays
//! in integer virtual time.

use gamma_des::SimTime;

/// FNV-1a fold of an experiment name — same idiom as the test suite's
/// `case_rng`, so arrival streams are stable under refactoring but
/// distinct per experiment.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64: the standard 64-bit mixer; tiny, seedable, and plenty for
/// generating inter-arrival gaps.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform in (0, 1]: 53 mantissa bits, offset so ln() never sees zero.
fn unit_open(state: &mut u64) -> f64 {
    ((splitmix64(state) >> 11) as f64 + 0.5) / (1u64 << 53) as f64
}

/// Deterministic exponential inter-arrival generator.
#[derive(Debug, Clone)]
pub struct Arrivals {
    state: u64,
    mean: SimTime,
}

impl Arrivals {
    /// Stream for `name` at rate point `case` with the given mean
    /// inter-arrival time. `case` perturbs the seed exactly like the
    /// property-test `case_rng` (Weyl-constant multiply), so each swept
    /// rate gets an independent but reproducible stream.
    pub fn new(name: &str, case: u64, mean: SimTime) -> Self {
        assert!(mean > SimTime::ZERO, "mean inter-arrival must be positive");
        Arrivals {
            state: seed_from_name(name) ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            mean,
        }
    }

    /// Next inter-arrival gap: Exp(mean) rounded up to ≥ 1 µs.
    pub fn next_gap(&mut self) -> SimTime {
        let u = unit_open(&mut self.state);
        let gap = -(self.mean.as_us() as f64) * u.ln();
        SimTime::from_us((gap.ceil() as u64).max(1))
    }

    /// Absolute arrival times for `n` queries, starting from time zero
    /// plus the first gap.
    pub fn take_times(&mut self, n: u32) -> Vec<SimTime> {
        let mut t = SimTime::ZERO;
        (0..n)
            .map(|_| {
                t += self.next_gap();
                t
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let a = Arrivals::new("serve", 3, SimTime::from_ms(10)).take_times(64);
        let b = Arrivals::new("serve", 3, SimTime::from_ms(10)).take_times(64);
        assert_eq!(a, b);
    }

    #[test]
    fn cases_differ() {
        let a = Arrivals::new("serve", 1, SimTime::from_ms(10)).take_times(16);
        let b = Arrivals::new("serve", 2, SimTime::from_ms(10)).take_times(16);
        assert_ne!(a, b);
    }

    #[test]
    fn gaps_are_positive_and_roughly_exponential() {
        let mut arr = Arrivals::new("serve", 0, SimTime::from_ms(10));
        let n = 4096u64;
        let total: u64 = (0..n).map(|_| arr.next_gap().as_us()).sum();
        let mean = total as f64 / n as f64;
        // Mean of Exp(10ms) over 4096 samples lands within 10%.
        assert!(
            (9_000.0..11_000.0).contains(&mean),
            "sample mean {mean} µs too far from 10_000 µs"
        );
    }

    #[test]
    fn arrival_times_strictly_increase() {
        let times = Arrivals::new("serve", 7, SimTime::from_us(2)).take_times(256);
        for w in times.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
