//! # gamma-sched — concurrent query serving over one Gamma machine
//!
//! Schneider & DeWitt measured their four join algorithms one query at a
//! time; their §2.4 scheduler, however, existed precisely to run *many*
//! queries against one machine. This crate closes that gap: it admits,
//! interleaves and completes many [`run_join`]-shaped queries over one
//! simulated machine, deterministically, and measures what the
//! single-query `throughput` bounds only predict — the saturation knee.
//!
//! The design keeps the repo's *work first, time later* split intact:
//!
//! 1. **Work.** Every query instance is *physically executed* on the real
//!    machine with [`gamma_core::run_join_with_phases`], bracketed by
//!    `Exchange::set_query` (and `gamma_trace::set_query` under the
//!    `trace` feature) so packets, trace spans and metrics carry the
//!    query id. Ledgers therefore reconcile exactly: the serve run's
//!    resource totals are integer sums of per-query totals.
//! 2. **Time.** The first instance's phase ledgers become a
//!    [`plan::QueryPlan`]; the [`engine`] interleaves one plan per query
//!    over shared cross-phase FIFO device queues
//!    ([`gamma_des::SharedServer`]), a serialized dispatch server, a
//!    shared ring reservation and per-node CPU convoys, under FIFO
//!    admission control budgeted on buffer-pool page peaks.
//!
//! With one query in flight the engine's timeline collapses to the solo
//! replay — `serve` of N=1 reproduces `run_join`'s response exactly,
//! which the tests pin down.

pub mod arrivals;
pub mod engine;
pub mod explain;
pub mod plan;
pub mod report;

pub use arrivals::Arrivals;
pub use engine::EngineConfig;
pub use explain::{PhaseBreakdown, QueryExplain};
pub use plan::{extract, NodePlan, PhasePlan, QueryPlan};
pub use report::{exact_percentile, QueryTiming, ServeOutcome};

use gamma_core::machine::Machine;
use gamma_core::{run_join_with_phases, JoinReport, JoinSpec};
use gamma_des::SimTime;

/// One serve experiment: a homogeneous open-loop stream of `queries`
/// instances of one join spec.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Experiment name; seeds the arrival stream (FNV-1a fold).
    pub name: String,
    /// Rate-point index within a sweep; perturbs the arrival seed.
    pub case: u64,
    /// Mean inter-arrival time of the open-loop Poisson process.
    pub mean_interarrival: SimTime,
    /// Number of query instances to serve.
    pub queries: u32,
    /// Per-node buffer-pool page budget for admission control.
    pub pool_budget_pages: usize,
    /// Mid-phase CPU back-pressure window (`None` = asynchronous devices).
    pub backlog_window: Option<SimTime>,
}

/// Everything one serve run produced.
#[derive(Debug, Clone)]
pub struct ServeResult {
    /// The solo report of the first (template) instance.
    pub solo: JoinReport,
    /// The timing skeleton all instances share.
    pub plan: QueryPlan,
    /// Per-instance physical-execution reports, in admission order.
    pub reports: Vec<JoinReport>,
    /// The engine's interleaved timing outcome.
    pub outcome: ServeOutcome,
}

impl ServeResult {
    /// Integer sum of all instances' resource totals — the left-hand side
    /// of the serve-level ledger reconciliation.
    pub fn total_usage(&self) -> gamma_des::Usage {
        self.reports
            .iter()
            .fold(gamma_des::Usage::default(), |acc, r| acc + r.total.clone())
    }
}

/// Serve `cfg.queries` instances of `spec` over `machine`.
///
/// Instances are physically executed up front in admission order (FIFO
/// admission of a homogeneous stream preserves arrival order), each
/// tagged with its query id `1..=N` on the exchange (and the trace sink
/// when the `trace` feature is on); the id is reset to 0 afterwards.
/// Execution is deterministic, so every instance must reproduce the
/// template's result checksum and solo response — asserted here.
pub fn serve(machine: &mut Machine, spec: &JoinSpec, cfg: &ServeConfig) -> ServeResult {
    serve_inner(machine, spec, cfg, None).0
}

/// [`serve`], plus a flight-recorder profile of the interleaved timeline
/// sampled every `tick_us` of virtual time (see `gamma-prof`). The
/// recorder is a pure observer: the returned `ServeResult` is identical
/// to [`serve`]'s.
pub fn serve_recorded(
    machine: &mut Machine,
    spec: &JoinSpec,
    cfg: &ServeConfig,
    tick_us: u64,
) -> (ServeResult, gamma_prof::FlightProfile) {
    let (result, profile) = serve_inner(machine, spec, cfg, Some(tick_us));
    (result, profile.expect("recorder was attached"))
}

fn serve_inner(
    machine: &mut Machine,
    spec: &JoinSpec,
    cfg: &ServeConfig,
    tick_us: Option<u64>,
) -> (ServeResult, Option<gamma_prof::FlightProfile>) {
    assert!(cfg.queries > 0, "serving zero queries is vacuous");

    let mut reports: Vec<JoinReport> = Vec::with_capacity(cfg.queries as usize);
    let mut plan: Option<QueryPlan> = None;
    for qid in 1..=cfg.queries {
        machine.exchange.set_query(qid);
        #[cfg(feature = "trace")]
        gamma_trace::set_query(qid);
        let (report, phases) = run_join_with_phases(machine, spec);
        if plan.is_none() {
            let peaks = machine.pool_peaks();
            let bw = machine.cfg.cost.ring.bandwidth_bytes_per_sec;
            plan = Some(QueryPlan::from_phases(&phases, peaks, report.response, bw));
        }
        reports.push(report);
    }
    machine.exchange.set_query(0);
    #[cfg(feature = "trace")]
    gamma_trace::set_query(0);

    let plan = plan.expect("at least one instance ran");
    let solo = reports[0].clone();
    for (i, r) in reports.iter().enumerate().skip(1) {
        assert_eq!(
            r.result_checksum, solo.result_checksum,
            "instance {i} diverged from the template checksum"
        );
        assert_eq!(
            r.response, solo.response,
            "instance {i} diverged from the template response"
        );
    }

    let arrival_times =
        Arrivals::new(&cfg.name, cfg.case, cfg.mean_interarrival).take_times(cfg.queries);
    let engine_cfg = EngineConfig {
        nodes: machine.nodes(),
        pool_budget_pages: cfg.pool_budget_pages,
        backlog_window: cfg.backlog_window,
    };
    let plans = vec![plan.clone(); cfg.queries as usize];
    let (outcome, profile) = engine::run_recorded(plans, &arrival_times, &engine_cfg, tick_us);

    (
        ServeResult {
            solo,
            plan,
            reports,
            outcome,
        },
        profile,
    )
}
