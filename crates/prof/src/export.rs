//! Deterministic JSON / CSV renderers for [`FlightProfile`].
//!
//! Both formats are hand-rolled with integer formatting only, the same
//! discipline as the trace/metrics exporters: identical runs must produce
//! byte-identical artifacts, so no floats and no map iteration orders are
//! involved.
//!
//! The JSON layout is line-oriented — one envelope field per line and one
//! series object per line — so `gamma-bench regress` can diff committed
//! profiles textually, and its same-line field extractors can never
//! confuse a profile document with a bench-point document.

use crate::FlightProfile;

/// JSON-escape a string value (quotes, backslashes, control chars).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a profile as a line-oriented JSON document.
///
/// `envelope` entries are emitted before the grid metadata, one per line;
/// values must already be valid JSON (use [`json_str`] for strings).
pub fn render_json(profile: &FlightProfile, envelope: &[(&str, String)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"prof\",\n");
    for (key, value) in envelope {
        out.push_str(&format!("  {}: {},\n", json_str(key), value));
    }
    out.push_str(&format!("  \"tick_us\": {},\n", profile.tick_us));
    out.push_str(&format!("  \"ticks\": {},\n", profile.ticks()));
    out.push_str(&format!("  \"nodes\": {},\n", profile.nodes));
    out.push_str(&format!("  \"makespan_us\": {},\n", profile.makespan_us));
    out.push_str("  \"series\": [\n");
    for (i, s) in profile.series.iter().enumerate() {
        let comma = if i + 1 == profile.series.len() {
            ""
        } else {
            ","
        };
        let values: Vec<String> = s.values.iter().map(|v| v.to_string()).collect();
        out.push_str(&format!(
            "    {{\"series\": {}, \"values\": [{}]}}{}\n",
            json_str(&s.name),
            values.join(","),
            comma
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Render a profile as CSV: one row per tick, one column per series.
pub fn render_csv(profile: &FlightProfile) -> String {
    let mut out = String::from("tick,start_us");
    for s in &profile.series {
        out.push(',');
        out.push_str(&s.name);
    }
    out.push('\n');
    for tick in 0..profile.ticks() {
        out.push_str(&format!("{},{}", tick, tick as u64 * profile.tick_us));
        for s in &profile.series {
            out.push_str(&format!(",{}", s.values[tick]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Series;

    fn tiny() -> FlightProfile {
        FlightProfile {
            tick_us: 10,
            makespan_us: 15,
            nodes: 1,
            series: vec![
                Series {
                    name: "node0.cpu_busy_us".into(),
                    values: vec![3, 5],
                },
                Series {
                    name: "inflight_queries".into(),
                    values: vec![1, 0],
                },
            ],
        }
    }

    #[test]
    fn json_is_line_oriented_and_deterministic() {
        let p = tiny();
        let doc = render_json(&p, &[("algorithm", json_str("hybrid"))]);
        assert_eq!(doc, render_json(&p, &[("algorithm", json_str("hybrid"))]));
        assert!(doc.contains("\"benchmark\": \"prof\""));
        assert!(doc.contains("  \"algorithm\": \"hybrid\",\n"));
        assert!(doc.contains("{\"series\": \"node0.cpu_busy_us\", \"values\": [3,5]}"));
        // One series object per line, last without trailing comma.
        assert!(doc.contains("\"values\": [1,0]}\n"));
        // A profile line must never look like a joinabprime bench point.
        assert!(!doc.contains("response_virtual_us"));
    }

    #[test]
    fn csv_shape() {
        let doc = render_csv(&tiny());
        let mut lines = doc.lines();
        assert_eq!(
            lines.next(),
            Some("tick,start_us,node0.cpu_busy_us,inflight_queries")
        );
        assert_eq!(lines.next(), Some("0,0,3,1"));
        assert_eq!(lines.next(), Some("1,10,5,0"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn json_str_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
