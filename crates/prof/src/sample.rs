//! Allocation-free sampling loops for the flight recorder.
//!
//! These two functions are the per-tick hot path: they fill caller-owned
//! grids from already-recorded intervals/deltas using only integer index
//! arithmetic.  Nothing in this file may allocate —
//! `scripts/check-alloc-discipline.sh` greps it for allocating calls, the
//! same way it guards the executor scan/hash hot paths.

/// Add each span's exact overlap with every tick window to `out`.
///
/// `out[i]` covers the half-open window `[i*tick_us, (i+1)*tick_us)`;
/// spans are half-open `(start_us, end_us)` with `end > start`.  Spans
/// ending past the grid are clipped to it.
pub fn fill_busy(spans: &[(u64, u64)], tick_us: u64, out: &mut [i64]) {
    debug_assert!(tick_us > 0);
    if out.is_empty() {
        return;
    }
    let last_bucket = out.len() - 1;
    for &(start, end) in spans {
        if end <= start {
            continue;
        }
        let first = ((start / tick_us) as usize).min(last_bucket);
        let last = (((end - 1) / tick_us) as usize).min(last_bucket);
        for (offset, slot) in out[first..=last].iter_mut().enumerate() {
            let bucket = (first + offset) as u64;
            let lo = start.max(bucket * tick_us);
            let hi = end.min((bucket + 1) * tick_us);
            if hi > lo {
                *slot += (hi - lo) as i64;
            }
        }
    }
}

/// Sample a delta stream as a running sum at each tick boundary.
///
/// `deltas` must be sorted by timestamp; `out[i]` becomes the sum of all
/// deltas with timestamp `<= i*tick_us`.  Deltas past the last boundary
/// are ignored (they would only be visible beyond the grid).
pub fn fill_gauge(deltas: &[(u64, i64)], tick_us: u64, out: &mut [i64]) {
    debug_assert!(tick_us > 0);
    debug_assert!(deltas.windows(2).all(|w| w[0].0 <= w[1].0));
    let mut acc = 0i64;
    let mut next = 0usize;
    for (i, slot) in out.iter_mut().enumerate() {
        let boundary = i as u64 * tick_us;
        while next < deltas.len() && deltas[next].0 <= boundary {
            acc += deltas[next].1;
            next += 1;
        }
        *slot = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_clips_to_grid() {
        let mut out = [0i64; 2];
        fill_busy(&[(5, 100)], 10, &mut out);
        assert_eq!(out, [5, 10]);
    }

    #[test]
    fn busy_span_inside_one_window() {
        let mut out = [0i64; 3];
        fill_busy(&[(12, 17), (12, 17)], 10, &mut out);
        assert_eq!(out, [0, 10, 0]);
    }

    #[test]
    fn gauge_boundary_is_inclusive() {
        let mut out = [0i64; 3];
        fill_gauge(&[(0, 2), (10, -1), (21, 5)], 10, &mut out);
        assert_eq!(out, [2, 1, 1]);
    }

    #[test]
    fn gauge_empty_deltas() {
        let mut out = [7i64; 2];
        fill_gauge(&[], 10, &mut out);
        assert_eq!(out, [0, 0]);
    }
}
