//! gamma-prof — deterministic virtual-time flight recorder.
//!
//! The simulator's trace and metrics layers reconcile end-of-run totals
//! exactly, but totals cannot answer "what did device utilisation, queue
//! depth, and pool-page occupancy look like *over* virtual time?".  This
//! crate records the raw material for those questions while the scheduler
//! engine replays ledgers — busy intervals on every shared server and
//! signed occupancy deltas on every queue/pool — and then samples them on
//! a fixed virtual-time grid.
//!
//! Everything is integer microseconds derived from `SharedServer`
//! completions and ledger-charged service times; no wall clock is ever
//! consulted, so a profile is byte-reproducible across runs, executors
//! and pool sizes.
//!
//! Two series kinds come out of [`FlightRecorder::profile`]:
//!
//! * **busy series** (`*_busy_us`): microseconds of service performed
//!   inside each tick window `[i·tick, (i+1)·tick)`, computed by exact
//!   interval overlap.  Dividing by `tick_us` gives utilisation.
//! * **gauge series** (queue depths, pool pages, in-flight queries,
//!   admission backlog): the instantaneous value *at* the tick boundary
//!   `t = i·tick`, i.e. the running sum of all recorded deltas with
//!   timestamp `<= t`.
//!
//! Recording may allocate (interval pushes); the per-tick sampling loops
//! live in [`sample`] and are allocation-free — `scripts/`
//! `check-alloc-discipline.sh` greps that file to keep them that way.

use gamma_des::SimTime;

pub mod export;
pub mod sample;

/// Default sampling grid: one sample every 100 virtual milliseconds.
pub const DEFAULT_TICK_US: u64 = 100_000;

/// Which shared device server a request span belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Device {
    Disk,
    Net,
}

/// One named sampled series.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Series {
    pub name: String,
    pub values: Vec<i64>,
}

impl Series {
    /// Node index parsed from a `node{N}.` name prefix, if any.
    pub fn node(&self) -> Option<usize> {
        let rest = self.name.strip_prefix("node")?;
        let dot = rest.find('.')?;
        rest[..dot].parse().ok()
    }

    /// Series name with any `node{N}.` prefix stripped.
    pub fn short_name(&self) -> &str {
        match self.name.find('.') {
            Some(dot) if self.name.starts_with("node") => &self.name[dot + 1..],
            _ => &self.name,
        }
    }
}

/// A fully sampled flight-recorder profile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightProfile {
    pub tick_us: u64,
    pub makespan_us: u64,
    pub nodes: usize,
    pub series: Vec<Series>,
}

impl FlightProfile {
    /// Number of sample points per series.
    pub fn ticks(&self) -> usize {
        self.series.first().map_or(0, |s| s.values.len())
    }
}

/// Records busy intervals and occupancy deltas during an engine run.
///
/// All hooks take event times already computed by the engine from
/// `SharedServer` submissions; the recorder never advances time itself.
/// Hook calls need not be globally time-ordered (the engine's phase
/// walk emits future completions interleaved across queries); deltas are
/// sorted once at `profile()` time, and sums at equal timestamps are
/// order-independent.
#[derive(Debug)]
pub struct FlightRecorder {
    nodes: usize,
    tick_us: u64,
    /// Busy spans `(start_us, end_us)` per busy track.
    busy: Vec<Vec<(u64, u64)>>,
    /// Signed occupancy deltas `(t_us, delta)` per gauge track.
    deltas: Vec<Vec<(u64, i64)>>,
}

// Busy-track layout: cpu per node, disk per node, net per node, then the
// global dispatch and ring servers.
const BUSY_GLOBAL: usize = 2;
// Gauge-track layout: disk queue per node, net queue per node, pool pages
// per node, then dispatch queue, ring queue, in-flight queries, backlog.
const GAUGE_GLOBAL: usize = 4;

impl FlightRecorder {
    pub fn new(nodes: usize, tick_us: u64) -> Self {
        assert!(tick_us > 0, "flight-recorder tick must be positive");
        FlightRecorder {
            nodes,
            tick_us,
            busy: vec![Vec::new(); 3 * nodes + BUSY_GLOBAL],
            deltas: vec![Vec::new(); 3 * nodes + GAUGE_GLOBAL],
        }
    }

    pub fn nodes(&self) -> usize {
        self.nodes
    }

    pub fn tick_us(&self) -> u64 {
        self.tick_us
    }

    fn busy_span(&mut self, track: usize, start: SimTime, end: SimTime) {
        let (s, e) = (start.as_us(), end.as_us());
        if e > s {
            self.busy[track].push((s, e));
        }
    }

    fn delta(&mut self, track: usize, t: SimTime, d: i64) {
        self.deltas[track].push((t.as_us(), d));
    }

    /// A node CPU executed phase work over `[start, end)`.
    pub fn cpu_busy(&mut self, node: usize, start: SimTime, end: SimTime) {
        self.busy_span(node, start, end);
    }

    /// A request occupied a per-node device server: queued at `arrival`,
    /// served over `[start, done)`.
    pub fn device(
        &mut self,
        node: usize,
        dev: Device,
        arrival: SimTime,
        start: SimTime,
        done: SimTime,
    ) {
        let slot = match dev {
            Device::Disk => 0,
            Device::Net => 1,
        };
        self.busy_span(self.nodes * (1 + slot) + node, start, done);
        let q = self.nodes * slot + node;
        self.delta(q, arrival, 1);
        self.delta(q, start, -1);
    }

    /// The scheduler dispatch server handled a phase launch.
    pub fn dispatch(&mut self, arrival: SimTime, start: SimTime, done: SimTime) {
        self.busy_span(3 * self.nodes, start, done);
        let q = 3 * self.nodes;
        self.delta(q, arrival, 1);
        self.delta(q, start, -1);
    }

    /// The shared ring served a phase's reserved slot.
    pub fn ring(&mut self, arrival: SimTime, start: SimTime, done: SimTime) {
        self.busy_span(3 * self.nodes + 1, start, done);
        let q = 3 * self.nodes + 1;
        self.delta(q, arrival, 1);
        self.delta(q, start, -1);
    }

    /// A query's buffer-pool reservation on `node` changed by `pages`.
    pub fn pool_pages(&mut self, node: usize, t: SimTime, pages: i64) {
        self.delta(2 * self.nodes + node, t, pages);
    }

    /// A query arrived (joins the admission backlog).
    pub fn query_arrival(&mut self, t: SimTime) {
        self.delta(3 * self.nodes + 3, t, 1);
    }

    /// A query was admitted (leaves the backlog, becomes in-flight).
    pub fn query_admitted(&mut self, t: SimTime) {
        self.delta(3 * self.nodes + 3, t, -1);
        self.delta(3 * self.nodes + 2, t, 1);
    }

    /// A query finished (leaves the in-flight set).
    pub fn query_finished(&mut self, t: SimTime) {
        self.delta(3 * self.nodes + 2, t, -1);
    }

    /// Sample every track on the tick grid covering `[0, makespan]`: the
    /// last boundary is rounded *up* to a whole tick so the end-of-run
    /// state (drained queues, zero in-flight) is always visible.
    pub fn profile(mut self, makespan: SimTime) -> FlightProfile {
        let makespan_us = makespan.as_us();
        let ticks = makespan_us.div_ceil(self.tick_us) as usize + 1;
        for d in &mut self.deltas {
            d.sort_unstable_by_key(|&(t, _)| t);
        }
        let mut series = Vec::with_capacity(self.busy.len() + self.deltas.len());
        let busy_name = |track: usize| -> String {
            match track {
                t if t < self.nodes => format!("node{t}.cpu_busy_us"),
                t if t < 2 * self.nodes => format!("node{}.disk_busy_us", t - self.nodes),
                t if t < 3 * self.nodes => format!("node{}.net_busy_us", t - 2 * self.nodes),
                t if t == 3 * self.nodes => "dispatch_busy_us".to_string(),
                _ => "ring_busy_us".to_string(),
            }
        };
        let gauge_name = |track: usize| -> String {
            match track {
                t if t < self.nodes => format!("node{t}.disk_queue"),
                t if t < 2 * self.nodes => format!("node{}.net_queue", t - self.nodes),
                t if t < 3 * self.nodes => format!("node{}.pool_pages", t - 2 * self.nodes),
                t if t == 3 * self.nodes => "dispatch_queue".to_string(),
                t if t == 3 * self.nodes + 1 => "ring_queue".to_string(),
                t if t == 3 * self.nodes + 2 => "inflight_queries".to_string(),
                _ => "admission_backlog".to_string(),
            }
        };
        for (track, spans) in self.busy.iter().enumerate() {
            let mut values = vec![0i64; ticks];
            sample::fill_busy(spans, self.tick_us, &mut values);
            series.push(Series {
                name: busy_name(track),
                values,
            });
        }
        for (track, deltas) in self.deltas.iter().enumerate() {
            let mut values = vec![0i64; ticks];
            sample::fill_gauge(deltas, self.tick_us, &mut values);
            series.push(Series {
                name: gauge_name(track),
                values,
            });
        }
        FlightProfile {
            tick_us: self.tick_us,
            makespan_us,
            nodes: self.nodes,
            series,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimTime {
        SimTime::from_us(v)
    }

    #[test]
    fn busy_overlap_is_exact_across_tick_boundaries() {
        let mut rec = FlightRecorder::new(1, 10);
        // [5, 27) crosses three windows: 5µs in [0,10), 10µs in [10,20), 7µs in [20,30).
        rec.cpu_busy(0, us(5), us(27));
        let prof = rec.profile(us(30));
        let cpu = prof
            .series
            .iter()
            .find(|s| s.name == "node0.cpu_busy_us")
            .unwrap();
        assert_eq!(cpu.values, vec![5, 10, 7, 0]);
        assert_eq!(cpu.values.iter().sum::<i64>(), 22);
    }

    #[test]
    fn gauges_sample_running_sum_at_tick_boundaries() {
        let mut rec = FlightRecorder::new(1, 10);
        // Two requests queue at t=3 and t=12; service starts at t=15 and t=25.
        rec.device(0, Device::Disk, us(3), us(15), us(20));
        rec.device(0, Device::Disk, us(12), us(25), us(31));
        let prof = rec.profile(us(40));
        let q = prof
            .series
            .iter()
            .find(|s| s.name == "node0.disk_queue")
            .unwrap();
        // t=0: nothing. t=10: one queued. t=20: one started (t=15), one queued.
        // t=30: both started. t=40: drained.
        assert_eq!(q.values, vec![0, 1, 1, 0, 0]);
        let busy = prof
            .series
            .iter()
            .find(|s| s.name == "node0.disk_busy_us")
            .unwrap();
        assert_eq!(busy.values.iter().sum::<i64>(), 5 + 6);
    }

    #[test]
    fn unsorted_hook_order_is_normalised() {
        let mut a = FlightRecorder::new(1, 10);
        a.query_arrival(us(20));
        a.query_arrival(us(5));
        a.query_admitted(us(25));
        let mut b = FlightRecorder::new(1, 10);
        b.query_arrival(us(5));
        b.query_arrival(us(20));
        b.query_admitted(us(25));
        assert_eq!(a.profile(us(30)), b.profile(us(30)));
    }

    #[test]
    fn query_lifecycle_tracks() {
        let mut rec = FlightRecorder::new(2, 100);
        rec.query_arrival(us(0));
        rec.query_arrival(us(50));
        rec.query_admitted(us(0));
        rec.pool_pages(0, us(0), 4);
        rec.pool_pages(1, us(0), 3);
        rec.query_admitted(us(150));
        rec.query_finished(us(150));
        rec.pool_pages(0, us(150), -4);
        rec.pool_pages(1, us(150), -3);
        let prof = rec.profile(us(200));
        let get = |name: &str| {
            prof.series
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing series {name}"))
                .values
                .clone()
        };
        assert_eq!(get("admission_backlog"), vec![0, 1, 0]);
        assert_eq!(get("inflight_queries"), vec![1, 1, 1]);
        assert_eq!(get("node0.pool_pages"), vec![4, 4, 0]);
        assert_eq!(get("node1.pool_pages"), vec![3, 3, 0]);
    }

    #[test]
    fn series_name_helpers() {
        let s = Series {
            name: "node12.disk_queue".into(),
            values: vec![],
        };
        assert_eq!(s.node(), Some(12));
        assert_eq!(s.short_name(), "disk_queue");
        let g = Series {
            name: "inflight_queries".into(),
            values: vec![],
        };
        assert_eq!(g.node(), None);
        assert_eq!(g.short_name(), "inflight_queries");
    }

    #[test]
    fn zero_length_spans_are_dropped() {
        let mut rec = FlightRecorder::new(1, 10);
        rec.cpu_busy(0, us(5), us(5));
        rec.ring(us(0), us(4), us(4));
        let prof = rec.profile(us(10));
        for s in &prof.series {
            if s.name.ends_with("_busy_us") {
                assert!(s.values.iter().all(|&v| v == 0), "{}", s.name);
            }
        }
    }
}
