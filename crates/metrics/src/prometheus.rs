//! Prometheus text-exposition writer.
//!
//! Renders a [`Registry`] snapshot in the Prometheus text format
//! (version 0.0.4): one `# TYPE` header per metric, one sample line per
//! series, counters suffixed `_total`, histograms expanded into
//! cumulative `_bucket{le=...}` lines plus `_sum`/`_count`. All metric
//! names carry the `gamma_` prefix. Because the registry's key order is
//! canonical, the output is byte-identical for identical registries.

use crate::{Key, Registry, Value, BUCKET_BOUNDS, GLOBAL_PHASE};

/// Render the full registry in Prometheus text-exposition format.
pub fn render(registry: &Registry) -> String {
    let mut out = String::new();
    let mut last_name = "";
    for (key, value) in registry.iter() {
        if key.name != last_name {
            out.push_str(&format!("# TYPE gamma_{} {}\n", key.name, value.kind()));
            last_name = key.name;
        }
        let labels = labels(registry, key);
        match value {
            Value::Counter(v) => {
                out.push_str(&format!("gamma_{}_total{{{labels}}} {v}\n", key.name));
            }
            Value::Gauge(v) => {
                out.push_str(&format!("gamma_{}{{{labels}}} {v}\n", key.name));
            }
            Value::Histogram(h) => {
                let mut cum = 0u64;
                for (bound, count) in BUCKET_BOUNDS.iter().zip(h.buckets().iter()) {
                    cum += count;
                    out.push_str(&format!(
                        "gamma_{}_bucket{{{labels},le=\"{bound}\"}} {cum}\n",
                        key.name
                    ));
                }
                out.push_str(&format!(
                    "gamma_{}_bucket{{{labels},le=\"+Inf\"}} {}\n",
                    key.name, h.count
                ));
                out.push_str(&format!("gamma_{}_sum{{{labels}}} {}\n", key.name, h.sum));
                out.push_str(&format!(
                    "gamma_{}_count{{{labels}}} {}\n",
                    key.name, h.count
                ));
            }
        }
    }
    out
}

fn labels(registry: &Registry, key: &Key) -> String {
    let mut l = format!("node=\"{}\"", key.node);
    if key.phase != GLOBAL_PHASE {
        l.push_str(&format!(",phase=\"{}\"", key.phase));
        if let Some(name) = registry.phase_name(key.phase) {
            l.push_str(&format!(",phase_name=\"{}\"", escape(name)));
        }
    }
    if !key.op.is_empty() {
        l.push_str(&format!(",op=\"{}\"", escape(key.op)));
    }
    l
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_three_kinds() {
        let mut r = Registry::new();
        r.counter_add("pages_read", 0, "pool", 5);
        r.seal_phase("build");
        r.gauge_max_at("pool_peak_pages", GLOBAL_PHASE, 1, "", 40);
        r.observe("disk_request_wait_us", 0, "", 3);
        r.seal_phase("probe");
        let text = render(&r);
        assert!(text.contains("# TYPE gamma_pages_read counter\n"));
        assert!(text.contains(
            "gamma_pages_read_total{node=\"0\",phase=\"0\",phase_name=\"build\",op=\"pool\"} 5\n"
        ));
        assert!(text.contains("# TYPE gamma_pool_peak_pages gauge\n"));
        assert!(
            text.contains("gamma_pool_peak_pages{node=\"1\"} 40\n"),
            "{text}"
        );
        assert!(text.contains("# TYPE gamma_disk_request_wait_us histogram\n"));
        assert!(text.contains(
            "gamma_disk_request_wait_us_bucket{node=\"0\",phase=\"1\",phase_name=\"probe\",le=\"4\"} 1\n"
        ));
        assert!(text.contains(
            "gamma_disk_request_wait_us_bucket{node=\"0\",phase=\"1\",phase_name=\"probe\",le=\"+Inf\"} 1\n"
        ));
        assert!(text.contains(
            "gamma_disk_request_wait_us_sum{node=\"0\",phase=\"1\",phase_name=\"probe\"} 3\n"
        ));
    }

    #[test]
    fn buckets_are_cumulative() {
        let mut r = Registry::new();
        r.observe("h", 0, "", 1);
        r.observe("h", 0, "", 2);
        r.observe("h", 0, "", 2);
        let text = render(&r);
        assert!(text.contains("le=\"1\"} 1\n"));
        assert!(text.contains("le=\"2\"} 3\n"));
        assert!(text.contains("le=\"4\"} 3\n"));
    }

    #[test]
    fn type_header_emitted_once_per_metric() {
        let mut r = Registry::new();
        r.counter_add("c", 0, "", 1);
        r.counter_add("c", 1, "", 1);
        let text = render(&r);
        assert_eq!(text.matches("# TYPE gamma_c counter").count(), 1);
    }
}
