//! Prometheus text-exposition writer.
//!
//! Renders a [`Registry`] snapshot in the Prometheus text format
//! (version 0.0.4): one `# HELP` + `# TYPE` header pair per metric (HELP
//! first, as the format requires), one sample line per series, counters
//! suffixed `_total`, histograms expanded into cumulative
//! `_bucket{le=...}` lines plus `_sum`/`_count`. All metric names carry
//! the `gamma_` prefix. Because the registry's key order is canonical,
//! the output is byte-identical for identical registries.

use crate::{Key, Registry, Value, BUCKET_BOUNDS, GLOBAL_PHASE};

/// Help text for the well-known registry metrics; generic for the rest.
/// Static strings only — no format specials to escape.
fn metric_help(name: &str) -> &'static str {
    match name {
        "cpu_us" => "simulated CPU service time charged to the ledger",
        "disk_us" => "simulated disk service time charged to the ledger",
        "net_us" => "simulated network-interface service time charged to the ledger",
        "pages_read" => "buffer-pool pages read",
        "pages_written" => "buffer-pool pages written",
        "pool_peak_pages" => "peak buffer-pool residency in pages",
        "packets" => "packets placed on the shared ring",
        "short_circuits" => "messages short-circuited past the ring",
        "disk_request_wait_us" => "simulated time disk requests spent queued before service",
        "net_request_wait_us" => "simulated time network requests spent queued before service",
        _ => "deterministic simulated-run metric (see DESIGN.md)",
    }
}

/// Render the full registry in Prometheus text-exposition format.
pub fn render(registry: &Registry) -> String {
    let mut out = String::new();
    let mut last_name = "";
    for (key, value) in registry.iter() {
        if key.name != last_name {
            out.push_str(&format!(
                "# HELP gamma_{} {}\n",
                key.name,
                metric_help(key.name)
            ));
            out.push_str(&format!("# TYPE gamma_{} {}\n", key.name, value.kind()));
            last_name = key.name;
        }
        let labels = labels(registry, key);
        match value {
            Value::Counter(v) => {
                out.push_str(&format!("gamma_{}_total{{{labels}}} {v}\n", key.name));
            }
            Value::Gauge(v) => {
                out.push_str(&format!("gamma_{}{{{labels}}} {v}\n", key.name));
            }
            Value::Histogram(h) => {
                let mut cum = 0u64;
                for (bound, count) in BUCKET_BOUNDS.iter().zip(h.buckets().iter()) {
                    cum += count;
                    out.push_str(&format!(
                        "gamma_{}_bucket{{{labels},le=\"{bound}\"}} {cum}\n",
                        key.name
                    ));
                }
                out.push_str(&format!(
                    "gamma_{}_bucket{{{labels},le=\"+Inf\"}} {}\n",
                    key.name, h.count
                ));
                out.push_str(&format!("gamma_{}_sum{{{labels}}} {}\n", key.name, h.sum));
                out.push_str(&format!(
                    "gamma_{}_count{{{labels}}} {}\n",
                    key.name, h.count
                ));
            }
        }
    }
    out
}

fn labels(registry: &Registry, key: &Key) -> String {
    let mut l = format!("node=\"{}\"", key.node);
    if key.phase != GLOBAL_PHASE {
        l.push_str(&format!(",phase=\"{}\"", key.phase));
        if let Some(name) = registry.phase_name(key.phase) {
            l.push_str(&format!(",phase_name=\"{}\"", escape(name)));
        }
    }
    if !key.op.is_empty() {
        l.push_str(&format!(",op=\"{}\"", escape(key.op)));
    }
    l
}

/// Escape a label value per the text format: backslash first, then
/// quotes and newlines (a raw newline would split the sample line).
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_three_kinds() {
        let mut r = Registry::new();
        r.counter_add("pages_read", 0, "pool", 5);
        r.seal_phase("build");
        r.gauge_max_at("pool_peak_pages", GLOBAL_PHASE, 1, "", 40);
        r.observe("disk_request_wait_us", 0, "", 3);
        r.seal_phase("probe");
        let text = render(&r);
        assert!(text.contains("# TYPE gamma_pages_read counter\n"));
        assert!(text.contains(
            "gamma_pages_read_total{node=\"0\",phase=\"0\",phase_name=\"build\",op=\"pool\"} 5\n"
        ));
        assert!(text.contains("# TYPE gamma_pool_peak_pages gauge\n"));
        assert!(
            text.contains("gamma_pool_peak_pages{node=\"1\"} 40\n"),
            "{text}"
        );
        assert!(text.contains("# TYPE gamma_disk_request_wait_us histogram\n"));
        assert!(text.contains(
            "gamma_disk_request_wait_us_bucket{node=\"0\",phase=\"1\",phase_name=\"probe\",le=\"4\"} 1\n"
        ));
        assert!(text.contains(
            "gamma_disk_request_wait_us_bucket{node=\"0\",phase=\"1\",phase_name=\"probe\",le=\"+Inf\"} 1\n"
        ));
        assert!(text.contains(
            "gamma_disk_request_wait_us_sum{node=\"0\",phase=\"1\",phase_name=\"probe\"} 3\n"
        ));
    }

    #[test]
    fn buckets_are_cumulative() {
        let mut r = Registry::new();
        r.observe("h", 0, "", 1);
        r.observe("h", 0, "", 2);
        r.observe("h", 0, "", 2);
        let text = render(&r);
        assert!(text.contains("le=\"1\"} 1\n"));
        assert!(text.contains("le=\"2\"} 3\n"));
        assert!(text.contains("le=\"4\"} 3\n"));
    }

    #[test]
    fn type_header_emitted_once_per_metric() {
        let mut r = Registry::new();
        r.counter_add("c", 0, "", 1);
        r.counter_add("c", 1, "", 1);
        let text = render(&r);
        assert_eq!(text.matches("# TYPE gamma_c counter").count(), 1);
    }

    #[test]
    fn help_precedes_type_once_per_metric() {
        let mut r = Registry::new();
        r.counter_add("pages_read", 0, "pool", 5);
        r.counter_add("pages_read", 1, "pool", 5);
        r.gauge_max_at("pool_peak_pages", GLOBAL_PHASE, 0, "", 40);
        r.observe("disk_request_wait_us", 0, "", 3);
        let text = render(&r);
        for name in ["pages_read", "pool_peak_pages", "disk_request_wait_us"] {
            let help = format!("# HELP gamma_{name} ");
            let ty = format!("# TYPE gamma_{name} ");
            assert_eq!(text.matches(&help).count(), 1, "{name}: one HELP line");
            assert_eq!(text.matches(&ty).count(), 1, "{name}: one TYPE line");
            let h = text.find(&help).unwrap();
            let t = text.find(&ty).unwrap();
            assert!(h < t, "{name}: HELP must precede TYPE");
            // The header pair is adjacent: nothing between HELP and TYPE.
            let between = &text[h..t];
            assert_eq!(
                between.matches('\n').count(),
                1,
                "{name}: HELP and TYPE must be adjacent lines"
            );
        }
        // Comment lines never carry the sample suffixes.
        for line in text.lines().filter(|l| l.starts_with('#')) {
            assert!(
                line.starts_with("# HELP gamma_") || line.starts_with("# TYPE gamma_"),
                "unexpected comment shape: {line}"
            );
        }
    }

    #[test]
    fn label_values_escape_quote_backslash_and_newline() {
        let mut r = Registry::new();
        r.counter_add("c", 0, "q\"w\\e\nr", 1);
        let text = render(&r);
        assert!(
            text.contains("op=\"q\\\"w\\\\e\\nr\""),
            "specials must be escaped: {text}"
        );
        // No sample line may contain a raw newline mid-line: every line
        // with a value brace pair must parse as `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let close = line.rfind('}').expect("labels close");
            let value = line[close + 1..].trim();
            assert!(
                value.parse::<f64>().is_ok(),
                "sample line must end in a number: {line}"
            );
        }
    }

    #[test]
    fn histogram_inf_bucket_and_sum_count_are_consistent() {
        let mut r = Registry::new();
        for v in [1, 2, 2, 700] {
            r.observe("h", 0, "", v);
        }
        let text = render(&r);
        let grab = |needle: &str| -> Vec<u64> {
            text.lines()
                .filter(|l| l.starts_with(needle))
                .map(|l| l[l.rfind('}').unwrap() + 1..].trim().parse().unwrap())
                .collect()
        };
        // Cumulative buckets are non-decreasing and end at the +Inf count.
        let buckets = grab("gamma_h_bucket{");
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "{buckets:?}");
        let inf: u64 = text
            .lines()
            .find(|l| l.contains("le=\"+Inf\""))
            .map(|l| l[l.rfind('}').unwrap() + 1..].trim().parse().unwrap())
            .expect("+Inf bucket present");
        assert_eq!(inf, *buckets.last().unwrap());
        let count = grab("gamma_h_count{")[0];
        let sum = grab("gamma_h_sum{")[0];
        assert_eq!(inf, count, "+Inf bucket must equal _count");
        assert_eq!(count, 4);
        assert_eq!(sum, 705, "_sum must equal the sum of observations");
    }
}
