//! JSON snapshot exporter.
//!
//! Renders a [`Registry`] as a line-oriented JSON document: the sealed
//! phase names, then one metric object per line in the registry's
//! canonical key order. The one-object-per-line layout means a plain
//! line diff of two snapshots points at exactly the series that changed
//! — the perf-regression gate (`gamma-bench --bin regress`) leans on
//! this. Hand-rolled; the build is offline so there is no serde.

use crate::{Registry, Value, GLOBAL_PHASE};

/// Render the full registry as a deterministic JSON snapshot.
pub fn render(registry: &Registry) -> String {
    let mut out = String::from("{\n\"phases\": [");
    for (i, name) in registry.phases().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push('"');
        out.push_str(&escape(name));
        out.push('"');
    }
    out.push_str("],\n\"metrics\": [\n");
    let mut first = true;
    for (key, value) in registry.iter() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\": \"{}\", \"kind\": \"{}\", \"phase\": {}, \"node\": {}, \"op\": \"{}\"",
            escape(key.name),
            value.kind(),
            if key.phase == GLOBAL_PHASE {
                "null".to_string()
            } else {
                key.phase.to_string()
            },
            key.node,
            escape(key.op),
        ));
        match value {
            Value::Counter(v) | Value::Gauge(v) => out.push_str(&format!(", \"value\": {v}")),
            Value::Histogram(h) => {
                out.push_str(&format!(", \"count\": {}, \"sum\": {}", h.count, h.sum));
                out.push_str(", \"buckets\": [");
                for (i, b) in h.buckets().iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&b.to_string());
                }
                out.push(']');
            }
        }
        out.push('}');
    }
    out.push_str("\n]\n}\n");
    out
}

fn escape(s: &str) -> String {
    let mut e = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => e.push_str("\\\""),
            '\\' => e.push_str("\\\\"),
            '\n' => e.push_str("\\n"),
            '\t' => e.push_str("\\t"),
            '\r' => e.push_str("\\r"),
            c if (c as u32) < 0x20 => e.push_str(&format!("\\u{:04x}", c as u32)),
            c => e.push(c),
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_layout_is_line_oriented() {
        let mut r = Registry::new();
        r.counter_add("c", 0, "scan", 5);
        r.seal_phase("build");
        r.gauge_max_at("g", GLOBAL_PHASE, 1, "", 7);
        let text = render(&r);
        assert!(text.starts_with("{\n\"phases\": [\"build\"],\n\"metrics\": [\n"));
        assert!(text.contains(
            "{\"name\": \"c\", \"kind\": \"counter\", \"phase\": 0, \"node\": 0, \"op\": \"scan\", \"value\": 5}"
        ));
        assert!(text.contains(
            "{\"name\": \"g\", \"kind\": \"gauge\", \"phase\": null, \"node\": 1, \"op\": \"\", \"value\": 7}"
        ));
        assert!(text.ends_with("\n]\n}\n"));
    }

    #[test]
    fn histogram_carries_buckets_count_sum() {
        let mut r = Registry::new();
        r.observe("h", 0, "", 3);
        let text = render(&r);
        assert!(text.contains("\"count\": 1, \"sum\": 3, \"buckets\": [0,0,1,"));
    }

    #[test]
    fn identical_registries_render_identically() {
        let build = || {
            let mut r = Registry::new();
            r.counter_add("a", 0, "", 1);
            r.observe("b", 2, "x", 9);
            r.seal_phase("p");
            r
        };
        assert_eq!(render(&build()), render(&build()));
    }
}
