//! # gamma-metrics — deterministic metrics registry
//!
//! A zero-cost-when-disabled registry of counters, gauges and fixed-bucket
//! histograms for the Gamma simulator, keyed by `(metric, node, phase,
//! operator)` labels. Instrumentation hooks across `gamma-des`,
//! `gamma-wiss`, `gamma-net` and `gamma-core` record into a thread-local
//! [`Registry`] exactly like `gamma-trace` records events into its sink;
//! with no registry installed every hook is one thread-local load and a
//! branch.
//!
//! ## Determinism
//!
//! Snapshots are byte-identical across runs and across the serial and
//! thread-parallel executors:
//!
//! * keys live in a `BTreeMap`, so iteration (and therefore every export)
//!   is in a canonical order independent of emission order;
//! * every accumulation is commutative — counters add, gauges take the
//!   max, histograms add bucket-wise — so merging per-worker registries
//!   at a parallel step's join point yields the same state as serial
//!   emission, with no ordering tricks required;
//! * all values are integers (simulated µs, counts, bytes); no floats.
//!
//! ## Phase attribution
//!
//! The simulator executes work first and assigns time later. Emissions
//! during operator execution are attributed to the *current* phase index
//! (the number of phases sealed so far); when a driver seals a phase
//! (`PhaseRecord::new`) it calls [`seal_phase`], which names the index and
//! advances the counter. Replay-time emissions (per-device utilisation)
//! use the `*_at` variants with an explicit phase index.

use std::cell::RefCell;
use std::collections::BTreeMap;

pub mod json;
pub mod prometheus;

/// Upper bucket bounds (inclusive) of every histogram, in the metric's
/// native unit (µs, bytes, tuples…): powers of two from 1 to 2^20, plus an
/// implicit overflow bucket. Fixed globally so histograms merge bucket-wise
/// and snapshots from different runs are comparable.
pub const BUCKET_BOUNDS: [u64; 21] = [
    1,
    2,
    4,
    8,
    16,
    32,
    64,
    128,
    256,
    512,
    1 << 10,
    1 << 11,
    1 << 12,
    1 << 13,
    1 << 14,
    1 << 15,
    1 << 16,
    1 << 17,
    1 << 18,
    1 << 19,
    1 << 20,
];

/// Number of histogram buckets: one per bound plus the overflow bucket.
pub const BUCKETS: usize = BUCKET_BOUNDS.len() + 1;

/// A fixed-bucket histogram: per-bucket counts plus exact count and sum
/// (so totals reconcile exactly even though buckets are coarse).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    /// Number of observations.
    pub count: u64,
    /// Exact sum of all observed values.
    pub sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = BUCKET_BOUNDS
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(BUCKET_BOUNDS.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Bucket counts, one per [`BUCKET_BOUNDS`] entry plus the overflow
    /// bucket last.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Accumulate another histogram bucket-wise (commutative).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The `num/den` quantile as a bucket **upper bound**.
    ///
    /// The histogram only knows which power-of-two bucket each observation
    /// fell in, so the answer is conservative: the returned value is the
    /// upper bound of the bucket holding the rank-`⌈count·num/den⌉`
    /// observation (1-based, observations sorted ascending). Every reported
    /// percentile therefore *over*-estimates the true quantile by at most
    /// one bucket width — never under. Returns `None` for an empty
    /// histogram or when the rank lands in the unbounded overflow bucket
    /// (values above the last [`BUCKET_BOUNDS`] entry have no finite upper
    /// bound to report).
    ///
    /// `num/den` must be a proportion in `(0, 1]` — `percentile(99, 100)`
    /// is p99, `percentile(999, 1000)` is p999.
    pub fn percentile(&self, num: u64, den: u64) -> Option<u64> {
        assert!(den > 0 && num > 0 && num <= den, "need 0 < num/den <= 1");
        if self.count == 0 {
            return None;
        }
        // 1-based rank of the requested quantile, rounding up so p50 of
        // two observations is the first (lower) one. Widened to u128: the
        // product can exceed u64 for large counts; the rank itself cannot
        // (rank <= count).
        let rank = (u128::from(self.count) * u128::from(num)).div_ceil(u128::from(den)) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return BUCKET_BOUNDS.get(i).copied();
            }
        }
        unreachable!("rank {rank} exceeds count {}", self.count)
    }

    /// Median upper bound ([`Histogram::percentile`] at 1/2).
    pub fn p50(&self) -> Option<u64> {
        self.percentile(1, 2)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> Option<u64> {
        self.percentile(99, 100)
    }

    /// 99.9th-percentile upper bound.
    pub fn p999(&self) -> Option<u64> {
        self.percentile(999, 1000)
    }
}

/// Full label set of one metric series. The derived `Ord` (field order:
/// name, phase, node, op) fixes the canonical export order: all series of
/// one metric together, walked phase-major then node then operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Key {
    /// Metric name (static, lowercase snake_case).
    pub name: &'static str,
    /// Phase index at emission time ([`GLOBAL_PHASE`] for phase-less
    /// series).
    pub phase: u32,
    /// Node the emission is attributed to.
    pub node: u16,
    /// Operator label (`""` when not operator-scoped).
    pub op: &'static str,
}

/// Phase label for series that are not tied to any phase.
pub const GLOBAL_PHASE: u32 = u32::MAX;

/// One metric value. The kind is fixed by the first emission against a
/// key's name; mixing kinds under one name is a programming error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Monotonic counter (merge: add).
    Counter(u64),
    /// High-water-mark gauge (merge: max).
    Gauge(u64),
    /// Fixed-bucket histogram (merge: bucket-wise add).
    Histogram(Histogram),
}

impl Value {
    /// Exporter label for the kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Counter(_) => "counter",
            Value::Gauge(_) => "gauge",
            Value::Histogram(_) => "histogram",
        }
    }
}

/// The deterministic metrics registry.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    /// Names of sealed phases, in seal order.
    phases: Vec<String>,
    /// Phase index assigned to emissions happening now (== number of
    /// phases sealed so far, except in worker registries, which inherit
    /// the spawning thread's value and never seal).
    current: u32,
    metrics: BTreeMap<Key, Value>,
}

impl Registry {
    /// An empty registry at phase 0.
    pub fn new() -> Self {
        Registry::default()
    }

    /// An empty registry whose emissions are attributed to `phase` — the
    /// form installed on parallel-executor worker threads, which run
    /// strictly inside one phase and never seal.
    pub fn at_phase(phase: u32) -> Self {
        Registry {
            current: phase,
            ..Registry::default()
        }
    }

    /// Phase index assigned to emissions happening now.
    pub fn current_phase(&self) -> u32 {
        self.current
    }

    /// Names of sealed phases, in seal order.
    pub fn phases(&self) -> &[String] {
        &self.phases
    }

    /// Name a phase index (`None` for unsealed or [`GLOBAL_PHASE`]).
    pub fn phase_name(&self, idx: u32) -> Option<&str> {
        self.phases.get(idx as usize).map(String::as_str)
    }

    /// Seal the current phase under `name` and return its index;
    /// subsequent emissions attribute to the next index.
    pub fn seal_phase(&mut self, name: &str) -> u32 {
        let idx = self.current;
        self.phases.push(name.to_string());
        self.current = self.phases.len() as u32;
        idx
    }

    /// Add `delta` to a counter at the current phase.
    pub fn counter_add(&mut self, name: &'static str, node: u16, op: &'static str, delta: u64) {
        self.counter_add_at(name, self.current, node, op, delta);
    }

    /// Add `delta` to a counter at an explicit phase index.
    pub fn counter_add_at(
        &mut self,
        name: &'static str,
        phase: u32,
        node: u16,
        op: &'static str,
        delta: u64,
    ) {
        match self
            .metrics
            .entry(Key {
                name,
                phase,
                node,
                op,
            })
            .or_insert(Value::Counter(0))
        {
            Value::Counter(v) => *v += delta,
            other => panic!("metric {name} is a {}, not a counter", other.kind()),
        }
    }

    /// Raise a high-water-mark gauge at the current phase.
    pub fn gauge_max(&mut self, name: &'static str, node: u16, op: &'static str, value: u64) {
        self.gauge_max_at(name, self.current, node, op, value);
    }

    /// Raise a high-water-mark gauge at an explicit phase index.
    pub fn gauge_max_at(
        &mut self,
        name: &'static str,
        phase: u32,
        node: u16,
        op: &'static str,
        value: u64,
    ) {
        match self
            .metrics
            .entry(Key {
                name,
                phase,
                node,
                op,
            })
            .or_insert(Value::Gauge(0))
        {
            Value::Gauge(v) => *v = (*v).max(value),
            other => panic!("metric {name} is a {}, not a gauge", other.kind()),
        }
    }

    /// Record a histogram observation at the current phase.
    pub fn observe(&mut self, name: &'static str, node: u16, op: &'static str, value: u64) {
        self.observe_at(name, self.current, node, op, value);
    }

    /// Record a histogram observation at an explicit phase index.
    pub fn observe_at(
        &mut self,
        name: &'static str,
        phase: u32,
        node: u16,
        op: &'static str,
        value: u64,
    ) {
        match self
            .metrics
            .entry(Key {
                name,
                phase,
                node,
                op,
            })
            .or_insert(Value::Histogram(Histogram::default()))
        {
            Value::Histogram(h) => h.observe(value),
            other => panic!("metric {name} is a {}, not a histogram", other.kind()),
        }
    }

    /// Merge another registry in (commutative per key): counters add,
    /// gauges max, histograms add bucket-wise. Worker registries carry no
    /// sealed phases; merging one that does extends the phase list only
    /// when this registry has not sealed any itself.
    pub fn merge(&mut self, other: Registry) {
        if self.phases.is_empty() && !other.phases.is_empty() {
            self.phases = other.phases;
            self.current = self.current.max(other.current);
        }
        for (k, v) in other.metrics {
            match self.metrics.entry(k) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(v);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => match (e.get_mut(), v) {
                    (Value::Counter(a), Value::Counter(b)) => *a += b,
                    (Value::Gauge(a), Value::Gauge(b)) => *a = (*a).max(b),
                    (Value::Histogram(a), Value::Histogram(b)) => a.merge(&b),
                    (a, b) => panic!(
                        "metric {} kind mismatch on merge: {} vs {}",
                        k.name,
                        a.kind(),
                        b.kind()
                    ),
                },
            }
        }
    }

    /// All series in canonical (name, phase, node, op) order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Value)> {
        self.metrics.iter()
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Sum of a counter over all its series.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.iter_name(name).fold(0, |acc, (_, v)| match v {
            Value::Counter(c) => acc + c,
            _ => acc,
        })
    }

    /// Sum of a counter over the series carrying operator label `op`.
    pub fn counter_total_op(&self, name: &str, op: &str) -> u64 {
        self.iter_name(name).fold(0, |acc, (k, v)| match v {
            Value::Counter(c) if k.op == op => acc + c,
            _ => acc,
        })
    }

    /// Largest value of a gauge over all its series (`None` when absent).
    pub fn gauge_peak(&self, name: &str) -> Option<u64> {
        let mut peak = None;
        for (_, v) in self.iter_name(name) {
            if let Value::Gauge(g) = v {
                peak = Some(peak.map_or(*g, |p: u64| p.max(*g)));
            }
        }
        peak
    }

    /// Aggregate of a histogram over all its series (`None` when absent).
    pub fn histogram_total(&self, name: &str) -> Option<Histogram> {
        let mut total: Option<Histogram> = None;
        for (_, v) in self.iter_name(name) {
            if let Value::Histogram(h) = v {
                total.get_or_insert_with(Histogram::default).merge(h);
            }
        }
        total
    }

    fn iter_name<'a>(&'a self, name: &'a str) -> impl Iterator<Item = (&'a Key, &'a Value)> + 'a {
        self.metrics.iter().filter(move |(k, _)| k.name == name)
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<Registry>> = const { RefCell::new(None) };
}

/// Install a registry for the current thread, replacing (and returning)
/// any previous one.
pub fn install(registry: Registry) -> Option<Registry> {
    ACTIVE.with(|a| a.borrow_mut().replace(registry))
}

/// Remove and return the current thread's registry.
pub fn take() -> Option<Registry> {
    ACTIVE.with(|a| a.borrow_mut().take())
}

/// True when a registry is installed on this thread.
pub fn is_active() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// Run `f` against the installed registry; a no-op when metrics are off.
/// The single indirection every hook uses — disabled cost is one
/// thread-local load and branch.
pub fn with<F: FnOnce(&mut Registry)>(f: F) {
    ACTIVE.with(|a| {
        if let Some(r) = a.borrow_mut().as_mut() {
            f(r);
        }
    });
}

/// Current phase index of the installed registry (`None` when off). The
/// parallel executor reads this before spawning workers so their
/// registries attribute to the right phase.
pub fn current_phase() -> Option<u32> {
    ACTIVE.with(|a| a.borrow().as_ref().map(|r| r.current_phase()))
}

/// Add to a counter against the installed registry; no-op when off.
pub fn counter_add(name: &'static str, node: u16, op: &'static str, delta: u64) {
    with(|r| r.counter_add(name, node, op, delta));
}

/// Raise a gauge against the installed registry; no-op when off.
pub fn gauge_max(name: &'static str, node: u16, op: &'static str, value: u64) {
    with(|r| r.gauge_max(name, node, op, value));
}

/// Record a histogram observation against the installed registry; no-op
/// when off.
pub fn observe(name: &'static str, node: u16, op: &'static str, value: u64) {
    with(|r| r.observe(name, node, op, value));
}

/// Seal the current phase against the installed registry; no-op when off.
pub fn seal_phase(name: &str) {
    with(|r| {
        r.seal_phase(name);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_of_empty_is_none() {
        let h = Histogram::default();
        assert_eq!(h.p50(), None);
        assert_eq!(h.percentile(1, 1), None);
    }

    #[test]
    fn percentile_reports_bucket_upper_bounds() {
        let mut h = Histogram::default();
        // 100 observations of 3 (bucket upper bound 4) and 1 of 1000
        // (bucket upper bound 1024).
        for _ in 0..100 {
            h.observe(3);
        }
        h.observe(1000);
        assert_eq!(h.p50(), Some(4));
        assert_eq!(h.p99(), Some(4)); // rank 100 of 101 is still a 3
        assert_eq!(h.percentile(1, 1), Some(1024)); // the max
        assert_eq!(h.p999(), Some(1024)); // rank 101
    }

    #[test]
    fn percentile_rank_rounds_up() {
        let mut h = Histogram::default();
        h.observe(1); // bound 1
        h.observe(100); // bound 128
                        // p50 rank = ceil(2·1/2) = 1 → the lower observation's bucket.
        assert_eq!(h.p50(), Some(1));
        assert_eq!(h.percentile(51, 100), Some(128));
    }

    #[test]
    fn percentile_in_overflow_bucket_is_none() {
        let mut h = Histogram::default();
        h.observe(1);
        h.observe((1 << 20) + 1); // overflow: beyond the last bound
        assert_eq!(h.p50(), Some(1));
        assert_eq!(h.percentile(1, 1), None, "overflow has no upper bound");
    }

    #[test]
    fn percentile_survives_merge() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in 0..50 {
            a.observe(v);
        }
        for v in 50..100 {
            b.observe(v);
        }
        a.merge(&b);
        let mut whole = Histogram::default();
        for v in 0..100 {
            whole.observe(v);
        }
        assert_eq!(a.p50(), whole.p50());
        assert_eq!(a.p99(), whole.p99());
    }

    #[test]
    #[should_panic(expected = "need 0 < num/den <= 1")]
    fn percentile_rejects_improper_fraction() {
        Histogram::default().percentile(3, 2);
    }

    #[test]
    fn histogram_buckets_and_totals() {
        let mut h = Histogram::default();
        h.observe(0);
        h.observe(1);
        h.observe(2);
        h.observe(3);
        h.observe(1 << 20);
        h.observe((1 << 20) + 1);
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 6 + (2 << 20) + 1);
        assert_eq!(h.buckets()[0], 2, "0 and 1 land in the le=1 bucket");
        assert_eq!(h.buckets()[1], 1, "2 lands in le=2");
        assert_eq!(h.buckets()[2], 1, "3 lands in le=4");
        assert_eq!(h.buckets()[BUCKETS - 2], 1, "2^20 in the last bound");
        assert_eq!(h.buckets()[BUCKETS - 1], 1, "2^20+1 overflows");
    }

    #[test]
    fn counter_and_gauge_semantics() {
        let mut r = Registry::new();
        r.counter_add("c", 0, "", 2);
        r.counter_add("c", 0, "", 3);
        r.gauge_max("g", 1, "", 7);
        r.gauge_max("g", 1, "", 4);
        assert_eq!(r.counter_total("c"), 5);
        assert_eq!(r.gauge_peak("g"), Some(7));
        assert_eq!(r.gauge_peak("absent"), None);
    }

    #[test]
    fn seal_advances_phase_attribution() {
        let mut r = Registry::new();
        r.counter_add("c", 0, "", 1);
        assert_eq!(r.seal_phase("build"), 0);
        r.counter_add("c", 0, "", 1);
        assert_eq!(r.seal_phase("probe"), 1);
        let phases: Vec<u32> = r.iter().map(|(k, _)| k.phase).collect();
        assert_eq!(phases, vec![0, 1]);
        assert_eq!(r.phases(), ["build", "probe"]);
        assert_eq!(r.phase_name(1), Some("probe"));
    }

    #[test]
    fn merge_is_commutative() {
        let build = |x: u64| {
            let mut r = Registry::at_phase(3);
            r.counter_add("c", 0, "", x);
            r.gauge_max("g", 0, "", x * 10);
            r.observe("h", 0, "", x);
            r
        };
        let mut ab = build(1);
        ab.merge(build(2));
        let mut ba = build(2);
        ba.merge(build(1));
        assert_eq!(ab.counter_total("c"), 3);
        assert_eq!(ab.gauge_peak("g"), Some(20));
        let (ha, hb) = (ab.histogram_total("h"), ba.histogram_total("h"));
        assert_eq!(ha, hb);
        assert_eq!(ab.iter().collect::<Vec<_>>(), ba.iter().collect::<Vec<_>>());
    }

    #[test]
    fn counter_total_op_filters() {
        let mut r = Registry::new();
        r.counter_add("pages_read", 0, "pool", 5);
        r.counter_add("pages_read", 1, "pool", 2);
        r.counter_add("pages_read", 0, "index", 1);
        assert_eq!(r.counter_total("pages_read"), 8);
        assert_eq!(r.counter_total_op("pages_read", "pool"), 7);
        assert_eq!(r.counter_total_op("pages_read", "index"), 1);
    }

    #[test]
    fn thread_local_install_take() {
        assert!(!is_active());
        counter_add("c", 0, "", 5); // no-op: nothing installed
        install(Registry::new());
        assert!(is_active());
        counter_add("c", 0, "", 5);
        assert_eq!(current_phase(), Some(0));
        let r = take().unwrap();
        assert_eq!(r.counter_total("c"), 5);
        assert!(!is_active());
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_is_detected() {
        let mut r = Registry::new();
        r.gauge_max("m", 0, "", 1);
        r.counter_add("m", 0, "", 1);
    }
}
