//! Deterministic allocation counting for the bench binaries.
//!
//! The simulator is single-process and (in a serial build) single-threaded,
//! so the number of heap allocations a benchmark point performs is exactly
//! reproducible — unlike wall-clock time, which measures the host. The
//! bench binaries install [`CountingAlloc`] as their global allocator and
//! report the allocation delta around each point; `regress` gates those
//! deltas against the committed `ALLOC_CEILINGS.json` (Gate 5), which is
//! how "the data plane got slower" fails CI without a flaky wall-clock
//! threshold.
//!
//! Only `alloc` and `realloc` count (a realloc that moves is the moral
//! equivalent of a fresh allocation); `dealloc` is free. The counter is a
//! relaxed atomic: total counts are scheduling-independent because the
//! *set* of allocations a deterministic program performs does not depend
//! on which thread performs them — but worker pools allocate bookkeeping
//! of their own, so ceilings are only recorded and gated on serial builds.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// A `#[global_allocator]` shim that counts allocation events.
pub struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the counter
// has no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Total allocation events since process start.
pub fn allocation_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Run `f` and return `(result, allocation events during f)`.
///
/// Only meaningful when nothing else allocates concurrently — i.e. on a
/// serial executor with no worker pool active.
pub fn count_allocs<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = allocation_count();
    let out = f();
    (out, allocation_count() - before)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_is_monotonic_and_observes_boxing() {
        // Without the allocator installed the counter simply stays flat —
        // the API must still behave (the bench bins install it; unit
        // tests may not).
        let a = allocation_count();
        let (v, _delta) = count_allocs(|| vec![1u8; 4096]);
        assert_eq!(v.len(), 4096);
        assert!(allocation_count() >= a);
    }
}
