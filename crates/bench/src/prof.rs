//! Flight-recorder profiling of solo join runs.
//!
//! Bridges the harness to `gamma-prof`: one `joinABprime` point is
//! extracted into a timing plan (`gamma_sched::extract`) and replayed
//! through the serve engine with N=1 and the flight recorder attached.
//! An unloaded serve reproduces the solo response exactly (pinned by the
//! sched tests and re-asserted here), so the recorded time series
//! describe the same run the `trace` and `metrics` snapshots under
//! `results/` do. Everything is virtual time sampled on a fixed tick —
//! two runs of the same point are byte-identical, across executors, so
//! the committed `results/prof-*.json` artifacts double as regression
//! baselines (Gate 6 of the `regress` binary).

use gamma_core::query::Algorithm;
use gamma_core::{ExecConfig, JoinReport};
use gamma_des::SimTime;
use gamma_prof::{export, FlightProfile, DEFAULT_TICK_US};
use gamma_sched::EngineConfig;

use crate::sweep::{SweepBuilder, Workload};

/// One profiled solo run.
pub struct ProfRun {
    /// Algorithm name as printed by the report.
    pub algorithm: String,
    /// Memory / |inner relation| ratio.
    pub ratio: f64,
    /// `A`-relation cardinality of the workload.
    pub a_rows: usize,
    /// The solo join report (validated against the oracle).
    pub report: JoinReport,
    /// Per-node exchange inbox high-water marks from the physical run.
    pub peak_inbox: Vec<usize>,
    /// The recorded time series.
    pub profile: FlightProfile,
}

/// Profile one `joinABprime` point on the default executor.
pub fn solo_profile(workload: &Workload, alg: Algorithm, ratio: f64, tick_us: u64) -> ProfRun {
    solo_profile_with(workload, alg, ratio, tick_us, ExecConfig::auto())
}

/// [`solo_profile`] on an explicit executor. The profile derives solely
/// from ledger replay, so any executor produces byte-identical output —
/// the `prof` integration tests compare pool sizes 1/2/8 against serial.
pub fn solo_profile_with(
    workload: &Workload,
    alg: Algorithm,
    ratio: f64,
    tick_us: u64,
    exec: ExecConfig,
) -> ProfRun {
    let builder = SweepBuilder::new(workload).exec(exec);
    let (mut machine, spec) = builder.prepare(alg, ratio);
    let (plan, report) = gamma_sched::extract(&mut machine, &spec);
    let expect = workload.expect("unique1", "unique1");
    assert_eq!(report.result_tuples, expect.tuples, "prof template wrong");
    assert_eq!(
        report.result_checksum, expect.checksum,
        "prof template wrong"
    );

    let cfg = EngineConfig {
        nodes: machine.nodes(),
        pool_budget_pages: plan.max_peak_pages(),
        backlog_window: None,
    };
    let (outcome, profile) =
        gamma_sched::engine::run_recorded(vec![plan], &[SimTime::ZERO], &cfg, Some(tick_us));
    let profile = profile.expect("recorder was attached");
    // N=1 serve collapses to the solo replay; anything else means the
    // profile describes a different run than the trace/metrics snapshots.
    assert_eq!(
        outcome.queries[0].response(),
        Some(report.response),
        "unloaded replay must reproduce the solo response"
    );

    ProfRun {
        algorithm: report.algorithm.clone(),
        ratio,
        a_rows: workload.a_rows.len(),
        report,
        peak_inbox: machine.exchange.peak_inbox_packets().to_vec(),
        profile,
    }
}

/// Render a profiled run as the line-oriented `prof-*.json` document.
pub fn render_json(run: &ProfRun) -> String {
    let peak_inbox = format!(
        "[{}]",
        run.peak_inbox
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let envelope = [
        ("algorithm", export::json_str(&run.algorithm)),
        ("memory_ratio", format!("{}", run.ratio)),
        ("a_rows", format!("{}", run.a_rows)),
        (
            "solo_response_us",
            format!("{}", run.report.response.as_us()),
        ),
        ("peak_inbox_packets", peak_inbox),
    ];
    export::render_json(&run.profile, &envelope)
}

/// Render a profiled run as CSV (one row per tick).
pub fn render_csv(run: &ProfRun) -> String {
    export::render_csv(&run.profile)
}

/// The committed-artifact path stem for one point: `prof-<alg>-r<pct>`.
pub fn artifact_stem(alg: Algorithm, ratio: f64) -> String {
    format!("prof-{}-r{:02}", alg.name(), (ratio * 100.0) as u32)
}

/// Regenerate the `prof-*.json` document for one snapshot point at the
/// given scale — the single entry point Gate 6, the `prof` binary and the
/// integration tests share, so they can never drift apart.
pub fn snapshot_doc(alg: Algorithm, ratio: f64, scale: usize, tick_us: u64) -> String {
    let w = Workload::scaled(scale, scale / 10);
    render_json(&solo_profile(&w, alg, ratio, tick_us))
}

/// Map a flight profile onto Perfetto counter tracks: per-node series
/// attach to their node's process, machine-wide series to the scheduler
/// process. Merge into a trace export with
/// `gamma_trace::perfetto::to_json_with_counters`.
#[cfg(feature = "trace")]
pub fn perfetto_counters(profile: &FlightProfile) -> Vec<gamma_trace::perfetto::CounterSeries> {
    use gamma_trace::perfetto::{CounterSeries, SCHEDULER_PID};
    profile
        .series
        .iter()
        .map(|s| CounterSeries {
            name: s.name.clone(),
            pid: s.node().map_or(SCHEDULER_PID, |n| n as u32),
            points: s
                .values
                .iter()
                .enumerate()
                .map(|(i, &v)| (i as u64 * profile.tick_us, v))
                .collect(),
        })
        .collect()
}

/// Trace the same point the profile replays and merge the profile's
/// counter tracks into the Perfetto export. Both sides are deterministic
/// replays of the same ledgers, so the counters line up with the spans.
#[cfg(feature = "trace")]
pub fn merged_perfetto(
    workload: &Workload,
    alg: Algorithm,
    ratio: f64,
    profile: &FlightProfile,
) -> String {
    let traced = crate::tracing::trace_join(workload, alg, ratio, false);
    gamma_trace::perfetto::to_json_with_counters(&traced.sink, &perfetto_counters(profile))
}

/// Default tick re-exported so binaries don't need a direct gamma-prof
/// dependency edge for the one constant.
pub const TICK_US: u64 = DEFAULT_TICK_US;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_profile_reconciles_and_renders_deterministically() {
        let w = Workload::scaled(2_000, 200);
        let a = solo_profile(&w, Algorithm::HybridHash, 0.5, 10_000);
        let b = solo_profile(&w, Algorithm::HybridHash, 0.5, 10_000);
        assert_eq!(render_json(&a), render_json(&b));
        assert_eq!(render_csv(&a), render_csv(&b));
        assert_eq!(a.profile.nodes, 8);
        assert!(a.profile.ticks() > 1);
        // The run's CPU busy integrates to the ledger total.
        let cpu: u64 = a
            .profile
            .series
            .iter()
            .filter(|s| s.short_name() == "cpu_busy_us")
            .flat_map(|s| s.values.iter())
            .map(|&v| v as u64)
            .sum();
        assert_eq!(cpu, a.report.total.cpu.as_us());
        assert!(a.peak_inbox.iter().any(|&p| p > 0), "exchange saw traffic");
    }

    #[test]
    fn artifact_stems_match_the_committed_layout() {
        assert_eq!(artifact_stem(Algorithm::HybridHash, 0.5), "prof-hybrid-r50");
        assert_eq!(artifact_stem(Algorithm::GraceHash, 0.2), "prof-grace-r20");
    }

    #[cfg(feature = "trace")]
    #[test]
    fn merged_perfetto_carries_counter_tracks() {
        let w = Workload::scaled(2_000, 200);
        let run = solo_profile(&w, Algorithm::HybridHash, 0.5, 10_000);
        let doc = merged_perfetto(&w, Algorithm::HybridHash, 0.5, &run.profile);
        assert!(gamma_trace::perfetto::looks_like_trace_json(&doc));
        assert!(doc.contains("\"name\":\"node0.cpu_busy_us\""));
        assert!(doc.contains("\"name\":\"inflight_queries\""));
    }
}
