//! Minimal host-time micro-bench harness (criterion replacement).
//!
//! The build environment cannot fetch criterion, so the bench targets
//! use this small harness instead: per-benchmark warmup, a fixed number
//! of timed samples, and a median-of-samples report with optional
//! element throughput. Invoke through the bench targets:
//!
//! ```text
//! cargo bench -p gamma-bench --features bench-heavy [FILTER]
//! ```
//!
//! An optional CLI argument filters benchmarks by substring, mirroring
//! criterion's interface.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness: owns the CLI filter and prints the report.
pub struct Harness {
    filter: Option<String>,
}

impl Harness {
    /// Build from `cargo bench` CLI args (first non-flag arg = filter).
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Harness { filter }
    }

    /// Start a named benchmark group.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_string(),
            sample_size: 30,
            throughput_elems: None,
        }
    }

    fn wants(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

impl Default for Harness {
    fn default() -> Self {
        Self::from_args()
    }
}

/// A group of related benchmarks sharing sample settings.
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    sample_size: usize,
    throughput_elems: Option<u64>,
}

impl Group<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Report per-element throughput for benchmarks in this group.
    pub fn throughput_elems(&mut self, n: u64) -> &mut Self {
        self.throughput_elems = Some(n);
        self
    }

    /// Run one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] with the measured body.
    pub fn bench<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let id = format!("{}/{}", self.name, label);
        if !self.harness.wants(&id) {
            return;
        }
        // Warmup pass to fault in code and data.
        let mut b = Bencher {
            duration: Duration::ZERO,
        };
        f(&mut b);
        // Timed samples; the median resists scheduler noise.
        let mut samples: Vec<Duration> = (0..self.sample_size)
            .map(|_| {
                let mut b = Bencher {
                    duration: Duration::ZERO,
                };
                f(&mut b);
                b.duration
            })
            .collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let mut line = format!("{id:<48} {:>12.3?}/iter", median);
        if let Some(elems) = self.throughput_elems {
            let secs = median.as_secs_f64();
            if secs > 0.0 {
                line.push_str(&format!("  {:>12.0} elem/s", elems as f64 / secs));
            }
        }
        println!("{line}");
    }
}

/// Passed to each benchmark body; times exactly one invocation of the
/// closure given to [`Bencher::iter`] per sample.
pub struct Bencher {
    duration: Duration,
}

impl Bencher {
    /// Measure one execution of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.duration = start.elapsed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut h = Harness {
            filter: Some("nomatch".into()),
        };
        // Filtered-out benchmarks never run their body.
        let mut ran = false;
        h.group("g").bench("skipped", |_| ran = true);
        assert!(!ran);

        let mut h = Harness { filter: None };
        let mut count = 0u32;
        h.group("g").sample_size(3).bench("counts", |b| {
            b.iter(|| count += 1);
        });
        // 1 warmup + 3 samples.
        assert_eq!(count, 4);
    }
}
