//! Workload setup and memory-ratio sweeps.

use gamma_core::query::{Algorithm, JoinSite, JoinSpec, OverflowPolicy};
use gamma_core::{
    run_join, ExecConfig, JoinReport, Machine, MachineConfig, RelationId, WorkerPool,
};
use gamma_des::TimingModel;
use gamma_wisconsin::{
    join_abprime, load_hashed, load_range, oracle_join, OracleExpect, WisconsinGen, WisconsinRow,
};
use std::collections::HashMap;
use std::sync::Mutex;
/// How the relations are declustered at load time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadStyle {
    /// Hashed on `unique1` (the paper's default).
    HashedUnique1,
    /// Range-partitioned on the join attributes (the §4.4 skew loading).
    RangeOnJoinAttrs,
}

/// The benchmark workload: the 100,000-tuple `A` and the 10,000-tuple
/// `Bprime` sampled from it, at a configurable scale.
pub struct Workload {
    /// Generated `A` rows.
    pub a_rows: Vec<WisconsinRow>,
    /// Generated `Bprime` rows (random sample of `A`).
    pub bprime_rows: Vec<WisconsinRow>,
    /// Memoized oracle expectations per join-attribute pair — a sweep
    /// validates every point against the same expected result, so the
    /// oracle join runs once per workload instead of once per point.
    oracle_cache: Mutex<HashMap<(String, String), OracleExpect>>,
}

impl Workload {
    /// The paper's full-size workload.
    pub fn full() -> Self {
        Self::scaled(100_000, 10_000)
    }

    /// A scaled workload (tests use small ones; figures use the full one).
    pub fn scaled(a: usize, bprime: usize) -> Self {
        let gen = WisconsinGen::new(1989);
        let a_rows = gen.relation(a, 0);
        let bprime_rows = gen.sample(&a_rows, bprime, 1);
        Workload {
            a_rows,
            bprime_rows,
            oracle_cache: Mutex::new(HashMap::new()),
        }
    }

    /// A scaled workload whose `normal` attribute is drawn at an explicit
    /// standard deviation (Table 3-style nonuniform data; small `sd` means
    /// sharper skew). Identical to [`Workload::scaled`] when `sd` equals
    /// the generator's scaled default.
    pub fn scaled_nu(a: usize, bprime: usize, sd: f64) -> Self {
        let gen = WisconsinGen::new(1989);
        let a_rows = gen.relation_nu(a, 0, sd);
        let bprime_rows = gen.sample(&a_rows, bprime, 1);
        Workload {
            a_rows,
            bprime_rows,
            oracle_cache: Mutex::new(HashMap::new()),
        }
    }

    /// Oracle expectation for a join on the given attributes (memoized).
    pub fn expect(&self, inner_attr: &str, outer_attr: &str) -> OracleExpect {
        let key = (inner_attr.to_string(), outer_attr.to_string());
        if let Some(e) = self.oracle_cache.lock().unwrap().get(&key) {
            return *e;
        }
        let e = oracle_join(
            &self.bprime_rows,
            &self.a_rows,
            inner_attr,
            outer_attr,
            None,
            None,
        );
        self.oracle_cache.lock().unwrap().insert(key, e);
        e
    }

    /// Build a machine and load the workload.
    pub fn machine(
        &self,
        remote_nodes: bool,
        style: LoadStyle,
        inner_attr: &str,
        outer_attr: &str,
    ) -> (Machine, RelationId, RelationId) {
        let cfg = if remote_nodes {
            MachineConfig::remote_8_plus_8()
        } else {
            MachineConfig::local_8()
        };
        self.machine_with(cfg, style, inner_attr, outer_attr)
    }

    /// Build a machine from an explicit configuration (ablations tweak the
    /// cost model before loading — the buffer pools snapshot the disk
    /// model at build time).
    pub fn machine_with(
        &self,
        cfg: MachineConfig,
        style: LoadStyle,
        inner_attr: &str,
        outer_attr: &str,
    ) -> (Machine, RelationId, RelationId) {
        let mut machine = Machine::new(cfg);
        let (a, bprime) = match style {
            LoadStyle::HashedUnique1 => (
                load_hashed(&mut machine, "A", &self.a_rows, "unique1"),
                load_hashed(&mut machine, "Bprime", &self.bprime_rows, "unique1"),
            ),
            LoadStyle::RangeOnJoinAttrs => (
                load_range(&mut machine, "A", &self.a_rows, outer_attr),
                load_range(&mut machine, "Bprime", &self.bprime_rows, inner_attr),
            ),
        };
        (machine, a, bprime)
    }
}

/// One measured point of an experiment.
#[derive(Debug, Clone)]
pub struct ExperimentPoint {
    /// Algorithm.
    pub algorithm: String,
    /// Memory ratio (`memory / |inner|`).
    pub ratio: f64,
    /// Response time in seconds.
    pub seconds: f64,
    /// Full report for drill-down.
    pub report: JoinReport,
}

/// The process-wide bench dispatch pool: the engine's shared default pool
/// with the `parallel` feature, `None` (serial dispatch) otherwise.
pub fn bench_pool() -> Option<&'static WorkerPool> {
    #[cfg(feature = "parallel")]
    {
        Some(gamma_core::exec::pool::default_pool().as_ref())
    }
    #[cfg(not(feature = "parallel"))]
    {
        None
    }
}

/// Fan independent bench tasks out on `pool`, gathering results in
/// submission order; runs inline when `pool` is `None`, has no dedicated
/// workers, or there is at most one item. Every task builds its own
/// machine, so results are byte-identical to a sequential run.
pub fn pooled_map_on<T, R>(
    pool: Option<&WorkerPool>,
    what: &'static str,
    items: Vec<T>,
    f: impl Fn(T) -> R + Sync,
) -> Vec<R>
where
    T: Send,
    R: Send,
{
    match pool {
        Some(p) if p.workers() > 0 && items.len() > 1 => p.run_ordered(what, items, |_, t| f(t)),
        _ => items.into_iter().map(f).collect(),
    }
}

/// [`pooled_map_on`] over the process-wide [`bench_pool`].
pub fn pooled_map<T, R>(what: &'static str, items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R>
where
    T: Send,
    R: Send,
{
    pooled_map_on(bench_pool(), what, items, f)
}

/// Declarative sweep runner.
pub struct SweepBuilder<'a> {
    workload: &'a Workload,
    inner_attr: String,
    outer_attr: String,
    site: JoinSite,
    filter: bool,
    filter_bucket_forming: bool,
    bucket_tuning: bool,
    policy: OverflowPolicy,
    style: LoadStyle,
    extra_buckets: usize,
    validate: bool,
    timing: TimingModel,
    slow_disk: u64,
    exec: ExecConfig,
    refinement: bool,
    dynamic_spill: bool,
}

impl<'a> SweepBuilder<'a> {
    /// A sweep over the workload, joining on `unique1` (HPJA) by default.
    pub fn new(workload: &'a Workload) -> Self {
        SweepBuilder {
            workload,
            inner_attr: "unique1".into(),
            outer_attr: "unique1".into(),
            site: JoinSite::Local,
            filter: false,
            filter_bucket_forming: false,
            bucket_tuning: false,
            policy: OverflowPolicy::Pessimistic,
            style: LoadStyle::HashedUnique1,
            extra_buckets: 0,
            validate: true,
            timing: TimingModel::default(),
            slow_disk: 1,
            exec: ExecConfig::auto(),
            refinement: false,
            dynamic_spill: false,
        }
    }

    /// Enable skew-aware split-table refinement.
    pub fn refined(mut self) -> Self {
        self.refinement = true;
        self
    }

    /// Enable robust dynamic spill/restore overflow handling.
    pub fn dynamic_spill(mut self) -> Self {
        self.dynamic_spill = true;
        self
    }

    /// Pin the executor every measured machine runs on (default:
    /// [`ExecConfig::auto`] — the shared pool with the `parallel` feature,
    /// serial otherwise). The same configuration's pool also dispatches
    /// the sweep's independent points.
    pub fn exec(mut self, exec: ExecConfig) -> Self {
        self.exec = exec;
        self
    }

    /// Select the phase-timing model (default: queued device requests).
    /// `TimingModel::Legacy` reproduces the historical flat-`max` numbers
    /// for A/B validation.
    pub fn timing(mut self, model: TimingModel) -> Self {
        self.timing = model;
        self
    }

    /// Multiply every disk service time by `factor` (convoy ablation:
    /// drives volume utilisation past the paper's operating point).
    pub fn slow_disk(mut self, factor: u64) -> Self {
        self.slow_disk = factor.max(1);
        self
    }

    /// Join on the given attributes (non-HPJA: `unique2`; skew: `normal`).
    pub fn on(mut self, inner_attr: &str, outer_attr: &str) -> Self {
        self.inner_attr = inner_attr.into();
        self.outer_attr = outer_attr.into();
        self
    }

    /// Run joins on the diskless processors.
    pub fn remote(mut self) -> Self {
        self.site = JoinSite::Remote;
        self
    }

    /// Run joins on every processor, disks and diskless together (§4.3's
    /// half-way configuration).
    pub fn mixed(mut self) -> Self {
        self.site = JoinSite::Mixed;
        self
    }

    /// Enable bit-vector filters.
    pub fn filtered(mut self, on: bool) -> Self {
        self.filter = on;
        self
    }

    /// Also filter the Grace/Hybrid bucket-forming phases (the paper's
    /// proposed §4.2/§5 extension). Implies filtering on.
    pub fn filter_bucket_forming(mut self) -> Self {
        self.filter = true;
        self.filter_bucket_forming = true;
        self
    }

    /// Enable Grace bucket tuning \[KITS83\] (many small buckets combined by
    /// measured size at join time).
    pub fn bucket_tuning(mut self) -> Self {
        self.bucket_tuning = true;
        self
    }

    /// Choose the overflow policy (Figure 7).
    pub fn policy(mut self, p: OverflowPolicy) -> Self {
        self.policy = p;
        self
    }

    /// Range-partition the relations on the join attributes (§4.4).
    pub fn range_loaded(mut self) -> Self {
        self.style = LoadStyle::RangeOnJoinAttrs;
        self
    }

    /// Add buckets beyond the computed count (§4.4 Grace trick).
    pub fn extra_buckets(mut self, n: usize) -> Self {
        self.extra_buckets = n;
        self
    }

    /// Disable oracle validation (only for deliberately lossy ablations).
    pub fn unvalidated(mut self) -> Self {
        self.validate = false;
        self
    }

    /// Build the loaded machine and the join spec for one point. Loading
    /// is not part of the measured query, so callers that trace (see
    /// `crate::tracing`) install their sink between `prepare` and
    /// `measure`.
    pub(crate) fn prepare(&self, algorithm: Algorithm, ratio: f64) -> (Machine, JoinSpec) {
        let remote = matches!(self.site, JoinSite::Remote | JoinSite::Mixed);
        let mut cfg = if remote {
            MachineConfig::remote_8_plus_8()
        } else {
            MachineConfig::local_8()
        };
        cfg.cost.timing = self.timing;
        let d = &mut cfg.cost.disk;
        d.seq_read_us *= self.slow_disk;
        d.rand_read_us *= self.slow_disk;
        d.seq_write_us *= self.slow_disk;
        d.rand_write_us *= self.slow_disk;
        let (mut machine, a, bprime) =
            self.workload
                .machine_with(cfg, self.style, &self.inner_attr, &self.outer_attr);
        machine.exec = self.exec.clone();
        let inner_bytes = machine.relation(bprime).data_bytes;
        // ceil keeps 1/N ratios mapping to exactly N buckets despite
        // floating-point truncation.
        let memory = ((inner_bytes as f64) * ratio).ceil().max(1.0) as u64;
        let mut spec: JoinSpec = join_abprime(
            algorithm,
            bprime,
            a,
            &self.inner_attr,
            &self.outer_attr,
            memory,
        );
        spec.site = if algorithm == Algorithm::SortMerge {
            JoinSite::Local // sort-merge cannot use diskless nodes (§3.1)
        } else {
            self.site
        };
        spec.bit_filter = self.filter;
        spec.filter_bucket_forming = self.filter_bucket_forming;
        spec.bucket_tuning = self.bucket_tuning;
        spec.overflow_policy = self.policy;
        spec.extra_buckets = self.extra_buckets;
        spec.skew_refinement = self.refinement;
        spec.dynamic_spill = self.dynamic_spill;
        (machine, spec)
    }

    /// Execute and validate one prepared point.
    pub(crate) fn measure(
        &self,
        machine: &mut Machine,
        spec: &JoinSpec,
        algorithm: Algorithm,
        ratio: f64,
    ) -> ExperimentPoint {
        let report = run_join(machine, spec);
        if self.validate {
            let expect = self.workload.expect(&self.inner_attr, &self.outer_attr);
            assert_eq!(
                report.result_tuples,
                expect.tuples,
                "{} at ratio {ratio}: wrong cardinality",
                algorithm.name()
            );
            assert_eq!(
                report.result_checksum,
                expect.checksum,
                "{} at ratio {ratio}: wrong result contents",
                algorithm.name()
            );
        }
        ExperimentPoint {
            algorithm: algorithm.name().into(),
            ratio,
            seconds: report.seconds(),
            report,
        }
    }

    /// Run one algorithm at one memory ratio.
    pub fn run_one(&self, algorithm: Algorithm, ratio: f64) -> ExperimentPoint {
        let (mut machine, spec) = self.prepare(algorithm, ratio);
        self.measure(&mut machine, &spec, algorithm, ratio)
    }

    /// Run several algorithms across several ratios. When the builder's
    /// [`ExecConfig`] carries a pool with dedicated workers, the
    /// independent points are dispatched onto it and gathered in
    /// submission order — each builds its own machine, so virtual times
    /// are bit-identical to a sequential run.
    pub fn run(&self, algorithms: &[Algorithm], ratios: &[f64]) -> Vec<ExperimentPoint> {
        let points: Vec<(Algorithm, f64)> = algorithms
            .iter()
            .flat_map(|&a| ratios.iter().map(move |&r| (a, r)))
            .collect();
        self.run_points(points)
    }

    fn run_points(&self, points: Vec<(Algorithm, f64)>) -> Vec<ExperimentPoint> {
        pooled_map_on(
            self.exec.pool.as_deref(),
            "sweep point",
            points,
            |(alg, r)| self.run_one(alg, r),
        )
    }
}

/// The paper's canonical sweep ratios: integral bucket counts 1..=10 for
/// Grace/Hybrid (1/N), which the other algorithms share for comparability.
pub fn paper_ratios() -> Vec<f64> {
    (1..=10).map(|n| 1.0 / n as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_validates_and_orders() {
        let w = Workload::scaled(2_000, 200);
        let pts = SweepBuilder::new(&w).run(&[Algorithm::HybridHash], &[1.0, 0.5]);
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert_eq!(p.report.result_tuples, 200);
            assert!(p.seconds > 0.0);
        }
        assert!(
            pts[1].seconds > pts[0].seconds,
            "hybrid must slow down when memory halves"
        );
    }

    #[test]
    fn paper_ratios_shape() {
        let r = paper_ratios();
        assert_eq!(r.len(), 10);
        assert_eq!(r[0], 1.0);
        assert!((r[9] - 0.1).abs() < 1e-12);
    }
}
