//! Metered join runs and the metrics↔ledger reconciliation self-check.
//!
//! Wraps one `joinABprime` execution in a [`Registry`] install/take pair so
//! callers (the `regress` binary and the metrics tests) get the full metric
//! snapshot alongside the normal [`JoinReport`]. The simulator is
//! deterministic and the registry is canonically ordered, so metering the
//! same point twice yields byte-identical exports.
//!
//! [`reconcile`] is the accounting audit: every microsecond and byte the
//! ledgers charged must be attributable to a metric series, and every
//! site-mirrored counter must sum back to the ledger counter it shadows.
//! A join run whose snapshot fails reconciliation has either an
//! uninstrumented charge site or a double-emitting one — both bugs.

use gamma_core::query::Algorithm;
use gamma_core::JoinReport;
use gamma_metrics::Registry;

use crate::sweep::{SweepBuilder, Workload};

/// A join run captured with the metrics registry installed.
pub struct MetricsRun {
    /// The usual join report (validated against the oracle).
    pub report: JoinReport,
    /// The recorded metric snapshot.
    pub registry: Registry,
}

impl MetricsRun {
    /// Prometheus text-format rendering of the snapshot.
    pub fn prometheus(&self) -> String {
        gamma_metrics::prometheus::render(&self.registry)
    }

    /// Line-oriented JSON rendering of the snapshot.
    pub fn json(&self) -> String {
        gamma_metrics::json::render(&self.registry)
    }
}

/// Run one `joinABprime` point with a fresh registry installed.
///
/// # Panics
/// Panics if the join result fails oracle validation.
pub fn metrics_join(
    workload: &Workload,
    algorithm: Algorithm,
    ratio: f64,
    filtered: bool,
    remote: bool,
) -> MetricsRun {
    metrics_join_with(
        workload,
        algorithm,
        ratio,
        filtered,
        remote,
        gamma_core::ExecConfig::auto(),
    )
}

/// [`metrics_join`] on an explicit executor (serial-vs-pooled snapshot
/// comparisons pin one machine to each).
pub fn metrics_join_with(
    workload: &Workload,
    algorithm: Algorithm,
    ratio: f64,
    filtered: bool,
    remote: bool,
    exec: gamma_core::ExecConfig,
) -> MetricsRun {
    let mut builder = SweepBuilder::new(workload).filtered(filtered).exec(exec);
    if remote {
        builder = builder.remote();
    }
    // Install the registry only after the workload is loaded: load-time I/O
    // is not part of the measured query and must not appear in the snapshot.
    let (mut machine, spec) = builder.prepare(algorithm, ratio);
    let prev = gamma_metrics::install(Registry::new());
    let point = builder.measure(&mut machine, &spec, algorithm, ratio);
    let registry = gamma_metrics::take().expect("registry installed above");
    if let Some(p) = prev {
        gamma_metrics::install(p);
    }
    MetricsRun {
        report: point.report,
        registry,
    }
}

/// Audit a snapshot against the report it was captured with. Returns every
/// discrepancy found (empty ⇒ the snapshot reconciles exactly).
///
/// Three families of invariants, all exact integer equalities:
///
/// 1. **Ledger mirror** — the per-phase `ledger_*` series emitted at each
///    phase seal must sum to the report's aggregate [`Usage`] field by
///    field (times in µs, plus ring bytes and all event counters).
/// 2. **Site mirrors** — counters emitted at the statements that increment
///    ledger [`Counts`] fields must sum (over all `op` labels) to the
///    ledger total: an uninstrumented or double-counting charge site breaks
///    this. `tuples_in` / `tuples_out` / `comparisons` are deliberately
///    excluded: they are informational per-operator series (the sort
///    kernel's comparison charge has no node attribution).
/// 3. **Device histograms** — the disk/NI wait and service histograms fed
///    from the FIFO queue replay must sum exactly to the ledger's service
///    and annotated-wait totals, and `wire_bytes` must equal `ring_bytes`.
///
/// [`Usage`]: gamma_des::Usage
/// [`Counts`]: gamma_des::Counts
pub fn reconcile(registry: &Registry, report: &JoinReport) -> Vec<String> {
    let mut errs = Vec::new();
    let mut check = |metric: &str, got: u64, want: u64| {
        if got != want {
            errs.push(format!("{metric}: metrics={got} ledger={want}"));
        }
    };
    let t = &report.total;
    let c = &t.counts;

    // 1. Ledger mirror: registry totals vs the aggregate report ledger.
    for (name, want) in [
        ("ledger_cpu_us", t.cpu.as_us()),
        ("ledger_disk_us", t.disk.as_us()),
        ("ledger_net_us", t.net.as_us()),
        ("ledger_disk_wait_us", t.disk_wait.as_us()),
        ("ledger_net_wait_us", t.net_wait.as_us()),
        ("ledger_ring_bytes", t.ring_bytes),
        ("ledger_pages_read", c.pages_read),
        ("ledger_pages_written", c.pages_written),
        ("ledger_packets_sent", c.packets_sent),
        ("ledger_packets_recv", c.packets_recv),
        ("ledger_msgs_shortcircuit", c.msgs_shortcircuit),
        ("ledger_tuples_in", c.tuples_in),
        ("ledger_tuples_out", c.tuples_out),
        ("ledger_hash_inserts", c.hash_inserts),
        ("ledger_hash_probes", c.hash_probes),
        ("ledger_comparisons", c.comparisons),
        ("ledger_filter_drops", c.filter_drops),
        ("ledger_control_msgs", c.control_msgs),
        ("ledger_overflow_evictions", c.overflow_evictions),
        ("ledger_pages_spilled", c.pages_spilled),
        ("ledger_pages_restored", c.pages_restored),
    ] {
        check(name, registry.counter_total(name), want);
    }

    // 2. Site mirrors: per-site counters vs the ledger counter they shadow.
    for (name, want) in [
        ("pages_read", c.pages_read),
        ("pages_written", c.pages_written),
        ("packets_sent", c.packets_sent),
        ("packets_recv", c.packets_recv),
        ("msgs_shortcircuit", c.msgs_shortcircuit),
        ("control_msgs", c.control_msgs),
        ("filter_drops", c.filter_drops),
        ("hash_inserts", c.hash_inserts),
        ("hash_probes", c.hash_probes),
        ("overflow_evictions", c.overflow_evictions),
        ("pages_spilled", c.pages_spilled),
        ("pages_restored", c.pages_restored),
    ] {
        check(name, registry.counter_total(name), want);
    }
    check(
        "wire_bytes",
        registry.counter_total("wire_bytes"),
        t.ring_bytes,
    );

    // 3. Device histograms: every charged microsecond is attributable.
    for (name, want) in [
        ("disk_request_service_us", t.disk.as_us()),
        ("disk_request_wait_us", t.disk_wait.as_us()),
        ("net_request_service_us", t.net.as_us()),
        ("net_request_wait_us", t.net_wait.as_us()),
    ] {
        let sum = registry.histogram_total(name).map_or(0, |h| h.sum);
        check(name, sum, want);
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metered_run_reconciles_and_repeats() {
        let w = Workload::scaled(2_000, 200);
        let run = metrics_join(&w, Algorithm::HybridHash, 0.5, false, false);
        assert_eq!(run.report.result_tuples, 200);
        assert!(!run.registry.is_empty(), "hooks must have fired");
        assert_eq!(
            run.registry.phases().len(),
            run.report.phases.len(),
            "one sealed metrics phase per report phase"
        );
        let errs = reconcile(&run.registry, &run.report);
        assert!(
            errs.is_empty(),
            "reconciliation failed:\n{}",
            errs.join("\n")
        );
        // Determinism: metering the same point again is byte-identical.
        let again = metrics_join(&w, Algorithm::HybridHash, 0.5, false, false);
        assert_eq!(run.json(), again.json());
        assert_eq!(run.prometheus(), again.prometheus());
    }

    #[test]
    fn reconcile_reports_discrepancies() {
        let w = Workload::scaled(1_000, 100);
        let run = metrics_join(&w, Algorithm::SimpleHash, 1.0, false, false);
        let mut tampered = run.registry.clone();
        tampered.counter_add("pages_read", 0, "tamper", 7);
        let errs = reconcile(&tampered, &run.report);
        assert!(
            errs.iter().any(|e| e.starts_with("pages_read")),
            "tampered counter must surface: {errs:?}"
        );
    }
}
