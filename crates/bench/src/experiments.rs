//! One function per paper table/figure.
//!
//! Each returns the measured series and can print itself as a TSV block
//! whose rows mirror what the paper plots. `EXPERIMENTS.md` records the
//! output of `cargo run --release -p gamma-bench --bin figures -- all`
//! next to the paper's qualitative claims.

use gamma_core::query::{Algorithm, OverflowPolicy};

use crate::sweep::{paper_ratios, pooled_map, ExperimentPoint, SweepBuilder, Workload};

/// Pretty-print a series grouped by algorithm.
pub fn print_series(title: &str, pts: &[ExperimentPoint]) {
    println!("\n== {title} ==");
    println!(
        "{:<12} {:>7} {:>10} {:>8} {:>10} {:>10} {:>9}",
        "algorithm", "ratio", "seconds", "buckets", "pageIOs", "packets", "ovfl"
    );
    for p in pts {
        println!(
            "{:<12} {:>7.3} {:>10.2} {:>8} {:>10} {:>10} {:>9}",
            p.algorithm,
            p.ratio,
            p.seconds,
            p.report.buckets,
            p.report.page_ios(),
            p.report.packets(),
            p.report.overflow_passes,
        );
    }
}

/// Figure 5: HPJA joins, local configuration, no filters.
pub fn fig05(w: &Workload) -> Vec<ExperimentPoint> {
    SweepBuilder::new(w).run(&Algorithm::ALL, &paper_ratios())
}

/// Figure 6: non-HPJA joins (join on `unique2`), local, no filters.
pub fn fig06(w: &Workload) -> Vec<ExperimentPoint> {
    SweepBuilder::new(w)
        .on("unique2", "unique2")
        .run(&Algorithm::ALL, &paper_ratios())
}

/// Figure 7: Hybrid between ratios 0.5 and 1.0 — optimistic (overflow)
/// vs pessimistic (two buckets) vs the optimal endpoints.
pub fn fig07(w: &Workload) -> Vec<ExperimentPoint> {
    let ratios = [0.5, 0.6, 0.7, 0.8, 0.9, 1.0];
    let cases: Vec<(OverflowPolicy, &str, f64)> = [
        (OverflowPolicy::Optimistic, "hybrid-overflow"),
        (OverflowPolicy::Pessimistic, "hybrid-2bucket"),
    ]
    .into_iter()
    .flat_map(|(policy, label)| ratios.into_iter().map(move |r| (policy, label, r)))
    .collect();
    pooled_map("fig07 point", cases, |(policy, label, r)| {
        let mut p = SweepBuilder::new(w)
            .policy(policy)
            .run_one(Algorithm::HybridHash, r);
        p.algorithm = label.into();
        p
    })
}

/// Figure 8: HPJA joins with bit filters, local.
pub fn fig08(w: &Workload) -> Vec<ExperimentPoint> {
    SweepBuilder::new(w)
        .filtered(true)
        .run(&Algorithm::ALL, &paper_ratios())
}

/// Figure 9: non-HPJA joins with bit filters, local.
pub fn fig09(w: &Workload) -> Vec<ExperimentPoint> {
    SweepBuilder::new(w)
        .on("unique2", "unique2")
        .filtered(true)
        .run(&Algorithm::ALL, &paper_ratios())
}

/// Figures 10-13: per-algorithm filter on/off comparison (HPJA, local).
pub fn fig10_13(w: &Workload, algorithm: Algorithm) -> Vec<ExperimentPoint> {
    let cases: Vec<(bool, &str, f64)> = [(false, "nofilter"), (true, "filter")]
        .into_iter()
        .flat_map(|(f, label)| paper_ratios().into_iter().map(move |r| (f, label, r)))
        .collect();
    pooled_map("fig10-13 point", cases, |(f, label, r)| {
        let mut p = SweepBuilder::new(w).filtered(f).run_one(algorithm, r);
        p.algorithm = format!("{}-{}", algorithm.name(), label);
        p
    })
}

/// Figure 14: remote configuration, HPJA vs non-HPJA (hash joins only).
pub fn fig14(w: &Workload) -> Vec<ExperimentPoint> {
    let algs = [
        Algorithm::SimpleHash,
        Algorithm::GraceHash,
        Algorithm::HybridHash,
    ];
    let cases: Vec<(&str, &str, Algorithm, f64)> = [("unique1", "hpja"), ("unique2", "nonhpja")]
        .into_iter()
        .flat_map(|(attr, label)| {
            algs.into_iter().flat_map(move |alg| {
                paper_ratios()
                    .into_iter()
                    .map(move |r| (attr, label, alg, r))
            })
        })
        .collect();
    pooled_map("fig14 point", cases, |(attr, label, alg, r)| {
        let mut p = SweepBuilder::new(w).on(attr, attr).remote().run_one(alg, r);
        p.algorithm = format!("{}-{}", alg.name(), label);
        p
    })
}

/// Figure 15: local vs remote, HPJA.
pub fn fig15(w: &Workload) -> Vec<ExperimentPoint> {
    local_vs_remote(w, "unique1")
}

/// Figure 16: local vs remote, non-HPJA.
pub fn fig16(w: &Workload) -> Vec<ExperimentPoint> {
    local_vs_remote(w, "unique2")
}

fn local_vs_remote(w: &Workload, attr: &str) -> Vec<ExperimentPoint> {
    let algs = [
        Algorithm::SimpleHash,
        Algorithm::GraceHash,
        Algorithm::HybridHash,
    ];
    let cases: Vec<(bool, Algorithm, f64)> = [false, true]
        .into_iter()
        .flat_map(|remote| {
            algs.into_iter()
                .flat_map(move |alg| paper_ratios().into_iter().map(move |r| (remote, alg, r)))
        })
        .collect();
    pooled_map("local-vs-remote point", cases, |(remote, alg, r)| {
        let b = if remote {
            SweepBuilder::new(w).on(attr, attr).remote()
        } else {
            SweepBuilder::new(w).on(attr, attr)
        };
        let mut p = b.run_one(alg, r);
        p.algorithm = format!("{}-{}", alg.name(), if remote { "remote" } else { "local" });
        p
    })
}

/// Table 3: skewed join-attribute distributions (UU / NU / UN) at 100 %
/// and 17 % memory, relations range-partitioned on the join attributes,
/// with and without bit filters.
pub fn table3(w: &Workload) -> Vec<ExperimentPoint> {
    let combos: [(&str, &str, &str); 3] = [
        ("unique1", "unique1", "UU"),
        ("normal", "unique1", "NU"),
        ("unique1", "normal", "UN"),
    ];
    let mut cases: Vec<(&str, &str, &str, bool, f64, &str, Algorithm)> = Vec::new();
    for (inner, outer, tag) in combos {
        for filter in [false, true] {
            for (ratio, mtag) in [(1.0, "100%"), (0.17, "17%")] {
                for alg in Algorithm::ALL {
                    cases.push((inner, outer, tag, filter, ratio, mtag, alg));
                }
            }
        }
    }
    pooled_map(
        "table3 point",
        cases,
        |(inner, outer, tag, filter, ratio, mtag, alg)| {
            let mut b = SweepBuilder::new(w)
                .on(inner, outer)
                .range_loaded()
                .filtered(filter);
            // The paper ran Grace with one extra bucket for NU so no
            // bucket would overflow.
            if alg == Algorithm::GraceHash && inner == "normal" {
                b = b.extra_buckets(1);
            }
            let mut p = b.run_one(alg, ratio);
            p.algorithm = format!(
                "{}-{}-{}-{}",
                alg.name(),
                tag,
                mtag,
                if filter { "filter" } else { "nofilter" }
            );
            p
        },
    )
}

/// Table 4 is derived from Table 3: percentage improvement from filtering.
pub fn table4(t3: &[ExperimentPoint]) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for p in t3 {
        if let Some(base_name) = p.algorithm.strip_suffix("-nofilter") {
            let with = t3
                .iter()
                .find(|q| q.algorithm == format!("{base_name}-filter") && q.ratio == p.ratio);
            if let Some(withf) = with {
                let impr = 100.0 * (p.seconds - withf.seconds) / p.seconds;
                out.push((format!("{base_name}@{}", p.ratio), impr));
            }
        }
    }
    out
}
