//! Skew × memory-ratio cliff sweep.
//!
//! The Figure 7 "optimistic" bucket policy runs Hybrid with
//! `floor(|R|/M)` buckets and leans on the overflow machinery to absorb
//! the shortfall. At non-integral ratios the legacy all-or-nothing
//! resolution re-sprays the whole overflow through a full extra pass, so
//! the response-time curve develops a *cliff*: ratio 0.6 (one bucket, 40%
//! short) is far slower than ratio 0.5 (two buckets, nothing short). Data
//! skew on the `normal` attribute sharpens the cliff by overloading single
//! sites. This sweep measures a skew-level × memory-ratio grid twice —
//! legacy machinery vs the robust path (skew-aware split-table refinement
//! plus dynamic spill/restore) — so the cliff and its fix are both
//! regression-gated artifacts.
//!
//! Every point joins `Bprime ⋈ A` on Hybrid under the Optimistic policy
//! and is validated against the oracle. The emitted JSON carries only
//! virtual-time quantities (no wall-clock), so two runs of the same
//! configuration are byte-identical regardless of executor.

use gamma_core::query::{Algorithm, OverflowPolicy};

use crate::sweep::{pooled_map, SweepBuilder, Workload};

/// The three skew levels the sweep crosses with the memory ratios.
///
/// * `uniform` — join on `unique1` (a permutation: one match per tuple).
/// * `nu` — join on `normal` at the generator's scaled default spread
///   (the paper's §4.4 nonuniform attribute).
/// * `sharp` — join on `normal` drawn at `sd = n/500`, Table 3-style data
///   sharp enough to overload single split-table entries.
pub const SKEW_LEVELS: [&str; 3] = ["uniform", "nu", "sharp"];

/// The two machineries each grid cell is measured under.
pub const MODES: [&str; 2] = ["legacy", "robust"];

/// Sweep configuration.
pub struct SkewSweepConfig {
    /// `A` relation cardinality.
    pub a_rows: usize,
    /// `Bprime` (inner) cardinality.
    pub bprime_rows: usize,
    /// Memory ratios to cross with the skew levels.
    pub ratios: Vec<f64>,
}

impl SkewSweepConfig {
    /// The committed-baseline configuration: small enough for CI, large
    /// enough that the optimistic cliff is visible at every skew level.
    pub fn smoke() -> Self {
        SkewSweepConfig {
            a_rows: 4_000,
            bprime_rows: 400,
            ratios: vec![1.0, 0.9, 0.8, 0.7, 0.6, 0.5],
        }
    }

    /// Standard deviation of the `sharp` level's `normal` attribute.
    pub fn sharp_sd(&self) -> f64 {
        self.a_rows as f64 / 500.0
    }
}

/// One measured grid cell.
#[derive(Debug, Clone)]
pub struct SkewPoint {
    /// Skew level (`uniform` / `nu` / `sharp`).
    pub skew: &'static str,
    /// Machinery (`legacy` / `robust`).
    pub mode: &'static str,
    /// Memory / |inner| ratio.
    pub memory_ratio: f64,
    /// Simulated end-to-end response time.
    pub response_virtual_us: u64,
    /// Classic global re-spray passes executed.
    pub overflow_passes: u32,
    /// Pages the dynamic path left spilled (zero under `legacy`).
    pub pages_spilled: u64,
    /// Pages the dynamic path restored into table slack (zero under
    /// `legacy`).
    pub pages_restored: u64,
    /// Hybrid bucket count the optimizer picked.
    pub buckets: usize,
    /// Result cardinality (identity: oracle-checked before reporting).
    pub result_tuples: u64,
    /// Whether the block-nested-loops safety net fired anywhere.
    pub bnl: bool,
}

/// A completed sweep.
pub struct SkewSweep {
    /// All points, in `SKEW_LEVELS` × `MODES` × `ratios` order.
    pub points: Vec<SkewPoint>,
}

impl SkewSweep {
    /// The response-time series of one (skew, mode) row, in the sweep's
    /// ratio order.
    pub fn series(&self, skew: &str, mode: &str) -> Vec<&SkewPoint> {
        self.points
            .iter()
            .filter(|p| p.skew == skew && p.mode == mode)
            .collect()
    }
}

/// Run the full grid. Points are dispatched on the bench pool when one is
/// active; each builds its own machine, so results are byte-identical to a
/// sequential run.
pub fn skew_sweep(cfg: &SkewSweepConfig) -> SkewSweep {
    let base = Workload::scaled(cfg.a_rows, cfg.bprime_rows);
    let sharp = Workload::scaled_nu(cfg.a_rows, cfg.bprime_rows, cfg.sharp_sd());
    let levels: [(&'static str, &Workload, &str); 3] = [
        ("uniform", &base, "unique1"),
        ("nu", &base, "normal"),
        ("sharp", &sharp, "normal"),
    ];
    let mut jobs: Vec<(&'static str, &Workload, &str, &'static str, f64)> = Vec::new();
    for (skew, w, attr) in levels {
        for mode in MODES {
            for &ratio in &cfg.ratios {
                jobs.push((skew, w, attr, mode, ratio));
            }
        }
    }
    let points = pooled_map("skew point", jobs, |(skew, w, attr, mode, ratio)| {
        let mut builder = SweepBuilder::new(w)
            .on(attr, attr)
            .policy(OverflowPolicy::Optimistic);
        if mode == "robust" {
            builder = builder.refined().dynamic_spill();
        }
        let p = builder.run_one(Algorithm::HybridHash, ratio);
        SkewPoint {
            skew,
            mode,
            memory_ratio: ratio,
            response_virtual_us: p.report.response.as_us(),
            overflow_passes: p.report.overflow_passes,
            pages_spilled: p.report.pages_spilled(),
            pages_restored: p.report.pages_restored(),
            buckets: p.report.buckets,
            result_tuples: p.report.result_tuples,
            bnl: p.report.bnl_fallback,
        }
    });
    SkewSweep { points }
}

/// Render the sweep as the committed `BENCH_skew.json` document: an
/// envelope plus one line-oriented object per point, virtual-time only.
pub fn render_json(cfg: &SkewSweepConfig, sweep: &SkewSweep) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"skew\",\n");
    out.push_str(&format!("  \"a_rows\": {},\n", cfg.a_rows));
    out.push_str(&format!("  \"bprime_rows\": {},\n", cfg.bprime_rows));
    out.push_str("  \"points\": [\n");
    for (i, p) in sweep.points.iter().enumerate() {
        let sep = if i + 1 == sweep.points.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"skew\": \"{}\", \"mode\": \"{}\", \"memory_ratio\": {}, \
             \"response_virtual_us\": {}, \"overflow_passes\": {}, \
             \"pages_spilled\": {}, \"pages_restored\": {}, \"buckets\": {}, \
             \"result_tuples\": {}, \"bnl\": {}}}{sep}\n",
            p.skew,
            p.mode,
            p.memory_ratio,
            p.response_virtual_us,
            p.overflow_passes,
            p.pages_spilled,
            p.pages_restored,
            p.buckets,
            p.result_tuples,
            p.bnl,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_grid_runs_and_renders() {
        let cfg = SkewSweepConfig {
            a_rows: 1_000,
            bprime_rows: 100,
            ratios: vec![1.0, 0.6],
        };
        let sweep = skew_sweep(&cfg);
        assert_eq!(sweep.points.len(), SKEW_LEVELS.len() * MODES.len() * 2);
        for skew in SKEW_LEVELS {
            for mode in MODES {
                assert_eq!(sweep.series(skew, mode).len(), 2);
            }
        }
        // Legacy never exercises the dynamic path.
        for p in sweep.points.iter().filter(|p| p.mode == "legacy") {
            assert_eq!((p.pages_spilled, p.pages_restored), (0, 0), "{p:?}");
        }
        let json = render_json(&cfg, &sweep);
        assert!(json.contains("\"benchmark\": \"skew\""));
        assert_eq!(
            json.matches("\"skew\": ").count(),
            sweep.points.len(),
            "one line per point"
        );
    }
}
