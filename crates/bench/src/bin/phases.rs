//! Drill into one join's phase-by-phase execution.
//!
//! ```text
//! cargo run --release -p gamma-bench --bin phases -- hybrid 0.25
//! cargo run --release -p gamma-bench --bin phases -- sort-merge 0.1 --nonhpja --filter
//! cargo run --release -p gamma-bench --bin phases -- simple 0.2 --remote
//! ```
//!
//! Prints the scheduler dispatch overhead, parallel duration, critical
//! node and aggregate resource demand of every phase — the breakdown
//! behind each point in the paper's figures.

use gamma_bench::{SweepBuilder, Workload};
use gamma_core::query::Algorithm;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: phases <sort-merge|simple|grace|hybrid> <ratio> [--nonhpja] [--remote] [--mixed] [--filter] [--scale F]");
        std::process::exit(2);
    }
    let alg = match args[0].as_str() {
        "sort-merge" => Algorithm::SortMerge,
        "simple" => Algorithm::SimpleHash,
        "grace" => Algorithm::GraceHash,
        "hybrid" => Algorithm::HybridHash,
        other => {
            eprintln!("unknown algorithm {other}");
            std::process::exit(2);
        }
    };
    let ratio: f64 = args[1].parse().expect("ratio must be a float");
    let flag = |f: &str| args.iter().any(|a| a == f);
    let mut scale = 1.0f64;
    if let Some(i) = args.iter().position(|a| a == "--scale") {
        scale = args[i + 1].parse().expect("scale must be a float");
    }

    let w = Workload::scaled(
        (100_000f64 * scale).round() as usize,
        (10_000f64 * scale).round() as usize,
    );
    let mut b = SweepBuilder::new(&w);
    if flag("--nonhpja") {
        b = b.on("unique2", "unique2");
    }
    if flag("--remote") {
        b = b.remote();
    }
    if flag("--mixed") {
        b = b.mixed();
    }
    b = b.filtered(flag("--filter"));

    let p = b.run_one(alg, ratio);
    let r = &p.report;
    println!(
        "{} @ ratio {:.3}: {:.2}s response, {} buckets, {} result tuples{}",
        r.algorithm,
        ratio,
        r.response.as_secs(),
        r.buckets,
        r.result_tuples,
        if r.overflow_passes > 0 {
            format!(", {} overflow passes", r.overflow_passes)
        } else {
            String::new()
        }
    );
    println!(
        "disk-node CPU utilization {:.0}%, join-node {:.0}%\n",
        100.0 * r.disk_node_cpu_utilization,
        100.0 * r.join_node_cpu_utilization
    );
    println!(
        "{:<36} {:>9} {:>10} {:>5} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "phase", "sched", "duration", "crit", "cpu", "disk", "reads", "writes", "packets"
    );
    for ph in &r.phases {
        println!(
            "{:<36} {:>9} {:>10} {:>5} {:>8.2}s {:>8.2}s {:>8} {:>8} {:>8}",
            ph.name,
            ph.sched_overhead.to_string(),
            ph.duration.to_string(),
            ph.critical_node
                .map_or_else(|| "-".to_string(), |n| n.to_string()),
            ph.total.cpu.as_secs(),
            ph.total.disk.as_secs(),
            ph.total.counts.pages_read,
            ph.total.counts.pages_written,
            ph.total.counts.packets_sent,
        );
    }
    println!(
        "\ntotals: {} page I/Os, {} packets, {} short-circuited msgs, {} filter drops",
        r.page_ios(),
        r.packets(),
        r.shortcircuits(),
        r.total.counts.filter_drops
    );
}
