//! Regenerate the paper's figures and tables.
//!
//! ```text
//! cargo run --release -p gamma-bench --bin figures -- all
//! cargo run --release -p gamma-bench --bin figures -- fig05 fig07 table3
//! cargo run --release -p gamma-bench --bin figures -- --scale 0.1 fig05
//! ```

use gamma_bench::experiments as ex;
use gamma_bench::{ExperimentPoint, Workload};
use gamma_core::query::Algorithm;

/// Escape a plain string for a JSON literal (names here are ASCII, but
/// stay correct for anything).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// When `--json PATH` is given, every measured point is appended to PATH
/// as one JSON record per line (machine-readable experiment log).
fn dump_json(path: &Option<String>, experiment: &str, pts: &[ExperimentPoint]) {
    let Some(path) = path else { return };
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .expect("open --json output file");
    for p in pts {
        writeln!(
            f,
            "{{\"experiment\":{},\"algorithm\":{},\"ratio\":{},\"seconds\":{},\"buckets\":{},\"page_ios\":{},\"packets\":{},\"overflow_passes\":{},\"result_tuples\":{}}}",
            json_str(experiment),
            json_str(&p.algorithm),
            p.ratio,
            p.seconds,
            p.report.buckets,
            p.report.page_ios(),
            p.report.packets(),
            p.report.overflow_passes,
            p.report.result_tuples,
        )
        .expect("write json record");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut json: Option<String> = None;
    let mut plot = false;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .expect("--scale needs a value")
                    .parse()
                    .expect("scale must be a float");
            }
            "--json" => {
                json = Some(it.next().expect("--json needs a path"));
            }
            "--plot" => plot = true,
            _ => wanted.push(a),
        }
    }
    if wanted.is_empty() {
        eprintln!("usage: figures [--scale F] [--json PATH] [--plot] all | smoke | fig05 fig06 fig07 fig08 fig09 fig10 fig11 fig12 fig13 fig14 fig15 fig16 table3");
        std::process::exit(2);
    }
    let all = wanted.iter().any(|w| w == "all");
    let want = |n: &str| all || wanted.iter().any(|w| w == n);

    let a = (100_000f64 * scale).round() as usize;
    let b = (10_000f64 * scale).round() as usize;
    eprintln!("# workload: A={a} tuples, Bprime={b} tuples (scale {scale})");
    let w = Workload::scaled(a, b);

    // CI-only mode: never part of `all` (it re-runs every point twice).
    if wanted.iter().any(|w| w == "smoke") {
        smoke(&w);
    }

    if want("fig05") {
        let pts = ex::fig05(&w);
        ex::print_series("Figure 5: HPJA joins, local", &pts);
        if plot {
            println!("{}", gamma_bench::plot::render(&pts, 64, 18));
        }
        dump_json(&json, "fig05", &pts);
    }
    if want("fig06") {
        let pts = ex::fig06(&w);
        ex::print_series("Figure 6: non-HPJA joins, local", &pts);
        if plot {
            println!("{}", gamma_bench::plot::render(&pts, 64, 18));
        }
        dump_json(&json, "fig06", &pts);
    }
    if want("fig07") {
        let pts = ex::fig07(&w);
        ex::print_series("Figure 7: Hybrid overflow vs extra bucket", &pts);
        if plot {
            println!("{}", gamma_bench::plot::render(&pts, 64, 18));
        }
        dump_json(&json, "fig07", &pts);
    }
    if want("fig08") {
        let pts = ex::fig08(&w);
        ex::print_series("Figure 8: HPJA joins with bit filters", &pts);
        dump_json(&json, "fig08", &pts);
    }
    if want("fig09") {
        let pts = ex::fig09(&w);
        ex::print_series("Figure 9: non-HPJA joins with bit filters", &pts);
        dump_json(&json, "fig09", &pts);
    }
    let f1013 = [
        (
            "fig10",
            Algorithm::HybridHash,
            "Figure 10: Hybrid filter effect",
        ),
        (
            "fig11",
            Algorithm::SimpleHash,
            "Figure 11: Simple filter effect",
        ),
        (
            "fig12",
            Algorithm::GraceHash,
            "Figure 12: Grace filter effect",
        ),
        (
            "fig13",
            Algorithm::SortMerge,
            "Figure 13: Sort-merge filter effect",
        ),
    ];
    for (name, alg, title) in f1013 {
        if want(name) {
            let pts = ex::fig10_13(&w, alg);
            ex::print_series(title, &pts);
            dump_json(&json, name, &pts);
        }
    }
    if want("fig14") {
        let pts = ex::fig14(&w);
        ex::print_series("Figure 14: remote joins, HPJA vs non-HPJA", &pts);
        dump_json(&json, "fig14", &pts);
    }
    if want("fig15") {
        let pts = ex::fig15(&w);
        ex::print_series("Figure 15: local vs remote, HPJA", &pts);
        dump_json(&json, "fig15", &pts);
    }
    if want("fig16") {
        let pts = ex::fig16(&w);
        ex::print_series("Figure 16: local vs remote, non-HPJA", &pts);
        dump_json(&json, "fig16", &pts);
    }
    if want("table3") {
        let t3 = ex::table3(&w);
        ex::print_series("Table 3: non-uniform join attribute values", &t3);
        dump_json(&json, "table3", &t3);
        println!("\n== Table 4: % improvement from bit filters ==");
        for (name, impr) in ex::table4(&t3) {
            println!("{name:<28} {impr:>6.1}%");
        }
    }
}

/// CI smoke: one sweep point per algorithm under both timing models.
/// Every point is oracle-validated (`SweepBuilder` asserts cardinality and
/// checksum) and run twice to catch determinism regressions; any failure
/// panics, failing the job.
fn smoke(w: &Workload) {
    use gamma_bench::SweepBuilder;
    use gamma_des::TimingModel;
    println!("== smoke: one point per algorithm, both timing models ==");
    println!("{:<12} {:>10} {:>10}", "alg", "legacy(s)", "queued(s)");
    for alg in [
        Algorithm::SortMerge,
        Algorithm::SimpleHash,
        Algorithm::GraceHash,
        Algorithm::HybridHash,
    ] {
        let mut secs = [0.0f64; 2];
        for (i, model) in [TimingModel::Legacy, TimingModel::Queued]
            .into_iter()
            .enumerate()
        {
            let run = || SweepBuilder::new(w).timing(model).run_one(alg, 0.5);
            let a = run();
            let b = run();
            assert_eq!(
                a.report.response,
                b.report.response,
                "{} ({model:?}): response not deterministic",
                alg.name()
            );
            assert_eq!(
                a.report.result_checksum,
                b.report.result_checksum,
                "{} ({model:?}): checksum not deterministic",
                alg.name()
            );
            secs[i] = a.seconds;
        }
        assert!(
            secs[1] >= secs[0],
            "{}: queued response below the legacy bound",
            alg.name()
        );
        println!("{:<12} {:>10.3} {:>10.3}", alg.name(), secs[0], secs[1]);
    }
    println!("smoke OK: validated, deterministic, queued >= legacy");
}
